"""Gateway demo: the SolveService behind a real TCP port.

Run:  python examples/gateway_demo.py

Boots a gateway (service + HTTP/WebSocket listener) in a background
thread via :func:`repro.net.serve_forever`, then walks the whole wire
surface with the blocking :class:`~repro.net.GatewayClient`:

* ``GET /healthz`` — liveness, run id, store path;
* 60 concurrent ``POST /v1/solve`` requests over 6 distinct reservoir
  realizations — the service's cache/dedup/admission machinery applies
  unchanged behind the wire, so far fewer than 60 solves run;
* an ``If-None-Match`` replay answered ``304 Not Modified`` before any
  cache probe — the ETag *is* the content fingerprint, and a
  fingerprint cannot map to a second answer;
* a transient streamed step-by-step over the WebSocket;
* ``GET /metrics`` — and the punchline: the Prometheus totals equal the
  service's own ``stats()``, because both read the one registry.
"""

import queue
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import repro
from repro.net import GatewayClient
from repro.net.server import serve_forever

N_REQUESTS = 60
N_DISTINCT = 6
N_STEPS = 5


def main() -> None:
    scenarios = [
        repro.scenario("lognormal_reservoir", nx=16, ny=16, nz=4, seed=seed)
        for seed in range(N_DISTINCT)
    ]
    spec = repro.SolveSpec.from_kwargs(rel_tol=1e-7, engine="vectorized")

    store_root = tempfile.mkdtemp(prefix="repro-gateway-store-")
    records_root = tempfile.mkdtemp(prefix="repro-gateway-records-")
    ready: queue.Queue = queue.Queue()
    stop = threading.Event()
    gateway_thread = threading.Thread(
        target=serve_forever,
        kwargs=dict(
            store=store_root, records=records_root, run_id="gateway-demo",
            ready=ready.put, stop=stop, admission_window=0.02,
        ),
        name="gateway", daemon=True,
    )
    gateway_thread.start()
    address = ready.get(timeout=30)
    print(f"gateway listening on {address['url']} "
          f"(run id {address['run_id']})\n")

    client = GatewayClient(address["host"], address["port"])
    try:
        health = client.healthz()
        print(f"GET /healthz        -> {health['status']}, "
              f"store {health['store']}")

        # -- concurrent solves over the wire ------------------------------
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=12) as pool:
            results = list(pool.map(
                lambda i: client.solve(
                    scenarios[i % N_DISTINCT], backend="wse", spec=spec
                ),
                range(N_REQUESTS),
            ))
        elapsed = time.perf_counter() - start
        print(f"POST /v1/solve x{N_REQUESTS} ({N_DISTINCT} distinct specs) "
              f"-> all converged={all(r.converged for r in results)}, "
              f"{elapsed:.2f}s, {N_REQUESTS / elapsed:.0f} req/s")

        # -- conditional replay: the ETag is the content fingerprint ------
        client.solve(scenarios[0], backend="wse", spec=spec)
        etag = client.last_etag
        replay = client.solve(
            scenarios[0], backend="wse", spec=spec, if_none_match=etag
        )
        print(f"If-None-Match {etag} -> "
              f"{'304 Not Modified (no body, no cache probe)' if replay is None else 'unexpected body!'}")

        # -- transient over the WebSocket ---------------------------------
        transient = spec.with_options(
            n_steps=N_STEPS, dt=2.0, total_compressibility=5e-3,
            rel_tol=1e-5,  # keep the demo snappy; accuracy isn't the point here
        )
        print("GET /v1/stream      -> ", end="")
        for step in client.stream(scenarios[0], backend="wse", spec=transient):
            print(f"step {step.step} ({step.iterations} iters)",
                  end="  ", flush=True)
        print()

        # -- the metrics surface ------------------------------------------
        values = client.metrics_values()
        print("\nGET /metrics (the same registry stats() and run.json read):")
        for name in (
            "repro_requests_submitted_total",
            "repro_solves_executed_total",
            'repro_cache_hits_total{tier="memory"}',
            'repro_cache_hits_total{tier="dedup"}',
            "repro_stream_steps_total",
            'repro_http_requests_total{route="/v1/solve",status="200"}',
        ):
            total = sum(v for k, v in values.items()
                        if k == name or k.startswith(name + "{"))
            print(f"  {name:<55s} {total:.0f}")
    finally:
        client.close()
        stop.set()
        gateway_thread.join(timeout=30)
    print(f"\ngateway stopped; durable run record in "
          f"{records_root}/gateway-demo/run.json")


if __name__ == "__main__":
    main()
