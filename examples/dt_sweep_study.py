"""Δt sweep on the drawdown formation: conditioning vs. resolution.

Run:  python examples/dt_sweep_study.py

The backward-Euler accumulation term `φ c_t V / Δt` sits on the operator
diagonal, so *smaller* time steps make every CG solve better conditioned
— per-step iteration counts fall as Δt shrinks, while the number of
steps to reach a fixed horizon grows.  This study sweeps Δt over the
`transient_drawdown` scenario with one `Session`-style loop of
`repro.simulate` calls on the dataflow fabric (vectorized engine), and
prints where the total-CG-work minimum lands.

A ramped schedule (per-step Δt list) is also shown: small early steps
resolve the fast drawdown transient, large late steps coast to the
horizon — something a single scalar Δt cannot do.
"""

from __future__ import annotations

import repro
from repro.util.formatting import format_table

HORIZON = 64.0


def main() -> None:
    scenario = repro.scenario("transient_drawdown", nx=12, ny=12, nz=4)
    base = repro.SolveSpec.from_kwargs(engine="vectorized", rel_tol=1e-8)

    rows = []
    for n_steps in (4, 8, 16, 32):
        dt = HORIZON / n_steps
        sim = repro.simulate(
            scenario,
            spec=base.with_options(
                n_steps=n_steps, dt=dt, total_compressibility=1e-2
            ),
            backend="wse",
        )
        per_step = sim.total_iterations / n_steps
        rows.append([
            f"{dt:g}", n_steps, f"{per_step:.1f}", sim.total_iterations,
            f"{sim.elapsed_seconds:.2e}s",
        ])
    print(
        format_table(
            ["Δt", "steps", "CG iters/step", "total CG iters", "device time"],
            rows,
            title=f"Δt sweep to t={HORIZON:g} (transient_drawdown, warm-started)",
        )
    )
    print(
        "\nsmaller Δt → fewer CG iterations per step (the accumulation "
        "diagonal dominates),\nlarger Δt → fewer steps; the sweep shows "
        "where the total-work tradeoff lands.\n"
    )

    # A ramped schedule: 8 fast steps into the transient, 4 long coasts.
    schedule = [1.0] * 8 + [14.0] * 4
    ramped = repro.simulate(
        scenario,
        spec=base.with_options(
            n_steps=12, dt=schedule, total_compressibility=1e-2
        ),
        backend="wse",
    )
    print(
        f"ramped schedule {schedule}: {ramped.total_iterations} total CG "
        f"iterations to t={ramped.times[-1]:g}"
    )
    uniform = repro.simulate(
        scenario,
        spec=base.with_options(
            n_steps=12, dt=HORIZON / 12, total_compressibility=1e-2
        ),
        backend="wse",
    )
    print(
        f"uniform 12-step schedule: {uniform.total_iterations} total CG "
        f"iterations to t={uniform.times[-1]:g}"
    )


if __name__ == "__main__":
    main()
