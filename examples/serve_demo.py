"""Serving demo: 100 concurrent requests through one SolveService.

Run:  python examples/serve_demo.py

A hundred clients submit solve requests concurrently, but they only ask
for ~10 distinct things (10 permeability realizations of one reservoir,
all under the same solve spec).  The service turns that into far fewer
than 100 solves:

* identical requests arriving while the first is still solving attach to
  it (in-flight dedup),
* identical requests arriving later hit the content-addressed result
  cache (fingerprint = target + spec + backend, so a hit is *identity*,
  not heuristics),
* the ~10 genuinely distinct requests agree on backend / spec / grid
  shape, so admission control fuses them into batched vector-engine
  lanes — close to one launch for all of them.

The run record printed at the end is the service's own accounting
(`run.json`), not demo bookkeeping.
"""

import asyncio
import random
import tempfile
import time

import repro
from repro.serve import SolveService

N_REQUESTS = 100
N_DISTINCT = 10


async def client(service, scenarios, spec, i):
    """One impatient user: pick a reservoir, ask, wait, maybe re-ask."""
    await asyncio.sleep(random.uniform(0, 0.05))  # ragged arrivals
    target = scenarios[i % N_DISTINCT]
    result = await service.submit(target, backend="wse", spec=spec)
    return target, result


async def main() -> None:
    random.seed(0)
    # 10 permeability realizations of the same 16x16x4 reservoir: distinct
    # content fingerprints, identical backend / spec / grid shape.
    scenarios = [
        repro.scenario("lognormal_reservoir", nx=16, ny=16, nz=4, seed=seed)
        for seed in range(N_DISTINCT)
    ]
    spec = repro.SolveSpec.from_kwargs(rel_tol=1e-7)

    records_root = tempfile.mkdtemp(prefix="repro-serve-demo-")
    start = time.perf_counter()
    async with SolveService(
        records=records_root, admission_window=0.02
    ) as service:
        answers = await asyncio.gather(
            *(client(service, scenarios, spec, i) for i in range(N_REQUESTS))
        )
        stats = service.stats()
        run_dir = service.recorder.run_dir
    elapsed = time.perf_counter() - start

    print(f"{N_REQUESTS} requests, {N_DISTINCT} distinct specs, "
          f"{elapsed:.2f}s wall clock\n")
    print(f"  solves actually executed : {stats['executed']}")
    print(f"  fused batched launches   : {stats['batched_launches']} "
          f"(of {stats['launches']} total)")
    print(f"  in-flight dedup hits     : {stats['dedup_hits']}")
    print(f"  memory cache hits        : {stats['cache_hits_memory']}")
    print(f"  cache hit ratio          : {stats['cache_hit_ratio']:.2f}")
    print(f"  run record               : {run_dir}/run.json")

    iters = sorted({r.iterations for _, r in answers})
    print(f"\nall {len(answers)} clients answered; CG iteration counts "
          f"across the {N_DISTINCT} realizations: {iters}")


if __name__ == "__main__":
    asyncio.run(main())
