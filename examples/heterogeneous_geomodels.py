"""CCS-style heterogeneous geomodels: the workloads the paper's intro
motivates (geological carbon storage on detailed geomodels).

Run:  python examples/heterogeneous_geomodels.py

Builds three synthetic permeability fields (layered, lognormal,
channelized), solves the injection pressure problem on each with the
reference backend and the dataflow simulator, and reports how the
heterogeneity affects solver hardness (CG iterations) — the reason
field-scale linear solves eat 70%+ of simulation time (§II-A).
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.core.solver import WseMatrixFreeSolver
from repro.mesh.geomodel import (
    channelized_permeability,
    homogeneous_permeability,
    layered_permeability,
    lognormal_permeability,
)
from repro.mesh.grid import CartesianGrid3D
from repro.util.ascii_art import render_heatmap, render_histogram
from repro.util.formatting import format_table
from repro.wse.specs import WSE2


def main() -> None:
    grid = CartesianGrid3D(12, 12, 6)
    spec = WSE2.with_fabric(16, 16)
    geomodels = {
        "homogeneous": homogeneous_permeability(grid, 100.0),
        "layered": layered_permeability(grid, num_layers=4, low=1.0, high=1000.0, seed=1),
        "lognormal": lognormal_permeability(grid, sigma_log=1.5, seed=2),
        "channelized": channelized_permeability(grid, channel=500.0, seed=3),
    }

    rows = []
    for name, perm in geomodels.items():
        problem = api.quarter_five_spot_problem(
            grid.nx, grid.ny, grid.nz, permeability=perm
        )
        ref = api.solve_reference(problem)
        wse = WseMatrixFreeSolver(
            problem, spec=spec, dtype=np.float64, rel_tol=1e-8, max_iters=5000
        ).solve()
        contrast = float(perm.max() / perm.min())
        rows.append(
            [
                name,
                f"{contrast:,.0f}x",
                ref.total_linear_iterations,
                wse.iterations,
                f"{np.abs(wse.pressure - ref.pressure).max():.2e}",
            ]
        )

    print(
        format_table(
            ["Geomodel", "Perm contrast", "CG iters (reference)",
             "CG iters (dataflow)", "max |diff|"],
            rows,
            title="Solver hardness vs. geological heterogeneity",
        )
    )

    # Show the channelized field and the resulting pressure interplay.
    perm = geomodels["channelized"]
    problem = api.quarter_five_spot_problem(grid.nx, grid.ny, grid.nz, permeability=perm)
    pressure = api.solve_reference(problem).pressure
    print("\nChannelized log10-permeability (depth-averaged):")
    print(render_heatmap(np.log10(perm.mean(axis=2)).T, width=48, height=12))
    print("\nResulting pressure field (injector top-left):")
    print(render_heatmap(pressure.mean(axis=2).T, width=48, height=12, fine=True))
    print("\nLognormal permeability distribution:")
    print(render_histogram(np.log10(geomodels["lognormal"]), bins=12, width=40))


if __name__ == "__main__":
    main()
