"""CCS-style heterogeneous geomodels: the workloads the paper's intro
motivates (geological carbon storage on detailed geomodels).

Run:  python examples/heterogeneous_geomodels.py

Pulls four registered scenarios (homogeneous quarter-five-spot plus the
layered / lognormal / channelized geomodels), solves each with the
reference backend and the dataflow simulator through `repro.solve`, and
reports how the heterogeneity affects solver hardness (CG iterations) —
the reason field-scale linear solves eat 70%+ of simulation time (§II-A).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.ascii_art import render_heatmap, render_histogram
from repro.util.formatting import format_table
from repro.wse.specs import WSE2

GRID = dict(nx=12, ny=12, nz=6)


def main() -> None:
    spec = WSE2.with_fabric(16, 16)
    cases = {
        "homogeneous": repro.scenario("quarter_five_spot", **GRID),
        "layered": repro.scenario("layered_reservoir", **GRID),
        "lognormal": repro.scenario("lognormal_reservoir", **GRID),
        "channelized": repro.scenario("channelized_reservoir", **GRID),
    }

    rows = []
    problems = {}
    for name, sc in cases.items():
        problem = sc.build()
        problems[name] = problem
        ref = repro.solve(problem)  # backend="reference"
        wse = repro.solve(
            problem, backend="wse",
            spec=repro.SolveSpec.from_kwargs(
                spec=spec, dtype=np.float64, rel_tol=1e-8, max_iters=5000,
            ),
        )
        perm = problem.permeability
        contrast = float(perm.max() / perm.min())
        rows.append(
            [
                name,
                f"{contrast:,.0f}x",
                ref.iterations,
                wse.iterations,
                f"{np.abs(wse.pressure - ref.pressure).max():.2e}",
            ]
        )

    print(
        format_table(
            ["Geomodel", "Perm contrast", "CG iters (reference)",
             "CG iters (dataflow)", "max |diff|"],
            rows,
            title="Solver hardness vs. geological heterogeneity",
        )
    )

    # Show the channelized field and the resulting pressure interplay.
    problem = problems["channelized"]
    perm = problem.permeability
    pressure = repro.solve(problem).pressure
    print("\nChannelized log10-permeability (depth-averaged):")
    print(render_heatmap(np.log10(perm.mean(axis=2)).T, width=48, height=12))
    print("\nResulting pressure field (injector top-left):")
    print(render_heatmap(pressure.mean(axis=2).T, width=48, height=12, fine=True))
    print("\nLognormal permeability distribution:")
    print(render_histogram(np.log10(problems["lognormal"].permeability), bins=12, width=40))


if __name__ == "__main__":
    main()
