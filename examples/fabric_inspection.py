"""Inside the dataflow machine: watch the protocols run.

Run:  python examples/fabric_inspection.py

Drives the two §III communication primitives directly on a small fabric —
the Table-I halo exchange (with its switch-position reversals) and the
three-phase all-reduce — and prints the machine-level telemetry: per-step
router states, wavelet counts, link occupancy and the PE memory ledger.
Also demonstrates fault injection: a killed link surfaces as a routing
error instead of silent data loss.
"""

from __future__ import annotations

import numpy as np

from repro.core.allreduce import AllReduce, AllReduceColors
from repro.core.exchange import ExchangeColors, HALO_BUFFER, HaloExchange
from repro.util.errors import RoutingError
from repro.util.formatting import format_table
from repro.wse.color import ColorAllocator
from repro.wse.fabric import Fabric
from repro.wse.router import Port
from repro.wse.specs import WSE2


def demo_exchange() -> None:
    print("=== Table-I halo exchange on a 4x3 fabric (depth 5) ===\n")
    fab = Fabric(WSE2.with_fabric(8, 8), width=4, height=3)
    colors = ColorAllocator(31)
    ex = HaloExchange(fab, ExchangeColors.allocate(colors), depth=5)

    for pe in fab.iter_pes():
        buf = pe.memory.alloc("p", 5)
        buf[:] = 100 * pe.x + 10 * pe.y + np.arange(5, dtype=np.float32)

    # Print the static schedule for one interior PE.
    rows = []
    for step in range(1, 5):
        for action in ex.actions_for(1, 1, step):
            rows.append([step, action.kind.value, action.port.name,
                         f"C{action.color}", f"C{action.cc}"])
    print(format_table(["Step", "Action", "Port", "Data color", "Callback color"],
                       rows, title="PE (1,1) schedule (odd X, odd Y)"))

    ex.start("p")
    trace = fab.run()
    print(
        f"\nround complete: {trace.total_messages} messages, "
        f"{trace.total_wavelets} wavelets, makespan {trace.makespan_cycles} cycles"
    )
    center = fab.pe(1, 1)
    print("PE (1,1) halos:",
          {p.name: center.memory.get(b)[0] for p, b in HALO_BUFFER.items()})
    print("PE (1,1) memory ledger:", center.memory.report())


def demo_allreduce() -> None:
    print("\n=== Whole-fabric all-reduce on a 5x4 fabric ===\n")
    fab = Fabric(WSE2.with_fabric(8, 8), width=5, height=4, dtype=np.float64)
    ar = AllReduce(fab, AllReduceColors.allocate(ColorAllocator(31)))
    values = {(x, y): float(x + 10 * y) for x in range(5) for y in range(4)}
    results = {}
    for pe in fab.iter_pes():
        fab.schedule_task(
            pe, 0,
            lambda pe=pe: ar.submit(
                pe, values[(pe.x, pe.y)],
                lambda total, pe=pe: results.__setitem__((pe.x, pe.y), total),
            ),
        )
    trace = fab.run()
    expected = sum(values.values())
    print(f"sum = {results[(0, 0)]} (expected {expected}); every PE holds a copy")
    print(f"messages: {trace.total_messages}, makespan: {trace.makespan_cycles} cycles")


def demo_fault_injection() -> None:
    print("\n=== Fault injection: a dead link fails loudly ===\n")
    fab = Fabric(WSE2.with_fabric(8, 8), width=3, height=3)
    ex = HaloExchange(fab, ExchangeColors.allocate(ColorAllocator(31)), depth=2)
    for pe in fab.iter_pes():
        pe.memory.alloc("p", 2)
    fab.kill_link(1, 1, Port.EAST)
    ex.start("p")
    try:
        fab.run()
        print("unexpected: run completed despite dead link")
    except RoutingError as err:
        print(f"RoutingError raised as expected:\n  {err}")


def main() -> None:
    demo_exchange()
    demo_allreduce()
    demo_fault_injection()


if __name__ == "__main__":
    main()
