"""Transient CO2-injection pressurization through the `simulate()` API.

Run:  python examples/transient_injection.py

Simulates slightly-compressible single-phase flow: the injector pressure
front propagates through a heterogeneous formation over backward-Euler
time steps, converging to the steady state the paper's (incompressible)
solver computes directly.  The time schedule is part of the SolveSpec
(`TimeSpec`), so the *same* study runs on the reference host, the
dataflow fabric engines, or the GPU model by switching `backend=` — and
warm-started CG (the default) reuses each step's pressure as the next
step's initial guess.

Steps stream through `on_step` as they complete; the final state is
checkpointed with `repro.io`.
"""

from __future__ import annotations

import pathlib

import numpy as np

import repro
from repro.io import save_solution
from repro.util.ascii_art import render_heatmap
from repro.util.formatting import format_table

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main() -> None:
    # The registered heterogeneous-formation scenario (20x20x4 lognormal).
    problem = repro.scenario("transient_injection").build()

    spec = repro.SolveSpec.from_kwargs(
        n_steps=12,
        dt=2.0,
        porosity=0.2,
        total_compressibility=5e-3,
        rel_tol=1e-10,
    )

    rows = [["t = 0.0", "0.0%", 0]]
    def watch(step: repro.StepResult) -> None:
        front = float((step.pressure > 0.25).mean())
        rows.append([f"t = {step.time:.1f}", f"{100 * front:.1f}%", step.iterations])

    sim = repro.simulate(problem, spec=spec, backend="reference", on_step=watch)
    print(
        format_table(
            ["Time", "Cells above p=0.25", "CG iterations (step)"],
            rows,
            title="Pressure-front propagation (backward Euler, warm-started)",
        )
    )
    print(f"\n{sim.summary()}")

    # The identical schedule on the dataflow fabric (vectorized engine):
    # same API, device-time telemetry per step.
    wse = repro.simulate(
        problem, spec=spec.with_options(engine="vectorized"), backend="wse"
    )
    gap_engines = float(
        np.abs(wse.final_pressure.astype(np.float64) - sim.final_pressure).max()
    )
    print(f"wse(vectorized) vs reference final state: max |Δp| = {gap_engines:.2e}")

    # Warm starts amortize the CG work across steps; cold starts resolve
    # each step from scratch (step 1 is identical by construction).
    cold = repro.simulate(
        problem, spec=spec.with_options(warm_start=False), backend="reference"
    )
    print(
        f"warm-start CG iterations: {sim.total_iterations} vs cold-start "
        f"{cold.total_iterations} "
        f"({cold.total_iterations / max(sim.total_iterations, 1):.2f}x more when cold)"
    )

    steady = repro.solve(problem, backend="reference").pressure
    gap = float(np.abs(sim.final_pressure - steady).max())
    print(f"distance to steady state after t={sim.times[-1]:.0f}: {gap:.3e}")

    print("\nfinal pressure field (depth-averaged):")
    print(render_heatmap(sim.final_pressure.mean(axis=2).T, width=44, height=14, fine=True))

    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "transient_final.npz"
    save_solution(
        out,
        sim.final_pressure,
        iterations=sim.total_iterations,
        converged=sim.converged,
        extra={"backend": "reference-transient", "t_final": sim.times[-1]},
    )
    print(f"\ncheckpoint written to {out}")


if __name__ == "__main__":
    main()
