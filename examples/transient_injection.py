"""Transient CO2-injection pressurization (the time-stepping extension).

Run:  python examples/transient_injection.py

Simulates slightly-compressible single-phase flow: the injector pressure
front propagates through a heterogeneous formation over backward-Euler
time steps, converging to the steady state the paper's (incompressible)
solver computes directly.  Prints the front's progress, per-step CG cost,
and checkpoints the final state with `repro.io`.
"""

from __future__ import annotations

import pathlib

import numpy as np

import repro
from repro.io import save_solution
from repro.physics.transient import simulate_transient
from repro.util.ascii_art import render_heatmap
from repro.util.formatting import format_table

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main() -> None:
    # The registered heterogeneous-formation scenario (20x20x4 lognormal).
    problem = repro.scenario("transient_injection").build()

    report = simulate_transient(
        problem,
        num_steps=12,
        dt=2.0,
        porosity=0.2,
        total_compressibility=5e-3,
        store_every=3,
    )

    store_every = 3
    rows = []
    for idx, (t, p) in enumerate(zip(report.times, report.pressures)):
        front = float((p > 0.25).mean())
        if idx == 0:
            iters = 0
        else:
            window = report.linear_results[(idx - 1) * store_every : idx * store_every]
            iters = sum(r.iterations for r in window)
        rows.append([f"t = {t:.1f}", f"{100 * front:.1f}%", iters])
    print(
        format_table(
            ["Time", "Cells above p=0.25", "CG iterations (window)"],
            rows,
            title="Pressure-front propagation (backward Euler)",
        )
    )

    steady = repro.solve(problem, backend="reference").pressure
    gap = float(np.abs(report.final_pressure - steady).max())
    print(f"\ndistance to steady state after t={report.times[-1]:.0f}: {gap:.3e}")

    print("\nfinal pressure field (depth-averaged):")
    print(render_heatmap(report.final_pressure.mean(axis=2).T, width=44, height=14, fine=True))

    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "transient_final.npz"
    save_solution(
        out,
        report.final_pressure,
        iterations=report.total_linear_iterations,
        converged=True,
        extra={"backend": "reference-transient", "t_final": report.times[-1]},
    )
    print(f"\ncheckpoint written to {out}")


if __name__ == "__main__":
    main()
