"""Quickstart: one scenario, one `repro.solve` call per machine.

Run:  python examples/quickstart.py

The same quarter-five-spot problem (injector at one corner, producer at
the other — the paper's Fig. 5 scenario) is solved with:

1. the vectorized NumPy reference backend,
2. the wafer-scale dataflow simulator (the paper's contribution),
3. the CUDA-like GPU reference model (the paper's baseline),

all through the unified backend registry, and the three canonical
`SolveResult`s are cross-checked.
"""

import numpy as np

import repro


def main() -> None:
    # A small homogeneous problem: 16x16 lateral cells, 8-deep columns.
    sc = repro.scenario(
        "quarter_five_spot",
        nx=16, ny=16, nz=8, permeability=100.0, viscosity=1.0,
        injection_pressure=1.0, production_pressure=0.0,
    )
    problem = sc.build()
    print(f"scenario: {sc.label()}")
    print(f"grid: {problem.grid}, Dirichlet cells: {problem.dirichlet.num_dirichlet}")
    print(f"backends: {', '.join(repro.available_backends())}\n")

    # 1) Reference backend (NumPy, float64).
    ref = repro.solve(problem, backend="reference")
    print(
        f"reference : {ref.telemetry['newton_iterations']} Newton step(s), "
        f"{ref.iterations} CG iterations, "
        f"pressure in [{ref.pressure.min():.4f}, {ref.pressure.max():.4f}]"
    )

    # 2) The dataflow fabric simulator: one PE per (x, y) column, the
    #    Table-I halo exchange, the whole-fabric all-reduce and the
    #    14-state CG machine.
    tight = repro.SolveSpec.from_kwargs(dtype=np.float64, rel_tol=1e-9, max_iters=3000)
    wse = repro.solve(problem, backend="wse", spec=tight)
    print(
        f"dataflow  : {wse.iterations} CG iterations on a "
        f"{problem.grid.nx}x{problem.grid.ny} PE fabric, "
        f"converged={wse.converged}, "
        f"modeled device time {wse.elapsed_seconds * 1e6:.1f} us, "
        f"{wse.telemetry['counters']['flops']:,} FLOPs executed"
    )
    print(
        f"            max |dataflow - reference| = "
        f"{np.abs(wse.pressure - ref.pressure).max():.3e}"
    )

    # 3) The GPU model: 16x8x8 thread blocks, one thread per cell.
    gpu = repro.solve(
        problem, backend="gpu",
        spec=repro.SolveSpec.from_kwargs(dtype=np.float64, rel_tol=1e-9),
    )
    print(
        f"gpu model : {gpu.iterations} CG iterations, "
        f"{gpu.telemetry['counters'].kernel_launches} kernel launches, "
        f"{gpu.telemetry['counters'].dram_bytes / 1e6:.1f} MB modeled DRAM traffic"
    )
    print(
        f"            max |gpu - reference| = "
        f"{np.abs(gpu.pressure - ref.pressure).max():.3e}"
    )

    print("\nall three backends answered through one repro.solve() signature.")


if __name__ == "__main__":
    main()
