"""Fig. 6 reproduction: roofline analysis for the CS-2 and the A100.

Run:  python examples/roofline_report.py

Prints both platforms' ceilings and kernel points, the bound
classification, and an ASCII log-log sketch of the CS-2 chart.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import fig6_charts, fig6_rows
from repro.util.formatting import format_si, format_table


def ascii_roofline(chart, *, width: int = 68, height: int = 18) -> str:
    """A rough log-log sketch: ceilings as lines, kernel points as 'X'."""
    ai_lo, ai_hi = 1e-2, 1e2
    perf_lo = min(c.bound_at(ai_lo) for c in chart.ceilings) / 10
    perf_hi = max(c.peak_flops for c in chart.ceilings) * 2
    grid = [[" "] * width for _ in range(height)]

    def to_col(ai: float) -> int:
        frac = (np.log10(ai) - np.log10(ai_lo)) / (np.log10(ai_hi) - np.log10(ai_lo))
        return int(np.clip(frac * (width - 1), 0, width - 1))

    def to_row(perf: float) -> int:
        frac = (np.log10(perf) - np.log10(perf_lo)) / (
            np.log10(perf_hi) - np.log10(perf_lo)
        )
        return int(np.clip((1 - frac) * (height - 1), 0, height - 1))

    for ceiling in chart.ceilings:
        for col in range(width):
            ai = 10 ** (
                np.log10(ai_lo) + col / (width - 1) * (np.log10(ai_hi) - np.log10(ai_lo))
            )
            grid[to_row(ceiling.bound_at(ai))][col] = "-"
    for pt in chart.points:
        grid[to_row(pt.achieved_flops)][to_col(pt.intensity_flops_per_byte)] = "X"
    lines = ["".join(row) for row in grid]
    lines.append(f"AI {ai_lo:g} ... {ai_hi:g} FLOP/B (log); X = kernel point")
    return "\n".join(lines)


def main() -> None:
    print(
        format_table(
            ["Platform", "Kernel point", "AI [FLOP/B]", "Achieved", "Fraction", "Bound"],
            fig6_rows(),
            title="Fig. 6: roofline points (paper accounting: 96 FLOPs/cell)",
        )
    )
    cs2, a100 = fig6_charts()
    print("\nCS-2 ceilings:")
    for c in cs2.ceilings:
        print(f"  {c.name:>7}: {format_si(c.bandwidth_bytes, 'B/s')}, roof {format_si(c.peak_flops, 'FLOP/s')}")
    print("A100 ceilings:")
    for c in a100.ceilings:
        print(f"  {c.name:>7}: {format_si(c.bandwidth_bytes, 'B/s')}, roof {format_si(c.peak_flops, 'FLOP/s')}")

    print("\nCS-2 roofline sketch:")
    print(ascii_roofline(cs2))
    print(
        "\nHeadline: the FV kernel achieves "
        f"{format_si(cs2.points[0].achieved_flops, 'FLOP/s')} — "
        f"{100 * cs2.points[0].fraction_of_peak:.2f}% of the CS-2 peak, "
        "compute-bound for both memory and fabric (paper: 1.217 PFLOP/s, 68%)."
    )


if __name__ == "__main__":
    main()
