"""Fig. 5 scenario: pressure propagation from an injector to a producer.

Run:  python examples/pressure_propagation.py [--size N] [--backend B]

Reproduces the paper's Fig. 5: the converged pressure field of the
quarter-five-spot pattern, with the source at the top-left and the
producer at the bottom-right.  Renders an ASCII heatmap (matplotlib-free)
and exports the raw field to ``examples/out/fig5_pressure.npy`` for
external plotting.
"""

from __future__ import annotations

import argparse
import pathlib

import numpy as np

from repro.bench.experiments import fig5_field
from repro.util.ascii_art import render_heatmap

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=32, help="lateral cells per side")
    parser.add_argument("--depth", type=int, default=4, help="Z cells per column")
    parser.add_argument(
        "--backend",
        choices=("reference", "wse", "gpu"),
        default="reference",
        help="which implementation solves the system",
    )
    args = parser.parse_args()

    field = fig5_field(args.size, args.size, args.depth, backend=args.backend)

    print(
        f"Pressure propagation ({args.backend} backend, "
        f"{args.size}x{args.size}x{args.depth} mesh)"
    )
    print("Injector (top-left, p=1) -> producer (bottom-right, p=0):\n")
    print(render_heatmap(field, width=min(2 * args.size, 76), height=min(args.size, 30), fine=True))

    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "fig5_pressure.npy"
    np.save(out, field)
    print(f"\nraw field saved to {out} (load with numpy for plotting)")
    print(
        f"pressure range: [{field.min():.4f}, {field.max():.4f}]; "
        f"isobars run diagonally between the wells, as in the paper's plot"
    )


if __name__ == "__main__":
    main()
