"""Packaging metadata for the `repro` library.

Editable install::

    pip install -e .                 # normal environments
    python setup.py develop          # offline fallback (no `wheel` package)

After installing, ``import repro`` works without the ``PYTHONPATH=src``
hack the tier-1 test command uses.
"""

import os

from setuptools import find_packages, setup

_here = os.path.abspath(os.path.dirname(__file__))
_readme = os.path.join(_here, "README.md")
long_description = ""
if os.path.exists(_readme):
    with open(_readme, encoding="utf-8") as fh:
        long_description = fh.read()

setup(
    name="repro-matrix-free-fv",
    version="1.1.0",
    description=(
        "Reproduction of 'Matrix-Free Finite Volume Kernels on a Dataflow "
        "Architecture' (SC 2024): a matrix-free TPFA FV CG solver on a "
        "simulated wafer-scale fabric, a GPU device model, and calibrated "
        "performance models"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering",
    ],
)
