"""Setup shim for legacy editable installs (offline environments without
the `wheel` package, where PEP 517 editable builds are unavailable).

Use ``pip install -e . --no-build-isolation --no-use-pep517``; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
