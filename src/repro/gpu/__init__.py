"""CUDA-like GPU reference implementation (§IV) — model + timing.

The paper's baseline is a CUDA matrix-free FV kernel on A100/H100 GPUs:
3D thread blocks of 16×8×8 (X innermost), one thread per cell, each thread
gathering its six neighbours and accumulating the flux.  We reproduce:

* the execution model (`model`): kernel launches decomposed into thread
  blocks, executed functionally (vectorized per block) with a block-level
  memory-traffic model (intra-block reuse, inter-block halo re-reads);
* the kernels (`kernels`): matrix-free Jx, dot products, axpy updates;
* the CG driver (`cg`): the same Algorithm 1 over device kernels;
* the timing model (`timing`): bytes-over-achieved-bandwidth plus a
  per-iteration host-synchronization overhead, with constants calibrated
  once against two published endpoints (documented in EXPERIMENTS.md).
"""

from repro.gpu.specs import GpuSpecs, A100, H100
from repro.gpu.model import GpuDevice, BlockShape, DEFAULT_BLOCK_SHAPE
from repro.gpu.kernels import (
    launch_matrix_free_jx,
    launch_dot,
    launch_axpy,
    launch_xpay,
)
from repro.gpu.cg import GpuCGSolver, GpuSolveReport
from repro.gpu.timing import GpuTimingModel

__all__ = [
    "GpuSpecs",
    "A100",
    "H100",
    "GpuDevice",
    "BlockShape",
    "DEFAULT_BLOCK_SHAPE",
    "launch_matrix_free_jx",
    "launch_dot",
    "launch_axpy",
    "launch_xpay",
    "GpuCGSolver",
    "GpuSolveReport",
    "GpuTimingModel",
]
