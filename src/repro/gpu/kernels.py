"""Device kernels: matrix-free Jx, dot products, vector updates.

Each launch executes block-by-block (§IV): "each GPU thread handles a cell
K ... concurrently fetches the cell data for itself and all cell data from
its six neighboring cells", computes Eq. (6) per neighbour and assembles
the fluxes.  The block body is vectorized NumPy over the block's cell
ranges — identical arithmetic, same partitioning, no per-thread Python.

Traffic accounting per block (the `GpuDevice` cache model):

* ``x``: interior cells once + off-block halo cells (re-read, no
  inter-block reuse);
* six coefficient arrays: interior cells once each;
* output: one store per cell;
* dots/axpys: pure streaming (one read per operand, one store per output).
"""

from __future__ import annotations

import numpy as np

from repro.fv.coefficients import FluxCoefficients
from repro.gpu.model import BlockIndex, F32, GpuDevice
from repro.mesh.boundary import DirichletSet
from repro.util.errors import ValidationError

#: FLOPs a GPU thread spends per neighbour in our kernel: one subtract and
#: one fused multiply-add (matching `repro.core.fv_kernel`'s per-neighbour
#: arithmetic; the paper's own accounting charges 14 — see
#: `repro.perf.opcount` for both).
FLOPS_PER_NEIGHBOR = 3

#: Number of coefficient arrays read per cell.
NUM_COEFF_ARRAYS = 6


def launch_matrix_free_jx(
    device: GpuDevice,
    coeffs_views: dict[str, np.ndarray],
    dirichlet_mask: np.ndarray | None,
    x: np.ndarray,
    out: np.ndarray,
) -> None:
    """One kernel launch computing ``out = J x`` (Eq. 6) block-by-block.

    ``coeffs_views`` holds the six zero-padded per-cell coefficient arrays
    keyed ``"W","E","S","N","D","U"`` (mesh directions), shaped like the
    grid.
    """
    shape = x.shape
    if out.shape != shape:
        raise ValidationError(f"out shape {out.shape} != x shape {shape}")
    cw, ce = coeffs_views["W"], coeffs_views["E"]
    cs, cn = coeffs_views["S"], coeffs_views["N"]
    cd, cu = coeffs_views["D"], coeffs_views["U"]
    nx, ny, nz = shape

    def block_body(block: BlockIndex) -> tuple[int, int]:
        sx, sy, sz = block.slices()
        xc = x[sx, sy, sz]
        acc = np.zeros_like(xc)

        # West / East neighbours (global-memory gathers, may cross block).
        if True:
            w = _shifted(x, block, axis=0, step=-1)
            acc += cw[sx, sy, sz] * (xc - w)
            e = _shifted(x, block, axis=0, step=+1)
            acc += ce[sx, sy, sz] * (xc - e)
            s = _shifted(x, block, axis=1, step=-1)
            acc += cs[sx, sy, sz] * (xc - s)
            n = _shifted(x, block, axis=1, step=+1)
            acc += cn[sx, sy, sz] * (xc - n)
            d = _shifted(x, block, axis=2, step=-1)
            acc += cd[sx, sy, sz] * (xc - d)
            u = _shifted(x, block, axis=2, step=+1)
            acc += cu[sx, sy, sz] * (xc - u)

        if dirichlet_mask is not None:
            mask = dirichlet_mask[sx, sy, sz]
            acc = np.where(mask, xc, acc)
        out[sx, sy, sz] = acc

        flops = block.cells * 6 * FLOPS_PER_NEIGHBOR
        traffic_cells = (
            block.cells  # x interior
            + block.halo_cells(shape)  # x halo re-reads
            + block.cells * NUM_COEFF_ARRAYS  # coefficients
            + block.cells  # store
        )
        return flops, traffic_cells * F32

    device.launch(shape, block_body)


def _shifted(x: np.ndarray, block: BlockIndex, *, axis: int, step: int) -> np.ndarray:
    """Gather the neighbour value along ``axis`` for each block cell,
    clamping at the domain boundary (the zero-padded coefficient kills the
    contribution there, so the clamped value is never used)."""
    lo = [block.x0, block.y0, block.z0]
    hi = [block.x1, block.y1, block.z1]
    lo[axis] += step
    hi[axis] += step
    n = x.shape[axis]
    src_lo = max(lo[axis], 0)
    src_hi = min(hi[axis], n)
    idx = [slice(block.x0, block.x1), slice(block.y0, block.y1), slice(block.z0, block.z1)]
    idx[axis] = slice(src_lo, src_hi)
    core = x[tuple(idx)]
    if core.shape[axis] == 0:
        # The whole shifted window lies outside the domain (a one-cell-wide
        # boundary block): the zero-padded coefficient nullifies these
        # contributions, so any fill value works.
        shape = [block.x1 - block.x0, block.y1 - block.y0, block.z1 - block.z0]
        return np.zeros(tuple(shape), dtype=x.dtype)
    pad_before = src_lo - lo[axis]
    pad_after = hi[axis] - src_hi
    if pad_before or pad_after:
        pad = [(0, 0)] * 3
        pad[axis] = (pad_before, pad_after)
        core = np.pad(core, pad, mode="edge")
    return core


def launch_dot(device: GpuDevice, a: np.ndarray, b: np.ndarray) -> float:
    """Device dot product (block-wise partial sums, as a reduction kernel
    would produce) followed by the host-side final accumulation the
    paper's CG needs for α/β."""
    if a.shape != b.shape:
        raise ValidationError("dot operands must share a shape")
    partials = []

    def block_body(block: BlockIndex) -> tuple[int, int]:
        sx, sy, sz = block.slices()
        partials.append(float(np.vdot(a[sx, sy, sz], b[sx, sy, sz]).real))
        return block.cells * 2, 2 * block.cells * F32

    device.launch(a.shape, block_body)
    return float(sum(partials))


def launch_fma(device: GpuDevice, a: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
    """``y += a ⊙ x`` (elementwise, one streaming kernel) — the transient
    accumulation term fused after the matrix-free ``Jx`` launch."""
    if a.shape != x.shape or x.shape != y.shape:
        raise ValidationError("fma operands must share a shape")

    def block_body(block: BlockIndex) -> tuple[int, int]:
        sx, sy, sz = block.slices()
        y[sx, sy, sz] += a[sx, sy, sz] * x[sx, sy, sz]
        return block.cells * 2, 4 * block.cells * F32

    device.launch(x.shape, block_body)


def launch_axpy(device: GpuDevice, alpha: float, x: np.ndarray, y: np.ndarray) -> None:
    """``y += alpha * x`` (one streaming kernel)."""
    if x.shape != y.shape:
        raise ValidationError("axpy operands must share a shape")

    def block_body(block: BlockIndex) -> tuple[int, int]:
        sx, sy, sz = block.slices()
        y[sx, sy, sz] += np.asarray(alpha, dtype=y.dtype) * x[sx, sy, sz]
        return block.cells * 2, 3 * block.cells * F32

    device.launch(x.shape, block_body)


def launch_xpay(device: GpuDevice, x: np.ndarray, beta: float, y: np.ndarray) -> None:
    """``y = x + beta * y`` (the CG direction update, one kernel)."""
    if x.shape != y.shape:
        raise ValidationError("xpay operands must share a shape")

    def block_body(block: BlockIndex) -> tuple[int, int]:
        sx, sy, sz = block.slices()
        y[sx, sy, sz] = x[sx, sy, sz] + np.asarray(beta, dtype=y.dtype) * y[sx, sy, sz]
        return block.cells * 2, 3 * block.cells * F32

    device.launch(x.shape, block_body)


def coefficient_views_for(coeffs: FluxCoefficients) -> dict[str, np.ndarray]:
    """The six zero-padded per-cell coefficient arrays the kernel reads."""
    from repro.mesh.grid import Direction

    return {
        "W": coeffs.cell_view(Direction.WEST),
        "E": coeffs.cell_view(Direction.EAST),
        "S": coeffs.cell_view(Direction.SOUTH),
        "N": coeffs.cell_view(Direction.NORTH),
        "D": coeffs.cell_view(Direction.DOWN),
        "U": coeffs.cell_view(Direction.UP),
    }


def dirichlet_mask_for(dirichlet: DirichletSet | None) -> np.ndarray | None:
    if dirichlet is None or dirichlet.is_empty:
        return None
    return dirichlet.mask
