"""GPU hardware descriptions used by the reference model.

A100 ceilings are the paper's own measured Empirical-Roofline-Toolkit
numbers (Fig. 6 bottom): 14.7 TFLOP/s fp32, L1 19,353.6 GB/s, L2
3,705.0 GB/s, HBM 1,262.9 GB/s; 40 GB device memory (§V-A).

The H100 in the paper is the GH200 superchip part (16,896 CUDA cores,
95 GB).  The paper publishes no H100 roofline; we use the public HBM3
figure (3.35 TB/s) for the ceiling and let the timing model carry a
separate *achieved*-bandwidth constant calibrated from Table II (see
`repro.gpu.timing`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class GpuSpecs:
    """Roofline-relevant GPU parameters."""

    name: str
    peak_flops_f32: float
    hbm_bandwidth: float
    l2_bandwidth: float
    l1_bandwidth: float
    device_memory_bytes: float
    num_cuda_cores: int
    max_threads_per_block: int = 1024

    def __post_init__(self) -> None:
        check_positive("peak_flops_f32", self.peak_flops_f32)
        check_positive("hbm_bandwidth", self.hbm_bandwidth)


#: The paper's measured A100 (Fig. 6 bottom, §V-A).
A100 = GpuSpecs(
    name="NVIDIA A100 (40 GB)",
    peak_flops_f32=14.7e12,
    hbm_bandwidth=1262.9e9,
    l2_bandwidth=3705.0e9,
    l1_bandwidth=19353.6e9,
    device_memory_bytes=40e9,
    num_cuda_cores=6912,
)

#: The paper's H100 (GH200 superchip part, §V-A).  L1/L2 scaled from A100
#: by the core ratio (not published in the paper; only used for context).
H100 = GpuSpecs(
    name="NVIDIA H100 (GH200, 95 GB)",
    peak_flops_f32=66.9e12,
    hbm_bandwidth=3350.0e9,
    l2_bandwidth=3705.0e9 * 2.4,
    l1_bandwidth=19353.6e9 * 2.4,
    device_memory_bytes=95e9,
    num_cuda_cores=16896,
)
