"""CUDA-like execution model: grids of thread blocks over the cell mesh.

The paper launches 3D thread blocks of 16×8×8 (1024 threads, the hardware
cap), X innermost (§IV).  The model:

* decomposes a kernel launch into blocks and executes each block
  functionally (vectorized NumPy on the block's index ranges — the same
  arithmetic a warp would do, in the same block partitioning);
* charges a block-level DRAM traffic model: within a block, each global
  array element is read once (L1/L2 capture intra-block reuse); across
  blocks there is no reuse, so stencil halo cells are re-read — the
  classic surface-to-volume amplification;
* counts FLOPs per thread identically to the reference kernel.

The model is *functionally exact* and *traffic-analytic*; wall-clock time
comes from `repro.gpu.timing`, never from Python runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, NamedTuple

import numpy as np

from repro.gpu.specs import GpuSpecs
from repro.util.errors import ConfigurationError

#: fp32 bytes.
F32 = 4


class BlockShape(NamedTuple):
    """Thread-block extents; ``x`` is the innermost (coalescing) dimension."""

    x: int
    y: int
    z: int

    @property
    def threads(self) -> int:
        return self.x * self.y * self.z


#: The paper's block shape: "GPU threadblock size of 16 x 8 x 8, where 16
#: is the innermost dimension size".
DEFAULT_BLOCK_SHAPE = BlockShape(16, 8, 8)


@dataclass
class GpuCounters:
    """Device counters accumulated across kernel launches."""

    kernel_launches: int = 0
    threads_executed: int = 0
    flops: int = 0
    dram_bytes: int = 0
    blocks_executed: int = 0

    def merged_with(self, other: "GpuCounters") -> "GpuCounters":
        return GpuCounters(
            self.kernel_launches + other.kernel_launches,
            self.threads_executed + other.threads_executed,
            self.flops + other.flops,
            self.dram_bytes + other.dram_bytes,
            self.blocks_executed + other.blocks_executed,
        )


@dataclass
class BlockIndex:
    """One thread block's cell ranges within the mesh."""

    x0: int
    x1: int
    y0: int
    y1: int
    z0: int
    z1: int

    @property
    def cells(self) -> int:
        return (self.x1 - self.x0) * (self.y1 - self.y0) * (self.z1 - self.z0)

    def slices(self) -> tuple[slice, slice, slice]:
        return (slice(self.x0, self.x1), slice(self.y0, self.y1), slice(self.z0, self.z1))

    def halo_cells(self, shape: tuple[int, int, int]) -> int:
        """Off-block stencil neighbours this block must fetch (7-point)."""
        nx, ny, nz = shape
        dx = self.x1 - self.x0
        dy = self.y1 - self.y0
        dz = self.z1 - self.z0
        total = 0
        if self.x0 > 0:
            total += dy * dz
        if self.x1 < nx:
            total += dy * dz
        if self.y0 > 0:
            total += dx * dz
        if self.y1 < ny:
            total += dx * dz
        if self.z0 > 0:
            total += dx * dy
        if self.z1 < nz:
            total += dx * dy
        return total


class GpuDevice:
    """A GPU with counters and a block scheduler.

    Parameters
    ----------
    specs:
        Hardware description (used for capacity checks and rooflines).
    block_shape:
        Thread-block extents; must not exceed 1024 threads (the CUDA and
        paper constraint).
    """

    def __init__(self, specs: GpuSpecs, block_shape: BlockShape = DEFAULT_BLOCK_SHAPE):
        if block_shape.threads > specs.max_threads_per_block:
            raise ConfigurationError(
                f"block {block_shape} has {block_shape.threads} threads; the "
                f"device caps blocks at {specs.max_threads_per_block}"
            )
        self.specs = specs
        self.block_shape = block_shape
        self.counters = GpuCounters()
        self._allocated_bytes = 0

    # -- memory ------------------------------------------------------------------

    def alloc_like(self, shape, dtype=np.float32) -> np.ndarray:
        """cudaMalloc-style allocation with device-capacity accounting."""
        # Check the modeled capacity before touching host memory, so an
        # oversized request fails like cudaMalloc would instead of OOMing
        # the host.
        nbytes = int(np.prod(np.asarray(shape, dtype=np.int64))) * np.dtype(dtype).itemsize
        if self._allocated_bytes + nbytes > self.specs.device_memory_bytes:
            raise ConfigurationError(
                f"device memory exhausted: {self._allocated_bytes + nbytes} B > "
                f"{self.specs.device_memory_bytes:.0f} B on {self.specs.name}"
            )
        self._allocated_bytes += nbytes
        return np.zeros(shape, dtype=dtype)

    def htod(self, host_array: np.ndarray, dtype=np.float32) -> np.ndarray:
        """Host-to-device copy (counted as allocation, not kernel traffic:
        the paper loads everything once up front, §IV)."""
        dev = self.alloc_like(host_array.shape, dtype=dtype)
        dev[...] = host_array
        return dev

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    # -- launch ------------------------------------------------------------------

    def iter_blocks(self, grid_shape: tuple[int, int, int]) -> Iterator[BlockIndex]:
        nx, ny, nz = grid_shape
        bs = self.block_shape
        for x0 in range(0, nx, bs.x):
            for y0 in range(0, ny, bs.y):
                for z0 in range(0, nz, bs.z):
                    yield BlockIndex(
                        x0, min(x0 + bs.x, nx),
                        y0, min(y0 + bs.y, ny),
                        z0, min(z0 + bs.z, nz),
                    )

    def launch(
        self,
        grid_shape: tuple[int, int, int],
        block_fn: Callable[[BlockIndex], tuple[int, int]],
    ) -> None:
        """Run ``block_fn`` over every block of the launch.

        ``block_fn`` returns ``(flops, dram_bytes)`` for the block; the
        device accumulates them.  One launch = one kernel, as in CUDA.
        """
        self.counters.kernel_launches += 1
        for block in self.iter_blocks(grid_shape):
            flops, dram_bytes = block_fn(block)
            self.counters.blocks_executed += 1
            self.counters.threads_executed += block.cells
            self.counters.flops += int(flops)
            self.counters.dram_bytes += int(dram_bytes)
