"""GPU timing model, calibrated on the paper's published endpoints.

Model
-----
Per CG iteration the device moves a predictable number of DRAM bytes (the
block-level traffic model of `repro.gpu.kernels`) and pays a fixed
per-iteration host overhead (kernel launches plus the host-synchronized
dot-product reductions CG needs for α and β):

    t_iter(N) = bytes_per_iter(N) / achieved_bandwidth + overhead

The paper's Table III A100 columns are affine in N to high accuracy, which
is exactly this model; we calibrate ``achieved_bandwidth`` and
``overhead`` from the smallest and largest published rows (Alg. 1 and
Alg. 2 separately), then *predict* the five middle rows (EXPERIMENTS.md
reports paper-vs-model for each).  The implied achieved bandwidth is
~620 GB/s ≈ 49 % of the A100's measured 1262.9 GB/s ceiling — a plausible
stencil+reduction duty cycle.

For the H100 only one time is published (Table II); we assume the same
code (same overhead) and back out its achieved bandwidth.

Traffic model
-------------
``jx_traffic_bytes`` counts, per launch: one read of x per cell plus
halo re-reads across block boundaries (no inter-block reuse), six
coefficient reads, one store.  CG adds two dots (2 reads each) and three
axpy-style updates (2 reads + 1 store each) per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.model import BlockShape, DEFAULT_BLOCK_SHAPE, F32
from repro.gpu.specs import A100, H100, GpuSpecs
from repro.util.errors import ConfigurationError

#: Published endpoints (Table II / Table III of the paper).
PAPER_A100_ALG1 = ((36_880_000, 226, 2.8021), (687_351_000, 225, 23.1879))
PAPER_A100_ALG2 = ((36_880_000, 226, 1.3979), (687_351_000, 225, 9.5507))
PAPER_H100_ALG1_TIME = 11.3861  # s, 225 iterations, largest mesh (Table II)

#: Streaming bytes per cell per iteration for CG's vector work: two dots
#: (p·Ap and r·r: 2 reads each) + axpy on y, axpy on r, xpay on p
#: (2 reads + 1 store each).
CG_VECTOR_BYTES_PER_CELL = (2 * 2 + 3 * 3) * F32


def jx_traffic_bytes(
    grid_shape: tuple[int, int, int],
    block_shape: BlockShape = DEFAULT_BLOCK_SHAPE,
) -> int:
    """Closed-form DRAM bytes of one matrix-free Jx launch.

    Matches the per-block accounting of
    :func:`repro.gpu.kernels.launch_matrix_free_jx` exactly (tested).
    """
    nx, ny, nz = grid_shape
    n = nx * ny * nz
    nbx = math.ceil(nx / block_shape.x)
    nby = math.ceil(ny / block_shape.y)
    nbz = math.ceil(nz / block_shape.z)
    halo = 2 * (
        (nbx - 1) * ny * nz + (nby - 1) * nx * nz + (nbz - 1) * nx * ny
    )
    # x reads (interior + halo) + 6 coefficient arrays + 1 store.
    return (n + halo + 6 * n + n) * F32


def cg_iteration_bytes(
    grid_shape: tuple[int, int, int],
    block_shape: BlockShape = DEFAULT_BLOCK_SHAPE,
) -> int:
    """DRAM bytes of one full CG iteration (Jx + dots + updates)."""
    n = grid_shape[0] * grid_shape[1] * grid_shape[2]
    return jx_traffic_bytes(grid_shape, block_shape) + n * CG_VECTOR_BYTES_PER_CELL


@dataclass(frozen=True)
class GpuTimingModel:
    """Calibrated affine-in-N timing for a GPU.

    Attributes
    ----------
    specs:
        The GPU (ceilings for rooflines and reporting).
    achieved_bandwidth:
        Sustained DRAM bandwidth on this kernel chain (calibrated).
    overhead_alg1 / overhead_alg2:
        Fixed per-iteration host cost for the full CG iteration and the
        Jx-only kernel loop respectively (launches + host-synced dots).
    """

    specs: GpuSpecs
    achieved_bandwidth: float
    overhead_alg1: float
    overhead_alg2: float
    block_shape: BlockShape = DEFAULT_BLOCK_SHAPE

    def __post_init__(self) -> None:
        if self.achieved_bandwidth <= 0:
            raise ConfigurationError("achieved_bandwidth must be > 0")
        if self.achieved_bandwidth > self.specs.hbm_bandwidth:
            raise ConfigurationError(
                "achieved bandwidth cannot exceed the HBM ceiling "
                f"({self.achieved_bandwidth:.3g} > {self.specs.hbm_bandwidth:.3g})"
            )

    # -- per-iteration and total times ------------------------------------------

    def iteration_time_alg2(self, grid_shape: tuple[int, int, int]) -> float:
        bytes_iter = jx_traffic_bytes(grid_shape, self.block_shape)
        return bytes_iter / self.achieved_bandwidth + self.overhead_alg2

    def iteration_time_alg1(self, grid_shape: tuple[int, int, int]) -> float:
        bytes_iter = cg_iteration_bytes(grid_shape, self.block_shape)
        return bytes_iter / self.achieved_bandwidth + self.overhead_alg1

    def total_time_alg2(self, grid_shape, iterations: int) -> float:
        return self.iteration_time_alg2(grid_shape) * iterations

    def total_time_alg1(self, grid_shape, iterations: int) -> float:
        return self.iteration_time_alg1(grid_shape) * iterations

    def time_from_traffic(self, dram_bytes: int, iterations: int, *, alg1: bool = True) -> float:
        """Time for measured (counter) traffic — used by the functional
        solver, which knows its exact byte count."""
        overhead = self.overhead_alg1 if alg1 else self.overhead_alg2
        return dram_bytes / self.achieved_bandwidth + overhead * iterations

    # -- calibration ---------------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        specs: GpuSpecs,
        endpoints_alg1,
        endpoints_alg2,
        *,
        nz: int = 922,
        block_shape: BlockShape = DEFAULT_BLOCK_SHAPE,
    ) -> "GpuTimingModel":
        """Fit (bandwidth, overheads) to two published (N, iters, time)
        endpoints per algorithm.

        The bandwidth comes from the Alg. 1 slope; Alg. 2 gets its own
        overhead from its small endpoint under the shared bandwidth.
        """
        (n1, it1, t1), (n2, it2, t2) = endpoints_alg1
        per1, per2 = t1 / it1, t2 / it2
        shape1 = _shape_for(n1, nz)
        shape2 = _shape_for(n2, nz)
        b1 = cg_iteration_bytes(shape1, block_shape)
        b2 = cg_iteration_bytes(shape2, block_shape)
        bandwidth = (b2 - b1) / (per2 - per1)
        overhead_alg1 = per1 - b1 / bandwidth

        (m1, jt1, s1), _ = endpoints_alg2
        jshape1 = _shape_for(m1, nz)
        overhead_alg2 = s1 / jt1 - jx_traffic_bytes(jshape1, block_shape) / bandwidth
        return cls(
            specs=specs,
            achieved_bandwidth=bandwidth,
            overhead_alg1=max(overhead_alg1, 0.0),
            overhead_alg2=max(overhead_alg2, 0.0),
            block_shape=block_shape,
        )

    @classmethod
    def calibrated_a100(cls) -> "GpuTimingModel":
        """The A100 model fit on Table III's smallest/largest rows."""
        return cls.calibrated(A100, PAPER_A100_ALG1, PAPER_A100_ALG2)

    @classmethod
    def calibrated_h100(cls) -> "GpuTimingModel":
        """The H100 model: same code (same overheads as the A100 fit),
        achieved bandwidth backed out of its single Table II time."""
        a100 = cls.calibrated_a100()
        n2, it2, _ = PAPER_A100_ALG1[1]
        shape2 = _shape_for(n2, 922)
        per_iter = PAPER_H100_ALG1_TIME / it2
        stream_time = per_iter - a100.overhead_alg1
        if stream_time <= 0:
            raise ConfigurationError("H100 calibration: overhead exceeds time")
        bandwidth = cg_iteration_bytes(shape2) / stream_time
        return cls(
            specs=H100,
            achieved_bandwidth=bandwidth,
            overhead_alg1=a100.overhead_alg1,
            overhead_alg2=a100.overhead_alg2,
        )


def _shape_for(num_cells: int, nz: int) -> tuple[int, int, int]:
    """Recover the paper's (nx, ny, nz) from a cell count at fixed nz.

    Table III grids all share nz = 922 and publish nx, ny; we only need a
    shape whose block decomposition matches, so factor the lateral size as
    the paper's nx × ny when known, else a near-square split.
    """
    lateral = num_cells // nz
    if lateral * nz != num_cells:
        raise ConfigurationError(f"{num_cells} not divisible by nz={nz}")
    known = {
        40_000: (200, 200),
        160_000: (400, 400),
        360_000: (600, 600),
        450_000: (750, 600),
        600_000: (750, 800),
        712_500: (750, 950),
        745_500: (750, 994),
    }
    if lateral in known:
        nx, ny = known[lateral]
    else:
        nx = int(math.sqrt(lateral))
        while lateral % nx:
            nx -= 1
        ny = lateral // nx
    return (nx, ny, nz)
