"""GPU conjugate-gradient driver (§IV): Algorithm 1 over device kernels.

The host drives the loop; every vector operation is a kernel launch on the
:class:`GpuDevice`; the dot products synchronize back to the host (the α/β
scalars), exactly the structure the paper describes and the structure the
timing model charges overhead for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernels import (
    coefficient_views_for,
    dirichlet_mask_for,
    launch_axpy,
    launch_dot,
    launch_fma,
    launch_matrix_free_jx,
    launch_xpay,
)
from repro.gpu.model import BlockShape, DEFAULT_BLOCK_SHAPE, GpuCounters, GpuDevice
from repro.gpu.specs import A100, GpuSpecs
from repro.gpu.timing import GpuTimingModel
from repro.physics.darcy import SinglePhaseProblem
from repro.util.errors import ConfigurationError


@dataclass
class GpuSolveReport:
    """Outcome of a GPU-model solve.

    ``modeled_seconds`` comes from the calibrated timing model applied to
    the *measured* DRAM traffic of this run — never from Python wall
    clock.
    """

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float]
    counters: GpuCounters
    modeled_seconds: float
    device_bytes: int = 0


class GpuCGSolver:
    """Matrix-free CG on the CUDA-like device model.

    Parameters
    ----------
    problem:
        The Darcy pressure problem.
    specs:
        GPU to model (default: the paper's A100).
    timing:
        Timing model; defaults to the calibrated model for ``specs`` when
        available (A100/H100), else a roofline-ideal model.
    """

    def __init__(
        self,
        problem: SinglePhaseProblem,
        *,
        specs: GpuSpecs = A100,
        timing: GpuTimingModel | None = None,
        block_shape: BlockShape = DEFAULT_BLOCK_SHAPE,
        dtype=np.float32,
        tol_rtr: float = 2e-10,
        rel_tol: float | None = None,
        max_iters: int = 10_000,
        fixed_iterations: int | None = None,
        accumulation: np.ndarray | None = None,
        rhs: np.ndarray | None = None,
        initial_pressure: np.ndarray | None = None,
    ):
        self.problem = problem
        self.specs = specs
        self.device = GpuDevice(specs, block_shape)
        if timing is None:
            if specs.name == A100.name:
                timing = GpuTimingModel.calibrated_a100()
            else:
                timing = GpuTimingModel(
                    specs=specs,
                    achieved_bandwidth=0.5 * specs.hbm_bandwidth,
                    overhead_alg1=0.0,
                    overhead_alg2=0.0,
                    block_shape=block_shape,
                )
        self.timing = timing
        self.dtype = np.dtype(dtype)
        self.tol_rtr = float(tol_rtr)
        self.rel_tol = rel_tol
        self.max_iters = int(max_iters)
        self.fixed_iterations = fixed_iterations
        if fixed_iterations is not None and fixed_iterations < 1:
            raise ConfigurationError("fixed_iterations must be >= 1")

        # Device staging (the one-time H2D load of §IV).
        grid = problem.grid
        self._coeffs = {
            key: self.device.htod(view, dtype=self.dtype)
            for key, view in coefficient_views_for(problem.coefficients).items()
        }
        mask = dirichlet_mask_for(problem.dirichlet)
        self._mask = None if mask is None else self.device.htod(mask, dtype=bool)
        if initial_pressure is None:
            y0 = problem.initial_pressure(dtype=self.dtype)
        else:
            y0 = np.array(initial_pressure, dtype=self.dtype, copy=True)
            problem.dirichlet.apply_to(y0)
        self._y = self.device.htod(y0)
        # Transient staging: the accumulation diagonal rides on-device
        # like a seventh coefficient array; the rhs carries A p^n on
        # interior rows (Dirichlet rows always hold p^D).
        if accumulation is not None and accumulation.shape != grid.shape:
            raise ConfigurationError(
                f"accumulation shape {accumulation.shape} != grid {grid.shape}"
            )
        if rhs is not None and rhs.shape != grid.shape:
            raise ConfigurationError(
                f"rhs shape {rhs.shape} != grid {grid.shape}"
            )
        self._acc = (
            None if accumulation is None
            else self.device.htod(accumulation, dtype=self.dtype)
        )
        b = (
            np.zeros(grid.shape, dtype=self.dtype)
            if rhs is None
            else np.asarray(rhs, dtype=self.dtype).copy()
        )
        b[problem.dirichlet.mask] = problem.dirichlet.values[problem.dirichlet.mask]
        self._b = self.device.htod(b)
        self._r = self.device.alloc_like(grid.shape, dtype=self.dtype)
        self._p = self.device.alloc_like(grid.shape, dtype=self.dtype)
        self._Ap = self.device.alloc_like(grid.shape, dtype=self.dtype)

    @classmethod
    def for_problem(cls, problem: SinglePhaseProblem, **kwargs) -> "GpuCGSolver":
        return cls(problem, **kwargs)

    def _jx(self, x: np.ndarray, out: np.ndarray) -> None:
        launch_matrix_free_jx(self.device, self._coeffs, self._mask, x, out)
        if self._acc is not None:
            # (J + A) x: accumulation is zero on Dirichlet rows, so the
            # identity rows the Jx kernel wrote stay intact.
            launch_fma(self.device, self._acc, x, out)

    def solve(self) -> GpuSolveReport:
        """Run CG to convergence (or ``fixed_iterations``)."""
        tol = self.tol_rtr
        # r0 = b - J y0 ; p0 = r0.
        self._jx(self._y, self._Ap)
        self._r[...] = self._b - self._Ap
        self._p[...] = self._r
        rtr = launch_dot(self.device, self._r, self._r)
        history = [rtr]
        if self.rel_tol is not None:
            tol = max(tol, self.rel_tol**2 * rtr)

        check = self.fixed_iterations is None
        limit = self.fixed_iterations if self.fixed_iterations is not None else self.max_iters
        k = 0
        converged = check and rtr < tol
        while not converged and k < limit:
            self._jx(self._p, self._Ap)
            pap = launch_dot(self.device, self._p, self._Ap)
            if pap <= 0 and check:
                raise ConfigurationError(
                    f"GPU CG breakdown: p^T A p = {pap:.3e} at iteration {k}"
                )
            alpha = rtr / pap if pap != 0 else 0.0
            launch_axpy(self.device, alpha, self._p, self._y)
            launch_axpy(self.device, -alpha, self._Ap, self._r)
            rtr_new = launch_dot(self.device, self._r, self._r)
            history.append(rtr_new)
            k += 1
            if check and rtr_new < tol:
                converged = True
                break
            beta = rtr_new / rtr if rtr > 0 else 0.0
            launch_xpay(self.device, self._r, beta, self._p)
            rtr = rtr_new

        modeled = self.timing.time_from_traffic(
            self.device.counters.dram_bytes, max(k, 1), alg1=True
        )
        return GpuSolveReport(
            pressure=self._y.copy(),
            iterations=k,
            converged=converged,
            residual_history=history,
            counters=self.device.counters,
            modeled_seconds=modeled,
            device_bytes=self.device.allocated_bytes,
        )
