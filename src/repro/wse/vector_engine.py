"""The vectorized whole-fabric engine: paper-scale execution.

The per-PE program is identical across the fabric (the premise of the
paper's SPMD kernel), so instead of instantiating one Python
:class:`~repro.wse.pe.ProcessingElement` per PE and one event per
wavelet, this engine executes each phase of the
:class:`~repro.core.program.CgProgram` over the *whole fabric at once*
as ``(nx, ny, nz)`` NumPy array sweeps — the matrix-free observation
(operator evaluation is structured array sweeps, Kronbichler & Kormann)
applied to the machine simulation itself:

* **halo exchange** becomes four zero-padded slice shifts — the data
  every PE's ``halo_W/E/N/S`` buffer would hold after a 4-step round;
* **FV apply** mirrors ``FvColumnKernel`` instruction by instruction
  (same operand order, so fp results are bit-identical per element);
* **axpy/dot** are whole-array updates; dot products accumulate in
  float64 (within round-off of the fabric's sequential per-PE chain);
* **all-reduce** is exact in exact arithmetic — a single global sum.

Fidelity is preserved through an *analytic* cycle/counter model charged
from the same :mod:`repro.wse.isa` cost tables the event engine uses:
instruction counts, FLOPs, memory and fabric traffic reproduce the
event-driven oracle exactly (tested in ``tests/test_engine_parity.py``);
the makespan is a per-phase critical-path estimate rather than an
event-accurate schedule.  Per-PE memory is enforced by rehearsing the
exact staging allocation sequence against a real
:class:`~repro.wse.memory.MemoryArena`, so oversized columns raise
:class:`~repro.util.errors.PeOutOfMemory` exactly like the oracle.

What the model gives up: link-level contention, task skew between
neighbouring PEs, and per-wavelet ordering.  What it buys: fabrics the
event engine cannot reach — the full 750×994 wafer runs in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.core.exchange import HALO_BUFFER
from repro.core.fv_kernel import (
    COEFF_BUFFER,
    COEFF_DOWN,
    COEFF_UP,
    DirichletKind,
    FvColumnKernel,
    HALO_ORDER,
    KernelVariant,
    MOBILITY_BUFFER,
    MOBILITY_OWN,
    PeKernelConfig,
    UPSILON_BUFFER,
    UPSILON_DOWN,
    UPSILON_UP,
)
from repro.core.host import CG_COLUMN_BUFFERS
from repro.core.mapping import DIRECTION_FOR_PORT, ProblemMapping
from repro.core.program import CgProgram, EngineReport
from repro.fv.transmissibility import compute_transmissibility
from repro.mesh.grid import Direction
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.isa import Op, vector_cycles
from repro.wse.memory import MemoryArena
from repro.wse.router import Port
from repro.wse.specs import WseSpecs
from repro.wse.trace import FabricTrace, PerfCounters


def _shifted(field: np.ndarray, port: Port) -> np.ndarray:
    """The neighbour column every PE would receive on ``port``.

    ``out[x, y, :] = field[x + dx, y + dy, :]`` with zeros where the
    neighbour is off-fabric — exactly the halo buffer contents after an
    exchange round (edge halos stay zero; the boundary coefficient is
    zero anyway)."""
    dx, dy = port.offset
    out = np.zeros_like(field)
    src = [slice(None)] * 3
    dst = [slice(None)] * 3
    for axis, d in ((0, dx), (1, dy)):
        if d == -1:
            dst[axis], src[axis] = slice(1, None), slice(None, -1)
        elif d == 1:
            dst[axis], src[axis] = slice(None, -1), slice(1, None)
    out[tuple(dst)] = field[tuple(src)]
    return out


class VectorEngine:
    """Whole-fabric array execution of the dataflow CG program.

    Same constructor vocabulary as the event engine: the problem, the
    program, and the machine staging knobs (spec, dtype, SIMD width,
    initial guess).  Construction stages the field arrays and rehearses
    the per-PE memory budget; :meth:`run` executes the CG.
    """

    name = "vectorized"

    def __init__(
        self,
        problem: SinglePhaseProblem,
        program: CgProgram,
        *,
        spec: WseSpecs,
        dtype=np.float32,
        simd_width: int | None = None,
        initial_pressure: np.ndarray | None = None,
    ):
        self.problem = problem
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problem.grid, spec)
        self.dtype = np.dtype(dtype)
        self.simd_width = int(
            simd_width if simd_width is not None else spec.simd_width_f32
        )
        grid = problem.grid
        self.width, self.height, self.depth = grid.nx, grid.ny, grid.nz
        self.num_pes = self.width * self.height
        self._suppress = program.comm_only

        # -- field staging (the whole-fabric analogue of stage_problem) -----
        if initial_pressure is None:
            p0 = problem.initial_pressure(dtype=self.dtype)
        else:
            p0 = np.array(initial_pressure, dtype=self.dtype, copy=True)
            problem.dirichlet.apply_to(p0)
        self.y = p0
        self.b = np.zeros(grid.shape, dtype=self.dtype)
        self.b[problem.dirichlet.mask] = problem.dirichlet.values[
            problem.dirichlet.mask
        ]
        self.r = np.zeros(grid.shape, dtype=self.dtype)
        self.p = np.zeros(grid.shape, dtype=self.dtype)

        if program.variant is KernelVariant.PRECOMPUTED:
            self._coeff = {
                port: problem.coefficients.cell_view(
                    DIRECTION_FOR_PORT[port]
                ).astype(self.dtype)
                for port in COEFF_BUFFER
            }
            self._coeff_down = problem.coefficients.cell_view(Direction.DOWN).astype(
                self.dtype
            )
            self._coeff_up = problem.coefficients.cell_view(Direction.UP).astype(
                self.dtype
            )
        else:
            trans = compute_transmissibility(
                grid, problem.permeability, dtype=np.float64
            )
            self._ups = {
                port: trans.cell_view(DIRECTION_FOR_PORT[port], dtype=self.dtype)
                for port in UPSILON_BUFFER
            }
            self._ups_down = trans.cell_view(Direction.DOWN, dtype=self.dtype)
            self._ups_up = trans.cell_view(Direction.UP, dtype=self.dtype)
            self._lam = np.full(grid.shape, 1.0 / problem.viscosity, dtype=self.dtype)
            self._lam_nbr = {
                port: _shifted(self._lam, port) for port in MOBILITY_BUFFER
            }

        if program.jacobi:
            diag = problem.coefficients.diagonal.astype(np.float64).copy()
            diag[problem.dirichlet.mask] = 1.0
            self._inv_diag = (1.0 / diag).astype(self.dtype)
            self.z = np.zeros(grid.shape, dtype=self.dtype)

        # Column classification against the Dirichlet set (per-PE kernel
        # configs collapse to a histogram over DirichletKind).
        mask = problem.dirichlet.mask
        col_any = mask.any(axis=2)
        col_all = mask.all(axis=2)
        self._full_cols = col_all
        self._partial_cols = col_any & ~col_all
        self._blend_mask = np.where(
            self._partial_cols[:, :, None], mask, False
        ).astype(self.dtype)
        self._kind_counts = {
            DirichletKind.FULL: int(np.count_nonzero(col_all)),
            DirichletKind.PARTIAL: int(np.count_nonzero(self._partial_cols)),
        }
        self._kind_counts[DirichletKind.NONE] = (
            self.num_pes
            - self._kind_counts[DirichletKind.FULL]
            - self._kind_counts[DirichletKind.PARTIAL]
        )
        self._kernel_plans = {
            kind: FvColumnKernel.instruction_plan(
                PeKernelConfig(
                    depth=self.depth,
                    dirichlet=kind,
                    variant=program.variant,
                    reuse_buffers=program.reuse_buffers,
                )
            )
            for kind, count in self._kind_counts.items()
            if count > 0
        }

        self._memory = self._rehearse_memory()

        # -- analytic model state -------------------------------------------
        self.counters = PerfCounters()
        self.trace = FabricTrace()
        self._makespan = 0
        self._pe_compute = 0  # critical-path compute of the busiest PE class
        self._state_visits: list[CGState] = []
        self._history: list[float] = []

    # -- memory model ------------------------------------------------------------

    def _rehearse_memory(self) -> dict[str, float]:
        """Replay the event engine's per-PE allocation sequence.

        One rehearsal per column class (with/without ``bc_mask``) against
        a real :class:`MemoryArena` reproduces both the capacity
        enforcement (:class:`PeOutOfMemory` at construction, like an
        oversized CSL program) and the high-water statistics exactly.
        """
        from repro.perf.memmodel import SCALAR_RESERVE_BYTES

        program, nz = self.program, self.depth

        def rehearse(with_mask: bool) -> int:
            arena = MemoryArena(
                self.spec.pe_memory_bytes, reserved_bytes=SCALAR_RESERVE_BYTES
            )
            for name in HALO_BUFFER.values():  # HaloExchange allocates first
                arena.alloc(name, nz, dtype=self.dtype)
            for name in CG_COLUMN_BUFFERS:
                arena.alloc(name, nz, dtype=self.dtype)
            if not program.reuse_buffers:
                arena.alloc("scratch", nz, dtype=self.dtype)
            if program.jacobi:
                arena.alloc("z", nz, dtype=self.dtype)
                arena.alloc("inv_diag", nz, dtype=self.dtype)
            if program.variant is KernelVariant.PRECOMPUTED:
                for name in COEFF_BUFFER.values():
                    arena.alloc(name, nz, dtype=self.dtype)
                arena.alloc(COEFF_DOWN, nz, dtype=self.dtype)
                arena.alloc(COEFF_UP, nz, dtype=self.dtype)
            else:
                for name in UPSILON_BUFFER.values():
                    arena.alloc(name, nz, dtype=self.dtype)
                arena.alloc(UPSILON_DOWN, nz, dtype=self.dtype)
                arena.alloc(UPSILON_UP, nz, dtype=self.dtype)
                arena.alloc(MOBILITY_OWN, nz, dtype=self.dtype)
                arena.alloc("lam_scratch", nz, dtype=self.dtype)
                for name in MOBILITY_BUFFER.values():
                    arena.alloc(name, nz, dtype=self.dtype)
            if with_mask:
                arena.alloc("bc_mask", nz, dtype=self.dtype)
            return arena.used_bytes

        base_bytes = rehearse(False)
        n_partial = self._kind_counts[DirichletKind.PARTIAL]
        mask_bytes = rehearse(True) if n_partial else base_bytes
        high = max(base_bytes, mask_bytes) if n_partial else base_bytes
        mean = (
            n_partial * mask_bytes + (self.num_pes - n_partial) * base_bytes
        ) / self.num_pes
        return {
            "max_high_water": float(high),
            "mean_high_water": float(mean),
            "max_used": float(high),
            "capacity": float(self.spec.pe_memory_bytes),
        }

    # -- analytic charging helpers ------------------------------------------------

    def _counted(self, op: Op) -> bool:
        return not self._suppress or op in (Op.FMOV, Op.MOV32)

    def _charge(self, op: Op, elements_per_instr: int, instances: int) -> None:
        """Charge ``instances`` identical vector instructions fabric-wide."""
        if not self._counted(op) or instances <= 0 or elements_per_instr <= 0:
            return
        cycles = vector_cycles(elements_per_instr, self.simd_width)
        self.counters.record_op(
            op, elements_per_instr * instances, cycles * instances
        )

    def _vec(self, op: Op, elements: int | None = None) -> None:
        """One vector instruction on every PE (critical path: one issue)."""
        n = self.depth if elements is None else elements
        self._charge(op, n, self.num_pes)
        if self._counted(op):
            cycles = vector_cycles(n, self.simd_width)
            self._makespan += cycles
            self._pe_compute += cycles

    def _scalar(self, cycles: int) -> None:
        """Scalar/sequencer work on every PE (never suppressed)."""
        self.counters.compute_cycles += cycles * self.num_pes
        self._makespan += cycles
        self._pe_compute += cycles

    def _visit(self, state: CGState) -> None:
        """Fabric-wide state transition (2 sequencer cycles per PE)."""
        self._state_visits.append(state)
        self._scalar(2)

    def _charge_kernel(self) -> None:
        """One FV apply on every column, charged per Dirichlet class."""
        critical = 0
        for kind, plan in self._kernel_plans.items():
            count = self._kind_counts[kind]
            cycles = 0
            for op, n in plan:
                self._charge(op, n, count)
                if self._counted(op):
                    cycles += vector_cycles(n, self.simd_width)
            critical = max(critical, cycles)
        self._makespan += critical
        self._pe_compute += critical

    def _charge_exchange(self) -> None:
        """One 4-step halo-exchange round, fabric-wide.

        Every live directed link carries one data message (``nz``
        wavelets, one hop) plus one switch-advancing control wavelet;
        every live receive moves ``nz`` elements with FMOV."""
        W, H, nz = self.width, self.height, self.depth
        links = 2 * ((W - 1) * H + (H - 1) * W)
        if links:
            self._charge(Op.FMOV, nz, links)
            self._charge(Op.MOV32, 1, links)
            self.counters.record_fabric_send(links * (nz + 1) * 4)
            self.trace.total_messages += 2 * links
            self.trace.total_wavelets += links * (nz + 1)
            self.trace.total_hop_wavelets += links * (nz + 1)
            self.trace.comm_busy_cycles += links * (nz + 1)
        # Critical path: 4 serialized steps of send (link serialization +
        # hop) then receive-fill, plus control/callback slack.
        hop = self.spec.hop_latency_cycles
        fill = vector_cycles(nz, self.simd_width)
        self._makespan += 4 * (nz + hop + fill + 2)
        self._pe_compute += 4 * fill

    def _allreduce(self, local_total: float) -> float:
        """Charge one all-reduce round; return the global total.

        The value itself is exact (the chain sum is associative in exact
        arithmetic); the charge mirrors the three-step chain/broadcast
        protocol of §III-C."""
        W, H = self.width, self.height
        row_sends = (W - 1) * H
        col_sends = H - 1
        bcast_col = 1 if H > 1 else 0
        bcast_row = H if W > 1 else 0
        sends = row_sends + col_sends + bcast_col + bcast_row
        combines = (W - 1) * H + (H - 1)
        self._charge(Op.FADD, 1, combines)
        self.counters.record_fabric_send(4 * sends)
        receives = (
            row_sends
            + col_sends
            + (H - 1 if H > 1 else 0)
            + ((W - 1) * H if W > 1 else 0)
        )
        self.counters.record_fabric_receive(4 * receives)
        self.trace.total_messages += sends
        self.trace.total_wavelets += sends
        hops = (
            row_sends
            + col_sends
            + (H - 1 if H > 1 else 0)
            + (H * (W - 1) if W > 1 else 0)
        )
        self.trace.total_hop_wavelets += hops
        self.trace.comm_busy_cycles += hops
        # Critical path: the sequential row chain, the column chain, and
        # the two broadcast legs (one wavelet + hop + combine per link).
        hop = self.spec.hop_latency_cycles
        self._makespan += (
            (W - 1) * (hop + 2) + (H - 1) * (hop + 2)
            + (H - 1) * (hop + 1) + (W - 1) * (hop + 1) + 2
        )
        if W > 1 or H > 1:
            self._pe_compute += 1
        return 0.0 if self._suppress else float(local_total)

    # -- numerics ----------------------------------------------------------------

    def _dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Global dot product, float64 accumulation."""
        if self._suppress:
            return 0.0
        return float(
            np.dot(
                a.reshape(-1).astype(np.float64), b.reshape(-1).astype(np.float64)
            )
        )

    def _apply(self, x: np.ndarray) -> np.ndarray:
        """The matrix-free FV operator over the whole fabric.

        Mirrors :class:`FvColumnKernel` instruction for instruction (same
        operand order), so per-element fp results match the event engine
        bit for bit."""
        if self._suppress:
            return np.zeros_like(x)
        if self.program.variant is KernelVariant.PRECOMPUTED:
            out = self._lateral_precomputed(x)
        else:
            out = self._lateral_fused(x)
        self._vertical(x, out)
        self._dirichlet(x, out)
        return out

    def _lateral_precomputed(self, x: np.ndarray) -> np.ndarray:
        out = None
        for port in HALO_ORDER:
            diff = x - _shifted(x, port)
            if out is None:
                out = self._coeff[port] * diff
            else:
                out += self._coeff[port] * diff
        return out

    def _lateral_fused(self, x: np.ndarray) -> np.ndarray:
        out = None
        for port in HALO_ORDER:
            c = self._lam + self._lam_nbr[port]
            np.multiply(c, 0.5, out=c, casting="unsafe")
            np.multiply(c, self._ups[port], out=c, casting="unsafe")
            diff = x - _shifted(x, port)
            np.multiply(diff, c, out=diff, casting="unsafe")
            if out is None:
                out = diff.copy()
            else:
                out += diff
        return out

    def _vertical(self, x: np.ndarray, out: np.ndarray) -> None:
        nz = self.depth
        if nz < 2:
            return
        lo, hi = (slice(None), slice(None), slice(0, nz - 1)), (
            slice(None),
            slice(None),
            slice(1, nz),
        )
        diff_up = x[lo] - x[hi]
        diff_down = x[hi] - x[lo]
        if self.program.variant is KernelVariant.PRECOMPUTED:
            out[lo] += self._coeff_up[lo] * diff_up
            out[hi] += self._coeff_down[hi] * diff_down
        else:
            lam = self._lam
            for rng, other, ups, diff in (
                (lo, hi, self._ups_up, diff_up),
                (hi, lo, self._ups_down, diff_down),
            ):
                lam2 = lam[rng] + lam[other]
                np.multiply(lam2, 0.5, out=lam2, casting="unsafe")
                np.multiply(lam2, ups[rng], out=lam2, casting="unsafe")
                out[rng] += lam2 * diff

    def _dirichlet(self, x: np.ndarray, out: np.ndarray) -> None:
        if self._kind_counts[DirichletKind.FULL]:
            out[self._full_cols] = x[self._full_cols]
        if self._kind_counts[DirichletKind.PARTIAL]:
            out += self._blend_mask * (x - out)

    # -- the solve ---------------------------------------------------------------

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        """Execute the CG program; phase order and control flow replicate
        the event engine's state machine exactly."""
        program = self.program
        y, b, r, p = self.y, self.b, self.r, self.p
        jacobi, suppress = program.jacobi, self._suppress

        # INIT: r0 = b - A y0 ; p0 = r0 (or z0) ; rtr = <r0, r0|z0>
        self._visit(CGState.INIT)
        self._visit(CGState.EXCHANGE)
        self._charge_exchange()
        self._visit(CGState.COMPUTE_JX)
        self._charge_kernel()
        jx = self._apply(y)
        self._vec(Op.FSUB)  # r = b - Jx
        if not suppress:
            np.subtract(b, jx, out=r, casting="unsafe")
        if jacobi:
            self._vec(Op.FMUL)  # z = r / diag
            self._vec(Op.FMOV)  # p = z
            if not suppress:
                np.multiply(r, self._inv_diag, out=self.z, casting="unsafe")
                p[...] = self.z
            local = self._dot(r, self.z) if not suppress else 0.0
        else:
            self._vec(Op.FMOV)  # p = r
            if not suppress:
                p[...] = r
            local = self._dot(r, r)
        self._vec(Op.FMA)  # local dot
        self._visit(CGState.DOT_RR)
        rtr = self._allreduce(local)
        self._history.append(rtr)

        k = 0
        terminal: CGState | None = None
        while terminal is None:
            self._visit(CGState.ITER_CHECK)
            if program.check_convergence and rtr < program.tol_rtr:
                terminal = CGState.CONVERGED
                break
            if k >= program.iteration_limit:
                terminal = (
                    CGState.CONVERGED
                    if (program.check_convergence and rtr < program.tol_rtr)
                    else CGState.MAXITER
                )
                break

            self._visit(CGState.EXCHANGE)
            self._charge_exchange()
            self._visit(CGState.COMPUTE_JX)
            self._charge_kernel()
            jx = self._apply(p)
            self._vec(Op.FMA)  # local p^T Jp
            self._visit(CGState.DOT_PAP)
            pap = self._allreduce(self._dot(p, jx))

            self._visit(CGState.COMPUTE_ALPHA)
            if pap == 0.0:
                if not suppress and program.check_convergence:
                    raise ConfigurationError(
                        "vectorized engine: p^T A p = 0 with live arithmetic"
                    )
                alpha = 0.0
            else:
                alpha = rtr / pap
            self._scalar(4)  # scalar divide on the CE

            self._visit(CGState.UPDATE_SOL)
            self._vec(Op.FMA)  # y += alpha p
            self._visit(CGState.UPDATE_RES)
            self._vec(Op.FMA)  # r -= alpha Jp
            if not suppress:
                y += alpha * p
                r += (-alpha) * jx
            if jacobi:
                self._vec(Op.FMUL)
                if not suppress:
                    np.multiply(r, self._inv_diag, out=self.z, casting="unsafe")
                local = self._dot(r, self.z)
            else:
                local = self._dot(r, r)
            self._vec(Op.FMA)
            self._visit(CGState.DOT_RR)
            rtr_new = self._allreduce(local)

            k += 1
            self._visit(CGState.THRES_CHECK)
            self._history.append(rtr_new)
            if program.check_convergence and rtr_new < program.tol_rtr:
                terminal = CGState.CONVERGED
                break
            self._visit(CGState.COMPUTE_BETA)
            beta = (rtr_new / rtr) if rtr > 0 else 0.0
            self._scalar(4)
            self._visit(CGState.UPDATE_DIR)
            self._vec(Op.FMUL)  # p *= beta
            self._vec(Op.FADD)  # p += r (or z)
            if not suppress:
                np.multiply(p, beta, out=p, casting="unsafe")
                p += self.z if jacobi else r
            rtr = rtr_new

        self._visit(terminal)
        converged = terminal is CGState.CONVERGED

        self.trace.makespan_cycles = self._makespan
        self.trace.max_compute_cycles = self._pe_compute
        self.counters.idle_cycles = max(
            0, self._makespan * self.num_pes - self.counters.compute_cycles
        )
        return EngineReport(
            pressure=y.copy(),
            iterations=k,
            converged=converged,
            residual_history=list(self._history),
            trace=self.trace,
            counters=self.counters,
            elapsed_seconds=self._makespan / self.spec.clock_hz,
            memory=dict(self._memory),
            state_visits=list(self._state_visits),
            engine=self.name,
        )


__all__ = ["VectorEngine"]
