"""The vectorized whole-fabric engine: paper-scale execution.

The per-PE program is identical across the fabric (the premise of the
paper's SPMD kernel), so instead of instantiating one Python
:class:`~repro.wse.pe.ProcessingElement` per PE and one event per
wavelet, this engine executes each phase of the
:class:`~repro.core.program.CgProgram` over the *whole fabric at once*
as ``(nx, ny, nz)`` NumPy array sweeps — the matrix-free observation
(operator evaluation is structured array sweeps, Kronbichler & Kormann)
applied to the machine simulation itself:

* **halo exchange** becomes four zero-padded slice shifts — the data
  every PE's ``halo_W/E/N/S`` buffer would hold after a 4-step round;
* **FV apply** mirrors ``FvColumnKernel`` instruction by instruction
  (same operand order, so fp results are bit-identical per element);
* **axpy/dot** are whole-array updates; dot products accumulate in
  float64 (within round-off of the fabric's sequential per-PE chain);
* **all-reduce** is exact in exact arithmetic — a single global sum.

Fidelity is preserved through an *analytic* cycle/counter model
(:class:`_ChargeModel`) charged from the same :mod:`repro.wse.isa` cost
tables the event engine uses: instruction counts, FLOPs, memory and
fabric traffic reproduce the event-driven oracle exactly (tested in
``tests/test_engine_parity.py`` and fuzzed in
``tests/test_engine_fuzz.py``); the makespan is a per-phase
critical-path estimate rather than an event-accurate schedule.  Per-PE
memory is enforced by rehearsing the exact staging allocation sequence
against a real :class:`~repro.wse.memory.MemoryArena`, so oversized
columns raise :class:`~repro.util.errors.PeOutOfMemory` exactly like
the oracle.

Two engines share the machinery:

* :class:`VectorEngine` — one problem, ``(nx, ny, nz)`` sweeps;
* :class:`BatchedVectorEngine` — many independent problems on one grid
  shape, ``(batch, nx, ny, nz)`` sweeps with per-problem convergence
  masking: converged lanes freeze (no further updates, no further
  charges) while the rest keep iterating, and every lane gets its own
  :class:`~repro.core.program.EngineReport` whose counters equal what a
  serial vectorized solve of that problem alone would have produced.

What the model gives up: link-level contention, task skew between
neighbouring PEs, and per-wavelet ordering.  What it buys: fabrics the
event engine cannot reach — the full 750×994 wafer runs in seconds —
and, batched, whole scenario families per NumPy pipeline.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core.exchange import HALO_BUFFER
from repro.core.fv_kernel import (
    ACCUMULATION_BUFFER,
    COEFF_BUFFER,
    COEFF_DOWN,
    COEFF_UP,
    DirichletKind,
    FvColumnKernel,
    HALO_ORDER,
    KernelVariant,
    MOBILITY_BUFFER,
    MOBILITY_OWN,
    PeKernelConfig,
    UPSILON_BUFFER,
    UPSILON_DOWN,
    UPSILON_UP,
)
from repro.core.host import CG_COLUMN_BUFFERS
from repro.core.mapping import DIRECTION_FOR_PORT, ProblemMapping
from repro.core.program import CgProgram, EngineReport
from repro.fv.transmissibility import compute_transmissibility
from repro.mesh.grid import Direction
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.isa import Op, vector_cycles
from repro.wse.memory import MemoryArena
from repro.wse.router import Port
from repro.wse.specs import WseSpecs
from repro.wse.trace import FabricTrace, PerfCounters


def _shifted(field: np.ndarray, port: Port) -> np.ndarray:
    """The neighbour column every PE would receive on ``port``.

    ``out[..., x, y, :] = field[..., x + dx, y + dy, :]`` with zeros
    where the neighbour is off-fabric — exactly the halo buffer contents
    after an exchange round (edge halos stay zero; the boundary
    coefficient is zero anyway).  The lateral axes are the trailing
    ``(nx, ny, nz)`` triple, so the same shift serves single-problem
    fields and ``(batch, nx, ny, nz)`` stacks."""
    dx, dy = port.offset
    out = np.zeros_like(field)
    src = [slice(None)] * field.ndim
    dst = [slice(None)] * field.ndim
    for axis, d in ((-3, dx), (-2, dy)):
        if d == -1:
            dst[axis], src[axis] = slice(1, None), slice(None, -1)
        elif d == 1:
            dst[axis], src[axis] = slice(None, -1), slice(1, None)
    out[tuple(dst)] = field[tuple(src)]
    return out


def normalize_guesses(initial_pressure, count: int, shape: tuple) -> list:
    """One initial guess per problem: ``None`` (problem defaults), a
    single shared field, or a per-problem stack/sequence (the multi-RHS
    transient case).  The single owner of this validation — the solver's
    ``solve_batch`` and the batched engine both route through it."""
    if initial_pressure is None:
        return [None] * count
    if isinstance(initial_pressure, np.ndarray):
        if initial_pressure.shape == shape:
            return [initial_pressure] * count
        if initial_pressure.shape == (count,) + shape:
            return list(initial_pressure)
        raise ConfigurationError(
            f"initial_pressure shape {initial_pressure.shape} matches "
            f"neither the grid {shape} nor the batch {(count,) + shape}"
        )
    guesses = list(initial_pressure)
    if len(guesses) != count:
        raise ConfigurationError(
            f"initial_pressure has {len(guesses)} entries for {count} "
            f"problems"
        )
    return guesses


# -- problem staging ----------------------------------------------------------


class _Staging:
    """Staged field arrays + per-PE column classification.

    Built per problem by :func:`_stage_problem` (trailing ``(nx, ny,
    nz)`` axes); :func:`_stack_stagings` stacks several single-problem
    stagings into one ``(batch, nx, ny, nz)`` staging for the batched
    engine.  The numerics kernels (:func:`_apply_fields` and friends)
    only touch attributes, so both layouts execute the same code."""

    __slots__ = (
        "y", "b", "r", "p", "z", "inv_diag", "acc",
        "coeff", "coeff_down", "coeff_up",
        "ups", "ups_down", "ups_up", "lam", "lam_nbr",
        "full_cols", "blend_mask", "has_full", "has_partial",
        "kind_counts", "kernel_plans", "mg_hier",
    )


def _classify_columns(problem: SinglePhaseProblem) -> tuple:
    """Column histogram over DirichletKind + the full/blend masks."""
    mask = problem.dirichlet.mask
    col_any = mask.any(axis=2)
    col_all = mask.all(axis=2)
    partial_cols = col_any & ~col_all
    num_pes = mask.shape[0] * mask.shape[1]
    kind_counts = {
        DirichletKind.FULL: int(np.count_nonzero(col_all)),
        DirichletKind.PARTIAL: int(np.count_nonzero(partial_cols)),
    }
    kind_counts[DirichletKind.NONE] = (
        num_pes - kind_counts[DirichletKind.FULL] - kind_counts[DirichletKind.PARTIAL]
    )
    return col_all, partial_cols, kind_counts


def _stage_problem(
    problem: SinglePhaseProblem,
    program: CgProgram,
    dtype: np.dtype,
    initial_pressure: np.ndarray | None = None,
    accumulation: np.ndarray | None = None,
    rhs: np.ndarray | None = None,
) -> _Staging:
    """Stage one problem's field arrays (the whole-fabric analogue of
    ``stage_problem`` on the event fabric).

    ``accumulation`` is the transient diagonal ``a = φ c_t V / Δt``
    (required iff ``program.accumulation``); ``rhs`` overrides the
    interior right-hand side (Dirichlet rows always carry ``p^D``)."""
    st = _Staging()
    grid = problem.grid
    if program.accumulation != (accumulation is not None):
        raise ConfigurationError(
            "program.accumulation and the staged accumulation array must "
            "be supplied together"
        )
    if accumulation is not None and accumulation.shape != grid.shape:
        raise ConfigurationError(
            f"accumulation shape {accumulation.shape} != grid {grid.shape}"
        )
    if rhs is not None and rhs.shape != grid.shape:
        raise ConfigurationError(f"rhs shape {rhs.shape} != grid {grid.shape}")
    if initial_pressure is None:
        p0 = problem.initial_pressure(dtype=dtype)
    else:
        p0 = np.array(initial_pressure, dtype=dtype, copy=True)
        problem.dirichlet.apply_to(p0)
    st.y = p0
    st.b = (
        np.zeros(grid.shape, dtype=dtype)
        if rhs is None
        else np.asarray(rhs, dtype=dtype).copy()
    )
    st.b[problem.dirichlet.mask] = problem.dirichlet.values[problem.dirichlet.mask]
    st.r = np.zeros(grid.shape, dtype=dtype)
    st.p = np.zeros(grid.shape, dtype=dtype)
    st.z = None
    st.inv_diag = None
    st.acc = None if accumulation is None else accumulation.astype(dtype)
    st.coeff = st.coeff_down = st.coeff_up = None
    st.ups = st.ups_down = st.ups_up = st.lam = st.lam_nbr = None

    if program.variant is KernelVariant.PRECOMPUTED:
        st.coeff = {
            port: problem.coefficients.cell_view(DIRECTION_FOR_PORT[port]).astype(dtype)
            for port in COEFF_BUFFER
        }
        st.coeff_down = problem.coefficients.cell_view(Direction.DOWN).astype(dtype)
        st.coeff_up = problem.coefficients.cell_view(Direction.UP).astype(dtype)
    else:
        trans = compute_transmissibility(grid, problem.permeability, dtype=np.float64)
        st.ups = {
            port: trans.cell_view(DIRECTION_FOR_PORT[port], dtype=dtype)
            for port in UPSILON_BUFFER
        }
        st.ups_down = trans.cell_view(Direction.DOWN, dtype=dtype)
        st.ups_up = trans.cell_view(Direction.UP, dtype=dtype)
        st.lam = np.full(grid.shape, 1.0 / problem.viscosity, dtype=dtype)
        st.lam_nbr = {port: _shifted(st.lam, port) for port in MOBILITY_BUFFER}

    st.mg_hier = None
    if program.jacobi:
        diag = problem.coefficients.diagonal.astype(np.float64).copy()
        if accumulation is not None:
            diag += accumulation.astype(np.float64)
        diag[problem.dirichlet.mask] = 1.0
        st.inv_diag = (1.0 / diag).astype(dtype)
        st.z = np.zeros(grid.shape, dtype=dtype)
    elif program.mg:
        # The V-cycle hierarchy is a host-side float64 construct (like
        # resolved tolerances); only the z column lives on the fabric.
        from repro.mg import build_hierarchy

        st.z = np.zeros(grid.shape, dtype=dtype)
        st.mg_hier = build_hierarchy(
            problem.coefficients,
            problem.dirichlet.mask,
            accumulation=accumulation,
            levels=program.mg_levels,
            smoother_iters=program.mg_smoother_iters,
        )

    col_all, partial_cols, kind_counts = _classify_columns(problem)
    st.full_cols = col_all
    st.blend_mask = np.where(
        partial_cols[:, :, None], problem.dirichlet.mask, False
    ).astype(dtype)
    st.kind_counts = kind_counts
    st.has_full = kind_counts[DirichletKind.FULL] > 0
    st.has_partial = kind_counts[DirichletKind.PARTIAL] > 0
    st.kernel_plans = {
        kind: FvColumnKernel.instruction_plan(
            PeKernelConfig(
                depth=grid.nz,
                dirichlet=kind,
                variant=program.variant,
                reuse_buffers=program.reuse_buffers,
                accumulation=program.accumulation,
            )
        )
        for kind, count in kind_counts.items()
        if count > 0
    }
    return st


def staging_to_arrays(st: _Staging, program: CgProgram) -> dict[str, np.ndarray]:
    """Flatten a staged problem into named field arrays.

    The sharded engine ships a solve to its workers as this dict (plain
    arrays copy into shared-memory buffers; a :class:`_Staging` object
    does not), and each worker rebuilds its shard's staging from the
    slices it owns.  Only construction-time fields are included — the
    work arrays (``r``, ``p``, ``z``) are per-shard local state.
    """
    arrays: dict[str, np.ndarray] = {"y": st.y, "b": st.b}
    if st.inv_diag is not None:
        arrays["inv_diag"] = st.inv_diag
    if st.acc is not None:
        arrays["acc"] = st.acc
    if program.variant is KernelVariant.PRECOMPUTED:
        for port in COEFF_BUFFER:
            arrays[f"coeff_{port.name}"] = st.coeff[port]
        arrays["coeff_down"] = st.coeff_down
        arrays["coeff_up"] = st.coeff_up
    else:
        for port in UPSILON_BUFFER:
            arrays[f"ups_{port.name}"] = st.ups[port]
        arrays["ups_down"] = st.ups_down
        arrays["ups_up"] = st.ups_up
        arrays["lam"] = st.lam
        for port in MOBILITY_BUFFER:
            arrays[f"lam_nbr_{port.name}"] = st.lam_nbr[port]
    arrays["full_cols"] = st.full_cols
    arrays["blend_mask"] = st.blend_mask
    return arrays


def _gather_staging(st: _Staging, idx: np.ndarray, variant: KernelVariant) -> _Staging:
    """The rows ``idx`` of a stacked staging, as a smaller staging.

    Lets the batched engine run the FV operator over only the still-
    active lanes once enough of the batch has converged (elementwise
    results are identical; only frozen-lane work is skipped).  Gathers
    just the arrays :func:`_apply_fields` reads."""
    out = _Staging()
    out.z = out.inv_diag = out.mg_hier = None
    out.acc = None if st.acc is None else st.acc[idx]
    out.coeff = out.coeff_down = out.coeff_up = None
    out.ups = out.ups_down = out.ups_up = out.lam = out.lam_nbr = None
    if variant is KernelVariant.PRECOMPUTED:
        out.coeff = {port: arr[idx] for port, arr in st.coeff.items()}
        out.coeff_down = st.coeff_down[idx]
        out.coeff_up = st.coeff_up[idx]
    else:
        out.ups = {port: arr[idx] for port, arr in st.ups.items()}
        out.ups_down = st.ups_down[idx]
        out.ups_up = st.ups_up[idx]
        out.lam = st.lam[idx]
        out.lam_nbr = {port: arr[idx] for port, arr in st.lam_nbr.items()}
    out.full_cols = st.full_cols[idx]
    out.blend_mask = st.blend_mask[idx]
    out.has_full = st.has_full
    out.has_partial = st.has_partial
    out.kind_counts = None
    out.kernel_plans = None
    return out


def _stack_stagings(stagings: Sequence[_Staging], program: CgProgram) -> _Staging:
    """Stack per-problem stagings into one ``(batch, nx, ny, nz)`` staging."""
    out = _Staging()

    def stack(name: str):
        return np.stack([getattr(s, name) for s in stagings])

    for name in ("y", "b", "r", "p"):
        setattr(out, name, stack(name))
    out.z = out.inv_diag = out.mg_hier = None
    out.acc = stack("acc") if program.accumulation else None
    out.coeff = out.coeff_down = out.coeff_up = None
    out.ups = out.ups_down = out.ups_up = out.lam = out.lam_nbr = None
    if program.variant is KernelVariant.PRECOMPUTED:
        out.coeff = {
            port: np.stack([s.coeff[port] for s in stagings]) for port in COEFF_BUFFER
        }
        out.coeff_down = stack("coeff_down")
        out.coeff_up = stack("coeff_up")
    else:
        out.ups = {
            port: np.stack([s.ups[port] for s in stagings]) for port in UPSILON_BUFFER
        }
        out.ups_down = stack("ups_down")
        out.ups_up = stack("ups_up")
        out.lam = stack("lam")
        out.lam_nbr = {
            port: np.stack([s.lam_nbr[port] for s in stagings])
            for port in MOBILITY_BUFFER
        }
    if program.jacobi:
        out.inv_diag = stack("inv_diag")
        out.z = stack("z")
    elif program.mg:
        out.z = stack("z")
    out.full_cols = stack("full_cols")
    out.blend_mask = stack("blend_mask")
    out.has_full = any(s.has_full for s in stagings)
    out.has_partial = any(s.has_partial for s in stagings)
    out.kind_counts = None  # per-lane; lives with each lane's charge model
    out.kernel_plans = None
    return out


# -- the matrix-free operator over staged fields ------------------------------


def _lateral_precomputed(st: _Staging, x: np.ndarray) -> np.ndarray:
    out = None
    for port in HALO_ORDER:
        diff = x - _shifted(x, port)
        if out is None:
            out = st.coeff[port] * diff
        else:
            out += st.coeff[port] * diff
    return out


def _lateral_fused(st: _Staging, x: np.ndarray) -> np.ndarray:
    out = None
    for port in HALO_ORDER:
        c = st.lam + st.lam_nbr[port]
        np.multiply(c, 0.5, out=c, casting="unsafe")
        np.multiply(c, st.ups[port], out=c, casting="unsafe")
        diff = x - _shifted(x, port)
        np.multiply(diff, c, out=diff, casting="unsafe")
        if out is None:
            out = diff.copy()
        else:
            out += diff
    return out


def _vertical(st: _Staging, variant: KernelVariant, x: np.ndarray, out: np.ndarray) -> None:
    nz = x.shape[-1]
    if nz < 2:
        return
    lo = (Ellipsis, slice(0, nz - 1))
    hi = (Ellipsis, slice(1, nz))
    diff_up = x[lo] - x[hi]
    diff_down = x[hi] - x[lo]
    if variant is KernelVariant.PRECOMPUTED:
        out[lo] += st.coeff_up[lo] * diff_up
        out[hi] += st.coeff_down[hi] * diff_down
    else:
        lam = st.lam
        for rng, other, ups, diff in (
            (lo, hi, st.ups_up, diff_up),
            (hi, lo, st.ups_down, diff_down),
        ):
            lam2 = lam[rng] + lam[other]
            np.multiply(lam2, 0.5, out=lam2, casting="unsafe")
            np.multiply(lam2, ups[rng], out=lam2, casting="unsafe")
            out[rng] += lam2 * diff


def _apply_fields(st: _Staging, variant: KernelVariant, x: np.ndarray) -> np.ndarray:
    """The matrix-free FV operator over the whole (possibly batched)
    fabric.  Mirrors :class:`FvColumnKernel` instruction for instruction
    (same operand order), so per-element fp results match the event
    engine bit for bit."""
    if variant is KernelVariant.PRECOMPUTED:
        out = _lateral_precomputed(st, x)
    else:
        out = _lateral_fused(st, x)
    _vertical(st, variant, x, out)
    if st.acc is not None:
        # Transient term (same operand order as the kernel's FMA; zero on
        # Dirichlet rows, so the masks below are unaffected).
        out += st.acc * x
    if st.has_full:
        out[st.full_cols] = x[st.full_cols]
    if st.has_partial:
        out += st.blend_mask * (x - out)
    return out


# -- memory model -------------------------------------------------------------


@lru_cache(maxsize=128)
def _rehearse_bytes(
    pe_memory_bytes: int,
    variant: KernelVariant,
    reuse_buffers: bool,
    jacobi: bool,
    mg: bool,
    accumulation: bool,
    nz: int,
    dtype_name: str,
    with_mask: bool,
) -> int:
    """Replay the event engine's per-PE allocation sequence.

    One rehearsal per column class (with/without ``bc_mask``) against a
    real :class:`MemoryArena` reproduces both the capacity enforcement
    (:class:`PeOutOfMemory` at construction, like an oversized CSL
    program) and the high-water statistics exactly.  Cached by exactly
    the arguments that determine the layout (not the whole program —
    per-problem resolved tolerances must not defeat the cache), so a
    batch of problems or a sweep of solves pays for at most two
    rehearsals per configuration.
    """
    from repro.perf.memmodel import SCALAR_RESERVE_BYTES

    dtype = np.dtype(dtype_name)
    arena = MemoryArena(pe_memory_bytes, reserved_bytes=SCALAR_RESERVE_BYTES)
    for name in HALO_BUFFER.values():  # HaloExchange allocates first
        arena.alloc(name, nz, dtype=dtype)
    for name in CG_COLUMN_BUFFERS:
        arena.alloc(name, nz, dtype=dtype)
    if not reuse_buffers:
        arena.alloc("scratch", nz, dtype=dtype)
    if jacobi or mg:
        arena.alloc("z", nz, dtype=dtype)
    if jacobi:
        arena.alloc("inv_diag", nz, dtype=dtype)
    if accumulation:
        arena.alloc(ACCUMULATION_BUFFER, nz, dtype=dtype)
    if variant is KernelVariant.PRECOMPUTED:
        for name in COEFF_BUFFER.values():
            arena.alloc(name, nz, dtype=dtype)
        arena.alloc(COEFF_DOWN, nz, dtype=dtype)
        arena.alloc(COEFF_UP, nz, dtype=dtype)
    else:
        for name in UPSILON_BUFFER.values():
            arena.alloc(name, nz, dtype=dtype)
        arena.alloc(UPSILON_DOWN, nz, dtype=dtype)
        arena.alloc(UPSILON_UP, nz, dtype=dtype)
        arena.alloc(MOBILITY_OWN, nz, dtype=dtype)
        arena.alloc("lam_scratch", nz, dtype=dtype)
        for name in MOBILITY_BUFFER.values():
            arena.alloc(name, nz, dtype=dtype)
    if with_mask:
        arena.alloc("bc_mask", nz, dtype=dtype)
    return arena.used_bytes


def _memory_report(
    spec: WseSpecs, program: CgProgram, nz: int, dtype: np.dtype, kind_counts: dict
) -> dict[str, float]:
    """Per-PE memory statistics for one problem's staging."""
    num_pes = sum(kind_counts.values())

    def rehearse(with_mask: bool) -> int:
        return _rehearse_bytes(
            spec.pe_memory_bytes, program.variant, program.reuse_buffers,
            program.jacobi, program.mg, program.accumulation, nz, dtype.name,
            with_mask,
        )

    base_bytes = rehearse(False)
    n_partial = kind_counts[DirichletKind.PARTIAL]
    mask_bytes = rehearse(True) if n_partial else base_bytes
    high = max(base_bytes, mask_bytes) if n_partial else base_bytes
    mean = (n_partial * mask_bytes + (num_pes - n_partial) * base_bytes) / num_pes
    return {
        "max_high_water": float(high),
        "mean_high_water": float(mean),
        "max_used": float(high),
        "capacity": float(spec.pe_memory_bytes),
    }


# -- the analytic cycle/counter model -----------------------------------------


class _ChargeModel:
    """Analytic per-problem cycle/counter state over the ISA cost tables.

    One instance accumulates the charges of one problem's solve.  The
    batched engine additionally uses throwaway instances as *charge
    packets*: play a phase sequence once on a :meth:`fresh` model, then
    :meth:`merge` the result into every lane that executed that sequence
    — per-lane charges stay exactly what a serial solve of that lane
    would have recorded, at a fraction of the bookkeeping cost.
    """

    def __init__(
        self,
        *,
        width: int,
        height: int,
        depth: int,
        simd_width: int,
        spec: WseSpecs,
        suppress: bool,
        kind_counts: dict,
        kernel_plans: dict,
    ):
        self.width, self.height, self.depth = width, height, depth
        self.num_pes = width * height
        self.simd_width = simd_width
        self.spec = spec
        self.suppress = suppress
        self.kind_counts = kind_counts
        self.kernel_plans = kernel_plans
        self.counters = PerfCounters()
        self.trace = FabricTrace()
        self.makespan = 0
        self.pe_compute = 0  # critical-path compute of the busiest PE class
        self.state_visits: list[CGState] = []

    def fresh(self) -> "_ChargeModel":
        """A zeroed model with the same machine/problem parameters."""
        return _ChargeModel(
            width=self.width, height=self.height, depth=self.depth,
            simd_width=self.simd_width, spec=self.spec, suppress=self.suppress,
            kind_counts=self.kind_counts, kernel_plans=self.kernel_plans,
        )

    # -- charging helpers (identical semantics to the event oracle) ----------

    def counted(self, op: Op) -> bool:
        return not self.suppress or op in (Op.FMOV, Op.MOV32)

    def charge(self, op: Op, elements_per_instr: int, instances: int) -> None:
        """Charge ``instances`` identical vector instructions fabric-wide."""
        if not self.counted(op) or instances <= 0 or elements_per_instr <= 0:
            return
        cycles = vector_cycles(elements_per_instr, self.simd_width)
        self.counters.record_op(op, elements_per_instr * instances, cycles * instances)

    def vec(self, op: Op, elements: int | None = None) -> None:
        """One vector instruction on every PE (critical path: one issue)."""
        n = self.depth if elements is None else elements
        self.charge(op, n, self.num_pes)
        if self.counted(op):
            cycles = vector_cycles(n, self.simd_width)
            self.makespan += cycles
            self.pe_compute += cycles

    def scalar(self, cycles: int) -> None:
        """Scalar/sequencer work on every PE (never suppressed)."""
        self.counters.compute_cycles += cycles * self.num_pes
        self.makespan += cycles
        self.pe_compute += cycles

    def visit(self, state: CGState) -> None:
        """Fabric-wide state transition (2 sequencer cycles per PE)."""
        self.state_visits.append(state)
        self.scalar(2)

    def charge_kernel(self) -> None:
        """One FV apply on every column, charged per Dirichlet class."""
        critical = 0
        for kind, plan in self.kernel_plans.items():
            count = self.kind_counts[kind]
            cycles = 0
            for op, n in plan:
                self.charge(op, n, count)
                if self.counted(op):
                    cycles += vector_cycles(n, self.simd_width)
            critical = max(critical, cycles)
        self.makespan += critical
        self.pe_compute += critical

    def charge_exchange(self) -> None:
        """One 4-step halo-exchange round, fabric-wide.

        Every live directed link carries one data message (``nz``
        wavelets, one hop) plus one switch-advancing control wavelet;
        every live receive moves ``nz`` elements with FMOV."""
        W, H, nz = self.width, self.height, self.depth
        links = 2 * ((W - 1) * H + (H - 1) * W)
        if links:
            self.charge(Op.FMOV, nz, links)
            self.charge(Op.MOV32, 1, links)
            self.counters.record_fabric_send(links * (nz + 1) * 4)
            self.trace.total_messages += 2 * links
            self.trace.total_wavelets += links * (nz + 1)
            self.trace.total_hop_wavelets += links * (nz + 1)
            self.trace.comm_busy_cycles += links * (nz + 1)
        # Critical path: 4 serialized steps of send (link serialization +
        # hop) then receive-fill, plus control/callback slack.
        hop = self.spec.hop_latency_cycles
        fill = vector_cycles(nz, self.simd_width)
        self.makespan += 4 * (nz + hop + fill + 2)
        self.pe_compute += 4 * fill

    def charge_allreduce(self) -> None:
        """Charge one all-reduce round (three-step chain/broadcast
        protocol of §III-C); the reduced value itself is exact and
        computed by the engine's numerics."""
        W, H = self.width, self.height
        row_sends = (W - 1) * H
        col_sends = H - 1
        bcast_col = 1 if H > 1 else 0
        bcast_row = H if W > 1 else 0
        sends = row_sends + col_sends + bcast_col + bcast_row
        combines = (W - 1) * H + (H - 1)
        self.charge(Op.FADD, 1, combines)
        self.counters.record_fabric_send(4 * sends)
        receives = (
            row_sends
            + col_sends
            + (H - 1 if H > 1 else 0)
            + ((W - 1) * H if W > 1 else 0)
        )
        self.counters.record_fabric_receive(4 * receives)
        self.trace.total_messages += sends
        self.trace.total_wavelets += sends
        hops = (
            row_sends
            + col_sends
            + (H - 1 if H > 1 else 0)
            + (H * (W - 1) if W > 1 else 0)
        )
        self.trace.total_hop_wavelets += hops
        self.trace.comm_busy_cycles += hops
        # Critical path: the sequential row chain, the column chain, and
        # the two broadcast legs (one wavelet + hop + combine per link).
        hop = self.spec.hop_latency_cycles
        self.makespan += (
            (W - 1) * (hop + 2) + (H - 1) * (hop + 2)
            + (H - 1) * (hop + 1) + (W - 1) * (hop + 1) + 2
        )
        if W > 1 or H > 1:
            self.pe_compute += 1

    # -- packet composition --------------------------------------------------

    def merge_scaled(self, packet: "_ChargeModel", n: int) -> None:
        """Add ``n`` repetitions of a packet's charges in one step.

        Charges are additive, so replaying a per-iteration packet ``n``
        times equals one scaled merge — O(1) bookkeeping per lane
        instead of O(iterations).  State visits are *not* touched (their
        order is iteration-interleaved; the batched engine reconstructs
        the sequence explicitly)."""
        if n <= 0:
            return
        c, o = self.counters, packet.counters
        for op, count in o.op_counts.items():
            c.op_counts[op] += count * n
        c.flops += o.flops * n
        c.mem_load_bytes += o.mem_load_bytes * n
        c.mem_store_bytes += o.mem_store_bytes * n
        c.fabric_load_bytes += o.fabric_load_bytes * n
        c.fabric_store_bytes += o.fabric_store_bytes * n
        c.compute_cycles += o.compute_cycles * n
        t, ot = self.trace, packet.trace
        t.total_messages += ot.total_messages * n
        t.total_wavelets += ot.total_wavelets * n
        t.total_hop_wavelets += ot.total_hop_wavelets * n
        t.comm_busy_cycles += ot.comm_busy_cycles * n
        self.makespan += packet.makespan * n
        self.pe_compute += packet.pe_compute * n

    def finalize(self) -> None:
        """Close out the run: makespan, critical path, idle accounting."""
        self.trace.makespan_cycles = self.makespan
        self.trace.max_compute_cycles = self.pe_compute
        self.counters.idle_cycles = max(
            0, self.makespan * self.num_pes - self.counters.compute_cycles
        )


# -- the serial (batch=1) engine ----------------------------------------------


class VectorEngine:
    """Whole-fabric array execution of the dataflow CG program.

    Same constructor vocabulary as the event engine: the problem, the
    program, and the machine staging knobs (spec, dtype, SIMD width,
    initial guess).  Construction stages the field arrays and rehearses
    the per-PE memory budget; :meth:`run` executes the CG.
    """

    name = "vectorized"

    def __init__(
        self,
        problem: SinglePhaseProblem,
        program: CgProgram,
        *,
        spec: WseSpecs,
        dtype=np.float32,
        simd_width: int | None = None,
        initial_pressure: np.ndarray | None = None,
        accumulation: np.ndarray | None = None,
        rhs: np.ndarray | None = None,
    ):
        if program.batch != 1:
            raise ConfigurationError(
                f"VectorEngine runs single-problem programs; got batch="
                f"{program.batch} (use BatchedVectorEngine)"
            )
        self.problem = problem
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problem.grid, spec)
        self.dtype = np.dtype(dtype)
        self.simd_width = int(
            simd_width if simd_width is not None else spec.simd_width_f32
        )
        grid = problem.grid
        self.width, self.height, self.depth = grid.nx, grid.ny, grid.nz
        self.num_pes = self.width * self.height
        self._suppress = program.comm_only

        self.st = _stage_problem(
            problem, program, self.dtype, initial_pressure,
            accumulation=accumulation, rhs=rhs,
        )
        self._memory = _memory_report(
            spec, program, self.depth, self.dtype, self.st.kind_counts
        )
        self.model = _ChargeModel(
            width=self.width, height=self.height, depth=self.depth,
            simd_width=self.simd_width, spec=spec, suppress=self._suppress,
            kind_counts=self.st.kind_counts, kernel_plans=self.st.kernel_plans,
        )
        self._mg_packet = None
        if program.mg:
            from repro.mg import build_mg_packet

            self._mg_packet = build_mg_packet(self.model, self.st.mg_hier)
        self._history: list[float] = []

    # -- numerics -------------------------------------------------------------

    def _dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Global dot product, float64 accumulation."""
        if self._suppress:
            return 0.0
        return float(
            np.dot(a.reshape(-1).astype(np.float64), b.reshape(-1).astype(np.float64))
        )

    def _apply(self, x: np.ndarray) -> np.ndarray:
        if self._suppress:
            return np.zeros_like(x)
        return _apply_fields(self.st, self.program.variant, x)

    def _allreduce(self, local_total: float) -> float:
        """Charge one all-reduce round; return the global total (exact —
        the chain sum is associative in exact arithmetic)."""
        self.model.charge_allreduce()
        return 0.0 if self._suppress else float(local_total)

    # -- the solve ------------------------------------------------------------

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        """Execute the CG program; phase order and control flow replicate
        the event engine's state machine exactly."""
        program, st, m = self.program, self.st, self.model
        y, b, r, p = st.y, st.b, st.r, st.p
        jacobi, suppress = program.jacobi, self._suppress
        mg = program.mg
        if mg:
            from repro.mg import mg_apply

        # INIT: r0 = b - A y0 ; p0 = r0 (or z0) ; rtr = <r0, r0|z0>
        m.visit(CGState.INIT)
        m.visit(CGState.EXCHANGE)
        m.charge_exchange()
        m.visit(CGState.COMPUTE_JX)
        m.charge_kernel()
        jx = self._apply(y)
        m.vec(Op.FSUB)  # r = b - Jx
        if not suppress:
            np.subtract(b, jx, out=r, casting="unsafe")
        if jacobi:
            m.vec(Op.FMUL)  # z = r / diag
            m.vec(Op.FMOV)  # p = z
            if not suppress:
                np.multiply(r, st.inv_diag, out=st.z, casting="unsafe")
                p[...] = st.z
            local = self._dot(r, st.z) if not suppress else 0.0
        elif mg:
            m.merge_scaled(self._mg_packet, 1)  # z = V-cycle(r)
            m.vec(Op.FMOV)  # p = z
            st.z[...] = mg_apply(st.mg_hier, r).astype(self.dtype)
            p[...] = st.z
            local = self._dot(r, st.z)
        else:
            m.vec(Op.FMOV)  # p = r
            if not suppress:
                p[...] = r
            local = self._dot(r, r)
        m.vec(Op.FMA)  # local dot
        m.visit(CGState.DOT_RR)
        rtr = self._allreduce(local)
        self._history.append(rtr)

        k = 0
        terminal: CGState | None = None
        while terminal is None:
            m.visit(CGState.ITER_CHECK)
            if program.check_convergence and rtr < program.tol_rtr:
                terminal = CGState.CONVERGED
                break
            if k >= program.iteration_limit:
                terminal = (
                    CGState.CONVERGED
                    if (program.check_convergence and rtr < program.tol_rtr)
                    else CGState.MAXITER
                )
                break

            m.visit(CGState.EXCHANGE)
            m.charge_exchange()
            m.visit(CGState.COMPUTE_JX)
            m.charge_kernel()
            jx = self._apply(p)
            m.vec(Op.FMA)  # local p^T Jp
            m.visit(CGState.DOT_PAP)
            pap = self._allreduce(self._dot(p, jx))

            m.visit(CGState.COMPUTE_ALPHA)
            if pap == 0.0:
                if not suppress and program.check_convergence:
                    raise ConfigurationError(
                        "vectorized engine: p^T A p = 0 with live arithmetic"
                    )
                alpha = 0.0
            else:
                alpha = rtr / pap
            m.scalar(4)  # scalar divide on the CE

            m.visit(CGState.UPDATE_SOL)
            m.vec(Op.FMA)  # y += alpha p
            m.visit(CGState.UPDATE_RES)
            m.vec(Op.FMA)  # r -= alpha Jp
            if not suppress:
                y += alpha * p
                r += (-alpha) * jx
            if jacobi:
                m.vec(Op.FMUL)
                if not suppress:
                    np.multiply(r, st.inv_diag, out=st.z, casting="unsafe")
                local = self._dot(r, st.z)
            elif mg:
                m.merge_scaled(self._mg_packet, 1)  # z = V-cycle(r)
                st.z[...] = mg_apply(st.mg_hier, r).astype(self.dtype)
                local = self._dot(r, st.z)
            else:
                local = self._dot(r, r)
            m.vec(Op.FMA)
            m.visit(CGState.DOT_RR)
            rtr_new = self._allreduce(local)

            k += 1
            m.visit(CGState.THRES_CHECK)
            self._history.append(rtr_new)
            if program.check_convergence and rtr_new < program.tol_rtr:
                terminal = CGState.CONVERGED
                break
            m.visit(CGState.COMPUTE_BETA)
            beta = (rtr_new / rtr) if rtr > 0 else 0.0
            m.scalar(4)
            m.visit(CGState.UPDATE_DIR)
            m.vec(Op.FMUL)  # p *= beta
            m.vec(Op.FADD)  # p += r (or z)
            if not suppress:
                np.multiply(p, beta, out=p, casting="unsafe")
                p += st.z if (jacobi or mg) else r
            rtr = rtr_new

        m.visit(terminal)
        converged = terminal is CGState.CONVERGED
        m.finalize()
        return EngineReport(
            pressure=y.copy(),
            iterations=k,
            converged=converged,
            residual_history=list(self._history),
            trace=m.trace,
            counters=m.counters,
            elapsed_seconds=m.makespan / self.spec.clock_hz,
            memory=dict(self._memory),
            state_visits=list(m.state_visits),
            engine=self.name,
            preconditioner=(
                st.mg_hier.telemetry(k + 1) if mg else None
            ),
        )


# -- charge packets -----------------------------------------------------------


def build_init_packet(
    model: _ChargeModel, jacobi: bool, mg_packet: _ChargeModel | None = None
) -> _ChargeModel:
    """Play the INIT phase's charge sequence once on a fresh model.

    The sequence mirrors :meth:`VectorEngine.run`'s init statement for
    statement; the played model is a reusable *packet* — merge it (via
    ``merge_scaled``) into any charge model with the same Dirichlet
    histogram instead of re-itemising the charges.  Shared by the
    batched and fused engines (the sharded engine charges its init
    inline, interleaved with crew dispatch).  ``mg_packet`` (one V-cycle
    of charges, from ``repro.mg.build_mg_packet``) replaces the Jacobi
    FMUL when the program preconditions with multigrid."""
    init = model.fresh()
    init.visit(CGState.INIT)
    init.visit(CGState.EXCHANGE)
    init.charge_exchange()
    init.visit(CGState.COMPUTE_JX)
    init.charge_kernel()
    init.vec(Op.FSUB)  # r = b - Jx
    if jacobi:
        init.vec(Op.FMUL)  # z = r / diag
        init.vec(Op.FMOV)  # p = z
    elif mg_packet is not None:
        init.merge_scaled(mg_packet, 1)  # z = V-cycle(r)
        init.vec(Op.FMOV)  # p = z
    else:
        init.vec(Op.FMOV)  # p = r
    init.vec(Op.FMA)  # local dot
    init.visit(CGState.DOT_RR)
    init.charge_allreduce()
    return init


def build_iteration_packets(
    model: _ChargeModel, jacobi: bool, mg_packet: _ChargeModel | None = None
) -> tuple[_ChargeModel, _ChargeModel, _ChargeModel]:
    """Play the loop's three charge segments once on fresh models.

    Returns ``(check, body, direction)`` packets whose sequences mirror
    :meth:`VectorEngine.run`'s loop statement for statement — the charge
    vocabulary every fabric engine shares (batched lanes, the sharded
    coordinator and the fused hot loop all merge these same packets, so
    counters/traffic/makespan agree exactly by construction)."""
    check = model.fresh()
    check.visit(CGState.ITER_CHECK)

    body = model.fresh()
    body.visit(CGState.EXCHANGE)
    body.charge_exchange()
    body.visit(CGState.COMPUTE_JX)
    body.charge_kernel()
    body.vec(Op.FMA)  # local p^T Jp
    body.visit(CGState.DOT_PAP)
    body.charge_allreduce()
    body.visit(CGState.COMPUTE_ALPHA)
    body.scalar(4)  # scalar divide on the CE
    body.visit(CGState.UPDATE_SOL)
    body.vec(Op.FMA)  # y += alpha p
    body.visit(CGState.UPDATE_RES)
    body.vec(Op.FMA)  # r -= alpha Jp
    if jacobi:
        body.vec(Op.FMUL)
    elif mg_packet is not None:
        body.merge_scaled(mg_packet, 1)  # z = V-cycle(r)
    body.vec(Op.FMA)
    body.visit(CGState.DOT_RR)
    body.charge_allreduce()
    body.visit(CGState.THRES_CHECK)

    direction = model.fresh()
    direction.visit(CGState.COMPUTE_BETA)
    direction.scalar(4)
    direction.visit(CGState.UPDATE_DIR)
    direction.vec(Op.FMUL)  # p *= beta
    direction.vec(Op.FADD)  # p += r (or z)
    return check, body, direction


# -- the batched engine -------------------------------------------------------


class BatchedVectorEngine:
    """``(batch, nx, ny, nz)`` execution of one program over many problems.

    All problems must share one grid *shape* (spacings, permeability and
    boundary conditions are free per problem); the engine stacks their
    stagings along a leading batch axis and sweeps every CG phase over
    the whole stack at once.  Lanes freeze as they converge: a frozen
    lane receives no further vector updates and no further charges, so
    each lane's :class:`EngineReport` — iterates, residual history,
    counters, traffic, cycles, memory — is exactly what a serial
    :class:`VectorEngine` solve of that problem alone would produce
    (pinned by ``tests/test_batched_engine.py`` and fuzzed in
    ``tests/test_engine_fuzz.py``).

    Charging uses *packets*: the per-iteration charge sequence of a lane
    depends only on its Dirichlet-class histogram, so it is played once
    per distinct histogram on a fresh :class:`_ChargeModel` and merged
    into each lane per iteration — O(1) bookkeeping per lane-iteration
    instead of replaying every instruction, which is where the batched
    path's host-side throughput win comes from.

    ``tol_rtrs`` supplies each lane's resolved absolute tolerance
    (defaulting to ``program.tol_rtr``); ``initial_pressure`` accepts a
    single shared guess or one per lane (multi-RHS transient studies).
    """

    name = "batched"

    def __init__(
        self,
        problems: Sequence[SinglePhaseProblem],
        program: CgProgram,
        *,
        spec: WseSpecs,
        dtype=np.float32,
        simd_width: int | None = None,
        tol_rtrs: Sequence[float] | None = None,
        initial_pressure=None,
        accumulation=None,
        rhs=None,
    ):
        problems = list(problems)
        if not problems:
            raise ConfigurationError("batched engine needs at least one problem")
        if program.batch != len(problems):
            raise ConfigurationError(
                f"program.batch is {program.batch} but {len(problems)} "
                f"problems were supplied"
            )
        shapes = {p.grid.shape for p in problems}
        if len(shapes) != 1:
            raise ConfigurationError(
                f"all problems in a batch must share one grid shape; got "
                f"{sorted(shapes)}"
            )
        self.problems = problems
        self.batch = len(problems)
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problems[0].grid, spec)
        self.dtype = np.dtype(dtype)
        self.simd_width = int(
            simd_width if simd_width is not None else spec.simd_width_f32
        )
        grid = problems[0].grid
        self.width, self.height, self.depth = grid.nx, grid.ny, grid.nz
        self.num_pes = self.width * self.height
        self._suppress = program.comm_only

        if tol_rtrs is None:
            tol_rtrs = [program.tol_rtr] * self.batch
        if len(tol_rtrs) != self.batch:
            raise ConfigurationError(
                f"tol_rtrs has {len(tol_rtrs)} entries for a batch of "
                f"{self.batch}"
            )
        self._tols = [float(t) for t in tol_rtrs]

        guesses = normalize_guesses(initial_pressure, self.batch, grid.shape)
        accs = normalize_guesses(accumulation, self.batch, grid.shape)
        rhss = normalize_guesses(rhs, self.batch, grid.shape)
        stagings = [
            _stage_problem(
                problem, program, self.dtype, guess,
                accumulation=acc, rhs=lane_rhs,
            )
            for problem, guess, acc, lane_rhs in zip(
                problems, guesses, accs, rhss
            )
        ]
        self.st = _stack_stagings(stagings, program)
        self._memory = [
            _memory_report(spec, program, self.depth, self.dtype, s.kind_counts)
            for s in stagings
        ]
        self._models = [
            _ChargeModel(
                width=self.width, height=self.height, depth=self.depth,
                simd_width=self.simd_width, spec=spec, suppress=self._suppress,
                kind_counts=s.kind_counts, kernel_plans=s.kernel_plans,
            )
            for s in stagings
        ]
        self._mg_hiers = [s.mg_hier for s in stagings]
        self._mg_packet = None
        if program.mg:
            from repro.mg import build_mg_packet

            # All lanes share the grid shape and the program's mg knobs,
            # so one V-cycle packet serves the whole batch.
            self._mg_packet = build_mg_packet(
                self._models[0], stagings[0].mg_hier
            )
        # One packet set per distinct Dirichlet histogram (everything else
        # in the charge sequence is shared across lanes).
        self._packets: dict[tuple, dict[str, _ChargeModel]] = {}
        self._lane_sig = []
        for s, model in zip(stagings, self._models):
            sig = tuple(sorted((k.name, v) for k, v in s.kind_counts.items()))
            self._lane_sig.append(sig)
            if sig not in self._packets:
                self._packets[sig] = self._build_packets(model)


    def _build_packets(self, model: _ChargeModel) -> dict[str, _ChargeModel]:
        """Play each phase sequence once; the played models are the
        per-iteration charge packets for every lane with this model's
        Dirichlet histogram.  Sequences mirror :meth:`VectorEngine.run`
        statement for statement."""
        jacobi = self.program.jacobi
        init = build_init_packet(model, jacobi, self._mg_packet)
        check, body, direction = build_iteration_packets(
            model, jacobi, self._mg_packet
        )
        return {"init": init, "check": check, "body": body, "direction": direction}

    # -- numerics -------------------------------------------------------------

    def _dot_rows(self, a: np.ndarray, b: np.ndarray) -> float:
        """One lane's global dot product, float64 accumulation (same
        flatten-and-accumulate order as the serial engine)."""
        if self._suppress:
            return 0.0
        return float(
            np.dot(a.reshape(-1).astype(np.float64), b.reshape(-1).astype(np.float64))
        )

    def _lane_dot(self, i: int, a: np.ndarray, b: np.ndarray) -> float:
        if self._suppress:
            return 0.0
        return self._dot_rows(a[i], b[i])

    def _lane_scalars(self, values: Sequence[float]) -> np.ndarray:
        """Per-lane scalars as a broadcastable ``(lanes, 1, 1, 1)`` array
        in the working dtype — elementwise identical to the serial
        engine's python-float-times-array updates."""
        return np.asarray(values, dtype=self.dtype).reshape((-1, 1, 1, 1))

    # -- the solve ------------------------------------------------------------

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> list[EngineReport]:
        """Execute the batched CG; per-lane control flow replicates the
        serial vectorized engine (and therefore the event oracle)
        exactly, with converged lanes frozen out of updates and charges.
        """
        program, st = self.program, self.st
        B = self.batch
        jacobi, suppress = program.jacobi, self._suppress
        mg = program.mg
        uses_z = jacobi or mg
        if mg:
            from repro.mg import mg_apply
        models, tols = self._models, self._tols
        packets = [self._packets[sig] for sig in self._lane_sig]
        y, b, r, p = st.y, st.b, st.r, st.p

        histories: list[list[float]] = [[] for _ in range(B)]
        iters = [0] * B
        terminal: list[CGState | None] = [None] * B
        # Where each lane left the loop: at ITER_CHECK ("check": init
        # convergence or the iteration limit) or at THRES_CHECK
        # ("thres": converged right after an iteration's DOT_RR).  The
        # distinction fixes how many check/direction packets the lane
        # executed; charging is composed once per lane at the end.
        terminal_at = ["check"] * B
        rtr = [0.0] * B

        # INIT: r0 = b - A y0 ; p0 = r0 (or z0) ; rtr = <r0, r0|z0>
        jx = None if suppress else _apply_fields(st, program.variant, y)
        if not suppress:
            np.subtract(b, jx, out=r, casting="unsafe")
            if jacobi:
                np.multiply(r, st.inv_diag, out=st.z, casting="unsafe")
                p[...] = st.z
            elif mg:
                for i in range(B):
                    st.z[i] = mg_apply(self._mg_hiers[i], r[i]).astype(self.dtype)
                p[...] = st.z
            else:
                p[...] = r
        for i in range(B):
            local = self._lane_dot(i, r, st.z if uses_z else r)
            rtr[i] = 0.0 if suppress else local
            histories[i].append(rtr[i])

        active = list(range(B))
        while active:
            survivors = []
            for i in active:
                if program.check_convergence and rtr[i] < tols[i]:
                    terminal[i] = CGState.CONVERGED
                elif iters[i] >= program.iteration_limit:
                    terminal[i] = (
                        CGState.CONVERGED
                        if (program.check_convergence and rtr[i] < tols[i])
                        else CGState.MAXITER
                    )
                else:
                    survivors.append(i)
            active = survivors
            if not active:
                break
            idx = None if len(active) == B else np.asarray(active)

            # The FV operator, with rows aligned to `active` order.  Once
            # half the batch has frozen, sweep only the active lanes (a
            # gather of the staged coefficient rows buys skipping the
            # operator work on frozen lanes; elementwise results are
            # identical either way).
            if suppress:
                jx_act = None
            elif idx is None:
                jx_act = _apply_fields(st, program.variant, p)
            elif 2 * len(active) <= B:
                sub = _gather_staging(st, idx, program.variant)
                jx_act = _apply_fields(sub, program.variant, p[idx])
            else:
                jx_act = _apply_fields(st, program.variant, p)[idx]
            alphas = []
            for pos, i in enumerate(active):
                pap = 0.0 if suppress else self._dot_rows(p[i], jx_act[pos])
                if pap == 0.0:
                    if not suppress and program.check_convergence:
                        raise ConfigurationError(
                            "vectorized engine: p^T A p = 0 with live "
                            f"arithmetic (batch lane {i})"
                        )
                    alphas.append(0.0)
                else:
                    alphas.append(rtr[i] / pap)

            if not suppress:
                a = self._lane_scalars(alphas)
                if idx is None:
                    y += a * p
                    r += (-a) * jx_act
                    if jacobi:
                        np.multiply(r, st.inv_diag, out=st.z, casting="unsafe")
                else:
                    y[idx] += a * p[idx]
                    r[idx] += (-a) * jx_act
                    if jacobi:
                        st.z[idx] = r[idx] * st.inv_diag[idx]
                if mg:
                    for i in active:
                        st.z[i] = mg_apply(
                            self._mg_hiers[i], r[i]
                        ).astype(self.dtype)

            new_rtr = dict.fromkeys(active, 0.0)
            for i in active:
                local = self._lane_dot(i, r, st.z if uses_z else r)
                new_rtr[i] = 0.0 if suppress else local
                iters[i] += 1
                histories[i].append(new_rtr[i])

            survivors = []
            for i in active:
                if program.check_convergence and new_rtr[i] < tols[i]:
                    terminal[i] = CGState.CONVERGED
                    terminal_at[i] = "thres"
                else:
                    survivors.append(i)

            if survivors and not suppress:
                betas = [
                    (new_rtr[i] / rtr[i]) if rtr[i] > 0 else 0.0 for i in survivors
                ]
                bv = self._lane_scalars(betas)
                if len(survivors) == B:
                    np.multiply(p, bv, out=p, casting="unsafe")
                    p += st.z if uses_z else r
                else:
                    sidx = np.asarray(survivors)
                    chunk = p[sidx]
                    np.multiply(chunk, bv, out=chunk, casting="unsafe")
                    chunk += (st.z if uses_z else r)[sidx]
                    p[sidx] = chunk
            for i in active:
                rtr[i] = new_rtr[i]
            active = survivors

        reports = []
        for i in range(B):
            m = models[i]
            pk = packets[i]
            k = iters[i]
            # Compose the lane's full charge stream: init, then k (or
            # k+1) ITER_CHECKs, k loop bodies and the direction updates
            # its terminal path implies — numerically identical to
            # replaying every iteration, in O(1) merges.
            if terminal_at[i] == "thres":
                n_check, n_body, n_dir = k, k, k - 1
            else:
                n_check, n_body, n_dir = k + 1, k, k
            m.merge_scaled(pk["init"], 1)
            m.merge_scaled(pk["check"], n_check)
            m.merge_scaled(pk["body"], n_body)
            m.merge_scaled(pk["direction"], n_dir)
            full_iter = (
                pk["check"].state_visits
                + pk["body"].state_visits
                + pk["direction"].state_visits
            )
            visits = list(pk["init"].state_visits)
            if terminal_at[i] == "thres":
                visits += full_iter * (k - 1)
                visits += pk["check"].state_visits + pk["body"].state_visits
            else:
                visits += full_iter * k
                visits += pk["check"].state_visits
            m.state_visits = visits
            m.visit(terminal[i])
            m.finalize()
            reports.append(
                EngineReport(
                    pressure=np.array(y[i], copy=True),
                    iterations=iters[i],
                    converged=terminal[i] is CGState.CONVERGED,
                    residual_history=histories[i],
                    trace=m.trace,
                    counters=m.counters,
                    elapsed_seconds=m.makespan / self.spec.clock_hz,
                    memory=dict(self._memory[i]),
                    state_visits=list(m.state_visits),
                    engine=self.name,
                    preconditioner=(
                        self._mg_hiers[i].telemetry(iters[i] + 1)
                        if mg else None
                    ),
                )
            )
        return reports


__all__ = [
    "BatchedVectorEngine",
    "VectorEngine",
    "build_init_packet",
    "build_iteration_packets",
    "staging_to_arrays",
]
