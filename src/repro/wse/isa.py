"""Instruction-set cost model.

The operation vocabulary follows the paper's Table V: FMUL, FSUB, FNEG,
FADD, FMA, FMOV (plus MOV32 control).  Per-element costs:

* FLOPs: 1 per arithmetic op, 2 for FMA, 0 for moves (Table V convention);
* memory traffic: loads/stores of 4-byte fp32 operands per element,
  exactly as Table V charges them (e.g. FMUL: 2 loads + 1 store);
* cycles: vector (DSD) ops retire ``ceil(n / simd_width)`` element groups
  per instruction, one group per cycle — the §III-E.3 claim that a DSD
  instruction's throughput is constant and caching is not involved.
"""

from __future__ import annotations

import enum
import math


class Op(enum.Enum):
    """Operations the PE cost model recognizes."""

    FMUL = "fmul"
    FADD = "fadd"
    FSUB = "fsub"
    FNEG = "fneg"
    FMA = "fma"
    FMOV = "fmov"
    MOV32 = "mov32"  # control register write (switch advance etc.)


#: FLOPs per element (Table V column "FLOP").
OP_FLOPS: dict[Op, int] = {
    Op.FMUL: 1,
    Op.FADD: 1,
    Op.FSUB: 1,
    Op.FNEG: 1,
    Op.FMA: 2,
    Op.FMOV: 0,
    Op.MOV32: 0,
}

#: fp32 loads per element (Table V column "Memory traffic").
OP_MEM_LOADS: dict[Op, int] = {
    Op.FMUL: 2,
    Op.FADD: 2,
    Op.FSUB: 2,
    Op.FNEG: 1,
    Op.FMA: 3,
    Op.FMOV: 0,  # FMOV in Table V loads from fabric, stores to memory
    Op.MOV32: 0,
}

#: fp32 stores per element.
OP_MEM_STORES: dict[Op, int] = {
    Op.FMUL: 1,
    Op.FADD: 1,
    Op.FSUB: 1,
    Op.FNEG: 1,
    Op.FMA: 1,
    Op.FMOV: 1,
    Op.MOV32: 0,
}

#: fabric loads per element (Table V column "Fabric traffic").
OP_FABRIC_LOADS: dict[Op, int] = {
    Op.FMUL: 0,
    Op.FADD: 0,
    Op.FSUB: 0,
    Op.FNEG: 0,
    Op.FMA: 0,
    Op.FMOV: 1,
    Op.MOV32: 0,
}

#: Bytes per fp32 operand.
F32_BYTES = 4


def vector_cycles(num_elements: int, simd_width: int) -> int:
    """Cycles to retire a DSD vector op over ``num_elements`` elements."""
    if num_elements <= 0:
        return 0
    return math.ceil(num_elements / max(1, simd_width))


def op_flops(op: Op, num_elements: int) -> int:
    return OP_FLOPS[op] * num_elements


def op_mem_bytes(op: Op, num_elements: int) -> int:
    return (OP_MEM_LOADS[op] + OP_MEM_STORES[op]) * num_elements * F32_BYTES
