"""Performance counters for PEs and the fabric.

Counts everything Table V and Table IV need: per-op instruction counts,
FLOPs, local-memory traffic, fabric traffic, and compute/communication
cycle accounting.  Counters are plain integers updated on the hot path —
no event objects, no allocation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.wse.isa import (
    F32_BYTES,
    OP_FABRIC_LOADS,
    OP_FLOPS,
    OP_MEM_LOADS,
    OP_MEM_STORES,
    Op,
)


@dataclass
class PerfCounters:
    """Per-PE counters.

    Attributes
    ----------
    op_counts:
        Executed instruction counts keyed by :class:`Op` (instruction
        granularity: one DSD vector op over n elements counts n).
    flops:
        Total floating point operations (FMA = 2).
    mem_load_bytes / mem_store_bytes:
        Local-memory traffic.
    fabric_load_bytes / fabric_store_bytes:
        Bytes read from / written to the fabric via the RAMP link.
    compute_cycles:
        Cycles spent executing instructions.
    idle_cycles:
        Cycles the PE spent waiting for wavelets (filled in by the fabric
        at the end of a run: makespan − compute).
    """

    op_counts: Counter = field(default_factory=Counter)
    flops: int = 0
    mem_load_bytes: int = 0
    mem_store_bytes: int = 0
    fabric_load_bytes: int = 0
    fabric_store_bytes: int = 0
    compute_cycles: int = 0
    idle_cycles: int = 0

    def record_op(self, op: Op, num_elements: int, cycles: int) -> None:
        """Record a (vector) instruction over ``num_elements`` elements."""
        self.op_counts[op] += num_elements
        self.flops += OP_FLOPS[op] * num_elements
        self.mem_load_bytes += OP_MEM_LOADS[op] * num_elements * F32_BYTES
        self.mem_store_bytes += OP_MEM_STORES[op] * num_elements * F32_BYTES
        self.fabric_load_bytes += OP_FABRIC_LOADS[op] * num_elements * F32_BYTES
        self.compute_cycles += cycles

    def record_fabric_send(self, nbytes: int) -> None:
        self.fabric_store_bytes += nbytes

    def record_fabric_receive(self, nbytes: int) -> None:
        self.fabric_load_bytes += nbytes

    @property
    def mem_bytes(self) -> int:
        return self.mem_load_bytes + self.mem_store_bytes

    @property
    def fabric_bytes(self) -> int:
        return self.fabric_load_bytes + self.fabric_store_bytes

    def to_dict(self) -> dict:
        """A stable, JSON-able summary (plain ints, op names as keys).

        This — not the live counter object — is what backend telemetry
        carries, so ``ResultStore`` manifests, bench JSON and pickled
        process-pool results stay serializable and small.
        """
        return {
            "op_counts": {op.value: int(n) for op, n in sorted(
                self.op_counts.items(), key=lambda item: item[0].value
            )},
            "flops": int(self.flops),
            "mem_load_bytes": int(self.mem_load_bytes),
            "mem_store_bytes": int(self.mem_store_bytes),
            "mem_bytes": int(self.mem_bytes),
            "fabric_load_bytes": int(self.fabric_load_bytes),
            "fabric_store_bytes": int(self.fabric_store_bytes),
            "fabric_bytes": int(self.fabric_bytes),
            "compute_cycles": int(self.compute_cycles),
            "idle_cycles": int(self.idle_cycles),
        }

    def merged_with(self, other: "PerfCounters") -> "PerfCounters":
        merged = PerfCounters(
            op_counts=self.op_counts + other.op_counts,
            flops=self.flops + other.flops,
            mem_load_bytes=self.mem_load_bytes + other.mem_load_bytes,
            mem_store_bytes=self.mem_store_bytes + other.mem_store_bytes,
            fabric_load_bytes=self.fabric_load_bytes + other.fabric_load_bytes,
            fabric_store_bytes=self.fabric_store_bytes + other.fabric_store_bytes,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            idle_cycles=self.idle_cycles + other.idle_cycles,
        )
        return merged


@dataclass
class FabricTrace:
    """Fabric-wide aggregates filled in by the runtime.

    Attributes
    ----------
    makespan_cycles:
        Global finish time of the last event (wall clock of the run).
    total_messages / total_wavelets:
        Message and 32-bit-packet counts that crossed any link.
    total_hop_wavelets:
        Wavelets × hops (link occupancy; feeds fabric-bandwidth checks).
    comm_busy_cycles:
        Sum over links of busy cycles (serialization pressure).
    max_compute_cycles:
        Largest per-PE compute_cycles (the critical compute path).
    """

    makespan_cycles: int = 0
    total_messages: int = 0
    total_wavelets: int = 0
    total_hop_wavelets: int = 0
    comm_busy_cycles: int = 0
    max_compute_cycles: int = 0

    @property
    def comm_exposed_cycles(self) -> int:
        """Communication time not hidden behind compute (Table IV's
        'data movement' bucket at simulator scale)."""
        return max(0, self.makespan_cycles - self.max_compute_cycles)

    def to_dict(self) -> dict:
        """A stable, JSON-able summary (see :meth:`PerfCounters.to_dict`)."""
        return {
            "makespan_cycles": int(self.makespan_cycles),
            "total_messages": int(self.total_messages),
            "total_wavelets": int(self.total_wavelets),
            "total_hop_wavelets": int(self.total_hop_wavelets),
            "comm_busy_cycles": int(self.comm_busy_cycles),
            "max_compute_cycles": int(self.max_compute_cycles),
            "comm_exposed_cycles": int(self.comm_exposed_cycles),
        }
