"""Dataflow-architecture (wafer-scale engine) simulator.

A functional + cycle-approximate model of the machine the paper targets:

* a 2D Cartesian fabric of processing elements (PEs), each with a private
  48 KiB memory arena and an event-driven task system keyed by *colors*;
* per-PE routers with five full-duplex links (RAMP + N/E/S/W), color-routed
  32-bit wavelets, programmable switch positions with ring mode (Listing 1
  / Fig. 4 of the paper);
* DSD (data structure descriptor) vector operations with a 2-wide fp32
  SIMD cost model (§III-E.3) and full instruction/traffic counters;
* a discrete-event runtime that advances a global cycle clock, models link
  serialization and hop latency, and reports compute/communication time.

Fidelity statement: the simulator is *functionally exact* (it computes the
same numbers the algorithm specifies) and *cycle-approximate* (instruction
and transfer costs follow a documented cost model, not RTL).  All paper-
scale timing claims are produced by `repro.perf.timemodel`, which this
simulator cross-validates at small scale.

Two execution engines share this machine model (see `repro.core.engines`):
the event-driven oracle built from `fabric`/`pe`/`router`, and the
vectorized whole-fabric engine in `vector_engine` (imported lazily — not
re-exported here — which executes the same program as NumPy array sweeps
with an analytic cycle/counter model over the same `isa` costs).
"""

from repro.wse.specs import WseSpecs, WSE2
from repro.wse.wavelet import Wavelet, Message
from repro.wse.color import ColorAllocator
from repro.wse.memory import MemoryArena
from repro.wse.isa import Op, OP_FLOPS, OP_MEM_LOADS, OP_MEM_STORES
from repro.wse.trace import PerfCounters, FabricTrace
from repro.wse.router import Port, RouteEntry, RouterProgram, Router
from repro.wse.pe import ProcessingElement
from repro.wse.fabric import Fabric
from repro.wse.dsd import Dsd

__all__ = [
    "WseSpecs",
    "WSE2",
    "Wavelet",
    "Message",
    "ColorAllocator",
    "MemoryArena",
    "Op",
    "OP_FLOPS",
    "OP_MEM_LOADS",
    "OP_MEM_STORES",
    "PerfCounters",
    "FabricTrace",
    "Port",
    "RouteEntry",
    "RouterProgram",
    "Router",
    "ProcessingElement",
    "Fabric",
    "Dsd",
]
