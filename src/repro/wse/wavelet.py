"""Wavelets and messages on the fabric.

The WSE moves 32-bit packets ("wavelets"), each tagged with a color that
selects the route and the handler (§III, Fig. 2).  For simulation
efficiency we batch a contiguous burst of wavelets into a
:class:`Message` — functionally identical (ordered delivery on a color) and
timed as a pipelined burst (cut-through: latency = hops × hop_latency +
length).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Wavelet:
    """A single 32-bit fabric packet.

    Attributes
    ----------
    color:
        Routing color (0..routable_colors-1).
    data:
        The 32-bit payload (fp32 value for data wavelets; opaque for
        control wavelets).
    is_control:
        Control wavelets advance router switch positions as they pass
        (Listing 1's ``mov32(fabric_control, ...)`` mechanism).
    """

    color: int
    data: float = 0.0
    is_control: bool = False


@dataclass
class Message:
    """A burst of wavelets sharing one color and one source.

    Attributes
    ----------
    color:
        Routing color.
    payload:
        1D float array; each element is one 32-bit data wavelet.  Control
        messages carry an empty payload.
    src:
        (x, y) of the PE that injected the message (diagnostics only; the
        fabric routes purely by color/port).
    is_control:
        Whether this is a switch-advancing control message.
    tag:
        Free-form diagnostic label (e.g. "halo-E", "allreduce-row").
    """

    color: int
    payload: np.ndarray
    src: tuple[int, int]
    is_control: bool = False
    tag: str = ""

    def __post_init__(self) -> None:
        self.payload = np.atleast_1d(np.asarray(self.payload))
        if self.payload.ndim != 1:
            raise ValidationError(
                f"message payload must be 1D, got {self.payload.ndim}D"
            )

    @property
    def num_wavelets(self) -> int:
        """Number of 32-bit packets this message occupies on a link."""
        return max(1, int(self.payload.size))

    def nbytes(self, wavelet_bytes: int = 4) -> int:
        return self.num_wavelets * wavelet_bytes

    def copy(self) -> "Message":
        return Message(
            self.color, self.payload.copy(), self.src, self.is_control, self.tag
        )
