"""Per-PE routers: five full-duplex links, color routes, switch positions.

Each PE's router manages a RAMP link (to/from its own PE) and North, East,
South, West links to neighbouring routers (Fig. 2).  A color's route can be
*switched*: up to two positions, each an (rx-ports → tx-ports) entry, with
``ring_mode`` returning to position 0 after the last (Listing 1).  Control
wavelets advance the switch position of the routers they transit — the
mechanism Fig. 4b uses to alternate a PE between Sending and Receiving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError, RoutingError


class Port(enum.Enum):
    """Router ports.  RAMP connects the router to its own PE."""

    RAMP = "ramp"
    NORTH = "north"
    EAST = "east"
    SOUTH = "south"
    WEST = "west"

    @property
    def opposite(self) -> "Port":
        return _OPPOSITE[self]

    @property
    def offset(self) -> tuple[int, int]:
        """Fabric coordinate offset of the neighbouring router.

        The fabric uses matrix-style coordinates: x grows eastward,
        y grows southward (row 0 is the top of the wafer) — matching the
        paper's "bottom-right PE" phrasing for the all-reduce.
        """
        return _OFFSETS[self]


_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.RAMP: Port.RAMP,
}

_OFFSETS = {
    Port.NORTH: (0, -1),
    Port.SOUTH: (0, 1),
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
    Port.RAMP: (0, 0),
}

#: The four inter-router ports.
FABRIC_PORTS = (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST)


@dataclass(frozen=True)
class RouteEntry:
    """One switch position: wavelets arriving on any ``rx`` port are
    forwarded to every ``tx`` port."""

    rx: frozenset
    tx: frozenset

    @staticmethod
    def of(rx, tx) -> "RouteEntry":
        """Convenience constructor from iterables / single ports."""
        rx = frozenset([rx] if isinstance(rx, Port) else rx)
        tx = frozenset([tx] if isinstance(tx, Port) else tx)
        return RouteEntry(rx, tx)


@dataclass
class RouterProgram:
    """A color's routing program: 1+ switch positions and ring mode."""

    positions: tuple[RouteEntry, ...]
    ring_mode: bool = False

    def __post_init__(self) -> None:
        if not self.positions:
            raise ConfigurationError("router program needs >= 1 position")


class Router:
    """Color-programmable 5-port router.

    State per color: the program (positions, ring mode) and the current
    switch position.  Dead links (fault injection) raise
    :class:`RoutingError` when a route tries to use them.
    """

    def __init__(self, x: int, y: int):
        self.x = x
        self.y = y
        self._programs: dict[int, RouterProgram] = {}
        self._position: dict[int, int] = {}
        self.dead_ports: set[Port] = set()

    # -- configuration -------------------------------------------------------

    def set_route(
        self,
        color: int,
        positions,
        *,
        ring_mode: bool = False,
    ) -> None:
        """Program ``color`` with the given switch positions.

        ``positions`` is an iterable of :class:`RouteEntry` (or (rx, tx)
        pairs accepted by :meth:`RouteEntry.of`).
        """
        entries = []
        for pos in positions:
            if isinstance(pos, RouteEntry):
                entries.append(pos)
            else:
                rx, tx = pos
                entries.append(RouteEntry.of(rx, tx))
        self._programs[color] = RouterProgram(tuple(entries), ring_mode)
        self._position[color] = 0

    def clear_route(self, color: int) -> None:
        self._programs.pop(color, None)
        self._position.pop(color, None)

    def has_route(self, color: int) -> bool:
        return color in self._programs

    # -- routing -------------------------------------------------------------

    def current_entry(self, color: int) -> RouteEntry:
        program = self._require(color)
        return program.positions[self._position[color]]

    def switch_position(self, color: int) -> int:
        self._require(color)
        return self._position[color]

    def route(self, color: int, in_port: Port) -> frozenset:
        """Output ports for a wavelet of ``color`` arriving on ``in_port``.

        Raises :class:`RoutingError` for unprogrammed colors, ports not in
        the current rx set, or routes through dead links.
        """
        entry = self.current_entry(color)
        if in_port not in entry.rx:
            raise RoutingError(
                f"router ({self.x},{self.y}): color {color} does not accept "
                f"input on {in_port.name} at switch position "
                f"{self._position[color]} (rx={sorted(p.name for p in entry.rx)})"
            )
        if in_port in self.dead_ports:
            raise RoutingError(
                f"router ({self.x},{self.y}): input link {in_port.name} is dead"
            )
        for port in entry.tx:
            if port in self.dead_ports:
                raise RoutingError(
                    f"router ({self.x},{self.y}): output link {port.name} is dead"
                )
        return entry.tx

    def advance_switch(self, color: int) -> int:
        """Advance the switch position (control-wavelet semantics).

        With ring mode, the position wraps to 0 after the last; without,
        it saturates at the last position.  Returns the new position.
        """
        program = self._require(color)
        pos = self._position[color] + 1
        if pos >= len(program.positions):
            pos = 0 if program.ring_mode else len(program.positions) - 1
        self._position[color] = pos
        return pos

    def kill_port(self, port: Port) -> None:
        """Fault injection: mark a link dead."""
        self.dead_ports.add(port)

    def _require(self, color: int) -> RouterProgram:
        if color not in self._programs:
            raise RoutingError(
                f"router ({self.x},{self.y}): no route programmed for color {color}"
            )
        return self._programs[color]
