"""The processing element: private memory, event-driven tasks, vector ISA.

A PE computes only when a task is dispatched — either a wavelet arrived on
a color it listens to, or a local color was activated (the WSE's task
model).  All arithmetic goes through the DSD vector methods (``fmuls``,
``fadds``, ...), which update the NumPy views *and* charge the ISA cost
model, so functional results and performance counters can never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.errors import ConfigurationError, RoutingError
from repro.wse.dsd import Dsd, as_view, operand_length
from repro.wse.isa import F32_BYTES, Op, vector_cycles
from repro.wse.memory import MemoryArena
from repro.wse.trace import PerfCounters


@dataclass
class _RecvSlot:
    """An open vector receive: fill ``dest`` with ``expected`` elements."""

    dest: np.ndarray
    expected: int
    filled: int = 0
    on_complete: Callable[[], None] | None = None
    completion_color: int | None = None


class ProcessingElement:
    """One PE of the fabric.

    Parameters
    ----------
    x, y:
        Fabric coordinates (x eastward, y southward).
    fabric:
        Owning :class:`repro.wse.fabric.Fabric` (used for sends/activations).
    memory_bytes:
        Local memory capacity (48 KiB on WSE-2).
    simd_width:
        fp32 SIMD lanes for DSD ops (2 on WSE-2; 1 disables vectorization —
        the §III-E.3 ablation knob).
    """

    def __init__(
        self,
        x: int,
        y: int,
        fabric,
        *,
        memory_bytes: int,
        simd_width: int = 2,
        reserved_bytes: int = 0,
    ):
        self.x = x
        self.y = y
        self.fabric = fabric
        self.memory = MemoryArena(memory_bytes, reserved_bytes=reserved_bytes)
        self.counters = PerfCounters()
        self.simd_width = int(simd_width)
        #: Cycle at which the PE becomes free to start a new task.
        self.busy_until: int = 0
        self._task_start: int | None = None
        self._task_cycles: int = 0
        self._handlers: dict[int, Callable] = {}
        self._recv_slots: dict[int, _RecvSlot] = {}
        # Ramp FIFO: wavelets that arrived before a receive was opened (or a
        # handler registered) queue here, per color, in arrival order.
        self._pending: dict[int, list] = {}
        #: When True, vector ops update counters but skip the arithmetic —
        #: the paper's Table IV experiment ("exclude all floating-point
        #: operations ... measuring the time for data communications").
        self.suppress_fp: bool = False

    # -- task clock ----------------------------------------------------------

    def begin_task(self, start_cycle: int) -> None:
        if self._task_start is not None:
            raise ConfigurationError(
                f"PE ({self.x},{self.y}): nested task execution"
            )
        self._task_start = start_cycle
        self._task_cycles = 0

    def end_task(self) -> int:
        """Finish the running task; returns its end cycle."""
        if self._task_start is None:
            raise ConfigurationError(f"PE ({self.x},{self.y}): no task running")
        end = self._task_start + self._task_cycles
        self.busy_until = max(self.busy_until, end)
        self._task_start = None
        self._task_cycles = 0
        return end

    @property
    def in_task(self) -> bool:
        return self._task_start is not None

    def task_now(self) -> int:
        """Current logical cycle inside the running task."""
        if self._task_start is None:
            raise ConfigurationError(f"PE ({self.x},{self.y}): no task running")
        return self._task_start + self._task_cycles

    def _accrue(self, op: Op, num_elements: int) -> None:
        if self.suppress_fp and op not in (Op.FMOV, Op.MOV32):
            # Comm-only mode (Table IV): arithmetic instructions are
            # removed from the program entirely — no cycles, no counts.
            # Data-movement ops (FMOV from fabric, control MOV32) remain.
            return
        cycles = vector_cycles(num_elements, self.simd_width)
        self.counters.record_op(op, num_elements, cycles)
        if self._task_start is not None:
            self._task_cycles += cycles

    def scalar_cycles(self, cycles: int = 1) -> None:
        """Charge scalar/control work (state-machine bookkeeping)."""
        self.counters.compute_cycles += cycles
        if self._task_start is not None:
            self._task_cycles += cycles

    def scalar_op(self, op: Op, count: int = 1) -> None:
        """Charge ``count`` scalar instances of ``op`` (e.g. the FADD of a
        reduction-chain combine)."""
        self._accrue(op, count)

    # -- DSD vector ISA --------------------------------------------------------

    def _binary(self, op: Op, dest: Dsd, a, b, fn) -> None:
        n = operand_length(dest, a, b)
        self._accrue(op, n)
        if self.suppress_fp:
            return
        out = as_view(dest)
        fn(as_view(a), as_view(b), out)

    def fmovs(self, dest: Dsd, src) -> None:
        """dest = src (vector copy / broadcast of a scalar)."""
        n = operand_length(dest) if not isinstance(src, (Dsd, np.ndarray)) else operand_length(dest, src)
        self._accrue(Op.FMOV, n)
        if self.suppress_fp:
            return
        out = as_view(dest)
        src_v = as_view(src)
        out[...] = src_v

    def fmuls(self, dest: Dsd, a, b) -> None:
        """dest = a * b."""
        self._binary(Op.FMUL, dest, a, b, lambda x, y, out: np.multiply(x, y, out=out, casting="unsafe"))

    def fadds(self, dest: Dsd, a, b) -> None:
        """dest = a + b."""
        self._binary(Op.FADD, dest, a, b, lambda x, y, out: np.add(x, y, out=out, casting="unsafe"))

    def fsubs(self, dest: Dsd, a, b) -> None:
        """dest = a - b."""
        self._binary(Op.FSUB, dest, a, b, lambda x, y, out: np.subtract(x, y, out=out, casting="unsafe"))

    def fnegs(self, dest: Dsd, a) -> None:
        """dest = -a."""
        n = operand_length(dest, a)
        self._accrue(Op.FNEG, n)
        if self.suppress_fp:
            return
        np.negative(as_view(a), out=as_view(dest), casting="unsafe")

    def fmacs(self, dest: Dsd, a, b) -> None:
        """dest += a * b (fused multiply-accumulate)."""
        n = operand_length(dest, a, b)
        self._accrue(Op.FMA, n)
        if self.suppress_fp:
            return
        out = as_view(dest)
        av, bv = as_view(a), as_view(b)
        if isinstance(av, float):
            out += av * bv  # scalar * vector keeps dtype via in-place op
        else:
            out += av * bv if isinstance(bv, float) else av * bv

    def dot_local(self, a: Dsd, b: Dsd) -> float:
        """Local dot product over the PE's column (one FMA per element).

        Returns a Python float; the cross-fabric combination happens via
        the all-reduce (``repro.core.allreduce``).
        """
        n = operand_length(a, b)
        self._accrue(Op.FMA, n)
        if self.suppress_fp:
            return 0.0
        return float(np.dot(as_view(a), as_view(b)))

    # -- communication ---------------------------------------------------------

    def send(
        self,
        color: int,
        payload,
        *,
        tag: str = "",
        is_control: bool = False,
    ) -> None:
        """Inject a message into the fabric on ``color``.

        Must be called inside a running task: the message departs at the
        task's current logical cycle, so computation issued before the
        send overlaps with the transfer (asynchronous-communication
        semantics, §III-E.2).
        """
        from repro.wse.wavelet import Message

        if isinstance(payload, Dsd):
            payload = payload.view().copy()
        message = Message(
            color,
            np.asarray(payload),
            (self.x, self.y),
            is_control=is_control,
            tag=tag,
        )
        depart = self.task_now()
        self.counters.record_fabric_send(message.nbytes())
        self.fabric.inject(self, message, depart)

    def send_control(self, color: int, *, tag: str = "") -> None:
        """Send a switch-advancing control wavelet on ``color``.

        Charges one MOV32 (the ``mov32(fabric_control, ...)`` of
        Listing 1).
        """
        self._accrue(Op.MOV32, 1)
        self.send(color, np.zeros(0, dtype=np.float32), tag=tag or "control", is_control=True)

    def activate(self, color: int, *, delay: int = 0) -> None:
        """Schedule this PE's local task for ``color``.

        Callable both inside a task (continuation) and from the host side
        (initial program kick-off).
        """
        when = self.task_now() + delay if self.in_task else self.fabric.now + delay
        self.fabric.schedule_activation(self, color, when)

    # -- handler / receive registration ----------------------------------------

    def on_activate(self, color: int, handler: Callable[[], None]) -> None:
        """Register the local task body for ``color``."""
        self._handlers[color] = handler

    def on_message(self, color: int, handler: Callable) -> None:
        """Register a per-message handler (used by reduction chains).

        The handler is called as ``handler(message)`` inside a PE task.
        Messages already parked in the ramp FIFO are replayed to the
        handler in arrival order.
        """
        self._handlers[color] = handler
        pending = self._pending.pop(color, None)
        if pending:
            def _replay() -> None:
                for message in pending:
                    self.counters.record_fabric_receive(message.nbytes())
                    handler(message)

            if self.in_task:
                _replay()
            else:
                self.fabric.schedule_task(
                    self, self.fabric.now, _replay, tag=f"replay-c{color}"
                )

    def recv_into(
        self,
        color: int,
        dest: Dsd | np.ndarray,
        expected: int,
        *,
        on_complete: Callable[[], None] | None = None,
        completion_color: int | None = None,
    ) -> None:
        """Open a vector receive: fill ``dest`` with ``expected`` elements.

        Incoming payload wavelets on ``color`` are moved into ``dest``
        (one FMOV per element: 1 fabric load + 1 memory store, Table V's
        convention).  When full, ``on_complete`` runs in the same task
        and/or ``completion_color`` is activated — the completion-callback
        colors of Table I.

        ``expected == 0`` (edge PEs with no neighbour) completes
        immediately.
        """
        dest_view = dest.view() if isinstance(dest, Dsd) else dest
        if color in self._recv_slots:
            raise ConfigurationError(
                f"PE ({self.x},{self.y}): receive already open on color {color}"
            )
        slot = _RecvSlot(dest_view, expected, 0, on_complete, completion_color)
        if expected == 0:
            self._complete_recv_now(color, slot)
            return
        self._recv_slots[color] = slot
        # Drain wavelets that arrived before the receive was opened (the
        # ramp FIFO).  Must run inside a task to charge FMOV cycles; if we
        # are already in one, drain inline.
        pending = self._pending.get(color)
        if pending:
            if self.in_task:
                self._drain_pending(color)
            else:
                self.fabric.schedule_task(
                    self,
                    self.fabric.now,
                    lambda: self._drain_pending(color),
                    tag=f"drain-c{color}",
                )

    def _drain_pending(self, color: int) -> None:
        pending = self._pending.get(color, [])
        while pending and color in self._recv_slots:
            message = pending.pop(0)
            self._fill_slot(color, self._recv_slots[color], message)
        if not pending:
            self._pending.pop(color, None)

    def _complete_recv_now(self, color: int, slot: _RecvSlot) -> None:
        """Fire completion for an empty (edge) receive."""
        def _done() -> None:
            if slot.on_complete is not None:
                slot.on_complete()
            if slot.completion_color is not None:
                self.activate(slot.completion_color)

        when = self.task_now() if self.in_task else self.fabric.now
        self.fabric.schedule_task(self, when, _done, tag=f"recv0-c{color}")

    # -- fabric-facing dispatch (called inside a PE task) -----------------------

    def deliver_message(self, message) -> None:
        """Handle an arriving data/control message (fabric calls this
        inside a scheduled PE task)."""
        color = message.color
        slot = self._recv_slots.get(color)
        if slot is not None:
            self._fill_slot(color, slot, message)
            return
        handler = self._handlers.get(color)
        if handler is not None:
            self.counters.record_fabric_receive(message.nbytes())
            handler(message)
            return
        # No consumer yet: park in the ramp FIFO until a receive opens.
        self._pending.setdefault(color, []).append(message)

    def run_activation(self, color: int) -> None:
        handler = self._handlers.get(color)
        if handler is None:
            raise RoutingError(
                f"PE ({self.x},{self.y}): activation on color {color} "
                "without a registered task"
            )
        handler()

    def _fill_slot(self, color: int, slot: _RecvSlot, message) -> None:
        n = int(message.payload.size)
        if slot.filled + n > slot.expected:
            raise RoutingError(
                f"PE ({self.x},{self.y}): receive overflow on color {color}: "
                f"{slot.filled}+{n} > {slot.expected}"
            )
        # FMOV each element from fabric into memory (the FMOV accounting
        # already includes the fabric load per Table V's convention).
        self._accrue(Op.FMOV, n)
        if not self.suppress_fp:
            slot.dest[slot.filled : slot.filled + n] = message.payload
        slot.filled += n
        if slot.filled == slot.expected:
            del self._recv_slots[color]
            if slot.on_complete is not None:
                slot.on_complete()
            if slot.completion_color is not None:
                self.activate(slot.completion_color)

    # -- host staging (not part of kernel timing) --------------------------------

    def host_write(self, name: str, data: np.ndarray) -> None:
        """memcpy-style host→PE staging (free of kernel-time accounting,
        matching the paper's device-only time measurements)."""
        buf = self.memory.get(name)
        buf[...] = np.asarray(data, dtype=buf.dtype).reshape(buf.shape)

    def host_read(self, name: str) -> np.ndarray:
        """PE→host staging (copy out)."""
        return self.memory.get(name).copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PE({self.x},{self.y})"
