"""Data Structure Descriptors (DSDs) — the WSE's vector registers.

A DSD describes an array slice (base buffer, offset, length, stride) that
vector instructions stream through (§III-E.3): "The DSDs contain
information regarding the address, length, and stride of the arrays on
which a given instruction can operate."  Instructions acting on DSDs are
issued via :class:`repro.wse.pe.ProcessingElement` methods (``fmuls``,
``fadds``, ...), which perform the arithmetic on the underlying NumPy
views *and* charge the ISA cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError, ValidationError


@dataclass(frozen=True)
class Dsd:
    """A vector descriptor over a PE-local buffer.

    Attributes
    ----------
    buffer:
        The backing 1D NumPy array (a PE memory-arena allocation).
    offset, length, stride:
        The described slice ``buffer[offset : offset + length*stride : stride]``.
    """

    buffer: np.ndarray
    offset: int = 0
    length: int | None = None
    stride: int = 1

    def __post_init__(self) -> None:
        if self.buffer.ndim != 1:
            raise ConfigurationError("DSDs describe 1D buffers")
        if self.stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {self.stride}")
        n = self.resolved_length
        end = self.offset + (n - 1) * self.stride if n > 0 else self.offset
        if self.offset < 0 or (n > 0 and end >= self.buffer.size):
            raise ConfigurationError(
                f"DSD [offset={self.offset}, length={n}, stride={self.stride}] "
                f"exceeds buffer of size {self.buffer.size}"
            )

    @property
    def resolved_length(self) -> int:
        if self.length is not None:
            return self.length
        # Full remaining extent.
        return max(0, (self.buffer.size - self.offset + self.stride - 1) // self.stride)

    def view(self) -> np.ndarray:
        """The NumPy view the descriptor denotes (no copy)."""
        n = self.resolved_length
        stop = self.offset + n * self.stride
        return self.buffer[self.offset : stop : self.stride]

    def sub(self, offset: int, length: int) -> "Dsd":
        """A sub-descriptor relative to this one (stride preserved)."""
        return Dsd(
            self.buffer,
            self.offset + offset * self.stride,
            length,
            self.stride,
        )

    def __len__(self) -> int:
        return self.resolved_length


def as_view(operand) -> np.ndarray | float:
    """Resolve an operand: DSD -> view, ndarray -> itself, scalar -> float."""
    if isinstance(operand, Dsd):
        return operand.view()
    if isinstance(operand, np.ndarray):
        if operand.ndim != 1:
            raise ValidationError("vector operands must be 1D")
        return operand
    return float(operand)


def operand_length(*operands) -> int:
    """Common vector length of the operands (scalars broadcast)."""
    length: int | None = None
    for op in operands:
        if isinstance(op, Dsd):
            n = op.resolved_length
        elif isinstance(op, np.ndarray):
            n = op.size
        else:
            continue
        if length is None:
            length = n
        elif n != length:
            raise ValidationError(
                f"operand length mismatch: {n} vs {length}"
            )
    if length is None:
        raise ValidationError("at least one vector operand required")
    return length
