"""Machine specifications for the simulated wafer-scale engine.

Numbers are taken from the paper (§III intro, §V, Fig. 2 and Fig. 6):
~850k PEs on the wafer, a 750×994 usable fabric for SDK programs, 48 KiB of
local memory per PE, 32-bit fabric packets, two fp32 SIMD units, and the
Fig. 6 roofline ceilings (1.785 PFLOP/s peak, 20 PB/s aggregate memory
bandwidth, 3.3 PB/s aggregate fabric bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class WseSpecs:
    """Parameters of a wafer-scale dataflow machine.

    The defaults (see :data:`WSE2`) describe the CS-2 used in the paper.
    Small test fabrics reuse the same spec with a reduced width/height via
    :meth:`with_fabric`.
    """

    name: str
    fabric_width: int
    fabric_height: int
    pe_memory_bytes: int
    clock_hz: float
    simd_width_f32: int
    peak_flops: float
    memory_bandwidth_bytes: float
    fabric_bandwidth_bytes: float
    wavelet_bytes: int = 4
    routable_colors: int = 24
    hop_latency_cycles: int = 1

    def __post_init__(self) -> None:
        require(self.fabric_width >= 1, "fabric_width must be >= 1")
        require(self.fabric_height >= 1, "fabric_height must be >= 1")
        require(self.pe_memory_bytes > 0, "pe_memory_bytes must be > 0")
        require(self.simd_width_f32 >= 1, "simd_width_f32 must be >= 1")
        require(self.routable_colors >= 1, "routable_colors must be >= 1")
        check_positive("clock_hz", self.clock_hz)
        check_positive("peak_flops", self.peak_flops)

    @property
    def num_fabric_pes(self) -> int:
        return self.fabric_width * self.fabric_height

    @property
    def per_pe_peak_flops(self) -> float:
        """Peak fp32 FLOP/s of one PE (SIMD width × clock, FMA = 2 FLOPs)."""
        return self.simd_width_f32 * 2.0 * self.clock_hz

    def with_fabric(self, width: int, height: int) -> "WseSpecs":
        """Same machine, smaller program rectangle (for simulation)."""
        return WseSpecs(
            name=self.name,
            fabric_width=width,
            fabric_height=height,
            pe_memory_bytes=self.pe_memory_bytes,
            clock_hz=self.clock_hz,
            simd_width_f32=self.simd_width_f32,
            peak_flops=self.peak_flops,
            memory_bandwidth_bytes=self.memory_bandwidth_bytes,
            fabric_bandwidth_bytes=self.fabric_bandwidth_bytes,
            wavelet_bytes=self.wavelet_bytes,
            routable_colors=self.routable_colors,
            hop_latency_cycles=self.hop_latency_cycles,
        )

    def with_memory(self, pe_memory_bytes: int) -> "WseSpecs":
        """Same machine, different per-PE memory (ablation knob)."""
        return WseSpecs(
            name=self.name,
            fabric_width=self.fabric_width,
            fabric_height=self.fabric_height,
            pe_memory_bytes=pe_memory_bytes,
            clock_hz=self.clock_hz,
            simd_width_f32=self.simd_width_f32,
            peak_flops=self.peak_flops,
            memory_bandwidth_bytes=self.memory_bandwidth_bytes,
            fabric_bandwidth_bytes=self.fabric_bandwidth_bytes,
            wavelet_bytes=self.wavelet_bytes,
            routable_colors=self.routable_colors,
            hop_latency_cycles=self.hop_latency_cycles,
        )


#: The CS-2 / WSE-2 configuration evaluated in the paper.  The clock is
#: derived from the Fig. 6 ceiling: 1.785 PFLOP/s over 745,500 usable PEs
#: with 2-wide fp32 FMA units -> ~600 MHz effective per-PE issue rate.
WSE2 = WseSpecs(
    name="CS-2 (WSE-2)",
    fabric_width=750,
    fabric_height=994,
    pe_memory_bytes=48 * 1024,
    clock_hz=1.785e15 / (750 * 994 * 2 * 2.0),
    simd_width_f32=2,
    peak_flops=1.785e15,
    memory_bandwidth_bytes=20e15,
    fabric_bandwidth_bytes=3.3e15,
)
