"""The fabric: PEs + routers + a discrete-event runtime.

Timing model (cycle-approximate, documented in DESIGN.md):

* a PE executes one task at a time; a task scheduled at cycle ``t`` starts
  at ``max(t, pe.busy_until)`` and costs the cycles its DSD/scalar ops
  accrue;
* a message occupying ``n`` wavelets serializes its egress link for ``n``
  cycles and arrives after ``hop_latency + n`` (cut-through pipelining),
  with per-link back-pressure via link-free bookkeeping;
* control wavelets advance the switch position of every router they
  transit, after forwarding (Fig. 4b semantics);
* routers may multicast (several tx ports); RAMP delivery dispatches the
  PE's receive slot or message handler as a task.

The runtime is deterministic: events are ordered by (time, sequence).
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.util.errors import ConfigurationError, RoutingError
from repro.wse.pe import ProcessingElement
from repro.wse.router import Port, Router
from repro.wse.specs import WseSpecs
from repro.wse.trace import FabricTrace
from repro.wse.wavelet import Message


class Fabric:
    """A ``width × height`` rectangle of PEs with nearest-neighbour links.

    Parameters
    ----------
    spec:
        Machine description (memory per PE, SIMD width, latencies).
    width, height:
        Fabric rectangle; defaults to the spec's full fabric.
    dtype:
        Element dtype for PE buffers (fp32 paper default; fp64 available
        for tight numerical cross-checks).
    """

    def __init__(
        self,
        spec: WseSpecs,
        *,
        width: int | None = None,
        height: int | None = None,
        dtype=np.float32,
        simd_width: int | None = None,
        reserved_pe_bytes: int = 0,
    ):
        self.spec = spec
        self.width = int(width if width is not None else spec.fabric_width)
        self.height = int(height if height is not None else spec.fabric_height)
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("fabric must be at least 1x1")
        if self.width > spec.fabric_width or self.height > spec.fabric_height:
            raise ConfigurationError(
                f"requested {self.width}x{self.height} exceeds the machine "
                f"fabric {spec.fabric_width}x{spec.fabric_height}"
            )
        self.dtype = np.dtype(dtype)
        simd = simd_width if simd_width is not None else spec.simd_width_f32
        self.routers = [
            [Router(x, y) for x in range(self.width)] for y in range(self.height)
        ]
        self.pes = [
            [
                ProcessingElement(
                    x,
                    y,
                    self,
                    memory_bytes=spec.pe_memory_bytes,
                    simd_width=simd,
                    reserved_bytes=reserved_pe_bytes,
                )
                for x in range(self.width)
            ]
            for y in range(self.height)
        ]
        self.now: int = 0
        self.trace = FabricTrace()
        self._queue: list = []
        self._seq = 0
        self._link_free: dict[tuple[int, int, Port], int] = {}
        self._events_processed = 0
        # Router-input stall queues: wavelets whose color is programmed but
        # whose current switch position does not accept their input port
        # wait here, in FIFO order, until a control advances the switch
        # (hardware flow-control semantics).
        self._stalled: dict[tuple[int, int, int, Port], list[Message]] = {}

    # -- topology ---------------------------------------------------------------

    def pe(self, x: int, y: int) -> ProcessingElement:
        self._check_coords(x, y)
        return self.pes[y][x]

    def router(self, x: int, y: int) -> Router:
        self._check_coords(x, y)
        return self.routers[y][x]

    def iter_pes(self):
        for row in self.pes:
            yield from row

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbor_coords(self, x: int, y: int, port: Port) -> tuple[int, int] | None:
        dx, dy = port.offset
        nx, ny = x + dx, y + dy
        return (nx, ny) if self.in_bounds(nx, ny) else None

    def _check_coords(self, x: int, y: int) -> None:
        if not self.in_bounds(x, y):
            raise ConfigurationError(
                f"coordinates ({x},{y}) outside {self.width}x{self.height} fabric"
            )

    def kill_link(self, x: int, y: int, port: Port) -> None:
        """Fault injection: disable a link on both of its endpoints."""
        self.router(x, y).kill_port(port)
        n = self.neighbor_coords(x, y, port)
        if n is not None:
            self.router(*n).kill_port(port.opposite)

    # -- event queue --------------------------------------------------------------

    def schedule(self, when: int, fn: Callable, *args) -> None:
        if when < self.now:
            raise ConfigurationError(
                f"cannot schedule into the past ({when} < {self.now})"
            )
        heapq.heappush(self._queue, (int(when), self._seq, fn, args))
        self._seq += 1

    def schedule_task(
        self, pe: ProcessingElement, when: int, fn: Callable, *, tag: str = ""
    ) -> None:
        """Schedule ``fn`` to run as a task on ``pe`` (serialized per PE)."""

        def _run() -> None:
            start = max(self.now, pe.busy_until)
            pe.begin_task(start)
            try:
                fn()
            finally:
                end = pe.end_task()
                self.trace.makespan_cycles = max(self.trace.makespan_cycles, end)

        self.schedule(when, _run)

    def schedule_activation(self, pe: ProcessingElement, color: int, when: int) -> None:
        self.schedule_task(pe, when, lambda: pe.run_activation(color), tag=f"act-c{color}")

    def run(self, *, max_events: int = 20_000_000) -> FabricTrace:
        """Process events until the fabric is idle; returns the trace."""
        while self._queue:
            when, _, fn, args = heapq.heappop(self._queue)
            self.now = max(self.now, when)
            fn(*args)
            self._events_processed += 1
            if self._events_processed > max_events:
                raise ConfigurationError(
                    f"event budget exceeded ({max_events}); "
                    "likely a livelocked protocol"
                )
        if any(self._stalled.values()):
            stuck = {
                k: len(v) for k, v in self._stalled.items() if v
            }
            raise RoutingError(
                f"fabric idle with wavelets stalled at routers: {stuck} "
                "(protocol deadlock: no control ever advanced these switches)"
            )
        self.trace.makespan_cycles = max(self.trace.makespan_cycles, self.now)
        max_compute = 0
        for pe in self.iter_pes():
            max_compute = max(max_compute, pe.counters.compute_cycles)
            pe.counters.idle_cycles = max(
                0, self.trace.makespan_cycles - pe.counters.compute_cycles
            )
        self.trace.max_compute_cycles = max_compute
        return self.trace

    # -- message transport ----------------------------------------------------------

    def inject(self, pe: ProcessingElement, message: Message, depart: int) -> None:
        """A PE hands a message to its router via the RAMP link."""
        self.trace.total_messages += 1
        self.trace.total_wavelets += message.num_wavelets
        self.schedule(depart, self._traverse, pe.x, pe.y, Port.RAMP, message)

    def _traverse(self, x: int, y: int, in_port: Port, message: Message) -> None:
        """Route ``message`` arriving at router (x, y) on ``in_port``.

        Keeps per-(color, port) FIFO order: if earlier wavelets are
        stalled on this input, the new arrival queues behind them.
        """
        key = (x, y, message.color, in_port)
        if self._stalled.get(key):
            self._stalled[key].append(message)
            return
        self._try_route(x, y, in_port, message)

    def _try_route(self, x: int, y: int, in_port: Port, message: Message) -> None:
        router = self.routers[y][x]
        if router.has_route(message.color) and in_port is not Port.RAMP:
            entry = router.current_entry(message.color)
            if in_port not in entry.rx:
                if message.is_control:
                    # Control wavelets are handled by the router command
                    # logic regardless of the data route: advance the
                    # switch here and stop propagating.
                    router.advance_switch(message.color)
                    self._drain_stalled(x, y, message.color)
                    return
                # Programmed color, wrong switch position: stall until a
                # control wavelet advances the switch.
                self._stalled.setdefault(
                    (x, y, message.color, in_port), []
                ).append(message)
                return
        out_ports = router.route(message.color, in_port)
        for port in sorted(out_ports, key=lambda p: p.value):
            if port is Port.RAMP:
                if message.is_control:
                    # Control wavelets are consumed by routers: a RAMP
                    # terminus just ends the command's propagation (the
                    # switch advance below still happens).
                    continue
                pe = self.pes[y][x]
                self.schedule_task(
                    pe,
                    self.now,
                    lambda pe=pe, m=message: pe.deliver_message(m),
                    tag=f"recv-c{message.color}",
                )
                continue
            target = self.neighbor_coords(x, y, port)
            if target is None:
                raise RoutingError(
                    f"router ({x},{y}): route for color {message.color} "
                    f"points off-fabric ({port.name})"
                )
            link = (x, y, port)
            occupancy = message.num_wavelets
            depart = max(self.now, self._link_free.get(link, 0))
            self._link_free[link] = depart + occupancy
            arrival = depart + self.spec.hop_latency_cycles + occupancy
            self.trace.total_hop_wavelets += occupancy
            self.trace.comm_busy_cycles += occupancy
            nx, ny = target
            self.schedule(arrival, self._traverse, nx, ny, port.opposite, message)
        if message.is_control:
            router.advance_switch(message.color)
            self._drain_stalled(x, y, message.color)

    def _drain_stalled(self, x: int, y: int, color: int) -> None:
        """Re-attempt stalled wavelets after a switch advance."""
        router = self.routers[y][x]
        made_progress = True
        while made_progress:
            made_progress = False
            for port in (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST):
                key = (x, y, color, port)
                queue = self._stalled.get(key)
                if not queue:
                    continue
                entry = router.current_entry(color)
                if port not in entry.rx:
                    continue
                message = queue.pop(0)
                if not queue:
                    del self._stalled[key]
                # May advance the switch again (stalled control) and
                # recurse; queues are finite so this terminates.
                self._try_route(x, y, port, message)
                made_progress = True
                break

    # -- conversions -------------------------------------------------------------

    def cycles_to_seconds(self, cycles: int | float) -> float:
        return float(cycles) / self.spec.clock_hz

    def elapsed_seconds(self) -> float:
        return self.cycles_to_seconds(self.trace.makespan_cycles)

    def total_flops(self) -> int:
        return sum(pe.counters.flops for pe in self.iter_pes())

    def merged_counters(self):
        from repro.wse.trace import PerfCounters

        merged = PerfCounters()
        for pe in self.iter_pes():
            merged = merged.merged_with(pe.counters)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fabric({self.width}x{self.height}, {self.spec.name})"
