"""Color allocation.

The WSE-2 exposes a small set of routable colors; programs must budget
them (the paper dedicates C1/C2 to X-dimension actions, C3/C4 to
Y-dimension actions, and C5..C12 to completion callbacks — 12 colors for
the exchange alone).  :class:`ColorAllocator` hands out distinct colors and
fails loudly when the hardware budget is exceeded.
"""

from __future__ import annotations

from repro.util.errors import ConfigurationError


class ColorAllocator:
    """Allocates named colors from a finite pool.

    >>> colors = ColorAllocator(24)
    >>> c1 = colors.allocate("exchange-x-odd")
    >>> colors.name_of(c1)
    'exchange-x-odd'
    """

    def __init__(self, num_colors: int = 24):
        if num_colors < 1:
            raise ConfigurationError("need at least one routable color")
        self.num_colors = int(num_colors)
        self._names: dict[int, str] = {}
        self._by_name: dict[str, int] = {}
        self._next = 0

    def allocate(self, name: str) -> int:
        """Allocate a fresh color for ``name`` (idempotent per name)."""
        if name in self._by_name:
            return self._by_name[name]
        if self._next >= self.num_colors:
            raise ConfigurationError(
                f"out of routable colors ({self.num_colors}); "
                f"allocated: {sorted(self._by_name)}"
            )
        color = self._next
        self._next += 1
        self._names[color] = name
        self._by_name[name] = color
        return color

    def allocate_block(self, prefix: str, count: int) -> list[int]:
        """Allocate ``count`` colors named ``prefix-0`` .. ``prefix-{n-1}``."""
        return [self.allocate(f"{prefix}-{i}") for i in range(count)]

    def name_of(self, color: int) -> str:
        return self._names.get(color, f"<unallocated {color}>")

    def lookup(self, name: str) -> int:
        if name not in self._by_name:
            raise ConfigurationError(f"color {name!r} was never allocated")
        return self._by_name[name]

    @property
    def num_allocated(self) -> int:
        return self._next

    @property
    def remaining(self) -> int:
        return self.num_colors - self._next
