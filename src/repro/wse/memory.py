"""Per-PE memory arena with hard capacity accounting.

Each WSE-2 PE owns 48 KiB that must hold code, cell data, face
coefficients and all communication buffers; §III-E.1 of the paper is about
squeezing into it by manual buffer reuse ("analogous to register
allocation ... manually handled").  :class:`MemoryArena` enforces the
budget: every allocation is tracked, exceeding capacity raises
:class:`PeOutOfMemory`, and :meth:`alias` models the paper's buffer-reuse
optimization (two logical buffers sharing one physical allocation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError, PeOutOfMemory


@dataclass
class _Allocation:
    name: str
    array: np.ndarray
    nbytes: int
    alias_of: str | None = None


class MemoryArena:
    """A capacity-tracked allocator of NumPy arrays.

    Parameters
    ----------
    capacity_bytes:
        Hard limit (48 KiB for a WSE-2 PE).
    reserved_bytes:
        Bytes charged up front for code/runtime (not allocatable).
    """

    def __init__(self, capacity_bytes: int, *, reserved_bytes: int = 0):
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be > 0")
        if not 0 <= reserved_bytes <= capacity_bytes:
            raise ConfigurationError(
                f"reserved_bytes must be in [0, {capacity_bytes}]"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.reserved_bytes = int(reserved_bytes)
        self._allocations: dict[str, _Allocation] = {}
        self._used = reserved_bytes
        self.high_water_bytes = reserved_bytes

    # -- allocation ----------------------------------------------------------

    def alloc(self, name: str, shape, dtype=np.float32) -> np.ndarray:
        """Allocate a zeroed array charged against the arena."""
        if name in self._allocations:
            raise ConfigurationError(f"buffer {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype)
        nbytes = int(array.nbytes)
        if self._used + nbytes > self.capacity_bytes:
            raise PeOutOfMemory(
                f"allocating {name!r} ({nbytes} B) exceeds PE memory "
                f"({self._used}/{self.capacity_bytes} B used)",
                requested=nbytes,
                available=self.capacity_bytes - self._used,
                capacity=self.capacity_bytes,
            )
        self._used += nbytes
        self.high_water_bytes = max(self.high_water_bytes, self._used)
        self._allocations[name] = _Allocation(name, array, nbytes)
        return array

    def alias(self, name: str, existing: str) -> np.ndarray:
        """Reuse an existing buffer under a new name (zero extra bytes).

        This is the §III-E.1 memory-saving optimization: "overwriting or
        reusing data buffers eliminates the necessity for data
        replication".  The alias shares storage — callers are responsible
        for the liveness reasoning, exactly like the hand-managed CSL code.
        """
        if name in self._allocations:
            raise ConfigurationError(f"buffer {name!r} already allocated")
        base = self._get(existing)
        self._allocations[name] = _Allocation(name, base.array, 0, alias_of=existing)
        return base.array

    def free(self, name: str) -> None:
        """Release a buffer (aliases release zero bytes)."""
        alloc = self._allocations.pop(name, None)
        if alloc is None:
            raise ConfigurationError(f"buffer {name!r} is not allocated")
        self._used -= alloc.nbytes

    def get(self, name: str) -> np.ndarray:
        return self._get(name).array

    def _get(self, name: str) -> _Allocation:
        if name not in self._allocations:
            raise ConfigurationError(f"buffer {name!r} is not allocated")
        return self._allocations[name]

    # -- accounting ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    @property
    def num_buffers(self) -> int:
        return len(self._allocations)

    def report(self) -> dict[str, int]:
        """Per-buffer byte accounting (aliases report 0)."""
        return {a.name: a.nbytes for a in self._allocations.values()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryArena({self._used}/{self.capacity_bytes} B, "
            f"{len(self._allocations)} buffers)"
        )
