"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors.
"""

from __future__ import annotations

import sys


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ValidationError(ReproError):
    """An input array or value failed a structural validation check."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within max_iters.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Squared residual norm (``r^T r``) at the point of failure.
    """

    def __init__(self, message: str, iterations: int, residual_norm: float):
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual_norm = float(residual_norm)

    def __reduce__(self):
        # args only holds the message; default reduce would re-call
        # __init__ with one argument and fail on unpickle (process pools).
        return (self.__class__, (self.args[0], self.iterations, self.residual_norm))


class PeOutOfMemory(ReproError):
    """A processing element exhausted its private local memory (48 KiB).

    Mirrors the hard capacity constraint of a WSE-2 PE: the paper's §III-E.1
    discusses manual buffer reuse precisely because this limit is real.
    """

    def __init__(self, message: str, requested: int, available: int, capacity: int):
        super().__init__(message)
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)

    def __reduce__(self):
        return (
            self.__class__,
            (self.args[0], self.requested, self.available, self.capacity),
        )


class RoutingError(ReproError):
    """A wavelet could not be routed (bad color, missing route, dead link)."""


def _group_message(message: str, errors) -> str:
    lines = [message]
    for exc in errors:
        lines.append(f"  - {type(exc).__name__}: {exc}")
    return "\n".join(lines)


if sys.version_info >= (3, 11):

    class SolveErrorGroup(ExceptionGroup, ReproError):  # noqa: F821
        """Several batch entries failed; every per-entry error is carried.

        A real :class:`ExceptionGroup` (``except*`` works) that is also a
        :class:`ReproError`, so ``except ReproError`` keeps catching
        library failures.  ``.errors`` lists the per-entry exceptions in
        entry order — the service-side retry taxonomy classifies each one
        instead of seeing only whichever entry happened to fail first.
        """

        def __new__(cls, message: str, errors):
            errors = list(errors)
            return super().__new__(cls, _group_message(message, errors), errors)

        def derive(self, excs):
            return SolveErrorGroup(self.message.splitlines()[0], excs)

        @property
        def errors(self) -> list[Exception]:
            return list(self.exceptions)

else:  # pragma: no cover - exercised only on Python < 3.11

    class SolveErrorGroup(ReproError):  # type: ignore[no-redef]
        """Several batch entries failed; every per-entry error is carried.

        Pre-3.11 stand-in for the :class:`ExceptionGroup` variant: same
        message format and the same ``.errors`` list, minus ``except*``.
        """

        def __init__(self, message: str, errors):
            errors = list(errors)
            super().__init__(_group_message(message, errors))
            self.exceptions = tuple(errors)

        @property
        def errors(self) -> list[Exception]:
            return list(self.exceptions)
