"""Human-readable formatting: SI prefixes, seconds, and aligned text tables.

The benchmark harness prints paper-style rows; these helpers keep that output
consistent across all ``benchmarks/bench_*`` modules.
"""

from __future__ import annotations

from typing import Any, Sequence

_SI_PREFIXES = [
    (1e18, "E"),
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
]


def format_si(value: float, unit: str = "", *, precision: int = 3) -> str:
    """Format a value with an SI prefix, e.g. ``1.217e15 -> '1.217 PFLOP/s'``."""
    value = float(value)
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            return f"{value / factor:.{precision}g} {prefix}{unit}".rstrip()
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{precision}g} {prefix}{unit}".rstrip()


def format_seconds(seconds: float, *, precision: int = 4) -> str:
    """Format a duration in the unit the paper uses (seconds, 4 decimals)."""
    return f"{float(seconds):.{precision}f} s"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned, pipe-separated text table.

    Numeric cells are right-aligned; everything else left-aligned.  Used by
    the benchmark harness to print rows matching the paper's tables.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            w = widths[i] if i < len(widths) else len(cell)
            right = _is_numeric(cell)
            parts.append(cell.rjust(w) if right else cell.ljust(w))
        return "| " + " | ".join(parts) + " |"

    sep = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 1e5 else f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("x", "").strip()
    try:
        float(stripped)
        return True
    except ValueError:
        return False
