"""Small validation helpers used across the library.

All helpers raise :class:`repro.util.errors.ValidationError` (or
:class:`ConfigurationError` via :func:`require`) with messages that name the
offending argument, which keeps call sites one-liners.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.util.errors import ConfigurationError, ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    name: str, value: float, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Validate that ``lo <= value <= hi`` (or strict inequality)."""
    value = float(value)
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValidationError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value}"
        )
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate an array's exact shape."""
    array = np.asarray(array)
    if tuple(array.shape) != tuple(shape):
        raise ValidationError(
            f"{name} must have shape {tuple(shape)}, got {tuple(array.shape)}"
        )
    return array


def check_dtype(name: str, array: np.ndarray, dtype: Any) -> np.ndarray:
    """Validate an array's dtype exactly (no silent casting)."""
    array = np.asarray(array)
    if array.dtype != np.dtype(dtype):
        raise ValidationError(
            f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}"
        )
    return array


def check_all_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that an array contains no NaN/Inf entries."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains non-finite values")
    return array


def check_index(name: str, value: int, size: int) -> int:
    """Validate an integer index against ``range(size)``."""
    value = int(value)
    if not 0 <= value < size:
        raise ValidationError(f"{name} must be in [0, {size}), got {value}")
    return value


def as_tuple3(name: str, value: Iterable[int]) -> tuple[int, int, int]:
    """Coerce an iterable into a 3-tuple of positive ints."""
    items = tuple(int(v) for v in value)
    if len(items) != 3:
        raise ValidationError(f"{name} must have exactly 3 entries, got {len(items)}")
    for v in items:
        if v <= 0:
            raise ValidationError(f"{name} entries must be > 0, got {items}")
    return items  # type: ignore[return-value]
