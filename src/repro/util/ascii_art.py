"""ASCII rendering of 2D fields (used for Fig. 5 since matplotlib is offline).

The paper's Fig. 5 plots the converged pressure field with an injector at the
top-left and a producer at the bottom-right.  We render the same field as a
terminal heatmap and also export raw ``.npy`` data from the examples so a
downstream user can plot with their own tooling.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

#: Luminance ramp from dark to bright, ~16 levels.
_RAMP = " .:-=+*#%@"
_RAMP_FINE = " .'`^,:;Il!i><~+_-?][}{1)(|/tfjrxnuvczXYUJCLQ0OZmwqpdbkhao*#MW&8%B@$"


def render_heatmap(
    field: np.ndarray,
    *,
    width: int = 72,
    height: int = 24,
    fine: bool = False,
    vmin: float | None = None,
    vmax: float | None = None,
    border: bool = True,
) -> str:
    """Render a 2D array as an ASCII heatmap string.

    Parameters
    ----------
    field:
        2D array, rendered row 0 at the top.
    width, height:
        Output size in characters; the field is resampled by nearest
        neighbour (no interpolation, keeps extrema visible).
    fine:
        Use the 70-level ramp instead of the 10-level one.
    vmin, vmax:
        Color-scale limits; default to the field's min/max.
    border:
        Surround the plot with a box.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValidationError(f"render_heatmap expects a 2D array, got {field.ndim}D")
    if field.size == 0:
        raise ValidationError("render_heatmap: empty field")
    ramp = _RAMP_FINE if fine else _RAMP
    lo = float(np.nanmin(field)) if vmin is None else float(vmin)
    hi = float(np.nanmax(field)) if vmax is None else float(vmax)
    span = hi - lo
    if span <= 0:
        span = 1.0
    ny, nx = field.shape
    height = max(1, min(height, ny))
    width = max(1, min(width, nx))
    rows_idx = np.linspace(0, ny - 1, height).round().astype(int)
    cols_idx = np.linspace(0, nx - 1, width).round().astype(int)
    sampled = field[np.ix_(rows_idx, cols_idx)]
    levels = np.clip((sampled - lo) / span, 0.0, 1.0)
    chars = (levels * (len(ramp) - 1)).round().astype(int)
    lines = ["".join(ramp[c] for c in row) for row in chars]
    if border:
        top = "+" + "-" * width + "+"
        lines = [top] + ["|" + line + "|" for line in lines] + [top]
    return "\n".join(lines)


def render_histogram(
    values: np.ndarray,
    *,
    bins: int = 20,
    width: int = 50,
    label_width: int = 12,
) -> str:
    """Render a 1D distribution as a horizontal ASCII bar histogram."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValidationError("render_histogram: empty values")
    counts, edges = np.histogram(values, bins=bins)
    peak = max(1, counts.max())
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        label = f"{edges[i]:.3g}..{edges[i + 1]:.3g}"
        lines.append(f"{label:>{label_width + 10}} | {bar} {count}")
    return "\n".join(lines)
