"""Advisory cross-process file locking for shared on-disk state.

Several gateway processes can point at one
:class:`~repro.session.ResultStore` directory; its manifest rewrite
must then be *read-merge-write under a lock* or concurrent writers drop
each other's records.  :class:`FileLock` is the primitive: an advisory
``flock`` on a dedicated lock file (never on the data file itself —
the data file is atomically replaced, which would orphan the lock).

POSIX ``flock`` serializes across processes *and*, on the same open
file description, across threads; each :meth:`acquire` opens its own
descriptor, so one ``FileLock`` object is safe to share between
threads.  Where :mod:`fcntl` does not exist (non-POSIX), locking
degrades to a no-op — single-process use stays correct because the
store also merges before every rewrite.

Usage::

    lock = FileLock(store_root / "manifest.lock")
    with lock:
        merged = read() | pending
        write_atomically(merged)
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class FileLock:
    """A reentrant advisory lock on a dedicated lock file.

    Reentrancy is per-object (a depth counter), which lets store
    methods that already hold the lock call helpers that take it too.
    The lock file itself is left in place — unlinking a lock file that
    another process may be blocking on reintroduces the race the lock
    exists to close.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fd: int | None = None
        self._depth = 0

    @property
    def held(self) -> bool:
        return self._depth > 0

    def acquire(self) -> None:
        if self._depth > 0:
            self._depth += 1
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        self._depth = 1

    def release(self) -> None:
        if self._depth == 0:
            raise RuntimeError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth > 0:
            return
        assert self._fd is not None
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()


__all__ = ["FileLock"]
