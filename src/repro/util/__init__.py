"""Shared utilities: errors, validation helpers, ASCII rendering, tables.

These helpers are deliberately dependency-light (NumPy only) so every other
subpackage can import them without cycles.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    PeOutOfMemory,
    RoutingError,
    ValidationError,
)
from repro.util.validation import (
    check_positive,
    check_shape,
    check_in_range,
    check_dtype,
    require,
)
from repro.util.ascii_art import render_heatmap, render_histogram
from repro.util.formatting import format_si, format_seconds, format_table

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "PeOutOfMemory",
    "RoutingError",
    "ValidationError",
    "check_positive",
    "check_shape",
    "check_in_range",
    "check_dtype",
    "require",
    "render_heatmap",
    "render_histogram",
    "format_si",
    "format_seconds",
    "format_table",
]
