"""Cross-backend numerical-integrity harness (§V-B).

The paper validates the CS-2 results against the GPU reference.  This
module runs the same problem through every backend (NumPy reference,
dataflow simulator, GPU model, assembled-matrix direct solve) and reports
pairwise agreement — the machine-checkable version of "we compare and
numerically validate the results".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fv.assembly import assemble_jacobian
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.baseline import dense_direct_solve
from repro.util.errors import ConfigurationError, ValidationError
from repro.wse.specs import WSE2, WseSpecs


@dataclass
class BackendResult:
    """One backend's solution and iteration count."""

    name: str
    pressure: np.ndarray
    iterations: int
    converged: bool


@dataclass
class ValidationReport:
    """Pairwise max-abs differences between backend solutions."""

    results: list[BackendResult] = field(default_factory=list)
    max_abs_diff: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def worst_pair(self) -> tuple[tuple[str, str], float]:
        pair = max(self.max_abs_diff, key=self.max_abs_diff.get)
        return pair, self.max_abs_diff[pair]

    def assert_agreement(self, atol: float) -> None:
        """Raise :class:`ValidationError` if any pair disagrees beyond
        ``atol``."""
        pair, worst = self.worst_pair
        if worst > atol:
            raise ValidationError(
                f"backends {pair[0]} and {pair[1]} disagree: "
                f"max |diff| = {worst:.3e} > atol = {atol:.3e}"
            )

    def rows(self) -> list[list]:
        """Table rows for reporting."""
        out = [[r.name, r.iterations, r.converged] for r in self.results]
        for (a, b), diff in sorted(self.max_abs_diff.items()):
            out.append([f"|{a} - {b}|", f"{diff:.3e}", ""])
        return out


def validate_backends(
    problem: SinglePhaseProblem,
    *,
    backends: tuple[str, ...] = ("reference", "direct", "wse", "gpu"),
    rel_tol: float = 1e-9,
    max_iters: int = 5000,
    spec: WseSpecs | None = None,
    dtype=np.float64,
) -> ValidationReport:
    """Solve ``problem`` on every requested backend and cross-compare.

    Backends: ``reference`` (NumPy CG), ``direct`` (dense LU on the
    assembled Jacobian; small grids only), ``wse`` (dataflow simulator),
    ``gpu`` (CUDA-like model).
    """
    report = ValidationReport()
    for name in backends:
        report.results.append(
            _run_backend(name, problem, rel_tol, max_iters, spec, dtype)
        )
    for i, a in enumerate(report.results):
        for b in report.results[i + 1 :]:
            diff = float(
                np.abs(
                    a.pressure.astype(np.float64) - b.pressure.astype(np.float64)
                ).max()
            )
            report.max_abs_diff[(a.name, b.name)] = diff
    return report


def _run_backend(
    name: str,
    problem: SinglePhaseProblem,
    rel_tol: float,
    max_iters: int,
    spec: WseSpecs | None,
    dtype,
) -> BackendResult:
    if name == "direct":
        # Assembled-matrix dense LU: the only path outside the registry
        # (it is a validation yardstick, not a solver backend).
        J = assemble_jacobian(problem.coefficients, problem.dirichlet)
        b = np.zeros(problem.grid.num_cells)
        mask_flat = problem.dirichlet.mask.reshape(-1)
        b[mask_flat] = problem.dirichlet.values.reshape(-1)[mask_flat]
        x = dense_direct_solve(J, b).reshape(problem.grid.shape)
        return BackendResult("direct", x, 0, True)

    from repro.backends import get_backend
    from repro.spec import SolveSpec

    try:
        backend = get_backend(name)
    except ConfigurationError as exc:
        raise ValidationError(str(exc)) from None
    solve_spec = SolveSpec.from_kwargs(rel_tol=rel_tol, max_iters=max_iters, dtype=dtype)
    if name == "reference":
        # The Newton driver picks a dtype-aware relative tolerance (1e-4 in
        # fp32); forcing the harness's device-style rel_tol on it would ask
        # fp32 runs for an unattainable residual.
        solve_spec = SolveSpec.from_kwargs(max_iters=max_iters, dtype=dtype)
    if name == "wse":
        solve_spec = solve_spec.with_options(
            spec=spec
            or WSE2.with_fabric(max(problem.grid.nx, 1), max(problem.grid.ny, 1))
        )
    result = backend.solve(problem, solve_spec)
    return BackendResult(name, result.pressure, result.iterations, result.converged)
