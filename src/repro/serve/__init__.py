"""The serving tier: a long-lived solve service over the engines.

``repro.serve`` turns the library into infrastructure: a
:class:`SolveService` that admits concurrent solve requests through an
asyncio front door, deduplicates them against a content-addressed result
cache and the in-flight set, fuses compatible requests into batched
vector-engine lanes, retries transient failures with classified backoff
(:mod:`~repro.serve.retry`), streams transient solves step by step with
killed-stream resume, and leaves durable per-run records
(:mod:`~repro.serve.records`) behind for audit.

Quickstart::

    import asyncio
    from repro.serve import SolveService

    async def main():
        async with SolveService(store="cache/") as service:
            result = await service.submit("quarter_five_spot", backend="wse")
            print(result.iterations, service.stats()["cache"])

    asyncio.run(main())
"""

from repro.serve.admission import (
    AdmissionController,
    GroupKey,
    Lane,
    can_fuse,
    group_key,
)
from repro.serve.cache import ResultCache
from repro.serve.queue import QueueClosed, RequestQueue, SolveRequest
from repro.serve.records import (
    SUMMARY_COUNTERS,
    RunRecorder,
    load_attempts,
    load_run_record,
)
from repro.serve.retry import (
    DEFAULT_RETRYABLE,
    FAILURE_CATEGORIES,
    RetryPolicy,
    classify_failure,
)
from repro.serve.service import POOLS, ServiceConfig, SolveService

__all__ = [
    "AdmissionController",
    "DEFAULT_RETRYABLE",
    "FAILURE_CATEGORIES",
    "GroupKey",
    "Lane",
    "POOLS",
    "QueueClosed",
    "RequestQueue",
    "ResultCache",
    "RetryPolicy",
    "RunRecorder",
    "SUMMARY_COUNTERS",
    "ServiceConfig",
    "SolveRequest",
    "SolveService",
    "can_fuse",
    "classify_failure",
    "group_key",
    "load_attempts",
    "load_run_record",
]
