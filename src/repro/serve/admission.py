"""Admission control: group compatible queued requests into batch lanes.

The economics: a fused ``(batch, nx, ny, nz)`` launch on the
:class:`~repro.wse.vector_engine.BatchedVectorEngine` costs barely more
than one lane's solve, so N concurrent requests that agree on *how* to
solve (backend, full spec fingerprint — engine, tolerances, dtype, time
schedule, everything) and on the grid shape should cost one launch even
though their *targets* (permeability fields, boundary conditions)
differ.  The admission controller implements exactly that: it drains the
request queue in bursts, waits one small admission window for
stragglers, then partitions the burst into :class:`Lane`\\ s.

A lane is marked ``fused`` when it has >1 member and the backend can
batch it (``solve_batch`` exists and the spec doesn't pin the
``"event"`` engine — the per-PE oracle plays one problem at a time).
Everything else degrades gracefully to per-request dispatch; admission
never *rejects* work, it only decides the launch shape.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.backends import get_backend
from repro.serve.queue import RequestQueue, SolveRequest
from repro.util.errors import ConfigurationError

#: Group key: (backend, spec fingerprint, grid shape) — the spec
#: fingerprint covers every solve knob *except* the target, so one key
#: means "these requests can share a fused launch".
GroupKey = tuple[str, str, tuple[int, ...]]


def group_key(request: SolveRequest) -> GroupKey:
    return (
        request.backend,
        request.entry.spec.fingerprint(),
        tuple(request.problem.grid.shape),
    )


def can_fuse(request: SolveRequest) -> bool:
    """Whether this request's backend/spec admit a fused batched launch."""
    backend = get_backend(request.backend)
    if not hasattr(backend, "solve_batch"):
        return False
    engine = request.entry.spec.machine.engine
    if engine is None:
        # Backends without the fabric-engine vocabulary (reference, GPU)
        # batch whenever they expose solve_batch.
        return True
    from repro.core.engines import BATCH_CAPABLE_ENGINES

    return engine in BATCH_CAPABLE_ENGINES


@dataclass
class Lane:
    """One dispatch unit: requests sharing a group key, fused or solo."""

    key: Hashable
    requests: list[SolveRequest]
    fused: bool

    @property
    def size(self) -> int:
        return len(self.requests)


class AdmissionController:
    """Turns queue bursts into dispatch lanes.

    ``window`` is how long (seconds) a burst waits for compatible
    stragglers before dispatch — the latency/fusion trade-off knob.
    ``max_lane_width`` caps requests per fused lane (``None`` = only the
    spec's own ``machine.batch_size`` chunking applies).

    ``speculative_after`` launches speculatively: when the burst's
    *oldest* request has already waited that long (queue backlog, a slow
    event loop, a prior long lane), the linger shrinks to whatever is
    left of the speculative budget — possibly zero — instead of always
    paying the full window on top.  Requests that arrive just after the
    speculative launch still coalesce for free via the service's
    in-flight dedup, so the fusion loss is bounded while the stale-lane
    tail latency is not.  ``None`` (the default) keeps the fixed window.
    """

    def __init__(
        self,
        *,
        window: float = 0.005,
        max_lane_width: int | None = None,
        speculative_after: float | None = None,
    ):
        if window < 0:
            raise ConfigurationError(f"window must be >= 0, got {window}")
        if max_lane_width is not None and max_lane_width < 1:
            raise ConfigurationError(
                f"max_lane_width must be >= 1, got {max_lane_width}"
            )
        if speculative_after is not None and speculative_after < 0:
            raise ConfigurationError(
                f"speculative_after must be >= 0, got {speculative_after}"
            )
        self.window = window
        self.max_lane_width = max_lane_width
        self.speculative_after = speculative_after

    def linger_for(self, burst: list[SolveRequest]) -> float:
        """How long this burst should wait for stragglers.

        The fixed ``window``, clipped to the oldest member's remaining
        speculative budget when ``speculative_after`` is set.
        """
        linger = self.window
        if self.speculative_after is not None and burst:
            oldest = min(r.submitted_at for r in burst)
            age = max(0.0, time.time() - oldest)
            linger = min(linger, max(0.0, self.speculative_after - age))
        return linger

    async def collect(self, queue: RequestQueue) -> list[Lane]:
        """Block for a burst, linger one window, and partition into lanes.

        Raises :class:`~repro.serve.queue.QueueClosed` when the queue is
        closed and drained.
        """
        burst = await queue.get_batch()
        linger = self.linger_for(burst)
        if linger > 0:
            await asyncio.sleep(linger)
            burst.extend(queue.drain_nowait())
        return self.partition(burst)

    def partition(self, requests: list[SolveRequest]) -> list[Lane]:
        """Group a burst into lanes, preserving first-arrival order.

        Requests that cannot fuse (backend without ``solve_batch``, spec
        pinned to the event engine) become solo lanes; fusable groups
        wider than ``max_lane_width`` split into consecutive chunks.
        """
        groups: dict[GroupKey, list[SolveRequest]] = {}
        order: list[GroupKey] = []
        lanes: list[Lane] = []
        for request in requests:
            if not can_fuse(request):
                lanes.append(Lane(key=None, requests=[request], fused=False))
                continue
            key = group_key(request)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(request)
        for key in order:
            members = groups[key]
            width = self.max_lane_width or len(members)
            for start in range(0, len(members), width):
                chunk = members[start:start + width]
                lanes.append(Lane(key=key, requests=chunk, fused=len(chunk) > 1))
        return lanes


__all__ = ["AdmissionController", "GroupKey", "Lane", "can_fuse", "group_key"]
