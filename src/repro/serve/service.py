"""The long-lived solve service: asyncio front door over the engines.

:class:`SolveService` turns the in-process library (specs, sessions,
engines) into a serving tier::

    async with SolveService(store="cache/", records="runs/") as service:
        futures = [service.submit("quarter_five_spot", backend="wse",
                                  spec=spec) for _ in range(1000)]
        results = await asyncio.gather(*futures)

Request lifecycle (the order is the design):

1. **cache** — the request's content fingerprint (target + spec +
   backend, exactly :func:`repro.session.entry_fingerprint`) is probed
   against the memory LRU and then the :class:`~repro.session.ResultStore`
   manifest (no NPZ I/O on a miss).  A hit resolves immediately.
2. **in-flight dedup** — a miss whose fingerprint is already queued or
   solving *attaches* to that request; N identical concurrent requests
   cost one solve.
3. **admission** — genuinely new work enters the request queue; the
   admission controller groups compatible requests (same backend / spec
   fingerprint / grid shape) into fused
   :class:`~repro.wse.vector_engine.BatchedVectorEngine` lanes.
4. **dispatch** — lanes run on a persistent worker pool (threads by
   default, processes for GIL-bound backends); failures classify
   through the retry taxonomy (:mod:`repro.serve.retry`) and retry with
   capped exponential backoff — a failed *fused* lane un-fuses and
   retries each member solo, so one bad lane never poisons its peers.
5. **records** — every submit, cache hit, attempt and outcome lands in
   the run's ``run.json`` / ``attempts.jsonl``
   (:mod:`repro.serve.records`).

:meth:`SolveService.stream` is the transient front door: an async
iterator of :class:`~repro.backends.StepResult` riding the backends'
incremental ``simulate`` generators, persisting each step so a killed
stream resumes from the stored step stack on resubmit.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, AsyncIterator, Mapping

from repro.backends import SolveResult, StepResult, get_backend
from repro.net.metrics import ServiceMetrics
from repro.physics.darcy import SinglePhaseProblem
from repro.serve.admission import AdmissionController, Lane
from repro.serve.cache import DEFAULT_MAX_BYTES as DEFAULT_CACHE_BYTES, ResultCache
from repro.serve.queue import (
    QueueClosed,
    RequestQueue,
    SolveRequest,
    next_request_id,
)
from repro.serve.records import RunRecorder
from repro.serve.retry import RetryPolicy, classify_failure
from repro.session import ResultStore, plan_entry
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError

POOLS = ("thread", "process")


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (solve configuration stays in the spec)."""

    n_workers: int = 4
    pool: str = "thread"
    admission_window: float = 0.005
    max_lane_width: int | None = None
    speculative_after: float | None = None
    cache_bytes: int = DEFAULT_CACHE_BYTES
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    jitter_seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.pool not in POOLS:
            raise ConfigurationError(
                f"unknown pool {self.pool!r}; choose one of {', '.join(POOLS)}"
            )
        if self.speculative_after is not None and self.speculative_after < 0:
            raise ConfigurationError(
                f"speculative_after must be >= 0, got {self.speculative_after}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "pool": self.pool,
            "admission_window": self.admission_window,
            "max_lane_width": self.max_lane_width,
            "speculative_after": self.speculative_after,
            "cache_bytes": self.cache_bytes,
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "backoff_base": self.retry.backoff_base,
                "backoff_factor": self.retry.backoff_factor,
                "backoff_max": self.retry.backoff_max,
                "jitter": self.retry.jitter,
                "retryable": sorted(self.retry.retryable),
            },
        }


# -- pool workers (module-level: process pools need picklable callables) -----


def _pool_solve(
    backend_name: str,
    problem: SinglePhaseProblem,
    spec: SolveSpec,
    picklesafe: bool = False,
) -> SolveResult:
    try:
        return get_backend(backend_name).solve(problem, spec)
    except Exception as exc:
        if picklesafe:
            _raise_picklesafe(exc)
        raise


def _pool_solve_batch(
    backend_name: str,
    problems: list[SinglePhaseProblem],
    spec: SolveSpec,
    picklesafe: bool = False,
) -> list[SolveResult]:
    try:
        return get_backend(backend_name).solve_batch(problems, spec)
    except Exception as exc:
        if picklesafe:
            _raise_picklesafe(exc)
        raise


def _raise_picklesafe(exc: Exception) -> None:
    """Re-raise ``exc``, downgraded to a faithful stand-in if it cannot
    cross the process-pool pickle boundary (same contract as the session's
    process executor)."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: BLE001
        raise RuntimeError(f"{type(exc).__name__}: {exc}") from None
    raise exc


class SolveService:
    """An admission-controlled, cache-first, retrying solve service."""

    def __init__(
        self,
        *,
        store: ResultStore | str | Path | None = None,
        records: str | Path | None = None,
        config: ServiceConfig | None = None,
        run_id: str | None = None,
        metrics: ServiceMetrics | None = None,
        **config_kwargs: Any,
    ):
        if config is not None and config_kwargs:
            raise ConfigurationError(
                f"pass configuration either as config=ServiceConfig(...) or "
                f"as keyword options, not both (got config plus "
                f"{', '.join(sorted(config_kwargs))})"
            )
        self.config = config if config is not None else ServiceConfig(**config_kwargs)
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store: ResultStore | None = store
        self.cache = ResultCache(
            max_bytes=self.config.cache_bytes, store=store
        )
        #: The one counter registry: the recorder mutates it, ``stats()``
        #: reads it back, and the gateway's ``/metrics`` renders it.
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.recorder = RunRecorder(
            records, run_id=run_id, config=self.config.to_dict(),
            metrics=self.metrics,
        )
        self._admission = AdmissionController(
            window=self.config.admission_window,
            max_lane_width=self.config.max_lane_width,
            speculative_after=self.config.speculative_after,
        )
        self._rng = Random(self.config.jitter_seed)
        self._queue: RequestQueue | None = None
        self._admission_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._inflight: dict[str, SolveRequest] = {}
        self._problem_cache: dict[str, SinglePhaseProblem] = {}
        self._pool: concurrent.futures.Executor | None = None
        self._stream_pool: concurrent.futures.ThreadPoolExecutor | None = None
        #: (stop, demand) per live stream bridge — close() trips these so
        #: abandoned streams cannot deadlock the pool shutdown.
        self._stream_bridges: set[
            tuple[threading.Event, threading.Semaphore]
        ] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._queue is not None and not self._closed

    async def start(self) -> "SolveService":
        """Bring up the worker pool and the admission loop."""
        if self._closed:
            raise ConfigurationError("a closed SolveService cannot restart")
        if self._queue is not None:
            return self
        if self.config.pool == "process":
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.n_workers
            )
        else:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.config.n_workers,
                thread_name_prefix="repro-serve",
            )
        self._stream_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.n_workers,
            thread_name_prefix="repro-serve-stream",
        )
        self._queue = RequestQueue()
        self._admission_task = asyncio.create_task(
            self._admission_loop(), name="repro-serve-admission"
        )
        return self

    async def close(self) -> None:
        """Graceful shutdown: drain queued work, then stop the pools.

        Requests submitted before ``close`` still complete; the worker
        pools shut down with ``wait=True`` so no worker thread or process
        outlives the service (the smoke job asserts exactly this).
        """
        if self._closed or self._queue is None:
            self._closed = True
            self.recorder.close()
            return
        self._closed = True
        self._queue.close()
        if self._admission_task is not None:
            await self._admission_task
        while self._dispatch_tasks:
            await asyncio.gather(
                *list(self._dispatch_tasks), return_exceptions=True
            )
        # A stream the consumer abandoned mid-iteration leaves its
        # producer thread parked on the demand semaphore until garbage
        # collection finalizes the generator; trip every live bridge so
        # the pool shutdown below cannot deadlock on it.
        for stop, demand in list(self._stream_bridges):
            stop.set()
            demand.release()
        assert self._pool is not None and self._stream_pool is not None
        self._pool.shutdown(wait=True)
        self._stream_pool.shutdown(wait=True)
        self.recorder.close()

    async def __aenter__(self) -> "SolveService":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- the front door -------------------------------------------------------

    def submit(
        self,
        target: Any,
        *,
        backend: str = "reference",
        spec: Any = None,
        **options: Any,
    ) -> "asyncio.Future[SolveResult]":
        """Admit one solve; returns an awaitable future of its result.

        ``target``/``backend``/``spec`` mean exactly what they mean for
        :func:`repro.solve`; flat keyword options are first-class sugar
        (``service.submit("quarter_five_spot", rel_tol=1e-8)``).  The
        future resolves from cache, from an in-flight duplicate, or from
        a (possibly fused) backend launch — ``service.stats()`` and the
        run record say which.
        """
        self._require_started()
        solve_spec = self._resolve_spec(spec, options)
        get_backend(backend)  # fail fast on a typo'd backend
        entry = plan_entry(target, solve_spec, backend)
        problem = entry.build_problem(self._problem_cache)
        future: asyncio.Future[SolveResult] = (
            asyncio.get_running_loop().create_future()
        )
        request = SolveRequest(
            entry=entry, problem=problem, future=future,
            submitted_at=time.time(),
        )
        self.recorder.record_submit(
            request.request_id,
            fingerprint=entry.fingerprint,
            backend=backend,
            label=entry.label,
        )

        cached, tier = self.cache.lookup(entry.fingerprint)
        if cached is not None:
            assert tier is not None
            self.recorder.record_cache_hit(request.request_id, tier)
            self.recorder.record_outcome(
                request.request_id, outcome="ok", cache=tier
            )
            future.set_result(cached)
            return future

        primary = self._inflight.get(entry.fingerprint)
        if primary is not None:
            primary.followers.append(future)
            self.recorder.record_cache_hit(request.request_id, "dedup")
            self._record_outcome_on_done(future, request.request_id, "dedup")
            return future

        self._inflight[entry.fingerprint] = request
        assert self._queue is not None
        self._queue.put(request)
        return future

    async def stream(
        self,
        target: Any,
        *,
        backend: str = "wse",
        spec: Any = None,
        resume: bool = True,
        **options: Any,
    ) -> AsyncIterator[StepResult]:
        """Stream a transient solve step by step, resumably.

        Yields each :class:`~repro.backends.StepResult` as its
        backward-Euler step completes (the backend's incremental
        ``simulate`` generator runs on a worker thread, producing at most
        one step ahead of consumption).  With a service ``store``, every
        completed step persists into the fingerprint's step stack
        *before* it is yielded — a stream killed mid-flight loses
        nothing, and resubmitting the same request replays the stored
        steps (``telemetry["from_store"]``) and resumes computing at the
        first missing step.
        """
        self._require_started()
        solve_spec = self._resolve_spec(spec, options)
        if solve_spec.time is None:
            raise ConfigurationError(
                "stream needs a time schedule: set spec.time to a TimeSpec "
                "(or pass n_steps=/dt=/... keywords)"
            )
        backend_obj = get_backend(backend)
        if not getattr(backend_obj, "supports_transient", False):
            raise ConfigurationError(
                f"backend {backend!r} does not support transient simulation"
            )
        entry = plan_entry(target, solve_spec, backend)
        problem = entry.build_problem(self._problem_cache)
        n_steps = solve_spec.time.n_steps
        request_id = next_request_id()
        self.recorder.record_submit(
            request_id,
            fingerprint=entry.fingerprint,
            backend=backend,
            label=entry.label,
            kind="stream",
        )

        stored: list[StepResult] = []
        if self.store is not None:
            if resume:
                completed = min(
                    self.store.simulation_steps_completed(entry.fingerprint),
                    n_steps,
                )
                if completed:
                    stored = self.store.load_simulation_steps(
                        entry.fingerprint
                    )[:completed]
            else:
                self.store.clear_simulation(entry.fingerprint)

        computed = 0
        resumed = 0
        outcome = "cancelled"
        error: Exception | None = None
        try:
            for step in stored:
                # Count before the yield: a consumer that breaks suspends
                # the generator there, and the post-yield line never runs.
                resumed += 1
                self.recorder.record_stream_steps(computed=0, resumed=1)
                yield step
            if len(stored) < n_steps:
                async for step in self._produce_steps(
                    backend_obj, problem, solve_spec, entry.fingerprint,
                    start_step=len(stored),
                    state=stored[-1].pressure if stored else None,
                ):
                    computed += 1
                    self.recorder.record_stream_steps(computed=1, resumed=0)
                    yield step
            outcome = "ok"
        except Exception as exc:
            outcome, error = "error", exc
            raise
        finally:
            self.recorder.record_outcome(
                request_id,
                outcome=outcome,
                cache="stream",  # streams never count as executed solves
                error=None if error is None else f"{type(error).__name__}: {error}",
                category=None if error is None else classify_failure(error),
                steps_resumed=resumed,
                steps_computed=computed,
            )

    async def _produce_steps(
        self,
        backend_obj: Any,
        problem: SinglePhaseProblem,
        spec: SolveSpec,
        fingerprint: str,
        *,
        start_step: int,
        state: Any,
    ) -> AsyncIterator[StepResult]:
        """Bridge the blocking step generator onto the event loop.

        Demand-driven: a semaphore lets the producer thread compute at
        most one step ahead of the consumer, so breaking out of the
        stream stops the simulation instead of racing it to completion.
        """
        loop = asyncio.get_running_loop()
        out: asyncio.Queue[tuple[str, Any]] = asyncio.Queue()
        demand = threading.Semaphore(1)
        stop = threading.Event()
        store = self.store
        meta = {
            "backend": backend_obj.name,
            "spec": spec.to_dict(),
            "n_steps": spec.time.n_steps,
        }

        def produce() -> None:
            try:
                steps = backend_obj.simulate(
                    problem, spec, start_step=start_step, state=state
                )
                while True:
                    demand.acquire()
                    if stop.is_set():
                        return
                    try:
                        step = next(steps)
                    except StopIteration:
                        loop.call_soon_threadsafe(out.put_nowait, ("done", None))
                        return
                    if store is not None:
                        store.save_simulation_step(fingerprint, step, meta=meta)
                    loop.call_soon_threadsafe(out.put_nowait, ("step", step))
            except Exception as exc:  # noqa: BLE001 - crosses the bridge
                loop.call_soon_threadsafe(out.put_nowait, ("error", exc))

        assert self._stream_pool is not None
        bridge = (stop, demand)
        self._stream_bridges.add(bridge)
        producer = loop.run_in_executor(self._stream_pool, produce)
        try:
            while True:
                kind, payload = await out.get()
                if kind == "done":
                    return
                if kind == "error":
                    raise payload
                yield payload
                demand.release()
        finally:
            stop.set()
            demand.release()
            self._stream_bridges.discard(bridge)
            await producer

    # -- admission + dispatch -------------------------------------------------

    async def _admission_loop(self) -> None:
        assert self._queue is not None
        while True:
            try:
                lanes = await self._admission.collect(self._queue)
            except QueueClosed:
                return
            for lane in lanes:
                task = asyncio.create_task(self._dispatch_lane(lane))
                self._dispatch_tasks.add(task)
                task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch_lane(self, lane: Lane) -> None:
        if not lane.fused:
            await asyncio.gather(
                *(self._solve_with_retry(r) for r in lane.requests)
            )
            return

        spec = lane.requests[0].entry.spec
        backend = lane.requests[0].backend
        problems = [r.problem for r in lane.requests]
        self.recorder.record_launch(fused=True, size=lane.size)
        start = time.perf_counter()
        try:
            results = await self._run_in_pool(
                _pool_solve_batch, backend, problems, spec
            )
        except Exception as exc:  # noqa: BLE001 - classified below
            elapsed = time.perf_counter() - start
            category = classify_failure(exc)
            for index, request in enumerate(lane.requests):
                request.attempts += 1
                self.recorder.record_attempt(
                    request.request_id,
                    fingerprint=request.fingerprint,
                    attempt=request.attempts,
                    outcome="error",
                    lane={"size": lane.size, "lane": index, "fused": True},
                    category=category,
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed_seconds=elapsed / lane.size,
                )
            # Un-fuse: each member retries solo so one poisoned lane
            # cannot take down its batch peers.
            await asyncio.gather(
                *(self._solve_with_retry(r) for r in lane.requests)
            )
            return
        elapsed = time.perf_counter() - start
        for index, (request, result) in enumerate(zip(lane.requests, results)):
            request.attempts += 1
            self.recorder.record_attempt(
                request.request_id,
                fingerprint=request.fingerprint,
                attempt=request.attempts,
                outcome="ok",
                lane={"size": lane.size, "lane": index, "fused": True},
                elapsed_seconds=elapsed / lane.size,
            )
            self._complete(request, result)

    async def _solve_with_retry(self, request: SolveRequest) -> None:
        policy = self.config.retry
        while True:
            request.attempts += 1
            self.recorder.record_launch(fused=False)
            start = time.perf_counter()
            try:
                result = await self._run_in_pool(
                    _pool_solve, request.backend, request.problem,
                    request.entry.spec,
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                elapsed = time.perf_counter() - start
                category = classify_failure(exc)
                retrying = (
                    policy.is_retryable(exc)
                    and request.attempts < policy.max_attempts
                )
                backoff = (
                    policy.delay(request.attempts, self._rng)
                    if retrying else None
                )
                self.recorder.record_attempt(
                    request.request_id,
                    fingerprint=request.fingerprint,
                    attempt=request.attempts,
                    outcome="error",
                    category=category,
                    error=f"{type(exc).__name__}: {exc}",
                    backoff_seconds=backoff,
                    elapsed_seconds=elapsed,
                )
                if not retrying:
                    self._fail(request, exc, category)
                    return
                await asyncio.sleep(backoff)
                continue
            self.recorder.record_attempt(
                request.request_id,
                fingerprint=request.fingerprint,
                attempt=request.attempts,
                outcome="ok",
                elapsed_seconds=time.perf_counter() - start,
            )
            self._complete(request, result)
            return

    async def _run_in_pool(self, fn: Any, *args: Any) -> Any:
        assert self._pool is not None
        picklesafe = self.config.pool == "process"
        # functools.partial of a module-level callable stays picklable
        # for the process pool; a lambda would not.
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, functools.partial(fn, *args, picklesafe)
        )

    def _complete(self, request: SolveRequest, result: SolveResult) -> None:
        self.cache.put(request.entry, result)
        self._inflight.pop(request.fingerprint, None)
        request.resolve(result)
        self.recorder.record_outcome(request.request_id, outcome="ok")

    def _fail(
        self, request: SolveRequest, error: Exception, category: str
    ) -> None:
        self._inflight.pop(request.fingerprint, None)
        request.reject(error)
        self.recorder.record_outcome(
            request.request_id,
            outcome="error",
            error=f"{type(error).__name__}: {error}",
            category=category,
        )

    # -- plumbing -------------------------------------------------------------

    def _require_started(self) -> None:
        if self._closed:
            raise ConfigurationError("the service is closed")
        if self._queue is None:
            raise ConfigurationError(
                "the service is not started; use 'async with SolveService(...)' "
                "or 'await service.start()'"
            )

    @staticmethod
    def _resolve_spec(spec: Any, options: Mapping[str, Any]) -> SolveSpec:
        if spec is not None and options:
            raise ConfigurationError(
                f"pass configuration either as spec=... or as keyword "
                f"options, not both (got spec plus "
                f"{', '.join(sorted(options))})"
            )
        if options:
            return SolveSpec.from_kwargs(**options)
        return coerce_spec(spec)

    def _record_outcome_on_done(
        self, future: "asyncio.Future[SolveResult]", request_id: int, tier: str
    ) -> None:
        def record(fut: "asyncio.Future[SolveResult]") -> None:
            if fut.cancelled():
                self.recorder.record_outcome(
                    request_id, outcome="cancelled", cache=tier
                )
            elif fut.exception() is not None:
                error = fut.exception()
                self.recorder.record_outcome(
                    request_id,
                    outcome="error",
                    cache=tier,
                    error=f"{type(error).__name__}: {error}",
                    category=classify_failure(error),
                )
            else:
                self.recorder.record_outcome(
                    request_id, outcome="ok", cache=tier
                )

        future.add_done_callback(record)

    def sync_gauges(self) -> None:
        """Refresh the point-in-time gauges in the metrics registry.

        Counters update at their mutation sites; the in-flight and
        queue-depth gauges are snapshots, synced on read (``stats()``
        and the gateway's ``/metrics`` both call this first).
        """
        self.metrics.inflight.set(len(self._inflight))
        self.metrics.queue_depth.set(
            0 if self._queue is None else len(self._queue)
        )

    def stats(self) -> dict[str, Any]:
        """Live service counters: run-record summary + cache stats."""
        self.sync_gauges()
        return {
            **self.recorder.to_dict()["summary"],
            "cache": self.cache.stats(),
            "inflight": len(self._inflight),
            "queued": 0 if self._queue is None else len(self._queue),
        }


__all__ = ["POOLS", "ServiceConfig", "SolveService"]
