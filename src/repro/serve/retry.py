"""Failure taxonomy and retry/backoff policy for the serving tier.

A long-lived service cannot treat "the solve raised" as one kind of
event.  The taxonomy below splits failures along the axis that matters
for scheduling — *would trying again plausibly help?* — in the style of
Celery's ``_is_retryable`` task idiom:

``convergence``
    :class:`~repro.util.errors.ConvergenceError` — the iteration budget
    ran out.  Retryable by default: a lane of a fused batch retries
    *solo* (group effects gone), and operators often pair retries with a
    relaxed-tolerance policy.
``resource``
    :class:`~repro.util.errors.PeOutOfMemory` — the problem does not fit
    the machine.  Deterministic; never retry, fail fast.
``config``
    :class:`~repro.util.errors.ConfigurationError` /
    :class:`~repro.util.errors.ValidationError` — the request itself is
    malformed.  Never retry.
``transport``
    The executor or its transport died underneath the solve (broken
    process pool, pickling, OS-level errors).  Retryable — the pool
    heals.
``executor``
    Anything else that escaped the backend.  Retryable: flaky
    backends/stubs land here.

Backoff is capped exponential with optional jitter
(``base * factor**(attempt-1)``, at most ``max_delay``, scaled by up to
``jitter`` of random spread) — the classic thundering-herd dampener.
With ``jitter=0`` the schedule is exactly deterministic, which is what
the fault-injection tests pin.
"""

from __future__ import annotations

import concurrent.futures
import pickle
from dataclasses import dataclass, field
from random import Random
from typing import Iterator

from repro.util.errors import (
    ConfigurationError,
    ConvergenceError,
    PeOutOfMemory,
    SolveErrorGroup,
    ValidationError,
)

#: Failure categories, most-specific first (the classification order).
FAILURE_CATEGORIES = (
    "convergence", "resource", "config", "transport", "executor",
)

#: Categories a default policy will retry.
DEFAULT_RETRYABLE = frozenset({"convergence", "transport", "executor"})

_TRANSPORT_ERRORS = (
    concurrent.futures.BrokenExecutor,
    pickle.PicklingError,
    ConnectionError,
    EOFError,
    OSError,
    TimeoutError,
)


def classify_failure(error: BaseException) -> str:
    """Map an exception to its failure-taxonomy category.

    A :class:`SolveErrorGroup` (a failed fused batch surfaces one per
    member) classifies as its *worst* member: any non-retryable member
    category wins, so a batch that mixed a malformed request with flaky
    lanes is not blindly retried as a whole.
    """
    if isinstance(error, SolveErrorGroup):
        if not error.errors:
            # An empty group means the raiser lost track of its member
            # failures — a bookkeeping bug, not a flaky lane.  Classify
            # non-retryable so it fails fast instead of looping.
            return "config"
        members = [classify_failure(e) for e in error.errors]
        for category in ("config", "resource"):
            if category in members:
                return category
        for category in ("transport", "executor", "convergence"):
            if category in members:
                return category
        return "executor"
    if isinstance(error, ConvergenceError):
        return "convergence"
    if isinstance(error, PeOutOfMemory):
        return "resource"
    if isinstance(error, (ConfigurationError, ValidationError)):
        return "config"
    if isinstance(error, _TRANSPORT_ERRORS):
        return "transport"
    return "executor"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request retry budget plus the backoff schedule.

    ``max_attempts`` counts *attempts*, not retries: ``max_attempts=3``
    means one initial try plus up to two retries.  ``retryable`` names
    the failure categories worth retrying (see
    :func:`classify_failure`); everything else fails fast on the first
    occurrence.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.1
    retryable: frozenset[str] = field(default=DEFAULT_RETRYABLE)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        for name in ("backoff_base", "backoff_factor", "backoff_max"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        unknown = sorted(set(self.retryable) - set(FAILURE_CATEGORIES))
        if unknown:
            raise ConfigurationError(
                f"unknown retryable categor{'y' if len(unknown) == 1 else 'ies'} "
                f"{', '.join(map(repr, unknown))}; valid: "
                f"{', '.join(FAILURE_CATEGORIES)}"
            )
        object.__setattr__(self, "retryable", frozenset(self.retryable))

    def is_retryable(self, error: BaseException) -> bool:
        """Celery-style ``_is_retryable``: would another attempt help?"""
        return classify_failure(error) in self.retryable

    def delay(self, attempt: int, rng: Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        Capped exponential; with ``jitter`` and an ``rng``, spread
        uniformly over ``[delay * (1 - jitter), delay]`` so synchronized
        failures don't retry in lockstep.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter and rng is not None:
            delay *= 1 - self.jitter * rng.random()
        return delay

    def backoff_schedule(self) -> Iterator[float]:
        """The jitter-free schedule (what the tests pin)."""
        attempt = 1
        while attempt < self.max_attempts:
            yield self.delay(attempt)
            attempt += 1


__all__ = [
    "DEFAULT_RETRYABLE",
    "FAILURE_CATEGORIES",
    "RetryPolicy",
    "classify_failure",
]
