"""Durable, debuggable run records for a service run.

The agentbench discipline applied to solving: every service run leaves
an artifact trail a human (or a test) can audit after the fact —

``<root>/<run_id>/run.json``
    The run-level record, rewritten atomically as requests finish:
    config, live summary counters (submitted / executed / launches /
    fused launches / cache and dedup hits / failures / retries) and one
    record per request capturing its spec fingerprint, cache outcome,
    batch-lane assignment, attempt count and timings.
``<root>/<run_id>/attempts.jsonl``
    Append-only, one JSON line per *attempt*: request id, fingerprint,
    attempt number, lane assignment, outcome, failure category, the
    scheduled backoff before the next try, and elapsed seconds.  A
    crash can at worst lose the line being written — the history behind
    it survives, which is exactly what post-mortems need.

With ``root=None`` the recorder keeps the same records in memory only
(counters still feed the service's stats) — the zero-setup default.

Counter ownership: the recorder does not tally its summary itself.
Every summary increment routes through a
:class:`~repro.net.metrics.ServiceMetrics` registry (one is created if
none is injected) and :attr:`RunRecorder.summary` reads back from it —
so the gateway's ``/metrics``, ``SolveService.stats()`` and the
``run.json`` on disk report the same numbers *by construction*.  (The
pre-gateway design mutated a plain dict from worker callbacks with no
single ownership point, which let the surfaces drift.)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.net.metrics import ServiceMetrics
from repro.util.errors import ConfigurationError

#: Counter names every run.json summary carries.
SUMMARY_COUNTERS = (
    "submitted", "executed", "launches", "batched_launches",
    "cache_hits_memory", "cache_hits_store", "dedup_hits",
    "failed", "retries", "streams", "streamed_steps", "resumed_steps",
)


class RunRecorder:
    """Owns one service run's ``run.json`` + ``attempts.jsonl``."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        run_id: str | None = None,
        config: Mapping[str, Any] | None = None,
        metrics: ServiceMetrics | None = None,
    ):
        if run_id is None:
            run_id = f"run-{time.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}"
        if "/" in run_id or run_id in ("", ".", ".."):
            raise ConfigurationError(f"invalid run_id {run_id!r}")
        self.run_id = run_id
        self.run_dir: Path | None = None
        self._attempts_path: Path | None = None
        if root is not None:
            self.run_dir = Path(root) / run_id
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._attempts_path = self.run_dir / "attempts.jsonl"
        self.started_at = time.time()
        self.finished_at: float | None = None
        self.config = dict(config or {})
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.requests: dict[str, dict[str, Any]] = {}
        self.attempts: list[dict[str, Any]] = []

    @property
    def summary(self) -> dict[str, int]:
        """The summary counters, read from the one metrics registry."""
        return self.metrics.summary()

    # -- request lifecycle ----------------------------------------------------

    def record_submit(
        self,
        request_id: int,
        *,
        fingerprint: str,
        backend: str,
        label: str,
        kind: str = "solve",
    ) -> None:
        self.metrics.bump("submitted")
        if kind == "stream":
            self.metrics.bump("streams")
        self.requests[str(request_id)] = {
            "request_id": request_id,
            "kind": kind,
            "fingerprint": fingerprint,
            "backend": backend,
            "label": label,
            "cache": None,
            "lane": None,
            "attempts": 0,
            "outcome": "pending",
            "submitted_at": time.time(),
        }

    def record_cache_hit(self, request_id: int, tier: str) -> None:
        """``tier``: ``"memory"`` / ``"store"`` / ``"dedup"`` (in-flight)."""
        if tier == "dedup":
            self.metrics.bump("dedup_hits")
        else:
            self.metrics.bump(f"cache_hits_{tier}")
        record = self.requests.get(str(request_id))
        if record is not None:
            record["cache"] = tier

    def record_attempt(
        self,
        request_id: int,
        *,
        fingerprint: str,
        attempt: int,
        outcome: str,
        lane: Mapping[str, Any] | None = None,
        category: str | None = None,
        error: str | None = None,
        backoff_seconds: float | None = None,
        elapsed_seconds: float | None = None,
    ) -> None:
        """One solve attempt (fused-lane or solo), success or failure."""
        line = {
            "ts": time.time(),
            "request_id": request_id,
            "fingerprint": fingerprint,
            "attempt": attempt,
            "lane": None if lane is None else dict(lane),
            "outcome": outcome,
            "category": category,
            "error": error,
            "backoff_seconds": backoff_seconds,
            "elapsed_seconds": elapsed_seconds,
        }
        self.attempts.append(line)
        if attempt > 1:
            self.metrics.bump("retries")
        record = self.requests.get(str(request_id))
        if record is not None:
            record["attempts"] = max(record["attempts"], attempt)
            if lane is not None:
                record["lane"] = dict(lane)
        if self._attempts_path is not None:
            with self._attempts_path.open("a") as handle:
                handle.write(json.dumps(line, sort_keys=True) + "\n")

    def record_launch(self, *, fused: bool, size: int = 1) -> None:
        """One backend launch (a fused lane of N counts once)."""
        self.metrics.bump("launches")
        if fused:
            self.metrics.bump("batched_launches")

    def record_outcome(
        self,
        request_id: int,
        *,
        outcome: str,
        cache: str | None = None,
        error: str | None = None,
        category: str | None = None,
        **extra: Any,
    ) -> None:
        """Finish a request: ``"ok"`` / ``"error"`` / ``"cancelled"``.

        ``cache=None`` on an ``"ok"`` outcome means a genuine solve, and
        bumps the ``executed`` counter.
        """
        record = self.requests.get(str(request_id))
        if record is None:
            return
        record["outcome"] = outcome
        record["finished_at"] = time.time()
        record["elapsed_seconds"] = record["finished_at"] - record["submitted_at"]
        if error is not None:
            record["error"] = error
            record["category"] = category
        record.update(extra)
        if outcome == "error":
            self.metrics.bump("failed")
        elif outcome == "ok" and record.get("cache") is None and cache is None:
            self.metrics.bump("executed")
        self.metrics.observe_request(
            record["elapsed_seconds"], outcome=outcome
        )
        self.flush()

    def record_stream_steps(self, *, computed: int, resumed: int) -> None:
        if computed:
            self.metrics.bump("streamed_steps", computed)
        if resumed:
            self.metrics.bump("resumed_steps", resumed)

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        summary = self.summary  # one registry read; keep the view coherent
        served_from_cache = (
            summary["cache_hits_memory"]
            + summary["cache_hits_store"]
            + summary["dedup_hits"]
        )
        total_probes = (
            served_from_cache + summary["executed"] + summary["failed"]
        )
        return {
            "run_id": self.run_id,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "config": self.config,
            "summary": {
                **summary,
                "cache_hit_ratio": (
                    0.0 if total_probes == 0 else served_from_cache / total_probes
                ),
            },
            "requests": self.requests,
        }

    def flush(self) -> None:
        """Atomically rewrite ``run.json`` with the current state."""
        if self.run_dir is None:
            return
        path = self.run_dir / "run.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)

    def close(self) -> None:
        self.finished_at = time.time()
        self.flush()


def load_run_record(run_dir: str | Path) -> dict[str, Any]:
    """Read back a run's ``run.json`` (what audits and tests consume)."""
    return json.loads((Path(run_dir) / "run.json").read_text())


def load_attempts(run_dir: str | Path) -> list[dict[str, Any]]:
    """Read back a run's ``attempts.jsonl`` lines, tolerating a torn tail."""
    path = Path(run_dir) / "attempts.jsonl"
    if not path.exists():
        return []
    attempts: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            attempts.append(json.loads(line))
        except json.JSONDecodeError:
            break  # torn final line from a crash mid-write
    return attempts


__all__ = ["RunRecorder", "SUMMARY_COUNTERS", "load_attempts", "load_run_record"]
