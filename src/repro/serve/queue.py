"""The service's request vocabulary and its asyncio request queue.

A :class:`SolveRequest` is one admitted unit of work: the resolved
:class:`~repro.session.PlanEntry` (target + spec + backend, content
fingerprint already assigned), the built problem, an
:class:`asyncio.Future` the submitter awaits, and the follower list that
makes in-flight deduplication possible — requests arriving for a
fingerprint that is already queued or solving *attach* to the primary
request instead of enqueuing a duplicate solve.

:class:`RequestQueue` is a thin close-aware wrapper over
:class:`asyncio.Queue`: the admission loop blocks on :meth:`get_batch`,
which returns everything currently available (one blocking ``get`` plus
a non-blocking drain), so grouping sees the whole burst at once.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.physics.darcy import SinglePhaseProblem
from repro.session import PlanEntry

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Allocate a service-wide request id (streams use these too)."""
    return next(_request_ids)


@dataclass
class SolveRequest:
    """One submitted solve, from admission to resolution."""

    entry: PlanEntry
    problem: SinglePhaseProblem
    future: "asyncio.Future[Any]"
    request_id: int = field(default_factory=next_request_id)
    submitted_at: float = 0.0
    attempts: int = 0
    #: Futures of requests deduplicated onto this one (same fingerprint
    #: submitted while this request was still in flight).
    followers: list["asyncio.Future[Any]"] = field(default_factory=list)

    @property
    def fingerprint(self) -> str:
        return self.entry.fingerprint

    @property
    def backend(self) -> str:
        return self.entry.backend

    def resolve(self, result: Any) -> None:
        """Deliver ``result`` to the submitter and every follower."""
        for future in (self.future, *self.followers):
            if not future.done():
                future.set_result(result)

    def reject(self, error: BaseException) -> None:
        """Deliver ``error`` to the submitter and every follower."""
        for future in (self.future, *self.followers):
            if not future.done():
                future.set_exception(error)


class QueueClosed(Exception):
    """Raised by :meth:`RequestQueue.get_batch` after :meth:`close`."""


class RequestQueue:
    """Close-aware asyncio queue the admission loop drains in bursts."""

    _CLOSE = object()

    def __init__(self) -> None:
        self._queue: asyncio.Queue[Any] = asyncio.Queue()
        self._closed = False

    def __len__(self) -> int:
        return self._queue.qsize()

    def put(self, request: SolveRequest) -> None:
        if self._closed:
            raise QueueClosed("the service is closed")
        self._queue.put_nowait(request)

    def close(self) -> None:
        """No further puts; a pending :meth:`get_batch` wakes and raises."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(self._CLOSE)

    def drain_nowait(self) -> list[SolveRequest]:
        """Everything available right now, without blocking."""
        batch: list[SolveRequest] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return batch
            if item is self._CLOSE:
                self._queue.put_nowait(self._CLOSE)
                return batch
            batch.append(item)

    async def get_batch(self) -> list[SolveRequest]:
        """Block for at least one request, then drain what's available.

        Returns the burst in arrival order.  Raises :class:`QueueClosed`
        once the queue is closed *and* drained — requests enqueued before
        the close are still delivered.
        """
        batch: list[SolveRequest] = []
        item = await self._queue.get()
        while True:
            if item is self._CLOSE:
                if batch:
                    # Deliver the batch; re-arm the sentinel for the next call.
                    self._queue.put_nowait(self._CLOSE)
                    return batch
                raise QueueClosed("the service is closed")
            batch.append(item)
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return batch


__all__ = ["QueueClosed", "RequestQueue", "SolveRequest", "next_request_id"]
