"""Content-addressed result cache: memory LRU in front of a ResultStore.

Cache identity *is* the content fingerprint
(:func:`repro.session.entry_fingerprint`: target + spec + backend), so
"a million users asking for the same quarter-five-spot sweep" is by
construction one solve — there is no TTL and no invalidation problem,
because a fingerprint can never map to two different answers.

Two tiers:

* **memory** — an LRU of live :class:`~repro.backends.SolveResult`
  objects, bounded by ``capacity`` entries;
* **store** — an optional :class:`~repro.session.ResultStore`.  Probes
  use the manifest-only fast path (``contains``/``get``) so cache
  *misses* never pay NPZ I/O; a hit rehydrates the payload and is
  promoted into the memory tier.

``hits``/``misses`` counters feed the service's run record and the
bench's cache-hit-ratio rows.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.backends import SolveResult
from repro.session import PlanEntry, ResultStore
from repro.util.errors import ConfigurationError


class ResultCache:
    """Fingerprint-keyed LRU over an optional persistent store."""

    def __init__(self, *, capacity: int = 1024, store: ResultStore | None = None):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.store = store
        self._memory: OrderedDict[str, SolveResult] = OrderedDict()
        self.hits = {"memory": 0, "store": 0}
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        """Membership probe (memory, then manifest); counts no stats."""
        return fingerprint in self._memory or (
            self.store is not None and self.store.contains(fingerprint)
        )

    def get(self, fingerprint: str) -> SolveResult | None:
        """The cached result for a fingerprint, or ``None`` on a miss."""
        return self.lookup(fingerprint)[0]

    def lookup(self, fingerprint: str) -> tuple[SolveResult | None, str | None]:
        """``(result, tier)`` — tier ``"memory"``/``"store"``, or a miss.

        Memory hits refresh LRU recency; store hits load the payload
        once and promote it to memory.  A manifest record whose NPZ
        payload is missing (torn write, pruned file) counts as a miss —
        ``contains`` is the cheap probe, ``has`` the paid verification.
        """
        result = self._memory.get(fingerprint)
        if result is not None:
            self._memory.move_to_end(fingerprint)
            self.hits["memory"] += 1
            return result, "memory"
        if self.store is not None and self.store.contains(fingerprint):
            if self.store.has(fingerprint):
                result = self.store.load(fingerprint)
                self._remember(fingerprint, result)
                self.hits["store"] += 1
                return result, "store"
        self.misses += 1
        return None, None

    def put(self, entry: PlanEntry, result: SolveResult) -> None:
        """Admit a fresh solve into both tiers."""
        self._remember(entry.fingerprint, result)
        if self.store is not None:
            self.store.save(entry, result)

    def _remember(self, fingerprint: str, result: SolveResult) -> None:
        if self.capacity == 0:
            return
        self._memory[fingerprint] = result
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    @property
    def hit_ratio(self) -> float:
        """Hits over probes so far (0.0 before any probe)."""
        total = self.hits["memory"] + self.hits["store"] + self.misses
        return 0.0 if total == 0 else (total - self.misses) / total

    def stats(self) -> dict:
        return {
            "memory_entries": len(self._memory),
            "capacity": self.capacity,
            "hits": dict(self.hits),
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }


__all__ = ["ResultCache"]
