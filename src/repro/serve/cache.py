"""Content-addressed result cache: memory LRU in front of a ResultStore.

Cache identity *is* the content fingerprint
(:func:`repro.session.entry_fingerprint`: target + spec + backend), so
"a million users asking for the same quarter-five-spot sweep" is by
construction one solve — there is no TTL and no invalidation problem,
because a fingerprint can never map to two different answers.

Two tiers:

* **memory** — an LRU of live :class:`~repro.backends.SolveResult`
  objects, bounded by ``max_bytes`` of *result payload* (pressure field
  + residual history + a fixed per-entry overhead).  Entry counts are a
  poor proxy on this workload — a 128×128×4 field is ~1000× the bytes
  of an 8×8×2 one — so the budget is what actually bounds the host's
  memory.  :meth:`pin` exempts hot fingerprints (a dashboard's standing
  queries, a sweep's reference case) from eviction entirely.
* **store** — an optional :class:`~repro.session.ResultStore`.  Probes
  use the manifest-only fast path (``contains``/``get``) so cache
  *misses* never pay NPZ I/O; a hit rehydrates the payload and is
  promoted into the memory tier.

``hits``/``misses`` counters feed the service's run record and the
bench's cache-hit-ratio rows.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.backends import SolveResult
from repro.session import PlanEntry, ResultStore
from repro.util.errors import ConfigurationError

#: Default memory-tier budget: 256 MiB of result payload.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Flat per-entry bookkeeping estimate (fingerprint key, dataclass,
#: telemetry dict) added to each result's payload size.
ENTRY_OVERHEAD_BYTES = 2048


def _telemetry_nbytes(value) -> int:
    """Total bytes of ndarray payloads reachable from a telemetry value.

    Telemetry is not always scalar: folded transient results keep their
    per-step breakdown under ``telemetry["transient"]``, and the
    reference backend's ``linear_results`` are dataclasses carrying full
    solution arrays — payloads that can dwarf the final pressure field,
    so the byte budget must see them.  Recurses through dicts, lists,
    tuples and dataclass-like objects; scalars cost nothing beyond the
    flat entry overhead."""
    import dataclasses

    import numpy as np

    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(_telemetry_nbytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_telemetry_nbytes(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(
            _telemetry_nbytes(getattr(value, f.name))
            for f in dataclasses.fields(value)
        )
    return 0


def result_nbytes(result: SolveResult) -> int:
    """The memory-tier cost of one cached result: the pressure field,
    the float64 residual history, every ndarray payload reachable from
    the telemetry dict (transient breakdowns and reference
    ``linear_results`` can dwarf the field), and a flat bookkeeping
    overhead."""
    return (
        int(result.pressure.nbytes)
        + 8 * len(result.residual_history)
        + _telemetry_nbytes(result.telemetry)
        + ENTRY_OVERHEAD_BYTES
    )


class ResultCache:
    """Fingerprint-keyed, byte-budgeted LRU over an optional store."""

    def __init__(
        self,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        store: ResultStore | None = None,
    ):
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.store = store
        self._memory: OrderedDict[str, SolveResult] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._bytes = 0
        self._pinned: set[str] = set()
        self.hits = {"memory": 0, "store": 0}
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        """Membership probe (memory, then manifest); counts no stats."""
        return fingerprint in self._memory or (
            self.store is not None and self.store.contains(fingerprint)
        )

    def get(self, fingerprint: str) -> SolveResult | None:
        """The cached result for a fingerprint, or ``None`` on a miss."""
        return self.lookup(fingerprint)[0]

    def lookup(self, fingerprint: str) -> tuple[SolveResult | None, str | None]:
        """``(result, tier)`` — tier ``"memory"``/``"store"``, or a miss.

        Memory hits refresh LRU recency; store hits load the payload
        once and promote it to memory.  A manifest record whose NPZ
        payload is missing (torn write, pruned file) counts as a miss —
        ``contains`` is the cheap probe, ``has`` the paid verification.
        """
        result = self._memory.get(fingerprint)
        if result is not None:
            self._memory.move_to_end(fingerprint)
            self.hits["memory"] += 1
            return result, "memory"
        if self.store is not None and self.store.contains(fingerprint):
            if self.store.has(fingerprint):
                result = self.store.load(fingerprint)
                self._remember(fingerprint, result)
                self.hits["store"] += 1
                return result, "store"
        self.misses += 1
        return None, None

    def put(self, entry: PlanEntry, result: SolveResult) -> None:
        """Admit a fresh solve into both tiers."""
        self._remember(entry.fingerprint, result)
        if self.store is not None:
            self.store.save(entry, result)

    # -- pinning --------------------------------------------------------------

    def pin(self, fingerprint: str) -> None:
        """Exempt a fingerprint from eviction (a standing query, a
        sweep's reference case).  Takes effect immediately if the entry
        is resident and sticks for later admissions; pinned entries
        count against the budget but are never evicted — only
        :meth:`unpin` releases them."""
        self._pinned.add(fingerprint)

    def unpin(self, fingerprint: str) -> None:
        """Release a pin; the entry rejoins normal LRU eviction (and is
        evicted right away if the budget is currently exceeded)."""
        self._pinned.discard(fingerprint)
        self._evict()

    def pinned(self) -> set[str]:
        """The currently pinned fingerprints (resident or not)."""
        return set(self._pinned)

    # -- memory tier ----------------------------------------------------------

    def _remember(self, fingerprint: str, result: SolveResult) -> None:
        size = result_nbytes(result)
        if size > self.max_bytes and fingerprint not in self._pinned:
            # Larger than the whole budget: admitting it would evict
            # everything and then evict it too — skip the memory tier
            # (the store tier, if any, still holds it).
            self._drop(fingerprint)
            return
        self._drop(fingerprint)
        self._memory[fingerprint] = result
        self._sizes[fingerprint] = size
        self._bytes += size
        self._evict()

    def _drop(self, fingerprint: str) -> None:
        if fingerprint in self._memory:
            del self._memory[fingerprint]
            self._bytes -= self._sizes.pop(fingerprint)

    def _evict(self) -> None:
        """Evict least-recently-used *unpinned* entries until the budget
        holds.  If only pinned entries remain, the budget may overshoot
        — pins are a promise, not a hint."""
        if self._bytes <= self.max_bytes:
            return
        for fingerprint in list(self._memory):
            if fingerprint in self._pinned:
                continue
            self._drop(fingerprint)
            if self._bytes <= self.max_bytes:
                return

    @property
    def memory_bytes(self) -> int:
        """Current payload bytes resident in the memory tier."""
        return self._bytes

    @property
    def hit_ratio(self) -> float:
        """Hits over probes so far (0.0 before any probe)."""
        total = self.hits["memory"] + self.hits["store"] + self.misses
        return 0.0 if total == 0 else (total - self.misses) / total

    def stats(self) -> dict:
        return {
            "memory_entries": len(self._memory),
            "memory_bytes": self._bytes,
            "max_bytes": self.max_bytes,
            "pinned": len(self._pinned),
            "hits": dict(self.hits),
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }


__all__ = ["DEFAULT_MAX_BYTES", "ResultCache", "result_nbytes"]
