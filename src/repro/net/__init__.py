"""The network tier: an HTTP/WebSocket gateway over the serving tier.

``repro.net`` scales :class:`~repro.serve.SolveService` out of one
process: :class:`Gateway` binds a running service to the network
(``POST /v1/solve``, WebSocket ``GET /v1/stream``, ``GET /healthz``,
Prometheus ``GET /metrics``) over nothing but :mod:`asyncio.streams` —
no external dependencies — and :class:`GatewayClient` is the matching
blocking SDK so examples, benchmarks and remote callers exercise the
real wire path.  Several gateways on one host can share a single
:class:`~repro.session.ResultStore` (advisory file locking plus
merge-on-write keeps concurrent manifest rewrites lossless), and every
service/gateway counter flows through one
:class:`~repro.net.metrics.MetricsRegistry` so ``/metrics``,
``service.stats()`` and the durable run records can never disagree.

Quickstart::

    import asyncio
    from repro.net import Gateway, GatewayClient
    from repro.serve import SolveService

    async def main():
        async with SolveService(store="cache/") as service:
            async with Gateway(service, port=8080) as gateway:
                print("serving on", gateway.url)
                await gateway.serve_until_cancelled()

    asyncio.run(main())
"""

from typing import Any

from repro.net.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from repro.net.wire import (
    decode_json,
    encode_json,
    parse_solve_payload,
    target_to_wire,
)

#: Gateway/client re-exports resolve lazily (PEP 562): the server module
#: imports the serving tier, and the serving tier's records import
#: :mod:`repro.net.metrics` from *this* package — eager imports here
#: would close that loop into a cycle.
_LAZY = {
    "Gateway": ("repro.net.server", "Gateway"),
    "serve_forever": ("repro.net.server", "serve_forever"),
    "GatewayClient": ("repro.net.client", "GatewayClient"),
    "GatewayError": ("repro.net.client", "GatewayError"),
    "parse_metrics_text": ("repro.net.client", "parse_metrics_text"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "Counter",
    "Gauge",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "decode_json",
    "encode_json",
    "parse_metrics_text",
    "parse_solve_payload",
    "serve_forever",
    "target_to_wire",
]
