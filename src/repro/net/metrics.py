"""A stdlib-only metrics registry with Prometheus text exposition.

Two consumers, one source of truth:

* :class:`MetricsRegistry` is the generic instrument set — thread-safe
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` families with
  labels, rendered in the Prometheus text exposition format (v0.0.4) by
  :meth:`MetricsRegistry.render` for the gateway's ``GET /metrics``.
* :class:`ServiceMetrics` binds the serving tier's summary counters
  (the :data:`~repro.serve.records.SUMMARY_COUNTERS` vocabulary) onto a
  registry and is the **single ownership point** for their mutation:
  :class:`~repro.serve.records.RunRecorder` bumps counters *through*
  this object and reads its ``summary`` back *from* it, so
  ``/metrics``, ``SolveService.stats()`` and the durable ``run.json``
  all report one set of numbers by construction — they cannot drift.

Everything here is synchronous and lock-guarded; increments happen on
the event loop, in worker callbacks and in gateway handlers alike.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from repro.util.errors import ConfigurationError

#: Default latency buckets (seconds): sub-millisecond bridge overheads
#: up to multi-minute full-wafer solves.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

LabelValues = tuple[str, ...]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style number: integers bare, floats as repr."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_suffix(names: tuple[str, ...], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared family plumbing: name, help text, label names, sample map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._samples: dict[LabelValues, Any] = {}

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels "
                f"({', '.join(self.label_names) or 'none'}); got "
                f"({', '.join(sorted(labels)) or 'none'})"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> dict[LabelValues, Any]:
        with self._lock:
            return dict(self._samples)

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for values in sorted(self.samples()):
            lines.extend(self._render_sample(values))
        return lines

    def _render_sample(self, values: LabelValues) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing counter family."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._samples.get(key, 0)

    def total(self) -> float:
        """Sum over every label combination (the summary-counter read)."""
        with self._lock:
            return sum(self._samples.values())

    def _render_sample(self, values: LabelValues) -> list[str]:
        suffix = _labels_suffix(self.label_names, values)
        return [f"{self.name}{suffix} {_format_value(self._samples[values])}"]


class Gauge(_Metric):
    """A settable instantaneous value family."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._samples.get(key, 0)

    def _render_sample(self, values: LabelValues) -> list[str]:
        suffix = _labels_suffix(self.label_names, values)
        return [f"{self.name}{suffix} {_format_value(self._samples[values])}"]


class Histogram(_Metric):
    """A cumulative-bucket histogram family (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Iterable[str] = (),
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {
                    "counts": [0] * len(self.buckets),
                    "count": 0,
                    "sum": 0.0,
                }
                self._samples[key] = sample
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                sample["counts"][index] += 1
            sample["count"] += 1
            sample["sum"] += float(value)

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            return 0 if sample is None else sample["count"]

    def _render_sample(self, values: LabelValues) -> list[str]:
        sample = self._samples[values]
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, sample["counts"]):
            cumulative += count
            suffix = _labels_suffix(
                self.label_names + ("le",), values + (_format_value(bound),)
            )
            lines.append(f"{self.name}_bucket{suffix} {cumulative}")
        inf_suffix = _labels_suffix(
            self.label_names + ("le",), values + ("+Inf",)
        )
        lines.append(f"{self.name}_bucket{inf_suffix} {sample['count']}")
        plain = _labels_suffix(self.label_names, values)
        lines.append(f"{self.name}_sum{plain} {_format_value(sample['sum'])}")
        lines.append(f"{self.name}_count{plain} {sample['count']}")
        return lines


class MetricsRegistry:
    """A named family registry that renders the exposition text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.label_names != metric.label_names
                ):
                    raise ConfigurationError(
                        f"metric {metric.name!r} already registered with a "
                        f"different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram(name, help, labels, buckets=buckets)
        )  # type: ignore[return-value]

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The Prometheus text exposition (families in name order)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


#: How each run-record summary counter maps onto a registry metric:
#: ``summary name -> (metric name, labels)``.  Counters sharing a metric
#: name become one labeled family (the cache tiers, the stream steps).
SUMMARY_METRICS: dict[str, tuple[str, dict[str, str]]] = {
    "submitted": ("repro_requests_submitted_total", {}),
    "executed": ("repro_solves_executed_total", {}),
    "launches": ("repro_launches_total", {}),
    "batched_launches": ("repro_launches_fused_total", {}),
    "cache_hits_memory": ("repro_cache_hits_total", {"tier": "memory"}),
    "cache_hits_store": ("repro_cache_hits_total", {"tier": "store"}),
    "dedup_hits": ("repro_cache_hits_total", {"tier": "dedup"}),
    "failed": ("repro_requests_failed_total", {}),
    "retries": ("repro_retries_total", {}),
    "streams": ("repro_streams_total", {}),
    "streamed_steps": ("repro_stream_steps_total", {"source": "computed"}),
    "resumed_steps": ("repro_stream_steps_total", {"source": "resumed"}),
}


class ServiceMetrics:
    """The serving tier's counters, owned once, read everywhere.

    One instance backs one :class:`~repro.serve.SolveService`:
    :class:`~repro.serve.records.RunRecorder` routes every summary
    mutation through :meth:`bump` and derives its ``summary`` dict from
    :meth:`summary`; the gateway renders the same :attr:`registry` on
    ``GET /metrics`` (adding its own HTTP/WS families to it).  There is
    no second tally anywhere, so the three surfaces agree by
    construction.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters: dict[str, tuple[Counter, dict[str, str]]] = {}
        label_names: dict[str, tuple[str, ...]] = {}
        for metric_name, labels in SUMMARY_METRICS.values():
            label_names.setdefault(metric_name, tuple(sorted(labels)))
        for summary_name, (metric_name, labels) in SUMMARY_METRICS.items():
            counter = self.registry.counter(
                metric_name,
                f"Serving-tier counter backing summary[{summary_name!r}].",
                label_names[metric_name],
            )
            self._counters[summary_name] = (counter, dict(labels))
        self.inflight = self.registry.gauge(
            "repro_inflight_requests", "Requests queued or solving right now."
        )
        self.queue_depth = self.registry.gauge(
            "repro_queue_depth", "Requests waiting for admission."
        )
        self.request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "Submit-to-outcome latency per request.",
            ("outcome",),
        )

    def bump(self, summary_name: str, amount: int = 1) -> None:
        """Increment one summary counter (the only mutation path)."""
        try:
            counter, labels = self._counters[summary_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown summary counter {summary_name!r}; valid: "
                f"{', '.join(sorted(self._counters))}"
            ) from None
        counter.inc(amount, **labels)

    def value(self, summary_name: str) -> int:
        counter, labels = self._counters[summary_name]
        return int(counter.value(**labels))

    def summary(self) -> dict[str, int]:
        """The run-record summary dict, read back from the registry."""
        return {name: self.value(name) for name in self._counters}

    def observe_request(self, seconds: float, *, outcome: str) -> None:
        self.request_seconds.observe(seconds, outcome=outcome)

    def render(self) -> str:
        return self.registry.render()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SUMMARY_METRICS",
    "ServiceMetrics",
]
