"""The gateway: HTTP/WebSocket bindings for a :class:`SolveService`.

:class:`Gateway` binds one running service to a TCP port using nothing
but :mod:`asyncio.streams`:

``POST /v1/solve``
    JSON request (see :mod:`repro.net.wire`) in, the solved
    :meth:`~repro.backends.SolveResult.to_dict` out.  The response
    carries a content-addressed ``ETag`` — the entry fingerprint (target
    + spec + backend, exactly the cache/store identity) — so a client
    replaying a request with ``If-None-Match`` gets ``304 Not Modified``
    without the body ever being built.  All the service's machinery
    (cache tiers, in-flight dedup, fused admission, retries, run
    records) applies unchanged; the gateway is a thin wire adapter.
``GET /v1/stream`` (WebSocket upgrade)
    The transient front door: the first client text frame is a solve
    request, then the server streams one text frame per completed
    backward-Euler step, riding :meth:`SolveService.stream`.  With a
    service store every step persists before it is sent, so a
    connection cut mid-transient resumes on reconnect: the client sends
    ``last_step`` and the gateway replays/continues from the durable
    step stack, skipping what the client already holds.
``GET /healthz``
    Liveness + a tiny status payload.
``GET /metrics``
    Prometheus text exposition of the service's
    :class:`~repro.net.metrics.MetricsRegistry` — the same counters
    ``service.stats()`` and ``run.json`` report, because all three read
    the one registry.

Multiple gateways (processes) may share one
:class:`~repro.session.ResultStore` root: the store's advisory file
lock plus merge-on-write manifest rewrites make concurrent writers
lossless, and its stat-based reload lets gateway B serve gateway A's
solves from the store tier.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.net import http11, websocket
from repro.net.metrics import Counter, Histogram, MetricsRegistry
from repro.net.wire import (
    decode_json,
    encode_json,
    error_payload,
    parse_solve_payload,
    status_for_error,
)
from repro.serve.service import SolveService
from repro.session import plan_entry
from repro.util.errors import ConfigurationError

#: Routes the gateway understands (for 404 payloads and metrics labels).
ROUTES = ("/healthz", "/metrics", "/v1/solve", "/v1/stream")


class Gateway:
    """One TCP listener in front of one :class:`SolveService`."""

    def __init__(
        self,
        service: SolveService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        registry = service.metrics.registry
        self._http_requests: Counter = registry.counter(
            "repro_http_requests_total",
            "Gateway HTTP requests by route and status.",
            ("route", "status"),
        )
        self._http_seconds: Histogram = registry.histogram(
            "repro_http_request_seconds",
            "Gateway HTTP request latency by route.",
            ("route",),
        )
        self._ws_connections: Counter = registry.counter(
            "repro_ws_connections_total",
            "WebSocket stream connections accepted.",
        )
        self._ws_steps: Counter = registry.counter(
            "repro_ws_steps_sent_total",
            "Transient steps sent over WebSocket streams.",
        )

    # -- lifecycle ------------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        return self.service.metrics.registry

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def started(self) -> bool:
        return self._server is not None

    async def start(self) -> "Gateway":
        if self._server is not None:
            return self
        if not self.service.started:
            raise ConfigurationError(
                "the gateway needs a started SolveService; use "
                "'async with SolveService(...)' around the Gateway"
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one": report what the OS chose.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._server = None

    async def serve_until_cancelled(self) -> None:
        """Block until cancelled (the long-running deployment shape)."""
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await http11.read_request(reader)
                except http11.HttpError as exc:
                    writer.write(http11.render_response(
                        exc.status,
                        encode_json({"error": {"message": str(exc)}}),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    return
                if request is None:
                    return
                if request.path == "/v1/stream":
                    await self._handle_stream(request, reader, writer)
                    return  # a WebSocket consumes the connection
                keep_alive = await self._handle_http(request, writer)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # peer went away; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_http(
        self, request: http11.HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        start = time.perf_counter()
        route = request.path if request.path in ROUTES else "other"
        status, payload = 500, b""
        headers: dict[str, str] = {}
        content_type = "application/json"
        try:
            if request.path == "/healthz" and request.method == "GET":
                status, payload = 200, encode_json(self._health())
            elif request.path == "/metrics" and request.method == "GET":
                self.service.sync_gauges()
                status = 200
                payload = self.service.metrics.render().encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif request.path == "/v1/solve" and request.method == "POST":
                status, payload, headers = await self._handle_solve(request)
            elif request.path in ROUTES:
                status = 405
                payload = encode_json(
                    {"error": {"message": f"wrong method for {request.path}"}}
                )
            else:
                status = 404
                payload = encode_json(
                    {"error": {"message": f"unknown path {request.path!r}",
                               "routes": list(ROUTES)}}
                )
        except Exception as exc:  # noqa: BLE001 - every failure becomes a payload
            status = status_for_error(exc)
            payload = encode_json(error_payload(exc))
        keep_alive = request.keep_alive
        writer.write(http11.render_response(
            status, payload,
            content_type=content_type, headers=headers, keep_alive=keep_alive,
        ))
        await writer.drain()
        self._http_requests.inc(route=route, status=str(status))
        self._http_seconds.observe(time.perf_counter() - start, route=route)
        return keep_alive

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok" if self.service.started else "closed",
            "run_id": self.service.recorder.run_id,
            "inflight": len(self.service._inflight),
            "store": (
                None if self.service.store is None
                else str(self.service.store.root)
            ),
        }

    # -- POST /v1/solve -------------------------------------------------------

    async def _handle_solve(
        self, request: http11.HttpRequest
    ) -> tuple[int, bytes, dict[str, str]]:
        target, backend, spec = parse_solve_payload(decode_json(request.body))
        entry = plan_entry(target, spec, backend)
        etag = f'"{entry.fingerprint}"'
        if request.header("if-none-match") in (etag, entry.fingerprint):
            # The client already holds this exact content: the
            # fingerprint cannot map to a second answer, so no body
            # (and no cache probe) is needed.
            return 304, b"", {"ETag": etag}
        result = await self.service.submit(target, backend=backend, spec=spec)
        payload = dict(result.to_dict())
        payload["fingerprint"] = entry.fingerprint
        return 200, encode_json(payload), {"ETag": etag}

    # -- GET /v1/stream (WebSocket) -------------------------------------------

    async def _handle_stream(
        self,
        request: http11.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        start = time.perf_counter()
        status = 101
        try:
            if not request.wants_websocket:
                status = 426
                writer.write(http11.render_response(
                    status,
                    encode_json({"error": {
                        "message": "/v1/stream speaks WebSocket; send an "
                                   "Upgrade: websocket handshake"}}),
                    headers={"Upgrade": "websocket"}, keep_alive=False,
                ))
                await writer.drain()
                return
            key = request.header("sec-websocket-key")
            if not key:
                status = 400
                writer.write(http11.render_response(
                    status,
                    encode_json({"error": {
                        "message": "missing Sec-WebSocket-Key"}}),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            writer.write(http11.render_upgrade(websocket.accept_key(key)))
            await writer.drain()
            self._ws_connections.inc()
            await self._run_stream(reader, writer)
        finally:
            self._http_requests.inc(route="/v1/stream", status=str(status))
            self._http_seconds.observe(
                time.perf_counter() - start, route="/v1/stream"
            )

    async def _run_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = websocket.FrameDecoder(require_masked=True)

        async def next_message() -> websocket.Frame | None:
            while True:
                data = await reader.read(65536)
                if not data:
                    return None
                for frame in decoder.feed(data):
                    if frame.opcode == websocket.OP_PING:
                        writer.write(websocket.encode_frame(
                            websocket.OP_PONG, frame.payload
                        ))
                        await writer.drain()
                        continue
                    if frame.opcode in (websocket.OP_CLOSE, websocket.OP_TEXT,
                                        websocket.OP_BINARY):
                        return frame

        async def send(payload: dict[str, Any]) -> None:
            writer.write(websocket.encode_frame(
                websocket.OP_TEXT, encode_json(payload)
            ))
            await writer.drain()

        try:
            opening = await next_message()
            if opening is None or opening.opcode == websocket.OP_CLOSE:
                return
            body = decode_json(opening.payload)
            target, backend, spec = parse_solve_payload(body)
            resume = bool(body.get("resume", True))
            last_step = int(body.get("last_step", 0) or 0)
            sent = 0
            async for step in self.service.stream(
                target, backend=backend, spec=spec, resume=resume,
            ):
                if step.step <= last_step:
                    # The client survived a cut with these steps in hand;
                    # the durable stack replays them, the wire skips them.
                    continue
                await send({"type": "step", "step": step.to_dict()})
                self._ws_steps.inc()
                sent += 1
            await send({"type": "done", "steps_sent": sent})
            writer.write(websocket.encode_close(1000, "done"))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client vanished mid-stream; the store kept the steps
        except websocket.WebSocketError:
            return
        except Exception as exc:  # noqa: BLE001 - report, then close
            try:
                await send(error_payload(exc) | {"type": "error"})
                writer.write(websocket.encode_close(1011, "error"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass


def serve_forever(
    *,
    store: Any = None,
    records: Any = None,
    host: str = "127.0.0.1",
    port: int = 0,
    run_id: str | None = None,
    ready: Any = None,
    stop: Any = None,
    poll_seconds: float = 0.05,
    **service_options: Any,
) -> dict[str, Any]:
    """Boot a service + gateway and block until ``stop`` is set.

    The process/thread entry point the demo and the multi-gateway smoke
    share: builds a :class:`~repro.serve.SolveService` (``store``,
    ``records`` and ``service_options`` pass straight through), wraps it
    in a :class:`Gateway`, calls ``ready({"host", "port", "url",
    "run_id"})`` once listening, then polls ``stop.is_set()`` (any
    object with that method — ``threading.Event`` and
    ``multiprocessing.Event`` both qualify) and shuts down cleanly.
    Returns the service's final ``stats()``.
    """

    async def main() -> dict[str, Any]:
        async with SolveService(
            store=store, records=records, run_id=run_id, **service_options
        ) as service:
            async with Gateway(service, host=host, port=port) as gateway:
                if ready is not None:
                    ready({
                        "host": gateway.host,
                        "port": gateway.port,
                        "url": gateway.url,
                        "run_id": service.recorder.run_id,
                    })
                if stop is None:
                    await gateway.serve_until_cancelled()
                while not stop.is_set():
                    await asyncio.sleep(poll_seconds)
            return service.stats()

    return asyncio.run(main())


__all__ = ["Gateway", "ROUTES", "serve_forever"]
