"""RFC 6455 WebSocket framing and handshake, sans-io, stdlib-only.

The gateway streams transient solves over a WebSocket because the step
stream is exactly what HTTP request/response cannot express: an
unbounded, server-paced sequence the client may abandon (or lose to a
cut connection) and later *resume*.  This module owns the protocol
mechanics both ends share:

* :func:`accept_key` — the handshake digest
  (``base64(sha1(key + GUID))``) the server echoes back.
* :func:`encode_frame` — one frame, optionally client-masked.
* :class:`FrameDecoder` — an incremental byte-feed parser yielding
  :class:`Frame` values; it is transport-agnostic, so the asyncio
  server and the blocking client SDK use the identical parser (and the
  tests can drive it with byte slices, no sockets involved).

Only what the gateway needs is implemented: single-frame text/binary
messages plus the ping/pong/close control frames.  Fragmented messages
(FIN=0) are rejected loudly rather than mis-assembled silently.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from dataclasses import dataclass

#: The protocol's fixed handshake GUID (RFC 6455 §1.3).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})
DATA_OPCODES = frozenset({OP_TEXT, OP_BINARY})

#: Frames larger than this are a protocol error on our wire (a full
#: 128x128x8 float64 step is ~1 MiB; 64 MiB is generous headroom).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WebSocketError(Exception):
    """A protocol violation or an unexpected close."""


def accept_key(client_key: str) -> str:
    """The Sec-WebSocket-Accept value for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((client_key.strip() + WS_GUID).encode("ascii"))
    return base64.b64encode(digest.digest()).decode("ascii")


def make_client_key() -> str:
    """A fresh random Sec-WebSocket-Key (16 random bytes, base64)."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


@dataclass(frozen=True)
class Frame:
    """One parsed frame: opcode plus unmasked payload."""

    opcode: int
    payload: bytes

    @property
    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPCODES

    def text(self) -> str:
        return self.payload.decode("utf-8")


def encode_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """Serialize one FIN frame.  Clients MUST mask; servers MUST NOT."""
    if opcode not in CONTROL_OPCODES | DATA_OPCODES:
        raise WebSocketError(f"unsupported opcode {opcode:#x}")
    if opcode in CONTROL_OPCODES and len(payload) > 125:
        raise WebSocketError("control frame payloads are capped at 125 bytes")
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


def encode_close(code: int = 1000, reason: str = "") -> bytes:
    """A close frame with status code + optional UTF-8 reason."""
    return encode_frame(
        OP_CLOSE, struct.pack(">H", code) + reason.encode("utf-8")
    )


class FrameDecoder:
    """Incremental frame parser: feed bytes in, get :class:`Frame`\\ s out.

    Transport-agnostic by design — the asyncio server feeds it from a
    ``StreamReader``, the blocking client from ``socket.recv``, and the
    unit tests from hand-built byte strings split at awkward offsets.
    """

    def __init__(self, *, require_masked: bool = False):
        #: Servers set ``require_masked=True`` — RFC 6455 §5.1 demands
        #: clients mask every frame.
        self.require_masked = require_masked
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Append received bytes; return every frame now complete."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            frame = self._try_parse()
            if frame is None:
                return frames
            frames.append(frame)

    def pending_bytes(self) -> int:
        return len(self._buffer)

    def _try_parse(self) -> Frame | None:
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        fin = bool(first & 0x80)
        if first & 0x70:
            raise WebSocketError("reserved frame bits set (no extensions)")
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from(">H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from(">Q", buf, offset)
            offset += 8
        if length > MAX_FRAME_BYTES:
            raise WebSocketError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        if not fin:
            raise WebSocketError("fragmented messages are not supported")
        if self.require_masked and not masked and opcode in DATA_OPCODES:
            raise WebSocketError("client data frames must be masked")
        key = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset:offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset:offset + length])
        del buf[:offset + length]
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        if opcode not in CONTROL_OPCODES | DATA_OPCODES:
            raise WebSocketError(f"unsupported opcode {opcode:#x}")
        return Frame(opcode=opcode, payload=payload)


def parse_close(frame: Frame) -> tuple[int, str]:
    """Status code + reason of a close frame (1005 when absent)."""
    if frame.opcode != OP_CLOSE:
        raise WebSocketError("not a close frame")
    if len(frame.payload) < 2:
        return 1005, ""
    (code,) = struct.unpack_from(">H", frame.payload, 0)
    return code, frame.payload[2:].decode("utf-8", errors="replace")


__all__ = [
    "CONTROL_OPCODES",
    "DATA_OPCODES",
    "Frame",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WS_GUID",
    "WebSocketError",
    "accept_key",
    "encode_close",
    "encode_frame",
    "make_client_key",
    "parse_close",
]
