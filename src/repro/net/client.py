"""The blocking client SDK for a running :class:`~repro.net.Gateway`.

:class:`GatewayClient` is how examples, benchmarks and remote callers
exercise the *real* wire path — stdlib ``http.client`` for the request/
response endpoints and a raw socket speaking RFC 6455 for streams:

* :meth:`solve` — ``POST /v1/solve``; returns a rehydrated
  :class:`~repro.backends.SolveResult` (pressure bit-exact across the
  wire).  Requests are content-addressed, so retries are always safe:
  connection-level failures (gateway restarting, socket reset) retry
  with backoff; application errors re-raise typed.
* :meth:`stream` — a blocking iterator of
  :class:`~repro.backends.StepResult` over the WebSocket.  If the
  connection dies mid-transient the client *reconnects and resumes*:
  it sends the last step it holds, and the gateway replays/continues
  from the durable step stack — the iterator's consumer just sees the
  next step.
* :meth:`healthz` / :meth:`metrics` / :meth:`metrics_values` — the
  operational surface (``metrics_values`` parses the Prometheus text
  into a flat ``{name{labels}: value}`` dict for assertions).

Connections are per-thread (``http.client`` handles keep-alive but is
not thread-safe), so one client object may be shared across a thread
pool — the fan-out benchmarks do exactly that.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time
from typing import Any, Iterator, Mapping

from repro.backends import SolveResult, StepResult
from repro.net import websocket
from repro.net.wire import decode_json, encode_json, target_to_wire
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError, ReproError

#: Connection-level failures worth retrying (the request is
#: content-addressed, so a replay can never double-apply anything).
RECONNECT_ERRORS = (
    ConnectionError,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    socket.timeout,
    BrokenPipeError,
    EOFError,
    OSError,
)


class GatewayError(ReproError):
    """An application-level error answered by the gateway."""

    def __init__(self, status: int, message: str, *, category: str | None = None):
        super().__init__(f"gateway answered {status}: {message}")
        self.status = status
        self.category = category


class GatewayClient:
    """A blocking, reconnecting client for one gateway address."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 120.0,
        retries: int = 3,
        retry_backoff: float = 0.05,
    ):
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._local = threading.local()
        self.last_etag: str | None = None

    # -- connection plumbing --------------------------------------------------

    def _connection(self, *, fresh: bool = False) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if fresh and conn is not None:
            conn.close()
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's keep-alive connection (others close with
        their threads; the gateway also reaps idle sockets on shutdown)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange with reconnect-and-retry on transport faults."""
        attempt = 0
        while True:
            conn = self._connection(fresh=attempt > 0)
            try:
                conn.request(method, path, body=body, headers=dict(headers or {}))
                response = conn.getresponse()
                payload = response.read()
                response_headers = {
                    name.lower(): value for name, value in response.getheaders()
                }
                return response.status, response_headers, payload
            except RECONNECT_ERRORS:
                self.close()
                if attempt >= self.retries:
                    raise
                time.sleep(self.retry_backoff * (2 ** attempt))
                attempt += 1

    @staticmethod
    def _raise_for_error(status: int, payload: bytes) -> None:
        if status < 400:
            return
        message, category = "", None
        try:
            body = decode_json(payload)
            error = body.get("error", {}) if isinstance(body, dict) else {}
            message = error.get("message", "")
            category = error.get("category")
        except Exception:  # noqa: BLE001 - a non-JSON error body
            message = payload.decode("utf-8", errors="replace")
        raise GatewayError(status, message or "unknown error", category=category)

    # -- endpoints ------------------------------------------------------------

    def solve(
        self,
        target: Any,
        *,
        backend: str = "reference",
        spec: Any = None,
        if_none_match: str | None = None,
        **options: Any,
    ) -> SolveResult | None:
        """Solve over the wire; semantics mirror :meth:`SolveService.submit`.

        Returns the rehydrated result, or ``None`` on ``304 Not
        Modified`` when ``if_none_match`` named the current content
        (the caller already holds the answer).  :attr:`last_etag` keeps
        the response's ETag for that replay."""
        payload: dict[str, Any] = {
            "target": target_to_wire(target),
            "backend": backend,
        }
        if spec is not None and options:
            raise ConfigurationError(
                f"pass configuration either as spec=... or as keyword "
                f"options, not both (got spec plus "
                f"{', '.join(sorted(options))})"
            )
        if options:
            payload["options"] = dict(options)
        elif spec is not None:
            payload["spec"] = coerce_spec(spec).to_dict()
        headers = {"Content-Type": "application/json"}
        if if_none_match is not None:
            headers["If-None-Match"] = if_none_match
        status, response_headers, body = self._request(
            "POST", "/v1/solve", encode_json(payload), headers
        )
        self.last_etag = response_headers.get("etag")
        if status == 304:
            return None
        self._raise_for_error(status, body)
        return SolveResult.from_dict(decode_json(body))

    def healthz(self) -> dict[str, Any]:
        status, _, body = self._request("GET", "/healthz")
        self._raise_for_error(status, body)
        return decode_json(body)

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        status, _, body = self._request("GET", "/metrics")
        self._raise_for_error(status, body)
        return body.decode("utf-8")

    def metrics_values(self) -> dict[str, float]:
        """``/metrics`` parsed into ``{name{labels}: value}``."""
        return parse_metrics_text(self.metrics())

    # -- streaming ------------------------------------------------------------

    def stream(
        self,
        target: Any,
        *,
        backend: str = "wse",
        spec: Any = None,
        resume: bool = True,
        **options: Any,
    ) -> Iterator[StepResult]:
        """Iterate a transient solve's steps over the WebSocket.

        A connection lost mid-stream reconnects (up to ``retries``
        times per gap) sending ``last_step``, and the gateway resumes
        from the durable step stack — the iterator keeps yielding from
        the next step as if nothing happened.
        """
        request: dict[str, Any] = {
            "target": target_to_wire(target),
            "backend": backend,
            "resume": resume,
        }
        if spec is not None and options:
            raise ConfigurationError(
                "pass configuration either as spec=... or as keyword "
                "options, not both"
            )
        if options:
            request["options"] = dict(options)
        elif spec is not None:
            request["spec"] = coerce_spec(spec).to_dict()

        last_step = 0
        attempts_left = self.retries
        while True:
            try:
                for step in self._stream_once(dict(request), last_step):
                    last_step = step.step
                    attempts_left = self.retries  # progress resets the budget
                    yield step
                return
            except RECONNECT_ERRORS:
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                time.sleep(self.retry_backoff)
                # Reconnect resumes: the gateway replays the durable
                # stack and skips everything <= last_step.

    def _stream_once(
        self, request: dict[str, Any], last_step: int
    ) -> Iterator[StepResult]:
        request["last_step"] = last_step
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            self._ws_handshake(sock)
            sock.sendall(websocket.encode_frame(
                websocket.OP_TEXT, encode_json(request), mask=True
            ))
            decoder = websocket.FrameDecoder()
            pending: list[websocket.Frame] = []
            while True:
                frame = self._next_data_frame(sock, decoder, pending)
                if frame is None or frame.opcode == websocket.OP_CLOSE:
                    return
                message = decode_json(frame.payload)
                kind = message.get("type")
                if kind == "step":
                    yield StepResult.from_dict(message["step"])
                elif kind == "done":
                    return
                elif kind == "error":
                    error = message.get("error", {})
                    raise GatewayError(
                        500, error.get("message", "stream failed"),
                        category=error.get("category"),
                    )
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _ws_handshake(self, sock: socket.socket) -> None:
        key = websocket.make_client_key()
        sock.sendall((
            "GET /v1/stream HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        ).encode("latin-1"))
        head = b""
        while b"\r\n\r\n" not in head:
            chunk = sock.recv(4096)
            if not chunk:
                raise ConnectionError("gateway closed during WS handshake")
            head += chunk
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise GatewayError(
                int(status_line.split(" ")[1]) if len(status_line.split(" ")) > 1 else 500,
                f"WebSocket upgrade refused: {status_line}",
            )
        expected = websocket.accept_key(key)
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"sec-websocket-accept:"):
                got = line.split(b":", 1)[1].strip().decode("ascii")
                if got != expected:
                    raise ConnectionError("bad Sec-WebSocket-Accept digest")

    def _next_data_frame(
        self,
        sock: socket.socket,
        decoder: websocket.FrameDecoder,
        pending: list[websocket.Frame],
    ) -> websocket.Frame | None:
        """Next non-control frame; ``pending`` holds frames that arrived
        in the same ``recv`` as an earlier one (none are ever dropped)."""
        while True:
            while pending:
                frame = pending.pop(0)
                if frame.opcode == websocket.OP_PING:
                    sock.sendall(websocket.encode_frame(
                        websocket.OP_PONG, frame.payload, mask=True
                    ))
                    continue
                if frame.opcode == websocket.OP_PONG:
                    continue
                return frame
            data = sock.recv(65536)
            if not data:
                raise ConnectionError("gateway closed mid-stream")
            pending.extend(decoder.feed(data))


def parse_metrics_text(text: str) -> dict[str, float]:
    """Prometheus text -> ``{'name{label="v"}': value}`` (floats)."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values


__all__ = [
    "GatewayClient",
    "GatewayError",
    "RECONNECT_ERRORS",
    "parse_metrics_text",
]
