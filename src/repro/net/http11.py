"""A minimal HTTP/1.1 request/response layer over asyncio streams.

Just enough protocol for the gateway — request line + headers + a
Content-Length body, keep-alive by default, no chunked encoding, no
TLS — implemented directly on :mod:`asyncio.streams` so the gateway
stays stdlib-only.  Anything malformed raises :class:`HttpError` with
the status the handler should answer; oversized requests are bounded
before any body is read.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Hard caps: a solve request is a few KiB of JSON; these bound a
#: misbehaving peer long before memory pressure.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    426: "Upgrade Required",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A protocol-level problem, carrying the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request (headers lower-cased, query decoded)."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return "close" not in connection

    @property
    def wants_websocket(self) -> bool:
        return (
            "upgrade" in self.header("connection").lower()
            and self.header("upgrade").lower() == "websocket"
        )


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes exceeds the cap")
    body = await reader.readexactly(length) if length else b""

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        version=version,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response with Content-Length framing."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    out_headers = {
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if body:
        out_headers["Content-Type"] = content_type
    out_headers.update(headers or {})
    lines.extend(f"{name}: {value}" for name, value in out_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_upgrade(accept: str) -> bytes:
    """The 101 Switching Protocols response of a WebSocket handshake."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
    ).encode("latin-1")


__all__ = [
    "HttpError",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "REASONS",
    "read_request",
    "render_response",
    "render_upgrade",
]
