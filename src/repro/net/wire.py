"""Wire codecs: how solve requests and results cross the network.

The gateway speaks JSON.  A solve/stream request body is::

    {
      "target":  "quarter_five_spot"                       # by name, or
                 | {"scenario": "...", "params": {...}},   # parameterized
      "backend": "wse",                                    # optional
      "spec":    <SolveSpec.to_dict()>,                    # optional, or
      "options": {"rel_tol": 1e-8, "n_steps": 4, ...}      # flat kwargs
    }

Targets are *declarative* on the wire — a registered scenario name plus
JSON-able parameters — which is exactly what keeps the content
fingerprint (and therefore the cache identity, the ETag and the store
records) identical between a remote request and the same request made
in-process.  Raw :class:`~repro.physics.darcy.SinglePhaseProblem`
objects don't travel; callers with bespoke fields register a scenario.

Responses are :meth:`SolveResult.to_dict` /
:meth:`StepResult.to_dict` payloads (ndarrays base64-encoded, exact);
errors are ``{"error": {"type", "message", "category"}}`` with the
retry-taxonomy category so clients can make the same
retry-or-fail-fast call the service makes internally.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.scenarios.base import Scenario
from repro.serve.retry import classify_failure
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError


def encode_json(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_json(data: bytes) -> Any:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"request body is not valid JSON: {exc}") from None


def target_to_wire(target: Any) -> Any:
    """The JSON form of a solve target (scenario name or Scenario)."""
    if isinstance(target, str):
        return target
    if isinstance(target, Scenario):
        return {"scenario": target.name, "params": dict(target.params)}
    raise ConfigurationError(
        f"cannot send {type(target).__name__} over the wire: gateway "
        f"targets are registered scenario names (optionally with params); "
        f"register bespoke problems as scenarios first"
    )


def target_from_wire(payload: Any) -> Any:
    """Decode a wire target into what :func:`repro.session.plan_entry`
    accepts (a name string or a bound :class:`Scenario`)."""
    if isinstance(payload, str):
        return payload
    if isinstance(payload, Mapping) and "scenario" in payload:
        name = payload["scenario"]
        params = payload.get("params") or {}
        if not isinstance(name, str):
            raise ConfigurationError("target.scenario must be a string")
        if not isinstance(params, Mapping):
            raise ConfigurationError("target.params must be an object")
        from repro.scenarios.base import scenario as bind_scenario

        return bind_scenario(name, **params)
    raise ConfigurationError(
        'request "target" must be a scenario name or '
        '{"scenario": ..., "params": {...}}'
    )


def spec_from_wire(payload: Mapping[str, Any]) -> SolveSpec:
    """Resolve the request's ``spec`` / ``options`` into a SolveSpec."""
    spec = payload.get("spec")
    options = payload.get("options")
    if spec is not None and options:
        raise ConfigurationError(
            'pass either "spec" (a SolveSpec.to_dict payload) or flat '
            '"options", not both'
        )
    if options:
        if not isinstance(options, Mapping):
            raise ConfigurationError('request "options" must be an object')
        return SolveSpec.from_kwargs(**options)
    if spec is None:
        return coerce_spec(None)
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            'request "spec" must be a SolveSpec.to_dict() object'
        )
    return SolveSpec.from_dict(spec)


def parse_solve_payload(payload: Any) -> tuple[Any, str, SolveSpec]:
    """Decode one request body into ``(target, backend, spec)``."""
    if not isinstance(payload, Mapping):
        raise ConfigurationError("request body must be a JSON object")
    unknown = sorted(
        set(payload)
        - {"target", "backend", "spec", "options", "resume", "last_step"}
    )
    if unknown:
        raise ConfigurationError(
            f"unknown request field{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(map(repr, unknown))}"
        )
    if "target" not in payload:
        raise ConfigurationError('request body needs a "target"')
    backend = payload.get("backend", "reference")
    if not isinstance(backend, str):
        raise ConfigurationError('request "backend" must be a string')
    return (
        target_from_wire(payload["target"]),
        backend,
        spec_from_wire(payload),
    )


def error_payload(error: BaseException) -> dict[str, Any]:
    """The wire face of a failure, carrying its retry-taxonomy category."""
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "category": classify_failure(error),
        }
    }


def status_for_error(error: BaseException) -> int:
    """HTTP status by failure category: malformed requests are the
    client's fault (400), everything else is a server-side 500."""
    return 400 if classify_failure(error) == "config" else 500


__all__ = [
    "decode_json",
    "encode_json",
    "error_payload",
    "parse_solve_payload",
    "spec_from_wire",
    "status_for_error",
    "target_from_wire",
    "target_to_wire",
]
