"""Typed, validated solve configuration: :class:`SolveSpec`.

PR 1 unified the *entry point* (every backend answers through
``repro.solve``), but configuration stayed a stringly-typed ``**options``
bag that each backend interpreted — and silently ignored — differently.
``SolveSpec`` replaces that bag with a frozen dataclass tree:

* :class:`ToleranceSpec` — convergence knobs (``tol_rtr``, ``rel_tol``,
  ``max_iters``);
* :class:`PrecisionSpec` — working precision (``float32``/``float64``);
* :class:`MachineSpec` — machine-level knobs (a :class:`WseSpecs` or
  :class:`GpuSpecs` target, SIMD width, CUDA block shape, kernel variant,
  buffer reuse, comm-only mode, fixed iteration counts);
* ``preconditioner`` — ``"none"`` (the paper's unpreconditioned CG),
  ``"jacobi"`` (the documented diagonal-scaling extension), or ``"mg"``
  (matrix-free geometric multigrid V-cycle; tuned by the optional
  top-level ``mg_levels`` / ``mg_smoother_iters`` knobs);
* :class:`TimeSpec` (optional ``time`` section) — the backward-Euler
  schedule that turns a solve into a transient *simulation* (Δt schedule,
  step count, compressibility, initial-condition policy, warm-start
  toggle); consumed by ``repro.simulate`` and by any backend's ``solve``
  when set.

Every field is validated at construction; ``None`` means "backend
default".  :meth:`SolveSpec.from_kwargs` is the bridge from the legacy
flat-kwarg vocabulary (it rejects unknown keys, naming the nearest valid
one), and :meth:`SolveSpec.to_dict` / :meth:`SolveSpec.from_dict` give a
JSON-able round trip for persistence (the session result store records
exactly what configuration produced each result).
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.gpu.specs import GpuSpecs
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs

#: Working precisions the machines support (fp32 on-device, fp64 checks).
SUPPORTED_DTYPES = ("float32", "float64")

#: Preconditioner choices: Jacobi is the purely PE-local extension;
#: ``"mg"`` is the matrix-free geometric multigrid V-cycle (lateral
#: semi-coarsening, Galerkin coarse operators, weighted-Jacobi smoothing)
#: shared by the reference solver and every fabric engine.
PRECONDITIONERS = ("none", "jacobi", "mg")

#: Hard cap on multigrid hierarchy depth (matches repro.mg.MAX_MG_LEVELS).
MG_MAX_LEVELS = 10

#: Hard cap on pre/post smoothing sweeps per level.
MG_MAX_SMOOTHER_ITERS = 8


def _check_optional_int(name: str, value: Any, minimum: int) -> int | None:
    if value is None:
        return None
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def _check_optional_float(name: str, value: Any, *, positive: bool = True) -> float | None:
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if positive and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


@dataclass(frozen=True)
class ToleranceSpec:
    """Convergence criteria for the linear (CG) solve.

    ``tol_rtr`` is the paper's absolute tolerance on ``r^T r`` (§V-C uses
    2e-10); ``rel_tol`` the relative alternative (converge when
    ``r^T r <= rel_tol² · r0^T r0``); ``max_iters`` the iteration cap.
    ``None`` defers to the backend default.
    """

    tol_rtr: float | None = None
    rel_tol: float | None = None
    max_iters: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tol_rtr", _check_optional_float("tol_rtr", self.tol_rtr))
        object.__setattr__(self, "rel_tol", _check_optional_float("rel_tol", self.rel_tol))
        object.__setattr__(
            self, "max_iters", _check_optional_int("max_iters", self.max_iters, 1)
        )


@dataclass(frozen=True)
class PrecisionSpec:
    """Working precision; stored as a canonical NumPy dtype name.

    Accepts anything ``np.dtype`` understands (``np.float32``,
    ``"float64"``, ``np.dtype("f4")``) and normalizes it; ``None`` defers
    to the backend default (float64 reference, float32 devices).
    """

    dtype: str | None = None

    def __post_init__(self) -> None:
        if self.dtype is None:
            return
        try:
            name = np.dtype(self.dtype).name
        except TypeError:
            raise ConfigurationError(f"unrecognized dtype {self.dtype!r}") from None
        if name not in SUPPORTED_DTYPES:
            raise ConfigurationError(
                f"dtype {name!r} is not supported; choose one of "
                f"{', '.join(SUPPORTED_DTYPES)}"
            )
        object.__setattr__(self, "dtype", name)

    def numpy_dtype(self, default: Any = np.float64) -> np.dtype:
        """The resolved ``np.dtype`` (falling back to ``default``)."""
        return np.dtype(self.dtype if self.dtype is not None else default)


#: Names of every TimeSpec knob (used for from_dict strictness checks).
TIME_FIELDS = (
    "n_steps",
    "dt",
    "total_compressibility",
    "porosity",
    "initial_condition",
    "warm_start",
)


@dataclass(frozen=True)
class TimeSpec:
    """Backward-Euler time-stepping schedule for a transient solve.

    Setting ``SolveSpec.time`` turns a solve into a *simulation*: every
    step solves ``(J + A) p^{n+1} = A p^n + b_D`` with the accumulation
    diagonal ``A = diag(φ c_t V / Δt)`` (see ``repro.physics.transient``
    for the discretization and its conditioning property).

    * ``n_steps`` — number of backward-Euler steps (>= 1);
    * ``dt`` — the step size: a single positive float, or a per-step
      schedule (sequence of ``n_steps`` positive floats) for ramped
      Δt studies;
    * ``total_compressibility`` — ``c_t`` (> 0);
    * ``porosity`` — uniform ``φ`` (> 0; field porosities stay with the
      lower-level physics API, a spec must be JSON-able);
    * ``initial_condition`` — ``"problem"`` (the problem's
      Dirichlet-consistent zero-fill initial pressure) or a finite float
      (uniform fill, Dirichlet values applied on top);
    * ``warm_start`` — start each step's CG from the previous step's
      pressure (default) instead of re-starting from the initial
      condition.  Step 1 is identical either way (both start from the
      initial condition), which the tests pin down.
    """

    n_steps: int = 1
    dt: "float | tuple[float, ...]" = 1.0
    total_compressibility: float = 1e-4
    porosity: float = 0.2
    initial_condition: "str | float" = "problem"
    warm_start: bool = True

    def __post_init__(self) -> None:
        n_steps = _check_optional_int("n_steps", self.n_steps, 1)
        if n_steps is None:
            raise ConfigurationError("n_steps must be an integer >= 1, got None")
        object.__setattr__(self, "n_steps", n_steps)
        dt = self.dt
        if isinstance(dt, (list, tuple, np.ndarray)):
            schedule = []
            for i, v in enumerate(dt):
                if v is None:
                    raise ConfigurationError(
                        f"dt[{i}] must be a positive number, got None"
                    )
                schedule.append(_check_optional_float(f"dt[{i}]", v))
            schedule = tuple(schedule)
            if len(schedule) != n_steps:
                raise ConfigurationError(
                    f"dt schedule has {len(schedule)} entries for "
                    f"n_steps={n_steps}"
                )
            object.__setattr__(self, "dt", schedule)
        else:
            object.__setattr__(self, "dt", _check_optional_float("dt", dt))
            if self.dt is None:
                raise ConfigurationError("dt must be a positive number, got None")
        object.__setattr__(
            self,
            "total_compressibility",
            _check_optional_float("total_compressibility", self.total_compressibility),
        )
        object.__setattr__(
            self, "porosity", _check_optional_float("porosity", self.porosity)
        )
        ic = self.initial_condition
        if isinstance(ic, str):
            if ic != "problem":
                raise ConfigurationError(
                    f"initial_condition must be 'problem' or a finite number, "
                    f"got {ic!r}"
                )
        else:
            try:
                ic = float(ic)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"initial_condition must be 'problem' or a finite number, "
                    f"got {self.initial_condition!r}"
                ) from None
            if not np.isfinite(ic):
                raise ConfigurationError(
                    f"initial_condition must be finite, got {ic!r}"
                )
            object.__setattr__(self, "initial_condition", ic)
        object.__setattr__(self, "warm_start", bool(self.warm_start))

    def dts(self) -> tuple[float, ...]:
        """The per-step Δt schedule, always ``n_steps`` long."""
        if isinstance(self.dt, tuple):
            return self.dt
        return (self.dt,) * self.n_steps

    def times(self) -> tuple[float, ...]:
        """Physical time after each step (cumulative Δt sums)."""
        out, t = [], 0.0
        for dt in self.dts():
            t += dt
            out.append(t)
        return tuple(out)

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_steps": self.n_steps,
            "dt": list(self.dt) if isinstance(self.dt, tuple) else self.dt,
            "total_compressibility": self.total_compressibility,
            "porosity": self.porosity,
            "initial_condition": self.initial_condition,
            "warm_start": self.warm_start,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimeSpec":
        bad = sorted(set(data) - set(TIME_FIELDS))
        if bad:
            raise ConfigurationError(
                f"unknown time key(s) {', '.join(map(repr, bad))}"
            )
        payload = dict(data)
        if isinstance(payload.get("dt"), list):
            payload["dt"] = tuple(payload["dt"])
        return cls(**payload)


#: Names of every MachineSpec knob (used for per-backend strictness checks).
MACHINE_FIELDS = (
    "spec",
    "engine",
    "simd_width",
    "block_shape",
    "variant",
    "reuse_buffers",
    "comm_only",
    "fixed_iterations",
    "batch_size",
    "shard_shape",
    "fused_tile",
)

#: Fabric execution engines the dataflow backend offers (``None`` keeps
#: the backend default, the event-driven oracle).  The single source of
#: truth: ``repro.core.engines.ENGINE_NAMES`` aliases this tuple.
FABRIC_ENGINES = ("event", "vectorized", "sharded", "fused")

#: Engines whose sweeps are cache-tiled and therefore honour the
#: ``fused_tile`` knob: the fused hot-loop engine itself, and the sharded
#: engine (whose workers run the same tiled kernel over their
#: halo-extended slabs).  ``repro.core.engines.TILE_CAPABLE_ENGINES``
#: aliases this tuple.
TILE_ENGINES = ("fused", "sharded")


@dataclass(frozen=True)
class MachineSpec:
    """Machine-level execution knobs.

    Each backend supports a subset and *rejects* the rest (a spec asking
    the GPU for a SIMD width is a configuration error, not a silent
    no-op):

    * ``spec`` — the hardware description: a :class:`WseSpecs` for the
      dataflow backend, a :class:`GpuSpecs` for the GPU model;
    * ``engine`` — fabric execution engine (dataflow only):
      ``"event"`` (per-PE discrete-event oracle, cycle-accurate) or
      ``"vectorized"`` (whole-fabric NumPy sweeps with an analytic
      cycle/counter model — paper-scale fabrics).  Omitting it keeps
      today's behaviour (``"event"``);
    * ``simd_width`` — §III-E.3 DSD vectorization (dataflow only);
    * ``block_shape`` — CUDA thread-block shape (GPU only);
    * ``variant`` — kernel variant name, e.g. ``"precomputed"`` or
      ``"fused_mobility"`` (dataflow only);
    * ``reuse_buffers`` — §III-E.1 buffer-reuse toggle (dataflow only);
    * ``comm_only`` — Table IV methodology: suppress floating point
      (dataflow only, requires ``fixed_iterations``);
    * ``fixed_iterations`` — run exactly N CG steps (dataflow and GPU);
    * ``batch_size`` — cap on problems fused per ``(batch, nx, ny, nz)``
      program in batched execution (dataflow + vectorized engine only;
      ``None`` fuses a whole compatible batch).  The event engine and
      the gpu/reference backends reject it.
    * ``shard_shape`` — ``(shards_x, shards_y)`` domain decomposition of
      the fabric for the sharded engine (an ``int`` means a 1-D
      ``(n, 1)`` split).  Requires ``engine="sharded"``; the layout is
      validated against the grid at engine construction.
    * ``fused_tile`` — ``(tile_x, tile_y)`` cache-tile shape for the
      fused hot-loop engine's tiled sweeps (an ``int`` means a square
      ``(n, n)`` tile).  Requires a tile-capable engine
      (``engine="fused"`` or ``engine="sharded"``); omitting it lets the
      engine auto-pick a tile from the grid and dtype.
    """

    spec: WseSpecs | GpuSpecs | None = None
    engine: str | None = None
    simd_width: int | None = None
    block_shape: tuple[int, int, int] | None = None
    variant: str | None = None
    reuse_buffers: bool | None = None
    comm_only: bool = False
    fixed_iterations: int | None = None
    batch_size: int | None = None
    shard_shape: tuple[int, int] | None = None
    fused_tile: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.spec is not None and not isinstance(self.spec, (WseSpecs, GpuSpecs)):
            raise ConfigurationError(
                f"machine.spec must be a WseSpecs or GpuSpecs, got "
                f"{type(self.spec).__name__}"
            )
        if self.engine is not None and self.engine not in FABRIC_ENGINES:
            close = difflib.get_close_matches(
                str(self.engine), FABRIC_ENGINES, n=1, cutoff=0.5
            )
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ConfigurationError(
                f"unknown fabric engine {self.engine!r}{hint} "
                f"(valid engines: {', '.join(FABRIC_ENGINES)})"
            )
        object.__setattr__(
            self, "simd_width", _check_optional_int("simd_width", self.simd_width, 1)
        )
        if self.block_shape is not None:
            shape = tuple(int(v) for v in self.block_shape)
            if len(shape) != 3 or any(v < 1 for v in shape):
                raise ConfigurationError(
                    f"block_shape must be three positive integers, got "
                    f"{self.block_shape!r}"
                )
            object.__setattr__(self, "block_shape", shape)
        if self.variant is not None:
            variant = getattr(self.variant, "value", self.variant)
            if not isinstance(variant, str):
                raise ConfigurationError(f"variant must be a string, got {self.variant!r}")
            object.__setattr__(self, "variant", variant)
        if self.reuse_buffers is not None:
            object.__setattr__(self, "reuse_buffers", bool(self.reuse_buffers))
        object.__setattr__(self, "comm_only", bool(self.comm_only))
        object.__setattr__(
            self,
            "fixed_iterations",
            _check_optional_int("fixed_iterations", self.fixed_iterations, 1),
        )
        object.__setattr__(
            self, "batch_size", _check_optional_int("batch_size", self.batch_size, 1)
        )
        if self.shard_shape is not None:
            raw = self.shard_shape
            if isinstance(raw, (int, np.integer)) and not isinstance(raw, bool):
                shape = (int(raw), 1)
            else:
                try:
                    shape = tuple(int(v) for v in raw)
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"shard_shape must be a positive int or a "
                        f"(shards_x, shards_y) pair, got {raw!r}"
                    ) from None
            if len(shape) != 2 or any(v < 1 for v in shape):
                raise ConfigurationError(
                    f"shard_shape must be a positive int or a "
                    f"(shards_x, shards_y) pair of positive integers, got "
                    f"{raw!r}"
                )
            object.__setattr__(self, "shard_shape", shape)
            if self.engine != "sharded":
                raise ConfigurationError(
                    f"shard_shape configures the sharded engine; set "
                    f"engine='sharded' (got engine={self.engine!r})"
                )
        if self.fused_tile is not None:
            raw = self.fused_tile
            if isinstance(raw, str):
                # The CLI/env spelling — same grammar as
                # repro.fused.tiling.normalize_fused_tile.
                match = re.match(r"^\s*(\d+)\s*[xX,]\s*(\d+)\s*$", raw)
                if not match:
                    raise ConfigurationError(
                        f"fused_tile string must look like '16x16', got {raw!r}"
                    )
                raw = (int(match.group(1)), int(match.group(2)))
            if isinstance(raw, (int, np.integer)) and not isinstance(raw, bool):
                tile = (int(raw), int(raw))
            else:
                try:
                    tile = tuple(int(v) for v in raw)
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"fused_tile must be a positive int or a "
                        f"(tile_x, tile_y) pair, got {raw!r}"
                    ) from None
            if len(tile) != 2 or any(v < 1 for v in tile):
                raise ConfigurationError(
                    f"fused_tile must be a positive int or a "
                    f"(tile_x, tile_y) pair of positive integers, got "
                    f"{raw!r}"
                )
            object.__setattr__(self, "fused_tile", tile)
            if self.engine not in TILE_ENGINES:
                raise ConfigurationError(
                    f"fused_tile configures the tiled engines; set engine "
                    f"to one of {', '.join(map(repr, TILE_ENGINES))} "
                    f"(got engine={self.engine!r})"
                )

    def set_fields(self) -> set[str]:
        """Names of knobs that differ from their defaults."""
        default = _DEFAULT_MACHINE
        return {
            name for name in MACHINE_FIELDS
            if getattr(self, name) != getattr(default, name)
        }


_DEFAULT_MACHINE = MachineSpec()

#: The flat-kwarg vocabulary ``from_kwargs`` understands, mapped to the
#: (section, field) it configures.  ``specs`` is the GPU-native spelling of
#: the machine spec; ``jacobi`` the dataflow-native preconditioner toggle.
KWARG_MAP: dict[str, tuple[str, str]] = {
    "tol_rtr": ("tolerance", "tol_rtr"),
    "rel_tol": ("tolerance", "rel_tol"),
    "max_iters": ("tolerance", "max_iters"),
    "dtype": ("precision", "dtype"),
    "spec": ("machine", "spec"),
    "specs": ("machine", "spec"),
    "engine": ("machine", "engine"),
    "simd_width": ("machine", "simd_width"),
    "block_shape": ("machine", "block_shape"),
    "variant": ("machine", "variant"),
    "reuse_buffers": ("machine", "reuse_buffers"),
    "comm_only": ("machine", "comm_only"),
    "fixed_iterations": ("machine", "fixed_iterations"),
    "batch_size": ("machine", "batch_size"),
    "shard_shape": ("machine", "shard_shape"),
    "fused_tile": ("machine", "fused_tile"),
    "preconditioner": ("", "preconditioner"),
    "jacobi": ("", "preconditioner"),
    "mg_levels": ("", "mg_levels"),
    "mg_smoother_iters": ("", "mg_smoother_iters"),
    "n_steps": ("time", "n_steps"),
    "dt": ("time", "dt"),
    "total_compressibility": ("time", "total_compressibility"),
    "porosity": ("time", "porosity"),
    "initial_condition": ("time", "initial_condition"),
    "warm_start": ("time", "warm_start"),
}


def _unknown_key_error(key: str) -> ConfigurationError:
    valid = sorted(KWARG_MAP)
    close = difflib.get_close_matches(key, valid, n=1, cutoff=0.5)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return ConfigurationError(
        f"unknown solve option {key!r}{hint} (valid options: {', '.join(valid)})"
    )


@dataclass(frozen=True)
class SolveSpec:
    """The complete, validated configuration of one solve.

    Immutable and hashable-by-value; cheap to share across plan entries,
    worker processes and the on-disk result store.

    Examples
    --------
    >>> spec = SolveSpec(
    ...     tolerance=ToleranceSpec(rel_tol=1e-9, max_iters=2000),
    ...     precision=PrecisionSpec("float64"),
    ... )
    >>> spec = SolveSpec.from_kwargs(dtype=np.float64, rel_tol=1e-9)
    >>> SolveSpec.from_dict(spec.to_dict()) == spec
    True
    """

    tolerance: ToleranceSpec = field(default_factory=ToleranceSpec)
    precision: PrecisionSpec = field(default_factory=PrecisionSpec)
    machine: MachineSpec = field(default_factory=MachineSpec)
    preconditioner: str = "none"
    mg_levels: int | None = None
    mg_smoother_iters: int | None = None
    time: TimeSpec | None = None

    def __post_init__(self) -> None:
        if self.preconditioner not in PRECONDITIONERS:
            raise ConfigurationError(
                f"unknown preconditioner {self.preconditioner!r}; choose one "
                f"of {', '.join(PRECONDITIONERS)}"
            )
        object.__setattr__(
            self, "mg_levels", _check_optional_int("mg_levels", self.mg_levels, 1)
        )
        object.__setattr__(
            self,
            "mg_smoother_iters",
            _check_optional_int("mg_smoother_iters", self.mg_smoother_iters, 1),
        )
        if self.mg_levels is not None and self.mg_levels > MG_MAX_LEVELS:
            raise ConfigurationError(
                f"mg_levels must be <= {MG_MAX_LEVELS}, got {self.mg_levels}"
            )
        if (self.mg_smoother_iters is not None
                and self.mg_smoother_iters > MG_MAX_SMOOTHER_ITERS):
            raise ConfigurationError(
                f"mg_smoother_iters must be <= {MG_MAX_SMOOTHER_ITERS}, got "
                f"{self.mg_smoother_iters}"
            )
        if self.preconditioner != "mg":
            set_knobs = [
                name for name in ("mg_levels", "mg_smoother_iters")
                if getattr(self, name) is not None
            ]
            if set_knobs:
                raise ConfigurationError(
                    f"{', '.join(set_knobs)} configure the multigrid "
                    f"preconditioner; set preconditioner='mg' (got "
                    f"preconditioner={self.preconditioner!r})"
                )
        if self.time is not None and not isinstance(self.time, TimeSpec):
            raise ConfigurationError(
                f"time must be a TimeSpec or None, got "
                f"{type(self.time).__name__}"
            )

    # -- flat-kwarg bridge ---------------------------------------------------

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "SolveSpec":
        """Build a spec from the legacy flat-kwarg vocabulary.

        Unknown keys raise :class:`ConfigurationError` naming the nearest
        valid key — the typo ``tol_rt=1e-9`` fails loudly instead of being
        silently swallowed by a backend ``**options`` bag.
        """
        return cls().with_options(**kwargs)

    def with_options(self, **kwargs: Any) -> "SolveSpec":
        """A new spec with flat-kwarg overrides applied over this one."""
        sections: dict[str, dict[str, Any]] = {
            "tolerance": {}, "precision": {}, "machine": {}, "time": {},
        }
        top: dict[str, Any] = {}
        for key, value in kwargs.items():
            if key not in KWARG_MAP:
                raise _unknown_key_error(key)
            section, fname = KWARG_MAP[key]
            if key == "jacobi":
                top["preconditioner"] = "jacobi" if value else "none"
            elif section == "":
                top[fname] = value
            else:
                sections[section][fname] = value
        out = self
        if sections["tolerance"]:
            out = replace(out, tolerance=replace(out.tolerance, **sections["tolerance"]))
        if sections["precision"]:
            out = replace(out, precision=PrecisionSpec(**sections["precision"]))
        if sections["machine"]:
            out = replace(out, machine=replace(out.machine, **sections["machine"]))
        if sections["time"]:
            if out.time is None and "n_steps" not in sections["time"]:
                # A lone physics knob must not silently turn a steady
                # spec transient: establishing a time section requires
                # the defining knob.
                raise ConfigurationError(
                    f"option(s) {', '.join(sorted(sections['time']))} "
                    f"configure the time section, but this spec has no "
                    f"time schedule; include n_steps=... (or set "
                    f"spec.time to a TimeSpec)"
                )
            base = out.time if out.time is not None else TimeSpec()
            out = replace(out, time=replace(base, **sections["time"]))
        if top:
            out = replace(out, **top)
        return out

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict that :meth:`from_dict` round-trips exactly."""
        m = self.machine
        # The mg knobs only appear when the mg preconditioner is selected,
        # so pre-existing spec payloads (and their fingerprints) are
        # byte-identical to what earlier releases produced.
        mg_payload: dict[str, Any] = {}
        if self.preconditioner == "mg":
            mg_payload = {
                "mg_levels": self.mg_levels,
                "mg_smoother_iters": self.mg_smoother_iters,
            }
        return {
            "tolerance": {
                "tol_rtr": self.tolerance.tol_rtr,
                "rel_tol": self.tolerance.rel_tol,
                "max_iters": self.tolerance.max_iters,
            },
            "precision": {"dtype": self.precision.dtype},
            "machine": {
                "spec": _machine_spec_to_dict(m.spec),
                "engine": m.engine,
                "simd_width": m.simd_width,
                "block_shape": None if m.block_shape is None else list(m.block_shape),
                "variant": m.variant,
                "reuse_buffers": m.reuse_buffers,
                "comm_only": m.comm_only,
                "fixed_iterations": m.fixed_iterations,
                "batch_size": m.batch_size,
                "shard_shape": (
                    None if m.shard_shape is None else list(m.shard_shape)
                ),
                "fused_tile": (
                    None if m.fused_tile is None else list(m.fused_tile)
                ),
            },
            "preconditioner": self.preconditioner,
            **mg_payload,
            "time": None if self.time is None else self.time.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveSpec":
        """Inverse of :meth:`to_dict`; unknown sections or keys raise."""
        known = {
            "tolerance", "precision", "machine", "preconditioner",
            "mg_levels", "mg_smoother_iters", "time",
        }
        extra = sorted(set(data) - known)
        if extra:
            raise ConfigurationError(
                f"unknown SolveSpec section(s) {', '.join(map(repr, extra))}; "
                f"expected {', '.join(sorted(known))}"
            )
        tol = dict(data.get("tolerance", {}))
        prec = dict(data.get("precision", {}))
        mach = dict(data.get("machine", {}))
        for section, payload, fields in (
            ("tolerance", tol, {"tol_rtr", "rel_tol", "max_iters"}),
            ("precision", prec, {"dtype"}),
            ("machine", mach, set(MACHINE_FIELDS)),
        ):
            bad = sorted(set(payload) - fields)
            if bad:
                raise ConfigurationError(
                    f"unknown {section} key(s) {', '.join(map(repr, bad))}"
                )
        if mach.get("spec") is not None:
            mach["spec"] = _machine_spec_from_dict(mach["spec"])
        if mach.get("block_shape") is not None:
            mach["block_shape"] = tuple(mach["block_shape"])
        if mach.get("shard_shape") is not None:
            mach["shard_shape"] = tuple(mach["shard_shape"])
        if mach.get("fused_tile") is not None:
            mach["fused_tile"] = tuple(mach["fused_tile"])
        time_payload = data.get("time")
        return cls(
            tolerance=ToleranceSpec(**tol),
            precision=PrecisionSpec(**prec),
            machine=MachineSpec(**mach),
            preconditioner=data.get("preconditioner", "none"),
            mg_levels=data.get("mg_levels"),
            mg_smoother_iters=data.get("mg_smoother_iters"),
            time=None if time_payload is None else TimeSpec.from_dict(time_payload),
        )

    def fingerprint(self) -> str:
        """Stable content hash of this configuration (store/memo key part)."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- backend support checks ----------------------------------------------

    def require_machine_support(self, backend: str, supported: set[str]) -> None:
        """Raise if a machine knob is set that ``backend`` cannot honour."""
        unsupported = sorted(self.machine.set_fields() - set(supported))
        if unsupported:
            raise ConfigurationError(
                f"backend {backend!r} does not support machine option(s) "
                f"{', '.join(map(repr, unsupported))}; supported: "
                f"{', '.join(sorted(supported)) or '(none)'}"
            )


def _machine_spec_to_dict(spec: WseSpecs | GpuSpecs | None) -> dict[str, Any] | None:
    if spec is None:
        return None
    kind = "wse" if isinstance(spec, WseSpecs) else "gpu"
    return {"kind": kind, **dataclasses.asdict(spec)}


def _machine_spec_from_dict(data: Mapping[str, Any]) -> WseSpecs | GpuSpecs:
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind == "wse":
        return WseSpecs(**payload)
    if kind == "gpu":
        return GpuSpecs(**payload)
    raise ConfigurationError(
        f"machine spec dict needs 'kind' of 'wse' or 'gpu', got {kind!r}"
    )


def coerce_spec(spec: Any) -> SolveSpec:
    """Accept a :class:`SolveSpec`, a ``to_dict`` payload, or ``None``."""
    if spec is None:
        return SolveSpec()
    if isinstance(spec, SolveSpec):
        return spec
    if isinstance(spec, Mapping):
        return SolveSpec.from_dict(spec)
    raise ConfigurationError(
        f"expected a SolveSpec, a SolveSpec.to_dict() mapping, or None; "
        f"got {type(spec).__name__}"
    )


__all__ = [
    "FABRIC_ENGINES",
    "KWARG_MAP",
    "MACHINE_FIELDS",
    "MG_MAX_LEVELS",
    "MG_MAX_SMOOTHER_ITERS",
    "MachineSpec",
    "PRECONDITIONERS",
    "PrecisionSpec",
    "SUPPORTED_DTYPES",
    "SolveSpec",
    "TILE_ENGINES",
    "TIME_FIELDS",
    "TimeSpec",
    "ToleranceSpec",
    "coerce_spec",
]
