"""Persistence: save/load problems and solution reports as ``.npz``.

A downstream user running parameter sweeps wants to checkpoint problems
and results without pickling arbitrary objects.  Everything is stored as
plain arrays + a small attribute vector, so files are portable and
inspectable with ``numpy.load`` alone.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.mesh.boundary import DirichletSet
from repro.mesh.grid import CartesianGrid3D
from repro.physics.darcy import SinglePhaseProblem, build_problem
from repro.util.errors import ValidationError

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def save_problem(path, problem: SinglePhaseProblem) -> None:
    """Write a problem definition to ``path`` (``.npz``)."""
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": "problem",
        "nx": problem.grid.nx,
        "ny": problem.grid.ny,
        "nz": problem.grid.nz,
        "dx": problem.grid.dx,
        "dy": problem.grid.dy,
        "dz": problem.grid.dz,
        "viscosity": problem.viscosity,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        permeability=np.asarray(problem.permeability),
        dirichlet_mask=problem.dirichlet.mask,
        dirichlet_values=problem.dirichlet.values,
    )


def load_problem(path) -> SinglePhaseProblem:
    """Read a problem saved by :func:`save_problem`."""
    with np.load(path) as data:
        meta = _read_meta(data, expected_kind="problem")
        grid = CartesianGrid3D(
            int(meta["nx"]), int(meta["ny"]), int(meta["nz"]),
            dx=float(meta["dx"]), dy=float(meta["dy"]), dz=float(meta["dz"]),
        )
        dirichlet = DirichletSet(
            grid,
            mask=data["dirichlet_mask"],
            values=data["dirichlet_values"],
        )
        return build_problem(
            grid,
            data["permeability"],
            dirichlet,
            viscosity=float(meta["viscosity"]),
        )


def save_solution(path, pressure: np.ndarray, *, iterations: int,
                  converged: bool, residual_history=None,
                  extra: dict | None = None) -> None:
    """Write a solve outcome to ``path`` (``.npz``).

    ``extra`` may carry scalar metadata (backend name, tolerances, ...)
    serialized into the JSON header.
    """
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": "solution",
        "iterations": int(iterations),
        "converged": bool(converged),
    }
    if extra:
        for key, value in extra.items():
            if key in meta:
                raise ValidationError(f"extra key {key!r} collides with metadata")
            meta[key] = value
    history = np.asarray(
        residual_history if residual_history is not None else [], dtype=np.float64
    )
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        pressure=np.asarray(pressure),
        residual_history=history,
    )


def load_solution(path) -> dict:
    """Read a solution saved by :func:`save_solution`.

    Returns a dict with ``pressure``, ``iterations``, ``converged``,
    ``residual_history`` and any extra metadata keys.
    """
    with np.load(path) as data:
        meta = _read_meta(data, expected_kind="solution")
        out = dict(meta)
        out.pop("format_version")
        out.pop("kind")
        out["pressure"] = data["pressure"]
        out["residual_history"] = data["residual_history"].tolist()
        return out


def _read_meta(data, *, expected_kind: str) -> dict:
    if "meta" not in data:
        raise ValidationError("not a repro file: missing metadata header")
    meta = json.loads(bytes(data["meta"]).decode())
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported format version {meta.get('format_version')!r}"
        )
    if meta.get("kind") != expected_kind:
        raise ValidationError(
            f"expected a {expected_kind} file, got {meta.get('kind')!r}"
        )
    return meta


def roundtrip_dir(base: pathlib.Path) -> pathlib.Path:
    """Utility for examples: ensure an output directory exists."""
    base = pathlib.Path(base)
    base.mkdir(parents=True, exist_ok=True)
    return base
