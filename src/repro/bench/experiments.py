"""Experiment definitions for every table, figure and ablation.

Paper-scale numbers come from the calibrated analytic models
(`repro.perf`, `repro.gpu.timing`); simulator-scale numbers come from
actually running the fabric/GPU models on small grids.  Every function
returns plain rows ready for `repro.util.formatting.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.driver import solve
from repro.gpu.timing import GpuTimingModel
from repro.scenarios import scenario
from repro.session import Session
from repro.spec import SolveSpec
from repro.perf.memmodel import PeMemoryModel
from repro.perf.opcount import (
    PAPER_TABLE5,
    counts_to_flops,
    paper_flops_per_cell,
    simulator_kernel_counts,
)
from repro.perf.roofline import RooflineChart, build_a100_roofline, build_cs2_roofline
from repro.perf.throughput import gigacells_per_second, speedup
from repro.perf.timemodel import Cs2TimeModel
from repro.wse.specs import WSE2

#: The paper's full-fabric mesh and iteration count.
PAPER_GRID = (750, 994, 922)
PAPER_ITERS = 225

#: Table III grid sweep: (nx, ny, steps, paper alg2 CS-2 s, paper alg2
#: A100 s, paper alg1 CS-2 s, paper alg1 A100 s, paper Gcell/s alg2,
#: paper Gcell/s alg1).
TABLE3_PAPER = (
    (200, 200, 226, 0.0122, 1.3979, 0.0251, 2.8021, 680.43, 330.79),
    (400, 400, 225, 0.0122, 2.7743, 0.0337, 5.6343, 2721.57, 982.72),
    (600, 600, 225, 0.0122, 5.2882, 0.0423, 11.8380, 6122.27, 1764.34),
    (750, 600, 225, 0.0122, 7.1703, 0.0456, 16.3473, 7653.38, 2044.08),
    (750, 800, 225, 0.0122, 9.1577, 0.0500, 20.9367, 10204.11, 2487.70),
    (750, 950, 225, 0.0122, 9.2548, 0.0532, 22.9128, 12115.52, 2776.97),
    (750, 994, 225, 0.0122, 9.5507, 0.0542, 23.1879, 12688.55, 2855.48),
)

#: Table II paper values.
TABLE2_PAPER = {
    "Dataflow/CSL": (0.0542, 0.000014),
    "A100/CUDA": (23.1879, 0.123267),
    "H100/CUDA": (11.3861, 0.222566),
}


@dataclass(frozen=True)
class PaperRow:
    """A (label, paper value, model value) triple plus relative error."""

    label: str
    paper: float
    model: float

    @property
    def rel_err_pct(self) -> float:
        if self.paper == 0:
            return float("nan")
        return 100.0 * (self.model - self.paper) / self.paper


# -- Table II: kernel time measurements --------------------------------------------


def table2_rows() -> list[list[Any]]:
    """Arch | paper time | model time | paper speedup | model speedup."""
    cs2 = Cs2TimeModel.calibrated()
    a100 = GpuTimingModel.calibrated_a100()
    h100 = GpuTimingModel.calibrated_h100()
    t_cs2 = cs2.total_time_alg1(PAPER_GRID[0], PAPER_GRID[1], PAPER_GRID[2], PAPER_ITERS)
    t_a100 = a100.total_time_alg1(PAPER_GRID, PAPER_ITERS)
    t_h100 = h100.total_time_alg1(PAPER_GRID, PAPER_ITERS)
    rows = []
    for name, t_model in (
        ("Dataflow/CSL", t_cs2),
        ("A100/CUDA", t_a100),
        ("H100/CUDA", t_h100),
    ):
        t_paper = TABLE2_PAPER[name][0]
        rows.append(
            [
                name,
                round(t_paper, 4),
                round(t_model, 4),
                f"{TABLE2_PAPER['A100/CUDA'][0] / t_paper:.2f}x",
                f"{t_a100 / t_model:.2f}x",
            ]
        )
    return rows


# -- Table III: weak scaling ---------------------------------------------------------


def table3_rows() -> list[list[Any]]:
    """One row per grid: model vs paper for all four time columns plus
    the CS-2 throughput columns."""
    cs2 = Cs2TimeModel.calibrated()
    a100 = GpuTimingModel.calibrated_a100()
    rows = []
    for nx, ny, steps, p_cs2_a2, p_a100_a2, p_cs2_a1, p_a100_a1, p_thr2, p_thr1 in TABLE3_PAPER:
        shape = (nx, ny, 922)
        cells = nx * ny * 922
        m_cs2_a2 = cs2.total_time_alg2(922, steps)
        m_cs2_a1 = cs2.total_time_alg1(nx, ny, 922, steps)
        m_a100_a2 = a100.total_time_alg2(shape, steps)
        m_a100_a1 = a100.total_time_alg1(shape, steps)
        rows.append(
            [
                f"{nx}x{ny}x922",
                cells,
                steps,
                round(p_cs2_a2, 4),
                round(m_cs2_a2, 4),
                round(p_a100_a2, 4),
                round(m_a100_a2, 4),
                round(p_cs2_a1, 4),
                round(m_cs2_a1, 4),
                round(p_a100_a1, 4),
                round(m_a100_a1, 4),
                round(gigacells_per_second(cells, steps, m_cs2_a2), 1),
                round(gigacells_per_second(cells, steps, m_cs2_a1), 1),
            ]
        )
    return rows


# -- Table IV: time distribution -------------------------------------------------------


def table4_rows() -> list[list[Any]]:
    cs2 = Cs2TimeModel.calibrated()
    dist = cs2.time_distribution(PAPER_GRID[0], PAPER_GRID[1], PAPER_GRID[2], PAPER_ITERS)
    return [
        ["Data Movement", 0.0034, round(dist["data_movement_s"], 4),
         6.27, round(dist["data_movement_pct"], 2)],
        ["Computation", 0.0508, round(dist["computation_min_s"], 4),
         93.73, round(dist["computation_pct"], 2)],
        ["Total", 0.0542, round(dist["total_s"], 4), 100.0, 100.0],
    ]


def table4_simulator_rows(nx: int = 6, ny: int = 6, nz: int = 8,
                          iterations: int = 10) -> list[list[Any]]:
    """The same methodology executed on the small-scale simulator: one run
    with arithmetic suppressed (comm time) vs. the full run.

    Both runs share one plan entry target, so the session's memoized
    assembly builds the problem exactly once."""
    sc = scenario("quarter_five_spot", nx=nx, ny=ny, nz=nz)
    full_spec = SolveSpec.from_kwargs(
        spec=WSE2.with_fabric(32, 32), dtype=np.float32,
        fixed_iterations=iterations,
    )
    comm_spec = full_spec.with_options(comm_only=True)
    plan = Session().plan([(sc, full_spec), (sc, comm_spec)], backend="wse")
    full, comm = (er.result for er in plan.run(executor="serial"))
    total = full.telemetry["trace"]["makespan_cycles"]
    movement = comm.telemetry["trace"]["makespan_cycles"]
    return [
        ["Data Movement (sim)", movement, round(100.0 * movement / total, 2)],
        ["Computation (sim)", total - movement, round(100.0 * (total - movement) / total, 2)],
        ["Total (sim)", total, 100.0],
    ]


# -- Table V: instruction counts ----------------------------------------------------------


def table5_rows() -> list[list[Any]]:
    """Paper's per-cell instruction rows, verbatim, plus totals."""
    rows = []
    for row in PAPER_TABLE5:
        rows.append(
            [
                row.area,
                row.op.name,
                row.count,
                row.flop,
                f"{row.mem_loads} loads, {row.mem_stores} store",
                f"{row.fabric_loads} load" if row.fabric_loads else "0",
            ]
        )
    return rows


def table5_simulator_rows(depth: int = 8) -> list[list[Any]]:
    """Our simulator kernel's mix per cell (normalized by column depth)."""
    counts = simulator_kernel_counts(depth)
    rows = []
    for op, count in sorted(counts.items(), key=lambda kv: kv[0].name):
        rows.append([op.name, round(count / depth, 2)])
    rows.append(["FLOPs/cell (simulator)", round(counts_to_flops(counts) / depth, 2)])
    rows.append(["FLOPs/cell (paper)", paper_flops_per_cell()])
    return rows


# -- Fig. 5: pressure propagation ------------------------------------------------------------


def fig5_field(
    nx: int = 24, ny: int = 24, nz: int = 4, *, backend: str = "reference"
) -> np.ndarray:
    """The converged pressure field of the quarter-five-spot scenario
    (injector top-left, producer bottom-right), depth-averaged to the 2D
    plane the paper plots."""
    problem = scenario("quarter_five_spot", nx=nx, ny=ny, nz=nz).build()
    spec = SolveSpec()
    if backend == "wse":
        spec = SolveSpec.from_kwargs(
            spec=WSE2.with_fabric(max(nx, 1), max(ny, 1)),
            dtype=np.float64, rel_tol=1e-8, max_iters=5000,
        )
    elif backend == "gpu":
        spec = SolveSpec.from_kwargs(dtype=np.float64, rel_tol=1e-8)
    result = solve(problem, backend=backend, spec=spec)
    return np.asarray(result.pressure, dtype=np.float64).mean(axis=2).T  # (ny, nx), row 0 at top


# -- Fig. 6: rooflines ---------------------------------------------------------------------


def fig6_charts() -> tuple[RooflineChart, RooflineChart]:
    return build_cs2_roofline(), build_a100_roofline()


def fig6_rows() -> list[list[Any]]:
    cs2, a100 = fig6_charts()
    rows = []
    for pt in cs2.points:
        rows.append(
            [
                "CS-2",
                pt.label,
                round(pt.intensity_flops_per_byte, 4),
                f"{pt.achieved_flops / 1e15:.3f} PFLOP/s",
                f"{100 * pt.fraction_of_peak:.2f}%",
                "compute" if pt.is_compute_bound else "memory",
            ]
        )
    for pt in a100.points:
        rows.append(
            [
                "A100",
                pt.label,
                round(pt.intensity_flops_per_byte, 4),
                f"{pt.achieved_flops / 1e12:.3f} TFLOP/s",
                f"{100 * pt.fraction_of_attainable:.2f}% of bound",
                "compute" if pt.is_compute_bound else "memory",
            ]
        )
    return rows


# -- Ablations (measured on the simulator) ---------------------------------------------------


def _small_problem(nx=5, ny=5, nz=6):
    return scenario("quarter_five_spot", nx=nx, ny=ny, nz=nz).build()


def ablation_simd(iterations: int = 6) -> list[list[Any]]:
    """§III-E.3: DSD vectorization on/off (SIMD width 2 vs 1)."""
    base = SolveSpec.from_kwargs(
        spec=WSE2.with_fabric(32, 32), dtype=np.float32,
        fixed_iterations=iterations,
    )
    problem = _small_problem()
    rows = []
    results = {}
    for width in (1, 2):
        report = solve(
            problem, backend="wse", spec=base.with_options(simd_width=width)
        )
        results[width] = report
        rows.append(
            [f"SIMD width {width}", report.telemetry["counters"]["compute_cycles"],
             report.telemetry["trace"]["makespan_cycles"]]
        )
    ratio = (
        results[1].telemetry["counters"]["compute_cycles"]
        / results[2].telemetry["counters"]["compute_cycles"]
    )
    rows.append(["compute-cycle ratio (1 vs 2)", f"{ratio:.2f}x", "ideal 2.00x"])
    return rows


def ablation_buffer_reuse(iterations: int = 4) -> list[list[Any]]:
    """§III-E.1: memory footprint and max depth with/without reuse."""
    base = SolveSpec.from_kwargs(
        spec=WSE2.with_fabric(32, 32), dtype=np.float32,
        fixed_iterations=iterations,
    )
    problem = _small_problem()
    rows = []
    for reuse in (True, False):
        report = solve(
            problem, backend="wse", spec=base.with_options(reuse_buffers=reuse)
        )
        model = PeMemoryModel(reuse_buffers=reuse)
        rows.append(
            [
                f"reuse={'on' if reuse else 'off'}",
                int(report.telemetry["memory"]["max_high_water"]),
                model.num_columns(),
                model.max_depth(),
            ]
        )
    return rows


def ablation_comm_overlap(iterations: int = 6) -> list[list[Any]]:
    """§III-E.2: how much communication the event-driven overlap hides.

    Measured as full-run makespan vs. the sum of the comm-only makespan
    and the aggregate compute-critical-path cycles.
    """
    full_spec = SolveSpec.from_kwargs(
        spec=WSE2.with_fabric(32, 32), dtype=np.float32,
        fixed_iterations=iterations,
    )
    problem = _small_problem(6, 6, 8)
    full = solve(problem, backend="wse", spec=full_spec)
    comm = solve(problem, backend="wse", spec=full_spec.with_options(comm_only=True))
    full_trace = full.telemetry["trace"]
    comm_trace = comm.telemetry["trace"]
    compute_critical = full_trace["max_compute_cycles"]
    unoverlapped = comm_trace["makespan_cycles"] + compute_critical
    hidden = max(0, unoverlapped - full_trace["makespan_cycles"])
    return [
        ["full run makespan", full_trace["makespan_cycles"]],
        ["comm-only makespan", comm_trace["makespan_cycles"]],
        ["compute critical path", compute_critical],
        ["serial (no overlap) estimate", unoverlapped],
        ["cycles hidden by overlap", hidden],
    ]


def ablation_matrix_free_memory(nx=12, ny=12, nz=8) -> list[list[Any]]:
    """Matrix-free vs. assembled-matrix storage (the approach's raison
    d'être: "reduce the memory requirements by removing the need to store
    the full Jacobian matrix")."""
    from repro.fv.assembly import assemble_jacobian, assembled_matrix_bytes

    problem = _small_problem(nx, ny, nz)
    J = assemble_jacobian(problem.coefficients, problem.dirichlet, dtype=np.float32)
    csr = assembled_matrix_bytes(J)
    c = problem.coefficients
    mf = c.cx.nbytes + c.cy.nbytes + c.cz.nbytes + c.diagonal.nbytes
    return [
        ["assembled CSR Jacobian", csr],
        ["matrix-free coefficients", mf],
        ["ratio", f"{csr / mf:.2f}x"],
    ]


def ablation_jacobi(rel_tol: float = 1e-8) -> list[list[Any]]:
    """The Jacobi-scaling extension: iteration counts on a badly scaled
    (strongly heterogeneous) problem, with communication held identical
    (diagonal scaling is purely PE-local)."""
    from repro.mesh.geomodel import lognormal_permeability
    from repro.mesh.grid import CartesianGrid3D

    grid = CartesianGrid3D(6, 5, 3)
    perm = lognormal_permeability(grid, seed=21, sigma_log=2.5)
    problem = scenario(
        "quarter_five_spot", nx=6, ny=5, nz=3, permeability=perm
    ).build()
    base = SolveSpec.from_kwargs(
        spec=WSE2.with_fabric(32, 32), dtype=np.float64,
        rel_tol=rel_tol, max_iters=5000,
    )
    rows = []
    for jacobi in (False, True):
        report = solve(
            problem, backend="wse",
            spec=base.with_options(preconditioner="jacobi" if jacobi else "none"),
        )
        rows.append(
            [
                "jacobi" if jacobi else "plain CG",
                report.iterations,
                report.converged,
                report.telemetry["trace"]["total_messages"],
            ]
        )
    return rows


def ablation_kernel_variant(iterations: int = 4) -> list[list[Any]]:
    """Precomputed c = Υλ vs. in-kernel mobility fusion: flops and
    memory footprint trade."""
    base = SolveSpec.from_kwargs(
        spec=WSE2.with_fabric(32, 32), dtype=np.float32,
        fixed_iterations=iterations,
    )
    problem = _small_problem()
    rows = []
    for variant in ("precomputed", "fused_mobility"):
        report = solve(
            problem, backend="wse", spec=base.with_options(variant=variant)
        )
        rows.append(
            [
                variant,
                report.telemetry["counters"]["flops"],
                int(report.telemetry["memory"]["max_high_water"]),
                report.telemetry["trace"]["makespan_cycles"],
            ]
        )
    return rows
