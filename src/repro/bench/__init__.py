"""Benchmark harness: experiment definitions shared by `benchmarks/` and
`examples/`.

Each ``table*_rows`` / ``fig*_data`` function regenerates one published
table or figure (model-scale numbers plus the paper's values side by
side); the ``run_*`` helpers execute the small-scale simulator/measured
experiments the ablations need.
"""

from repro.bench.experiments import (
    PaperRow,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    fig5_field,
    fig6_charts,
    ablation_simd,
    ablation_buffer_reuse,
    ablation_comm_overlap,
    ablation_matrix_free_memory,
    ablation_kernel_variant,
    ablation_jacobi,
)
from repro.util.formatting import format_table

__all__ = [
    "PaperRow",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "fig5_field",
    "fig6_charts",
    "ablation_simd",
    "ablation_buffer_reuse",
    "ablation_comm_overlap",
    "ablation_matrix_free_memory",
    "ablation_kernel_variant",
    "ablation_jacobi",
    "format_table",
]
