"""repro — Matrix-Free Finite Volume Kernels on a Dataflow Architecture.

A full reproduction of Sai, Hamon, Mellor-Crummey & Araya-Polo (SC 2024):
a matrix-free TPFA finite-volume conjugate-gradient solver for single-phase
Darcy flow, mapped onto a simulated wafer-scale dataflow architecture
(`repro.wse` + `repro.core`), with a CUDA-like GPU reference model
(`repro.gpu`) and performance/roofline models regenerating every table and
figure of the paper's evaluation (`repro.perf`, `benchmarks/`).

Quickstart
----------
>>> from repro import api
>>> problem = api.quarter_five_spot_problem(nx=12, ny=12, nz=4)
>>> report = api.solve_reference(problem)
>>> report.pressure.shape
(12, 12, 4)

See README.md for the architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

__version__ = "1.0.0"

from repro import api

__all__ = ["api", "__version__"]
