"""repro — Matrix-Free Finite Volume Kernels on a Dataflow Architecture.

A full reproduction of Sai, Hamon, Mellor-Crummey & Araya-Polo (SC 2024):
a matrix-free TPFA finite-volume conjugate-gradient solver for single-phase
Darcy flow, mapped onto a simulated wafer-scale dataflow architecture
(`repro.wse` + `repro.core`), with a CUDA-like GPU reference model
(`repro.gpu`) and performance/roofline models regenerating every table and
figure of the paper's evaluation (`repro.perf`, `benchmarks/`).

The front door is one signature across every machine: pick a scenario (or
build a problem), pick a backend, describe the configuration with a typed
:class:`SolveSpec`, call :func:`solve` and get a canonical
:class:`SolveResult` back.  Batches go through a :class:`Session`: build
an inspectable :class:`~repro.session.ExecutionPlan`, fan it out over
threads or processes, and persist/resume results with a
:class:`~repro.session.ResultStore`.

Quickstart
----------
>>> import repro
>>> result = repro.solve("quarter_five_spot", backend="reference")
>>> result.pressure.shape
(16, 16, 8)
>>> spec = repro.SolveSpec.from_kwargs(dtype="float64", rel_tol=1e-9)
>>> plan = repro.Session().plan(
...     repro.scenarios.weak_scaling_family(), spec, backend="reference")
>>> results = plan.run(executor="process", n_workers=4)

See README.md for the architecture overview, the backend/scenario
registries, specs & sessions, and the experiment index.
"""

__version__ = "1.3.0"

from repro import api, backends, scenarios, serve, spec, session
from repro.backends import (
    SimulationResult,
    SolveResult,
    SolverBackend,
    StepResult,
    available_backends,
    get_backend,
    register_backend,
)
from repro.driver import simulate, simulate_many, simulate_steps, solve, solve_many
from repro.scenarios import Scenario, available_scenarios, scenario
from repro.session import (
    ExecutionPlan,
    PlanEntry,
    PlanEntryResult,
    ResultStore,
    Session,
)
from repro.spec import (
    MachineSpec,
    PrecisionSpec,
    SolveSpec,
    TimeSpec,
    ToleranceSpec,
)

__all__ = [
    "ExecutionPlan",
    "MachineSpec",
    "PlanEntry",
    "PlanEntryResult",
    "PrecisionSpec",
    "ResultStore",
    "Scenario",
    "Session",
    "SimulationResult",
    "SolveResult",
    "SolveSpec",
    "SolverBackend",
    "StepResult",
    "TimeSpec",
    "ToleranceSpec",
    "__version__",
    "api",
    "available_backends",
    "available_scenarios",
    "backends",
    "get_backend",
    "register_backend",
    "scenario",
    "scenarios",
    "serve",
    "session",
    "simulate",
    "simulate_many",
    "simulate_steps",
    "solve",
    "solve_many",
    "spec",
]
