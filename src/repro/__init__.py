"""repro — Matrix-Free Finite Volume Kernels on a Dataflow Architecture.

A full reproduction of Sai, Hamon, Mellor-Crummey & Araya-Polo (SC 2024):
a matrix-free TPFA finite-volume conjugate-gradient solver for single-phase
Darcy flow, mapped onto a simulated wafer-scale dataflow architecture
(`repro.wse` + `repro.core`), with a CUDA-like GPU reference model
(`repro.gpu`) and performance/roofline models regenerating every table and
figure of the paper's evaluation (`repro.perf`, `benchmarks/`).

The front door is one signature across every machine: pick a scenario (or
build a problem), pick a backend, call :func:`solve` and get a canonical
:class:`SolveResult` back.

Quickstart
----------
>>> import repro
>>> result = repro.solve("quarter_five_spot", backend="reference")
>>> result.pressure.shape
(16, 16, 8)
>>> repro.available_backends()
['gpu', 'reference', 'wse']

See README.md for the architecture overview, the backend/scenario
registries, and the experiment index.
"""

__version__ = "1.1.0"

from repro import api, backends, scenarios
from repro.backends import (
    SolveResult,
    SolverBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.driver import solve, solve_many
from repro.scenarios import Scenario, available_scenarios, scenario

__all__ = [
    "Scenario",
    "SolveResult",
    "SolverBackend",
    "__version__",
    "api",
    "available_backends",
    "available_scenarios",
    "backends",
    "get_backend",
    "register_backend",
    "scenario",
    "scenarios",
    "solve",
    "solve_many",
]
