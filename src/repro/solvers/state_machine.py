"""CG as a 14-state machine (§III-D).

On the dataflow architecture there is no host-style control flow: every
``if``/``while`` of Algorithm 1 becomes a state transition triggered by a
completion callback.  The paper reports devising *14 states*.  This module
defines that state graph once; the host-side :class:`CGStateMachine` here
executes it synchronously (useful for testing the graph itself), and
``repro.core.cg_dataflow`` drives the *same* enum asynchronously on the
simulated fabric.

State graph (conditionals are transitions, §III-D):

    INIT -> ITER_CHECK
    ITER_CHECK -> EXCHANGE            (k < k_max)
    ITER_CHECK -> MAXITER             (k >= k_max)
    EXCHANGE -> COMPUTE_JX            (halo data arrived)
    COMPUTE_JX -> DOT_PAP             (local Jx done; start all-reduce)
    DOT_PAP -> COMPUTE_ALPHA          (all-reduce callback)
    COMPUTE_ALPHA -> UPDATE_SOL
    UPDATE_SOL -> UPDATE_RES
    UPDATE_RES -> DOT_RR              (start all-reduce)
    DOT_RR -> THRES_CHECK             (all-reduce callback)
    THRES_CHECK -> CONVERGED          (r^T r < ε)
    THRES_CHECK -> COMPUTE_BETA       (otherwise)
    COMPUTE_BETA -> UPDATE_DIR
    UPDATE_DIR -> ITER_CHECK
    CONVERGED -> DONE, MAXITER -> DONE
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.solvers.cg import CGResult, PAPER_TOLERANCE_RTR
from repro.util.errors import ConvergenceError


class CGState(enum.Enum):
    """The 14 states orchestrating Algorithm 1 on the dataflow machine."""

    INIT = enum.auto()
    ITER_CHECK = enum.auto()
    EXCHANGE = enum.auto()
    COMPUTE_JX = enum.auto()
    DOT_PAP = enum.auto()
    COMPUTE_ALPHA = enum.auto()
    UPDATE_SOL = enum.auto()
    UPDATE_RES = enum.auto()
    DOT_RR = enum.auto()
    THRES_CHECK = enum.auto()
    COMPUTE_BETA = enum.auto()
    UPDATE_DIR = enum.auto()
    CONVERGED = enum.auto()
    MAXITER = enum.auto()


#: Number of states, matching the paper's "14 states" (§III-D).
CG_NUM_STATES = len(CGState)

#: Legal transitions of the state graph (target sets per source state).
CG_TRANSITIONS: dict[CGState, tuple[CGState, ...]] = {
    CGState.INIT: (CGState.ITER_CHECK,),
    CGState.ITER_CHECK: (CGState.EXCHANGE, CGState.MAXITER),
    CGState.EXCHANGE: (CGState.COMPUTE_JX,),
    CGState.COMPUTE_JX: (CGState.DOT_PAP,),
    CGState.DOT_PAP: (CGState.COMPUTE_ALPHA,),
    CGState.COMPUTE_ALPHA: (CGState.UPDATE_SOL,),
    CGState.UPDATE_SOL: (CGState.UPDATE_RES,),
    CGState.UPDATE_RES: (CGState.DOT_RR,),
    CGState.DOT_RR: (CGState.THRES_CHECK,),
    CGState.THRES_CHECK: (CGState.CONVERGED, CGState.COMPUTE_BETA),
    CGState.COMPUTE_BETA: (CGState.UPDATE_DIR,),
    CGState.UPDATE_DIR: (CGState.ITER_CHECK,),
    CGState.CONVERGED: (),
    CGState.MAXITER: (),
}

#: States in which the fabric performs collective communication.
COMMUNICATING_STATES = (CGState.EXCHANGE, CGState.DOT_PAP, CGState.DOT_RR)

#: Terminal states.
TERMINAL_STATES = (CGState.CONVERGED, CGState.MAXITER)


@dataclass
class CGStateMachine:
    """Synchronous executor of the 14-state CG graph.

    This mirrors, step by step, what every PE's event handlers do on the
    fabric — one :meth:`step` call per state visit.  It is the bridge
    between the textbook loop (``repro.solvers.cg``) and the asynchronous
    dataflow version (``repro.core.cg_dataflow``): all three must produce
    identical iterates (tested).

    Parameters
    ----------
    operator:
        Callable computing ``A @ v``.
    b:
        Right-hand side.
    x0:
        Initial guess (default zeros).
    tol_rtr, max_iters:
        Algorithm 1's ``ε`` and ``k_max``.
    """

    operator: Callable[[np.ndarray], np.ndarray]
    b: np.ndarray
    x0: np.ndarray | None = None
    tol_rtr: float = PAPER_TOLERANCE_RTR
    max_iters: int = 10_000

    state: CGState = CGState.INIT
    k: int = 0
    state_visits: list[CGState] = field(default_factory=list)
    residual_history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.b = np.asarray(self.b)
        if self.x0 is None:
            self._x = np.zeros_like(self.b)
            self._r = self.b.copy()
        else:
            self._x = np.array(self.x0, dtype=self.b.dtype, copy=True)
            self._r = self.b - self.operator(self._x)
        self._p = np.empty_like(self.b)
        self._Ap = np.empty_like(self.b)
        self._rtr = 0.0
        self._rtr_new = 0.0
        self._pap = 0.0
        self._alpha = 0.0
        self._beta = 0.0

    # -- execution ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def step(self) -> CGState:
        """Execute the current state's action and transition once."""
        handler = getattr(self, f"_on_{self.state.name.lower()}")
        next_state: CGState = handler()
        allowed = CG_TRANSITIONS[self.state]
        if next_state not in allowed:  # pragma: no cover - graph is static
            raise ConvergenceError(
                f"illegal transition {self.state} -> {next_state}",
                iterations=self.k,
                residual_norm=self._rtr,
            )
        self.state_visits.append(self.state)
        self.state = next_state
        return next_state

    def run(self) -> CGResult:
        """Step until a terminal state, then return the result."""
        while not self.done:
            self.step()
        self.state_visits.append(self.state)
        return CGResult(
            self._x,
            self.k,
            self.state is CGState.CONVERGED,
            self.residual_history,
        )

    # -- state handlers (lines of Algorithm 1) ------------------------------

    def _on_init(self) -> CGState:
        # Lines 1-3: r0 computed in __post_init__; p0 <- r0; k <- 0.
        self._p[...] = self._r
        self._rtr = float(np.vdot(self._r, self._r).real)
        self.residual_history.append(self._rtr)
        self.k = 0
        return CGState.ITER_CHECK

    def _on_iter_check(self) -> CGState:
        # Line 4: while k < k_max.  Also short-circuit an already-converged
        # initial guess (the dataflow code does the same in INIT).
        if self._rtr < self.tol_rtr:
            return CGState.MAXITER if self.k >= self.max_iters else CGState.EXCHANGE
        if self.k >= self.max_iters:
            return CGState.MAXITER
        return CGState.EXCHANGE

    def _on_exchange(self) -> CGState:
        # Halo exchange of the search direction: a no-op for the host
        # reference (the operator reads any cell directly).
        return CGState.COMPUTE_JX

    def _on_compute_jx(self) -> CGState:
        if self._rtr < self.tol_rtr:
            # Converged initial guess: skip the work, fall through to the
            # threshold check with zero update.
            self._Ap.fill(0)
            return CGState.DOT_PAP
        self._Ap[...] = self.operator(self._p)
        return CGState.DOT_PAP

    def _on_dot_pap(self) -> CGState:
        self._pap = float(np.vdot(self._p, self._Ap).real)
        return CGState.COMPUTE_ALPHA

    def _on_compute_alpha(self) -> CGState:
        # Line 5: alpha = r^T r / p^T A p.
        if self._rtr < self.tol_rtr:
            self._alpha = 0.0
        else:
            if self._pap <= 0:
                raise ConvergenceError(
                    f"CG breakdown: p^T A p = {self._pap:.3e} <= 0",
                    iterations=self.k,
                    residual_norm=self._rtr,
                )
            self._alpha = self._rtr / self._pap
        return CGState.UPDATE_SOL

    def _on_update_sol(self) -> CGState:
        # Line 6: y <- y + alpha * p.
        self._x += self._alpha * self._p
        return CGState.UPDATE_RES

    def _on_update_res(self) -> CGState:
        # Line 7: r <- r - alpha * A p.
        self._r -= self._alpha * self._Ap
        return CGState.DOT_RR

    def _on_dot_rr(self) -> CGState:
        self._rtr_new = float(np.vdot(self._r, self._r).real)
        return CGState.THRES_CHECK

    def _on_thres_check(self) -> CGState:
        # Line 8: if r^T r < eps, exit loop.
        self.k += 1
        self.residual_history.append(self._rtr_new)
        if self._rtr_new < self.tol_rtr:
            return CGState.CONVERGED
        return CGState.COMPUTE_BETA

    def _on_compute_beta(self) -> CGState:
        # Line 9: beta = r_{k+1}^T r_{k+1} / r_k^T r_k.
        self._beta = self._rtr_new / self._rtr if self._rtr > 0 else 0.0
        return CGState.UPDATE_DIR

    def _on_update_dir(self) -> CGState:
        # Line 10: p <- r + beta * p.
        self._p *= self._beta
        self._p += self._r
        self._rtr = self._rtr_new
        return CGState.ITER_CHECK

    def _on_converged(self) -> CGState:  # pragma: no cover - terminal
        return CGState.CONVERGED

    def _on_maxiter(self) -> CGState:  # pragma: no cover - terminal
        return CGState.MAXITER
