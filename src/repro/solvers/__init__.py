"""Krylov solvers.

* :func:`conjugate_gradient` — the reference implementation of the paper's
  Algorithm 1 (plain CG, ``r^T r < ε`` convergence check, fp32-friendly).
* :class:`CGStateMachine` — the same algorithm expressed as the 14-state
  event-driven machine of §III-D; the dataflow implementation in
  ``repro.core.cg_dataflow`` drives the identical state graph.
* :func:`scipy_cg_baseline` — independent cross-check via scipy.
* Optional Jacobi (diagonal) scaling as the documented extension.
"""

from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.state_machine import CGState, CGStateMachine, CG_NUM_STATES
from repro.solvers.baseline import scipy_cg_baseline, dense_direct_solve
from repro.solvers.jacobi import jacobi_preconditioned_cg
from repro.solvers.preconditioning import linear_solver_for, operator_diagonal

__all__ = [
    "CGResult",
    "conjugate_gradient",
    "CGState",
    "CGStateMachine",
    "CG_NUM_STATES",
    "scipy_cg_baseline",
    "dense_direct_solve",
    "jacobi_preconditioned_cg",
    "linear_solver_for",
    "operator_diagonal",
]
