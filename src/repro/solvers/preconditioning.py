"""Spec-driven linear-solver (preconditioner) selection.

The :class:`~repro.spec.SolveSpec` names a preconditioner
(``"none"``/``"jacobi"``); this module turns that name into the concrete
linear solver a backend's driver loop calls.  For the reference Newton
driver that means a callable with the :func:`conjugate_gradient`
signature; diagonal scaling binds the problem's operator diagonal (with
identity Dirichlet rows, matching the dataflow implementation) into a
closure over :func:`jacobi_preconditioned_cg`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.jacobi import jacobi_preconditioned_cg
from repro.util.errors import ConfigurationError


def operator_diagonal(problem: SinglePhaseProblem, dtype=np.float64) -> np.ndarray:
    """The diagonal of the matrix-free operator ``J``.

    Interior rows carry the flux-coefficient diagonal; Dirichlet rows are
    identity (``(Jx)_K = x_K`` on ``T_D``), exactly as the dataflow
    backend scales them.
    """
    diag = problem.coefficients.diagonal.astype(dtype).copy()
    diag[problem.dirichlet.mask] = 1.0
    return diag


def linear_solver_for(problem: SinglePhaseProblem, preconditioner: str):
    """The reference linear solver implementing ``preconditioner``.

    Returns a callable usable as ``newton_solve(..., linear_solver=...)``.
    """
    if preconditioner == "none":
        return conjugate_gradient
    if preconditioner == "jacobi":
        diagonal = operator_diagonal(problem)

        def _jacobi_cg(operator, b, x0=None, **options: Any) -> CGResult:
            # The Newton driver only forwards tol_rtr/max_iters; drop knobs
            # the preconditioned solver does not take.
            options.pop("rel_tol", None)
            options.pop("callback", None)
            options.pop("raise_on_fail", None)
            return jacobi_preconditioned_cg(
                operator, diagonal.astype(np.asarray(b).dtype), b, x0, **options
            )

        return _jacobi_cg
    raise ConfigurationError(f"unknown preconditioner {preconditioner!r}")
