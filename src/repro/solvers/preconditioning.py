"""Spec-driven linear-solver (preconditioner) selection.

The :class:`~repro.spec.SolveSpec` names a preconditioner
(``"none"``/``"jacobi"``/``"mg"``); this module turns that name into the
concrete linear solver a backend's driver loop calls.  For the reference
Newton driver that means a callable with the
:func:`conjugate_gradient` signature; diagonal scaling binds the
problem's operator diagonal (with identity Dirichlet rows, matching the
dataflow implementation) into a closure over
:func:`jacobi_preconditioned_cg`, and ``"mg"`` binds a geometric
multigrid hierarchy into :func:`repro.mg.pcg.mg_preconditioned_cg`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.cg import PAPER_TOLERANCE_RTR, CGResult, conjugate_gradient
from repro.solvers.jacobi import jacobi_preconditioned_cg
from repro.util.errors import ConfigurationError


def operator_diagonal(problem: SinglePhaseProblem, dtype=np.float64) -> np.ndarray:
    """The diagonal of the matrix-free operator ``J``.

    Interior rows carry the flux-coefficient diagonal; Dirichlet rows are
    identity (``(Jx)_K = x_K`` on ``T_D``), exactly as the dataflow
    backend scales them.
    """
    diag = problem.coefficients.diagonal.astype(dtype).copy()
    diag[problem.dirichlet.mask] = 1.0
    return diag


def _fold_rel_tol(operator, b, x0, options: dict) -> None:
    """Resolve a ``rel_tol`` option into the absolute ``tol_rtr``.

    The preconditioned solvers converge on the unpreconditioned
    ``r^T r`` but take only an absolute threshold, so a relative
    tolerance is scaled host-side from the initial residual — the same
    resolution ``core/solver.py:resolve_tolerance`` performs for the
    fabric engines.  Silently dropping the knob instead (the old
    behaviour) made ``rel_tol`` + a preconditioner converge to a
    different tolerance than plain CG given the same options.
    """
    rel_tol = options.pop("rel_tol", None)
    if rel_tol is None:
        return
    b = np.asarray(b)
    if x0 is None:
        r0 = np.asarray(b, dtype=np.float64)
    else:
        r0 = np.asarray(b, dtype=np.float64) - np.asarray(
            operator(np.asarray(x0, dtype=b.dtype)), dtype=np.float64
        )
    scale = float(np.vdot(r0, r0).real)
    tol = float(options.get("tol_rtr", PAPER_TOLERANCE_RTR))
    options["tol_rtr"] = max(tol, float(rel_tol) ** 2 * scale)


def linear_solver_for(
    problem: SinglePhaseProblem,
    preconditioner: str,
    *,
    mg_levels: int | None = None,
    mg_smoother_iters: int | None = None,
):
    """The reference linear solver implementing ``preconditioner``.

    Returns a callable usable as ``newton_solve(..., linear_solver=...)``.
    The mg knobs mirror the spec's ``mg_levels``/``mg_smoother_iters``
    and are only meaningful with ``preconditioner="mg"``.
    """
    if preconditioner == "none":
        return conjugate_gradient
    if preconditioner == "jacobi":
        diagonal = operator_diagonal(problem)

        def _jacobi_cg(operator, b, x0=None, **options: Any) -> CGResult:
            # Drop driver knobs the preconditioned solver does not take,
            # but *resolve* rel_tol into the absolute threshold first —
            # popping it unseen left the solve at the default tolerance.
            _fold_rel_tol(operator, b, x0, options)
            options.pop("callback", None)
            options.pop("raise_on_fail", None)
            return jacobi_preconditioned_cg(
                operator, diagonal.astype(np.asarray(b).dtype), b, x0, **options
            )

        return _jacobi_cg
    if preconditioner == "mg":
        from repro.mg import hierarchy_for_problem, mg_preconditioned_cg

        hierarchy = hierarchy_for_problem(
            problem,
            accumulation=None,
            levels=mg_levels,
            smoother_iters=mg_smoother_iters,
        )

        def _mg_cg(operator, b, x0=None, **options: Any) -> CGResult:
            _fold_rel_tol(operator, b, x0, options)
            options.pop("callback", None)
            options.pop("raise_on_fail", None)
            return mg_preconditioned_cg(operator, hierarchy, b, x0, **options)

        return _mg_cg
    raise ConfigurationError(f"unknown preconditioner {preconditioner!r}")
