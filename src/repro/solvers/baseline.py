"""Independent solver baselines for cross-validation.

``scipy_cg_baseline`` runs scipy's CG on the same operator; the dense direct
solve gives exact (to fp) ground truth on tiny grids.  Tests assert all
solver paths (reference CG, state machine, dataflow CG, GPU CG, scipy,
direct) agree.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solvers.cg import CGResult
from repro.util.errors import ConvergenceError


def scipy_cg_baseline(
    matrix_or_operator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol_rtr: float = 2e-10,
    max_iters: int = 10_000,
) -> CGResult:
    """Solve with :func:`scipy.sparse.linalg.cg`, paper-style tolerance.

    scipy's ``rtol``/``atol`` compare ``||r||`` (not ``r^T r``), so we pass
    ``atol = sqrt(tol_rtr)`` and ``rtol=0`` for an absolute check equivalent
    to the paper's ``r^T r < ε``.
    """
    b_flat = np.asarray(b).reshape(-1)
    x0_flat = None if x0 is None else np.asarray(x0).reshape(-1)
    residuals: list[float] = []

    def _callback(xk: np.ndarray) -> None:
        # scipy's callback gives the iterate, not the residual; recompute.
        r = b_flat - matrix_or_operator @ xk
        residuals.append(float(np.vdot(r, r).real))

    x, info = spla.cg(
        matrix_or_operator,
        b_flat,
        x0=x0_flat,
        rtol=0.0,
        atol=float(np.sqrt(tol_rtr)),
        maxiter=max_iters,
        callback=_callback,
    )
    converged = info == 0
    return CGResult(
        x.reshape(np.asarray(b).shape),
        iterations=len(residuals),
        converged=converged,
        residual_history=residuals,
    )


def dense_direct_solve(J, b: np.ndarray) -> np.ndarray:
    """Exact solve via dense LU — only for tiny validation grids."""
    b_flat = np.asarray(b, dtype=np.float64).reshape(-1)
    if sp.issparse(J):
        dense = J.toarray().astype(np.float64)
    else:
        dense = np.asarray(J, dtype=np.float64)
    n = dense.shape[0]
    if n > 20_000:
        raise ConvergenceError(
            f"dense_direct_solve limited to 20k unknowns, got {n}",
            iterations=0,
            residual_norm=float("nan"),
        )
    x = np.linalg.solve(dense, b_flat)
    return x.reshape(np.asarray(b).shape)
