"""Reference conjugate gradient — Algorithm 1 of the paper.

The paper's pseudo-code (in its notation: ``x`` is the *search direction*,
``y`` the solution iterate) is standard CG with the convergence check
``r^T r < ε`` — an absolute tolerance on the *squared* residual norm; the
evaluation uses ``ε = 2e-10``.  We keep that convention (exposed as
``tol_rtr``) and also offer a relative variant for convenience.

All vector math is done in NumPy with in-place updates (no per-iteration
allocations), following the HPC guide idioms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util.errors import ConvergenceError, ValidationError

#: The paper's convergence tolerance on ``r^T r`` (§V-C).
PAPER_TOLERANCE_RTR = 2e-10

#: CG iterations to convergence reported by the paper (Table III).
PAPER_ITERATIONS = 225


@dataclass
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Solution array (same shape as the input rhs).
    iterations:
        Number of iterations performed (operator applications minus one).
    converged:
        True if ``r^T r`` dropped below the tolerance within max_iters.
    residual_history:
        ``r^T r`` after each iteration (float64 accumulations), starting
        with the initial residual.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)

    @property
    def final_rtr(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")


def conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    rel_tol: float | None = None,
    max_iters: int = 10_000,
    callback: Callable[[int, float], None] | None = None,
    raise_on_fail: bool = False,
) -> CGResult:
    """Solve ``A x = b`` for SPD ``A`` given as a callable.

    Parameters
    ----------
    operator:
        Callable computing ``A @ v`` for an array ``v`` (any shape; the
        solver treats arrays as flat vectors for dot products).
    b:
        Right-hand side.
    x0:
        Initial guess (default zero).  For the FV system, pass a guess that
        already satisfies the Dirichlet rows so the residual vanishes on
        ``T_D`` (the invariant §III relies on).
    tol_rtr:
        Absolute tolerance on ``r^T r`` (paper semantics).
    rel_tol:
        If given, converge when ``r^T r <= rel_tol**2 * (r0^T r0)`` instead.
    max_iters:
        Iteration cap (line 4 of Algorithm 1).
    callback:
        Called as ``callback(k, rtr)`` after each iteration.
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    b = np.asarray(b)
    if x0 is None:
        x = np.zeros_like(b)
        r = b.copy()
    else:
        x = np.array(x0, dtype=b.dtype, copy=True)
        if x.shape != b.shape:
            raise ValidationError(f"x0 shape {x.shape} != b shape {b.shape}")
        r = b - operator(x)

    # Dot products accumulate in float64 even for fp32 fields — this is what
    # the fabric all-reduce does too (wavelets carry fp32, accumulation is
    # per-PE sequential adds; float64 here keeps the reference robust).
    rtr = float(np.vdot(r, r).real)
    history = [rtr]
    threshold = rtr * rel_tol * rel_tol if rel_tol is not None else tol_rtr

    if rtr < threshold:
        return CGResult(x, 0, True, history)

    p = r.copy()  # search direction (the paper's "x")
    Ap = np.empty_like(b)
    k = 0
    converged = False
    while k < max_iters:
        Ap[...] = operator(p)
        pap = float(np.vdot(p, Ap).real)
        if pap <= 0:
            # Operator is not positive definite along p: fail loudly rather
            # than silently diverging.
            raise ConvergenceError(
                f"CG breakdown: p^T A p = {pap:.3e} <= 0 at iteration {k}",
                iterations=k,
                residual_norm=rtr,
            )
        alpha = rtr / pap
        x += alpha * p
        r -= alpha * Ap
        rtr_new = float(np.vdot(r, r).real)
        history.append(rtr_new)
        k += 1
        if callback is not None:
            callback(k, rtr_new)
        if rtr_new < threshold:
            converged = True
            break
        beta = rtr_new / rtr
        p *= beta
        p += r
        rtr = rtr_new

    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {max_iters} iterations (r^T r = {history[-1]:.3e})",
            iterations=k,
            residual_norm=history[-1],
        )
    return CGResult(x, k, converged, history)
