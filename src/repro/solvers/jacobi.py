"""Jacobi (diagonal) scaled CG — the documented extension.

The paper runs *unpreconditioned* CG; its conclusion mentions broader solver
work as future directions.  Diagonal scaling is the one preconditioner that
maps trivially onto the dataflow architecture (purely local: each PE scales
its own column, no extra communication), so we implement it as an optional
extension and benchmark it in the ablation suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solvers.cg import CGResult, PAPER_TOLERANCE_RTR
from repro.util.errors import ConvergenceError, ValidationError


def jacobi_preconditioned_cg(
    operator: Callable[[np.ndarray], np.ndarray],
    diagonal: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    max_iters: int = 10_000,
) -> CGResult:
    """Preconditioned CG with ``M = diag(A)``.

    Convergence is still checked on the *unpreconditioned* ``r^T r`` so
    results are comparable with plain CG.

    Parameters
    ----------
    operator:
        Callable computing ``A @ v``.
    diagonal:
        The diagonal of A (same shape as ``b``); must be strictly positive
        (guaranteed for the SPD FV operator).
    """
    b = np.asarray(b)
    diagonal = np.asarray(diagonal)
    if diagonal.shape != b.shape:
        raise ValidationError(
            f"diagonal shape {diagonal.shape} != b shape {b.shape}"
        )
    if not np.all(diagonal > 0):
        raise ValidationError("Jacobi scaling requires a strictly positive diagonal")
    inv_diag = 1.0 / diagonal

    if x0 is None:
        x = np.zeros_like(b)
        r = b.copy()
    else:
        x = np.array(x0, dtype=b.dtype, copy=True)
        r = b - operator(x)

    z = (inv_diag * r).astype(b.dtype)
    p = z.copy()
    rtr = float(np.vdot(r, r).real)
    rz = float(np.vdot(r, z).real)
    history = [rtr]
    if rtr < tol_rtr:
        return CGResult(x, 0, True, history)

    Ap = np.empty_like(b)
    k = 0
    converged = False
    while k < max_iters:
        Ap[...] = operator(p)
        pap = float(np.vdot(p, Ap).real)
        if pap <= 0:
            raise ConvergenceError(
                f"PCG breakdown: p^T A p = {pap:.3e} <= 0 at iteration {k}",
                iterations=k,
                residual_norm=rtr,
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * Ap
        rtr = float(np.vdot(r, r).real)
        history.append(rtr)
        k += 1
        if rtr < tol_rtr:
            converged = True
            break
        z[...] = (inv_diag * r).astype(b.dtype)
        rz_new = float(np.vdot(r, z).real)
        beta = rz_new / rz
        p *= beta
        p += z
        rz = rz_new
    return CGResult(x, k, converged, history)
