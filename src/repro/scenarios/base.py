"""Declarative scenario specs and their registry.

A *scenario* is a named, parameterized recipe for a
:class:`~repro.physics.darcy.SinglePhaseProblem` — the quarter-five-spot
pattern, a heterogeneous geomodel, one rung of a weak-scaling family.
Registering the recipe once makes it discoverable by name from
:func:`repro.solve`, the examples and the benchmarks, and makes parameter
sweeps data (a list of :class:`Scenario` values) instead of code.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.physics.darcy import SinglePhaseProblem
from repro.util.errors import ConfigurationError

ProblemBuilder = Callable[..., SinglePhaseProblem]

_REGISTRY: dict[str, "ScenarioSpec"] = {}


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario family: builder + defaults + docs."""

    name: str
    builder: ProblemBuilder
    defaults: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""
    tags: tuple[str, ...] = ()

    def parameters(self) -> dict[str, Any]:
        """Effective default parameters (builder signature ∪ overrides)."""
        params: dict[str, Any] = {}
        for pname, p in inspect.signature(self.builder).parameters.items():
            if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
                continue
            params[pname] = p.default if p.default is not p.empty else None
        params.update(self.defaults)
        return params

    def bind(self, **overrides: Any) -> "Scenario":
        """Produce a concrete :class:`Scenario` with merged parameters."""
        params = dict(self.defaults)
        params.update(overrides)
        _check_params(self, params)
        return Scenario(name=self.name, params=params, description=self.description)


@dataclass(frozen=True)
class Scenario:
    """A concrete, fully parameterized problem description.

    Scenarios are plain values: hashable-ish, comparable, cheap to build
    and to ship across worker threads.  ``build()`` materializes the
    :class:`SinglePhaseProblem`; ``solve()`` is the one-stop shorthand.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def build(self) -> SinglePhaseProblem:
        """Materialize the problem this scenario describes."""
        return get_scenario(self.name).builder(**self.params)

    def with_params(self, **overrides: Any) -> "Scenario":
        """A new scenario with some parameters replaced."""
        merged = dict(self.params)
        merged.update(overrides)
        _check_params(get_scenario(self.name), merged)
        return replace(self, params=merged)

    def solve(self, *, backend: str = "reference", spec: Any = None, **options: Any):
        """Build and solve in one call (see :func:`repro.solve`)."""
        from repro.driver import solve as _solve

        return _solve(self, backend=backend, spec=spec, **options)

    def label(self) -> str:
        """Compact human-readable identity, e.g. for table rows."""
        if not self.params:
            return self.name
        inner = ", ".join(f"{k}={_short(v)}" for k, v in sorted(self.params.items()))
        return f"{self.name}({inner})"


def _short(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 24 else text[:21] + "..."


def _check_params(spec: ScenarioSpec, params: Mapping[str, Any]) -> None:
    """Reject parameters the builder cannot accept (typo safety)."""
    sig = inspect.signature(spec.builder)
    if any(p.kind is p.VAR_KEYWORD for p in sig.parameters.values()):
        return
    accepted = set(sig.parameters)
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise ConfigurationError(
            f"scenario {spec.name!r} does not accept parameter(s) "
            f"{', '.join(map(repr, unknown))}; accepted: "
            f"{', '.join(sorted(accepted))}"
        )


def register_scenario(
    name: str,
    builder: ProblemBuilder | None = None,
    *,
    defaults: Mapping[str, Any] | None = None,
    description: str = "",
    tags: tuple[str, ...] = (),
    overwrite: bool = False,
) -> Callable[[ProblemBuilder], ProblemBuilder] | ScenarioSpec:
    """Register a scenario family; usable directly or as a decorator.

    >>> @register_scenario("my-case", description="...")
    ... def build_my_case(nx=8, ny=8, nz=4): ...
    """

    def _register(fn: ProblemBuilder) -> ProblemBuilder:
        if name in _REGISTRY and not overwrite:
            raise ConfigurationError(
                f"scenario {name!r} is already registered; pass "
                f"overwrite=True to replace it"
            )
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            builder=fn,
            defaults=dict(defaults or {}),
            description=description or (inspect.getdoc(fn) or "").split("\n")[0],
            tags=tuple(tags),
        )
        return fn

    if builder is not None:
        _register(builder)
        return _REGISTRY[name]
    return _register


def unregister_scenario(name: str) -> None:
    """Remove a scenario (mainly for tests tearing down fakes)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario family; unknown names list what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available scenarios: "
            f"{', '.join(available_scenarios()) or '(none)'}"
        ) from None


def available_scenarios(tag: str | None = None) -> list[str]:
    """Sorted names of registered scenarios, optionally filtered by tag."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(n for n, s in _REGISTRY.items() if tag in s.tags)


def scenario(name: str, **overrides: Any) -> Scenario:
    """The front-door constructor: a bound scenario ready to build/solve."""
    return get_scenario(name).bind(**overrides)
