"""Builtin scenario library.

Collects the problem-construction recipes that were previously scattered
across ``repro.api``, the examples and the benchmarks into named,
registry-discoverable specs: the quarter-five-spot pattern, the
heterogeneous geomodels of the CCS motivation, the transient-injection
formation, and the weak-scaling grid family of Table III.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.boundary import DirichletSet
from repro.mesh.geomodel import (
    channelized_permeability,
    layered_permeability,
    lognormal_permeability,
)
from repro.mesh.grid import CartesianGrid3D
from repro.mesh.wells import quarter_five_spot
from repro.physics.darcy import SinglePhaseProblem, build_problem
from repro.scenarios.base import Scenario, register_scenario, scenario


def _five_spot_problem(
    grid: CartesianGrid3D,
    permeability: np.ndarray,
    *,
    viscosity: float = 1.0,
    injection_pressure: float = 1.0,
    production_pressure: float = 0.0,
) -> SinglePhaseProblem:
    _, dirichlet = quarter_five_spot(
        grid,
        injection_pressure=injection_pressure,
        production_pressure=production_pressure,
    )
    return build_problem(grid, permeability, dirichlet, viscosity=viscosity)


@register_scenario(
    "quarter_five_spot",
    description="Fig. 5: injector at (0,0), producer at (nx-1,ny-1), "
    "homogeneous (or caller-supplied) permeability.",
    tags=("paper", "steady"),
)
def build_quarter_five_spot(
    nx: int = 16,
    ny: int = 16,
    nz: int = 8,
    permeability: "np.ndarray | float" = 100.0,
    viscosity: float = 1.0,
    injection_pressure: float = 1.0,
    production_pressure: float = 0.0,
) -> SinglePhaseProblem:
    from repro.api import quarter_five_spot_problem

    return quarter_five_spot_problem(
        nx,
        ny,
        nz,
        permeability=permeability,
        viscosity=viscosity,
        injection_pressure=injection_pressure,
        production_pressure=production_pressure,
    )


@register_scenario(
    "layered_reservoir",
    description="Stacked strata with log-uniform layer contrasts "
    "(quarter-five-spot wells).",
    tags=("geomodel", "steady"),
)
def build_layered_reservoir(
    nx: int = 12,
    ny: int = 12,
    nz: int = 6,
    num_layers: int = 4,
    low: float = 1.0,
    high: float = 1000.0,
    seed: int = 1,
    viscosity: float = 1.0,
) -> SinglePhaseProblem:
    grid = CartesianGrid3D(nx, ny, nz)
    perm = layered_permeability(grid, num_layers=num_layers, low=low, high=high, seed=seed)
    return _five_spot_problem(grid, perm, viscosity=viscosity)


@register_scenario(
    "lognormal_reservoir",
    description="Spatially-correlated lognormal permeability "
    "(quarter-five-spot wells).",
    tags=("geomodel", "steady"),
)
def build_lognormal_reservoir(
    nx: int = 12,
    ny: int = 12,
    nz: int = 6,
    sigma_log: float = 1.5,
    correlation_cells: float = 4.0,
    seed: int = 2,
    viscosity: float = 1.0,
) -> SinglePhaseProblem:
    grid = CartesianGrid3D(nx, ny, nz)
    perm = lognormal_permeability(
        grid, sigma_log=sigma_log, correlation_cells=correlation_cells, seed=seed
    )
    return _five_spot_problem(grid, perm, viscosity=viscosity)


@register_scenario(
    "channelized_reservoir",
    description="Sinuous high-permeability channels in a tight background "
    "(quarter-five-spot wells).",
    tags=("geomodel", "steady"),
)
def build_channelized_reservoir(
    nx: int = 12,
    ny: int = 12,
    nz: int = 6,
    channel: float = 500.0,
    background: float = 1.0,
    num_channels: int = 3,
    seed: int = 3,
    viscosity: float = 1.0,
) -> SinglePhaseProblem:
    grid = CartesianGrid3D(nx, ny, nz)
    perm = channelized_permeability(
        grid,
        channel=channel,
        background=background,
        num_channels=num_channels,
        seed=seed,
    )
    return _five_spot_problem(grid, perm, viscosity=viscosity)


@register_scenario(
    "transient_injection",
    description="Heterogeneous formation used by the transient "
    "CO2-injection example (pair with a TimeSpec and time-step it via "
    "repro.simulate on any backend).",
    tags=("transient",),
)
def build_transient_injection(
    nx: int = 20,
    ny: int = 20,
    nz: int = 4,
    sigma_log: float = 1.0,
    seed: int = 7,
) -> SinglePhaseProblem:
    grid = CartesianGrid3D(nx, ny, nz)
    perm = lognormal_permeability(grid, sigma_log=sigma_log, seed=seed)
    return _five_spot_problem(grid, perm)


@register_scenario(
    "transient_drawdown",
    description="Layered formation with a central producer column and a "
    "constant-pressure top plane — the Δt-sweep companion to "
    "transient_injection (pair with a TimeSpec via repro.simulate).",
    tags=("transient",),
)
def build_transient_drawdown(
    nx: int = 16,
    ny: int = 16,
    nz: int = 6,
    num_layers: int = 4,
    low: float = 1.0,
    high: float = 500.0,
    seed: int = 11,
    producer_pressure: float = 0.0,
    support_pressure: float = 1.0,
) -> SinglePhaseProblem:
    grid = CartesianGrid3D(nx, ny, nz)
    perm = layered_permeability(
        grid, num_layers=num_layers, low=low, high=high, seed=seed
    )
    dirichlet = DirichletSet(grid)
    dirichlet.set_plane(2, nz - 1, support_pressure)
    dirichlet.set_column(nx // 2, ny // 2, producer_pressure)
    return build_problem(grid, perm, dirichlet)


@register_scenario(
    "weak_scaling",
    description="One rung of the Table III weak-scaling family: a "
    "lateral×lateral×nz quarter-five-spot grid.",
    tags=("paper", "scaling"),
)
def build_weak_scaling(lateral: int = 6, nz: int = 6) -> SinglePhaseProblem:
    return build_quarter_five_spot(nx=lateral, ny=lateral, nz=nz)


def weak_scaling_family(
    laterals: "list[int] | tuple[int, ...]" = (3, 4, 6, 8, 10), nz: int = 6
) -> list[Scenario]:
    """The simulator-scale weak-scaling sweep as a list of scenarios."""
    return [scenario("weak_scaling", lateral=int(n), nz=nz) for n in laterals]
