"""Declarative, registry-discoverable problem scenarios.

>>> from repro import scenarios
>>> scenarios.available_scenarios()
['channelized_reservoir', 'layered_reservoir', 'lognormal_reservoir',
 'quarter_five_spot', 'transient_injection', 'weak_scaling']
>>> sc = scenarios.scenario("quarter_five_spot", nx=12, ny=12, nz=4)
>>> result = sc.solve(backend="wse", dtype="float64", rel_tol=1e-8)
"""

from __future__ import annotations

from repro.scenarios.base import (
    Scenario,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario,
    unregister_scenario,
)
from repro.scenarios.library import weak_scaling_family

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario",
    "unregister_scenario",
    "weak_scaling_family",
]
