"""Geometric multigrid hierarchy for the matrix-free FV operator.

The fine level *is* the engine operator: per-axis face coefficient
arrays (``FluxCoefficients.cx/cy/cz``), an optional accumulation
diagonal (the transient backward-Euler term), and the Dirichlet mask
whose rows the operator replaces with identity.  Coarser levels are
built by **lateral semi-coarsening** — 2×2 cell aggregation in x/y, the
vertical axis untouched, matching the fabric layout where each PE owns a
full z-column — with **piecewise-constant Galerkin** coarse operators:

* a coarse face coefficient is the sum of the fine face coefficients
  crossing it (pair-sums of the odd-index fine faces);
* the coarse accumulation diagonal is the aggregate sum;
* the coarse diagonal is ``Σ coarse faces + acc`` — exactly the
  aggregate block-sum of the fine operator (the FV row-sum identity
  ``Σ_j A_ij = acc_i + Σ_{faces leaving the aggregate} c``), so every
  level is the variational (RAP) coarse operator for piecewise-constant
  transfer and the V-cycle stays symmetric positive definite.

Restriction is the aggregate sum, prolongation its exact adjoint
(injection); a coarse cell is masked when *any* fine cell in its
aggregate is masked, and residuals/corrections are kept exactly zero on
masked cells — the invariant the engine operator relies on.

Everything here is float64 regardless of the engine's working precision:
the V-cycle is a host-assisted construct (like tolerance resolution) and
must produce bitwise-identical ``z`` columns on every engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError

#: Hard cap on hierarchy depth (mirrored by ``spec.MG_MAX_LEVELS``).
MAX_MG_LEVELS = 10

#: Default pre/post weighted-Jacobi sweeps per level.
DEFAULT_SMOOTHER_ITERS = 2

#: Weighted-Jacobi damping factor (the classic 2/3 choice is robust for
#: the 7-point heterogeneous stencil under 2×2 lateral aggregation).
DEFAULT_OMEGA = 2.0 / 3.0

#: Largest coarsest-level size (cells) that gets an exact dense solve;
#: beyond it the coarsest level falls back to fixed smoothing sweeps
#: (only reachable by explicitly capping ``mg_levels`` on a big grid).
DENSE_SOLVE_MAX_CELLS = 4096

#: Weighted-Jacobi sweeps used on an over-large coarsest level.
COARSE_FALLBACK_SWEEPS = 8


def _pair_sum(a: np.ndarray, axis: int) -> np.ndarray:
    """Sum adjacent index pairs along ``axis`` (odd tail rides alone)."""
    n = a.shape[axis]
    even = [slice(None)] * a.ndim
    even[axis] = slice(0, None, 2)
    out = a[tuple(even)].copy()
    if n > 1:
        odd = [slice(None)] * a.ndim
        odd[axis] = slice(1, None, 2)
        head = [slice(None)] * a.ndim
        head[axis] = slice(0, n // 2)
        out[tuple(head)] += a[tuple(odd)]
    return out


def _pair_any(mask: np.ndarray, axis: int) -> np.ndarray:
    """Logical-or of adjacent index pairs along ``axis``."""
    n = mask.shape[axis]
    even = [slice(None)] * mask.ndim
    even[axis] = slice(0, None, 2)
    out = mask[tuple(even)].copy()
    if n > 1:
        odd = [slice(None)] * mask.ndim
        odd[axis] = slice(1, None, 2)
        head = [slice(None)] * mask.ndim
        head[axis] = slice(0, n // 2)
        out[tuple(head)] |= mask[tuple(odd)]
    return out


@dataclass
class MgLevel:
    """One level's operator: face coefficients, diagonals, mask."""

    shape: tuple[int, int, int]
    fx: np.ndarray  # (nx-1, ny, nz) float64
    fy: np.ndarray  # (nx, ny-1, nz) float64
    fz: np.ndarray  # (nx, ny, nz-1) float64
    acc: np.ndarray  # (nx, ny, nz) float64 accumulation diagonal
    mask: np.ndarray  # (nx, ny, nz) bool — identity rows
    diag: np.ndarray  # (nx, ny, nz) float64, 1.0 on masked rows
    inv_diag: np.ndarray  # 1 / diag
    dense_inv: np.ndarray | None = None  # coarsest-level exact inverse

    @property
    def cells(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz


def level_apply(level: MgLevel, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Matrix-free apply of this level's operator (identity masked rows).

    Mirrors ``repro.fv.operator.apply_jx``: ``out = diag·z`` minus the
    symmetric neighbour couplings over internal faces, then masked rows
    pass ``z`` through unchanged.
    """
    if out is None:
        out = np.empty_like(z)
    np.multiply(level.diag, z, out=out)
    for axis, f in ((0, level.fx), (1, level.fy), (2, level.fz)):
        if f.size == 0:
            continue
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        lo, hi = tuple(lo), tuple(hi)
        out[lo] -= f * z[hi]
        out[hi] -= f * z[lo]
    np.copyto(out, z, where=level.mask)
    return out


def restrict(fine_level: MgLevel, coarse_level: MgLevel, r: np.ndarray) -> np.ndarray:
    """Aggregate-sum restriction; zero on masked coarse cells."""
    rc = _pair_sum(_pair_sum(r, 0), 1)
    rc[coarse_level.mask] = 0.0
    return rc


def prolong(fine_level: MgLevel, zc: np.ndarray) -> np.ndarray:
    """Injection prolongation (adjoint of :func:`restrict`); zero on
    masked fine cells."""
    nx, ny, _ = fine_level.shape
    zf = np.repeat(np.repeat(zc, 2, axis=0)[:nx], 2, axis=1)[:, :ny]
    zf = np.ascontiguousarray(zf)
    zf[fine_level.mask] = 0.0
    return zf


def _level_from_parts(fx, fy, fz, acc, mask, shape) -> MgLevel:
    diag = np.zeros(shape, dtype=np.float64)
    for axis, f in ((0, fx), (1, fy), (2, fz)):
        if f.size == 0:
            continue
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        diag[tuple(lo)] += f
        diag[tuple(hi)] += f
    diag += acc
    diag[mask] = 1.0
    if not np.all(diag > 0):
        raise ConfigurationError(
            "mg hierarchy needs a positive operator diagonal on every "
            "level; the problem's coefficients/accumulation produce a "
            "non-positive row"
        )
    return MgLevel(
        shape=shape, fx=fx, fy=fy, fz=fz, acc=acc, mask=mask,
        diag=diag, inv_diag=1.0 / diag,
    )


def _coarsen(fine: MgLevel) -> MgLevel:
    nxf, nyf, nzf = fine.shape
    nxc, nyc = -(-nxf // 2), -(-nyf // 2)
    # Cross-aggregate faces are the odd-index fine faces (between fine
    # cells 2I+1 and 2I+2, i.e. between aggregates I and I+1), summed
    # over the perpendicular lateral pairing.
    fxc = _pair_sum(fine.fx[1::2], 1)
    fyc = _pair_sum(fine.fy[:, 1::2], 0)
    fzc = _pair_sum(_pair_sum(fine.fz, 0), 1)
    acc = _pair_sum(_pair_sum(fine.acc, 0), 1)
    mask = _pair_any(_pair_any(fine.mask, 0), 1)
    return _level_from_parts(fxc, fyc, fzc, acc, mask, (nxc, nyc, nzf))


def planned_level_shapes(
    shape: tuple[int, int, int], levels: int | None = None
) -> list[tuple[int, int, int]]:
    """The per-level grid shapes the hierarchy will use (pure geometry).

    Coarsens ``ceil(n/2)`` laterally while either lateral extent exceeds
    2, capped at ``levels`` (when given) and :data:`MAX_MG_LEVELS`.
    Shared by the hierarchy builder, the charge model and telemetry so
    they can never disagree.
    """
    cap = MAX_MG_LEVELS if levels is None else min(levels, MAX_MG_LEVELS)
    nx, ny, nz = shape
    out = [(nx, ny, nz)]
    while len(out) < cap and (nx > 2 or ny > 2):
        nx, ny = -(-nx // 2), -(-ny // 2)
        out.append((nx, ny, nz))
    return out


def _dense_matrix(level: MgLevel) -> np.ndarray:
    """The level operator as a dense symmetric matrix (identity masked
    rows *and* zeroed masked columns — the operator restricted to the
    zero-on-mask subspace, which is where CG's residuals live)."""
    n = level.cells
    idx = np.arange(n).reshape(level.shape)
    a = np.zeros((n, n), dtype=np.float64)
    a[idx.ravel(), idx.ravel()] = level.diag.ravel()
    for axis, f in ((0, level.fx), (1, level.fy), (2, level.fz)):
        if f.size == 0:
            continue
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        rows = idx[tuple(lo)].ravel()
        cols = idx[tuple(hi)].ravel()
        vals = f.ravel()
        a[rows, cols] -= vals
        a[cols, rows] -= vals
    m = level.mask.ravel()
    a[m, :] = 0.0
    a[:, m] = 0.0
    where = np.flatnonzero(m)
    a[where, where] = 1.0
    return a


@dataclass
class MgHierarchy:
    """A full V-cycle hierarchy plus the smoothing schedule."""

    levels: tuple[MgLevel, ...]
    smoother_iters: int = DEFAULT_SMOOTHER_ITERS
    omega: float = DEFAULT_OMEGA

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.levels[0].shape

    def level_shapes(self) -> list[list[int]]:
        return [list(level.shape) for level in self.levels]

    def telemetry(self, cycles: int) -> dict:
        """The JSON-able ``preconditioner={...}`` telemetry payload."""
        return {
            "kind": "mg",
            "levels": self.level_shapes(),
            "smoother_iters": int(self.smoother_iters),
            "omega": float(self.omega),
            "cycles": int(cycles),
            "coarse_solve": (
                "dense" if self.levels[-1].dense_inv is not None
                else "smooth"
            ),
        }


def build_hierarchy(
    coefficients,
    dirichlet_mask: np.ndarray,
    *,
    accumulation: np.ndarray | None = None,
    levels: int | None = None,
    smoother_iters: int | None = None,
    omega: float = DEFAULT_OMEGA,
) -> MgHierarchy:
    """Build the hierarchy from the engine's own operator ingredients.

    Parameters
    ----------
    coefficients:
        A :class:`repro.fv.coefficients.FluxCoefficients` (any dtype;
        promoted to float64 here).
    dirichlet_mask:
        Boolean identity-row mask, fine-grid shaped.
    accumulation:
        Optional transient accumulation diagonal (fine grid).  The
        hierarchy must be rebuilt when it changes (per-Δt), exactly like
        the Jacobi inverse diagonal.
    levels / smoother_iters / omega:
        Schedule knobs; ``None`` means the defaults above.
    """
    shape = tuple(int(v) for v in dirichlet_mask.shape)
    mask = np.asarray(dirichlet_mask, dtype=bool)
    acc = (
        np.zeros(shape, dtype=np.float64)
        if accumulation is None
        else np.asarray(accumulation, dtype=np.float64).reshape(shape).copy()
    )
    fine = _level_from_parts(
        coefficients.cx.astype(np.float64),
        coefficients.cy.astype(np.float64),
        coefficients.cz.astype(np.float64),
        acc,
        mask,
        shape,
    )
    shapes = planned_level_shapes(shape, levels)
    built = [fine]
    for _ in shapes[1:]:
        built.append(_coarsen(built[-1]))
    coarsest = built[-1]
    if coarsest.cells <= DENSE_SOLVE_MAX_CELLS:
        coarsest.dense_inv = np.linalg.inv(_dense_matrix(coarsest))
    iters = DEFAULT_SMOOTHER_ITERS if smoother_iters is None else int(smoother_iters)
    if not 1 <= iters <= 8:
        raise ConfigurationError(
            f"mg smoother_iters must be in [1, 8], got {iters}"
        )
    return MgHierarchy(tuple(built), smoother_iters=iters, omega=float(omega))


def hierarchy_for_problem(
    problem,
    *,
    accumulation: np.ndarray | None = None,
    levels: int | None = None,
    smoother_iters: int | None = None,
) -> MgHierarchy:
    """Convenience wrapper taking a ``SinglePhaseProblem``."""
    return build_hierarchy(
        problem.coefficients,
        problem.dirichlet.mask,
        accumulation=accumulation,
        levels=levels,
        smoother_iters=smoother_iters,
    )


__all__ = [
    "COARSE_FALLBACK_SWEEPS",
    "DEFAULT_OMEGA",
    "DEFAULT_SMOOTHER_ITERS",
    "DENSE_SOLVE_MAX_CELLS",
    "MAX_MG_LEVELS",
    "MgHierarchy",
    "MgLevel",
    "build_hierarchy",
    "hierarchy_for_problem",
    "level_apply",
    "planned_level_shapes",
    "prolong",
    "restrict",
]
