"""MG-preconditioned CG for the reference solver path.

Mirrors :func:`repro.solvers.jacobi.jacobi_preconditioned_cg` with the
V-cycle in place of the inverse diagonal: convergence is still checked
on the *unpreconditioned* ``r^T r`` so iteration counts are comparable
with plain CG and with the Jacobi extension.  The engines' dataflow
recurrence instead checks ``r^T z`` (see ``core/solver.py``'s tolerance
resolution) — same recurrence, different host-side threshold plumbing,
exactly as with Jacobi today.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mg.cycle import mg_apply
from repro.mg.hierarchy import MgHierarchy
from repro.solvers.cg import CGResult, PAPER_TOLERANCE_RTR
from repro.util.errors import ConvergenceError


def mg_preconditioned_cg(
    operator: Callable[[np.ndarray], np.ndarray],
    hierarchy: MgHierarchy,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    max_iters: int = 10_000,
) -> CGResult:
    """Preconditioned CG with ``M⁻¹ = one multigrid V-cycle``."""
    b = np.asarray(b)
    if x0 is None:
        x = np.zeros_like(b)
        r = b.copy()
    else:
        x = np.array(x0, dtype=b.dtype, copy=True)
        r = b - operator(x)

    z = mg_apply(hierarchy, r).astype(b.dtype)
    p = z.copy()
    rtr = float(np.vdot(r, r).real)
    rz = float(np.vdot(r, z).real)
    history = [rtr]
    if rtr < tol_rtr:
        return CGResult(x, 0, True, history)

    Ap = np.empty_like(b)
    k = 0
    converged = False
    while k < max_iters:
        Ap[...] = operator(p)
        pap = float(np.vdot(p, Ap).real)
        if pap <= 0:
            raise ConvergenceError(
                f"PCG breakdown: p^T A p = {pap:.3e} <= 0 at iteration {k}",
                iterations=k,
                residual_norm=rtr,
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * Ap
        rtr = float(np.vdot(r, r).real)
        history.append(rtr)
        k += 1
        if rtr < tol_rtr:
            converged = True
            break
        z[...] = mg_apply(hierarchy, r).astype(b.dtype)
        rz_new = float(np.vdot(r, z).real)
        beta = rz_new / rz
        p *= beta
        p += z
        rz = rz_new
    return CGResult(x, k, converged, history)


__all__ = ["mg_preconditioned_cg"]
