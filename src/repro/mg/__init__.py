"""Matrix-free geometric multigrid preconditioning.

``preconditioner="mg"`` on a :class:`~repro.spec.SolveSpec` runs the
same preconditioned-CG recurrence on the reference solver and every
fabric engine, with the V-cycle's per-level work charged analytically
(``repro.mg.charges``) so counters/traffic/memory stay oracle-pinned.

* :mod:`repro.mg.hierarchy` — level construction (lateral 2×2 Galerkin
  aggregation of the FV face coefficients);
* :mod:`repro.mg.cycle` — the float64 V-cycle ``z = M⁻¹ r``;
* :mod:`repro.mg.charges` — the per-V-cycle charge packet the engines
  merge at every preconditioner application;
* :mod:`repro.mg.pcg` — the reference-path MG-PCG driver.
"""

from repro.mg.charges import build_mg_packet, merge_mg_packet
from repro.mg.cycle import mg_apply
from repro.mg.hierarchy import (
    DEFAULT_OMEGA,
    DEFAULT_SMOOTHER_ITERS,
    MAX_MG_LEVELS,
    MgHierarchy,
    MgLevel,
    build_hierarchy,
    hierarchy_for_problem,
    level_apply,
    planned_level_shapes,
    prolong,
    restrict,
)
from repro.mg.pcg import mg_preconditioned_cg

__all__ = [
    "DEFAULT_OMEGA",
    "DEFAULT_SMOOTHER_ITERS",
    "MAX_MG_LEVELS",
    "MgHierarchy",
    "MgLevel",
    "build_hierarchy",
    "build_mg_packet",
    "hierarchy_for_problem",
    "level_apply",
    "merge_mg_packet",
    "mg_apply",
    "mg_preconditioned_cg",
    "planned_level_shapes",
    "prolong",
    "restrict",
]
