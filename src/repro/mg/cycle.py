"""The multigrid V-cycle: ``z = M⁻¹ r`` for the preconditioned CG.

One call = one V-cycle from a zero initial guess — the standard
symmetric-preconditioner form (equal pre/post weighted-Jacobi sweeps
around a variational coarse-grid correction, exact solve on the coarsest
level), so ``M⁻¹`` is symmetric positive definite and the PCG recurrence
stays a genuine CG.

All arithmetic is float64, independent of the engine's working
precision: every engine calls this exact function with the exact same
hierarchy, so the resulting ``z`` column is bitwise identical across
engines before the single cast into the working dtype — which is what
keeps the event/vectorized/sharded/fused iterates in lockstep.

Masked (Dirichlet) cells are kept exactly zero throughout: the input
residual is zero there (the engine invariant), restriction zeroes coarse
masked cells, prolongation zeroes fine ones, and the smoother update is
zero wherever ``r`` and ``z`` both are.
"""

from __future__ import annotations

import numpy as np

from repro.mg.hierarchy import (
    COARSE_FALLBACK_SWEEPS,
    MgHierarchy,
    MgLevel,
    level_apply,
    prolong,
    restrict,
)


def _smooth(
    level: MgLevel, z: np.ndarray, r: np.ndarray, omega: float, sweeps: int
) -> np.ndarray:
    """``sweeps`` damped-Jacobi updates ``z += ω D⁻¹ (r − A z)``."""
    for _ in range(sweeps):
        az = level_apply(level, z)
        np.subtract(r, az, out=az)
        az *= level.inv_diag
        az *= omega
        z += az
    return z


def _coarse_solve(hier: MgHierarchy, level: MgLevel, r: np.ndarray) -> np.ndarray:
    if level.dense_inv is not None:
        z = (level.dense_inv @ r.reshape(-1)).reshape(level.shape)
        z[level.mask] = 0.0  # keep the zero-on-mask invariant exact
        return z
    z = np.zeros_like(r)
    return _smooth(level, z, r, hier.omega, COARSE_FALLBACK_SWEEPS)


def _v_cycle(hier: MgHierarchy, index: int, r: np.ndarray) -> np.ndarray:
    level = hier.levels[index]
    if index == len(hier.levels) - 1:
        return _coarse_solve(hier, level, r)
    z = np.zeros_like(r)
    _smooth(level, z, r, hier.omega, hier.smoother_iters)
    resid = r - level_apply(level, z)
    coarse = hier.levels[index + 1]
    rc = restrict(level, coarse, resid)
    zc = _v_cycle(hier, index + 1, rc)
    z += prolong(level, zc)
    _smooth(level, z, r, hier.omega, hier.smoother_iters)
    return z


def mg_apply(hier: MgHierarchy, r: np.ndarray) -> np.ndarray:
    """One V-cycle applied to ``r``; float64 in, float64 out."""
    r64 = np.asarray(r, dtype=np.float64)
    return _v_cycle(hier, 0, r64)


__all__ = ["mg_apply"]
