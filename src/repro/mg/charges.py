"""Analytic charge packets for the multigrid V-cycle.

The mg preconditioner is a *program-level* construct: every engine runs
the identical float64 V-cycle (``repro.mg.cycle.mg_apply``) host-side,
so what distinguishes engines is only *where* the charges land — and
they must land identically, or the event/vectorized/sharded/fused
parity pinning breaks.  This module builds ONE charge packet per
program (a throwaway ``_ChargeModel``-compatible object holding exactly
one V-cycle's instruction counts, memory/fabric traffic and critical
path) that every engine merges at every preconditioner application
(``iterations + 1`` applications per solve: INIT plus one per
UPDATE_RES).

The per-level cost recipe mirrors ``cycle.py`` statement for statement,
charged on a *per-level* model whose fabric dimensions are that level's
coarsened grid (coarse levels occupy a shrinking corner of the fabric):

* each damped-Jacobi sweep: one halo-exchange round of ``z``, one
  matrix-free apply (FMUL diagonal + FSUB/FMA per face direction), and
  the FSUB/FMUL/FMUL/FADD update;
* the mid-cycle residual: one more exchange + apply + FSUB;
* restriction: one coarse-level exchange round (the aggregate gather)
  plus two coarse FADD sweeps (the lateral pair-sums);
* prolongation: one coarse-level exchange round (the correction
  scatter) plus the fine-level FADD (``z += P zc``);
* the coarsest solve: one reduction round plus two FMA sweeps for the
  dense backsolve-and-broadcast, or the fixed fallback smoothing sweeps
  when the level is too large for a dense inverse.

Like the vectorized engine's own model, this is an *analytic* cost
model over the same ISA cost tables — deterministic, engine-independent
and exactly reproducible, which is all the parity contract requires.
"""

from __future__ import annotations

from repro.mg.hierarchy import COARSE_FALLBACK_SWEEPS, MgHierarchy
from repro.wse.isa import Op

#: vec-op sequence of one matrix-free level apply: the diagonal FMUL,
#: then one FSUB (difference) + FMA (coefficient accumulate) per face
#: direction (4 lateral + 2 vertical).
_APPLY_OPS = (Op.FMUL,) + (Op.FSUB, Op.FMA) * 6

#: vec-op sequence of one damped-Jacobi update after the apply:
#: ``r − Az``, ``× inv_diag``, ``× ω``, ``z += …``.
_SMOOTH_UPDATE_OPS = (Op.FSUB, Op.FMUL, Op.FMUL, Op.FADD)


def _charge_apply(m) -> None:
    for op in _APPLY_OPS:
        m.vec(op)


def _charge_sweep(m) -> None:
    """One damped-Jacobi sweep: halo round + apply + update."""
    m.charge_exchange()
    _charge_apply(m)
    for op in _SMOOTH_UPDATE_OPS:
        m.vec(op)


def build_mg_packet(model, hierarchy: MgHierarchy):
    """One V-cycle's charges as a mergeable packet.

    ``model`` is the engine's fine-grid charge model (only its machine
    parameters — dims, SIMD width, spec — are read); the returned packet
    is a fresh model of the same class, mergeable with ``merge_scaled``.
    """
    cls = type(model)

    def level_model(shape):
        return cls(
            width=shape[0], height=shape[1], depth=shape[2],
            simd_width=model.simd_width, spec=model.spec,
            suppress=model.suppress, kind_counts={}, kernel_plans={},
        )

    packet = level_model((model.width, model.height, model.depth))
    levels = hierarchy.levels
    sweeps = hierarchy.smoother_iters
    for index, level in enumerate(levels):
        m = level_model(level.shape)
        last = index == len(levels) - 1
        if last:
            if level.dense_inv is not None:
                # Reduce the coarse residual, backsolve, broadcast.
                m.charge_allreduce()
                m.vec(Op.FMA)
                m.vec(Op.FMA)
            else:
                for _ in range(COARSE_FALLBACK_SWEEPS):
                    _charge_sweep(m)
        else:
            for _ in range(2 * sweeps):  # pre + post smoothing
                _charge_sweep(m)
            # Mid-cycle residual for the restriction.
            m.charge_exchange()
            _charge_apply(m)
            m.vec(Op.FSUB)
            # Restriction: aggregate gather + the two lateral pair-sums.
            coarse = level_model(levels[index + 1].shape)
            coarse.charge_exchange()
            coarse.vec(Op.FADD)
            coarse.vec(Op.FADD)
            # Prolongation: correction scatter + the fine-level add.
            coarse.charge_exchange()
            m.vec(Op.FADD)
            packet.merge_scaled(coarse, 1)
        packet.merge_scaled(m, 1)
    return packet


def merge_mg_packet(counters, trace, packet, n: int) -> None:
    """Fold ``n`` V-cycles of packet charges into raw counter/trace
    objects (the event engine's post-run path — it has no
    ``_ChargeModel`` to merge into, only the fabric's merged
    ``PerfCounters``/``FabricTrace``).

    Mirrors ``_ChargeModel.merge_scaled`` plus the makespan/critical-path
    fields, and extends idle time by the packet's own idle so the
    per-run identity ``makespan · PEs = compute + idle`` is preserved.
    """
    if n <= 0:
        return
    o = packet.counters
    for op, count in o.op_counts.items():
        counters.op_counts[op] += count * n
    counters.flops += o.flops * n
    counters.mem_load_bytes += o.mem_load_bytes * n
    counters.mem_store_bytes += o.mem_store_bytes * n
    counters.fabric_load_bytes += o.fabric_load_bytes * n
    counters.fabric_store_bytes += o.fabric_store_bytes * n
    counters.compute_cycles += o.compute_cycles * n
    ot = packet.trace
    trace.total_messages += ot.total_messages * n
    trace.total_wavelets += ot.total_wavelets * n
    trace.total_hop_wavelets += ot.total_hop_wavelets * n
    trace.comm_busy_cycles += ot.comm_busy_cycles * n
    trace.makespan_cycles += packet.makespan * n
    trace.max_compute_cycles += packet.pe_compute * n
    counters.idle_cycles += max(
        0, (packet.makespan * packet.num_pes - o.compute_cycles) * n
    )


__all__ = ["build_mg_packet", "merge_mg_packet"]
