"""The execution engine: :class:`Session`, :class:`ExecutionPlan`,
:class:`ResultStore`.

``repro.solve`` answers one question; studies ask hundreds (Table III's
weak-scaling family, Table IV's full/comm-only pairs, heterogeneity
sweeps).  A :class:`Session` turns a batch into an *inspectable plan*
before anything runs:

>>> session = repro.Session(store="runs/table3")
>>> plan = session.plan(weak_scaling_family(), spec, backend="wse")
>>> plan.entries          # what will run, with content fingerprints
>>> results = plan.run(executor="process", n_workers=4)

Design points (the matrix-free lesson applied to execution — separate
the operator/configuration from how it is driven):

* **Deferred, memoized assembly** — a :class:`PlanEntry` stores the
  resolved scenario, not the built problem; assembly happens at run time
  and is memoized by scenario fingerprint, so N specs over one scenario
  assemble once.
* **Executor fan-out** — ``serial`` (simple tracebacks), ``thread``
  (NumPy-heavy kernels overlap well), ``process`` (true parallelism for
  long reference solves; entries are plain picklable values).
* **Per-entry error capture** — one diverging entry yields a
  :class:`PlanEntryResult` with ``error`` set instead of poisoning the
  batch; results always come back in input order.
* **Persistent results** — a :class:`ResultStore` writes a JSON manifest
  plus NPZ pressure fields per entry; re-running a plan against a
  populated store skips completed entries (``from_store=True``).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import pickle
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.backends import SolveResult, StepResult, get_backend
from repro.physics.darcy import SinglePhaseProblem
from repro.scenarios.base import Scenario, scenario as _bind_scenario
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError
from repro.util.locking import FileLock

EXECUTORS = ("serial", "thread", "process", "batched")


# -- fingerprinting ----------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """A JSON-encodable stand-in for arbitrary scenario parameters."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            "shape": list(value.shape),
            "dtype": value.dtype.name,
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Fall back to a content digest of the pickle stream: deterministic for
    # value-like objects (pickle carries no memory addresses), and a loud
    # failure for things that cannot be fingerprinted at all — a repr()
    # fallback would silently embed `object at 0x...` addresses and defeat
    # both memoization and store resume.
    try:
        stream = pickle.dumps(value, protocol=4)
    except Exception:  # noqa: BLE001
        raise ConfigurationError(
            f"cannot fingerprint scenario parameter of type "
            f"{type(value).__name__}: use JSON-able values, ndarrays, or "
            f"picklable objects"
        ) from None
    return {
        "__pickle__": type(value).__name__,
        "digest": hashlib.sha256(stream).hexdigest(),
    }


def _problem_fingerprint(problem: SinglePhaseProblem) -> dict[str, Any]:
    grid = problem.grid
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(problem.permeability).tobytes())
    digest.update(np.ascontiguousarray(problem.dirichlet.mask).tobytes())
    digest.update(np.ascontiguousarray(problem.dirichlet.values).tobytes())
    return {
        "grid": [grid.nx, grid.ny, grid.nz, grid.dx, grid.dy, grid.dz],
        "viscosity": problem.viscosity,
        "fields": digest.hexdigest(),
    }


def _target_payload(scenario: Scenario | None, problem: SinglePhaseProblem | None) -> Any:
    if scenario is not None:
        return {"scenario": scenario.name, "params": _jsonable(scenario.params)}
    assert problem is not None
    return {"problem": _problem_fingerprint(problem)}


# -- plan entries ------------------------------------------------------------


@dataclass(frozen=True)
class PlanEntry:
    """One scheduled solve: a resolved target + spec + backend.

    Problem assembly is deferred: ``scenario`` holds the recipe and
    :meth:`build_problem` materializes it (optionally through a shared
    memo cache keyed by :attr:`scenario_key`).  ``fingerprint`` is the
    content identity of the whole entry (target + spec + backend) — the
    result-store and resume key.
    """

    index: int
    spec: SolveSpec
    backend: str
    scenario: Scenario | None = None
    problem: SinglePhaseProblem | None = None
    fingerprint: str = ""
    scenario_key: str = ""

    @property
    def label(self) -> str:
        if self.scenario is not None:
            base = self.scenario.label()
        else:
            assert self.problem is not None
            shape = "x".join(str(v) for v in self.problem.grid.shape)
            base = f"problem[{shape}]"
        if self.spec.time is not None:
            base += f" [{self.spec.time.n_steps} steps]"
        return base

    @property
    def n_steps(self) -> int | None:
        """Steps of a transient entry (``None`` for steady solves)."""
        return None if self.spec.time is None else self.spec.time.n_steps

    def build_problem(
        self, cache: dict[str, SinglePhaseProblem] | None = None
    ) -> SinglePhaseProblem:
        """Materialize the problem, memoized by scenario fingerprint."""
        if self.problem is not None:
            return self.problem
        assert self.scenario is not None
        if cache is None:
            return self.scenario.build()
        problem = cache.get(self.scenario_key)
        if problem is None:
            problem = self.scenario.build()
            cache[self.scenario_key] = problem
        return problem


@dataclass
class PlanEntryResult:
    """Outcome of one plan entry: a result, or a captured error.

    ``elapsed_seconds`` is host wall clock around the backend call (the
    result's own ``elapsed_seconds`` keeps the backend's native time
    notion); ``from_store`` marks entries satisfied by the
    :class:`ResultStore` without re-solving.
    """

    entry: PlanEntry
    result: SolveResult | None = None
    error: Exception | None = None
    elapsed_seconds: float = 0.0
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def n_steps(self) -> int | None:
        """Steps a transient entry actually ran (``None`` for steady).

        Prefers the result's own ``telemetry["transient"]`` record (what
        the backend executed); falls back to the entry's spec for errored
        or store-rehydrated results."""
        if self.result is not None:
            transient = self.result.telemetry.get("transient")
            if isinstance(transient, Mapping):
                steps = transient.get("n_steps")
                if steps is not None:
                    return int(steps)
        return self.entry.n_steps

    @property
    def total_iterations(self) -> int | None:
        """Aggregate CG iterations — summed over every step for
        multi-step (transient) entries, so plan rows stay meaningful.
        ``None`` for errored entries."""
        return None if self.result is None else int(self.result.iterations)

    @property
    def engine(self) -> str | None:
        """The fabric engine that produced the result (``"event"``,
        ``"vectorized"``, ``"batched"``), if the backend reported one —
        how batched and serial results of the same entry stay
        distinguishable.  ``None`` for errors, non-fabric backends and
        store-rehydrated results."""
        if self.result is None:
            return None
        engine = self.result.telemetry.get("engine")
        return engine if isinstance(engine, str) else None


def _execute_entry(
    entry: PlanEntry, cache: dict[str, SinglePhaseProblem] | None = None
) -> tuple[SolveResult | None, Exception | None, float]:
    """Run one entry, capturing any exception."""
    start = time.perf_counter()
    try:
        problem = entry.build_problem(cache)
        result = get_backend(entry.backend).solve(problem, entry.spec)
        return result, None, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - per-entry capture is the contract
        return None, exc, time.perf_counter() - start


def _execute_entry_in_worker(
    entry: PlanEntry,
) -> tuple[SolveResult | None, Exception | None, float]:
    """Process-pool worker: like :func:`_execute_entry`, pickle-safe errors.

    Results travel back through pickle; an exception whose constructor
    signature breaks the default reduce protocol would otherwise kill the
    whole batch at *deserialization* time, so unpicklable errors are
    replaced by a faithful stand-in.  Serial/thread executors keep the
    original exception object (no pickle boundary there).
    """
    result, error, elapsed = _execute_entry(entry)
    if error is not None:
        try:
            pickle.loads(pickle.dumps(error))
        except Exception:  # noqa: BLE001
            error = RuntimeError(f"{type(error).__name__}: {error}")
    return result, error, elapsed


# -- result store ------------------------------------------------------------


class ResultStore:
    """Directory-backed persistence for :class:`SolveResult` batches.

    Layout::

        <root>/manifest.json      one record per fingerprint (scenario,
                                  backend, spec, iterations, timings)
        <root>/<fingerprint>.npz  pressure field + residual history

    Only the JSON-able core survives persistence: reloaded results carry
    ``telemetry = {"time_kind": ..., "from_store": True}``, not live
    fabric traces or counters.

    **Multi-writer safe.**  Several store instances — worker threads of
    one service, or separate gateway *processes* — may share one root.
    Every manifest rewrite happens under an advisory file lock
    (``manifest.lock``) as read-merge-write: the on-disk manifest is
    re-read and this instance's pending changes (tracked as dirty /
    deleted key sets) are overlaid before the atomic replace, so
    concurrent writers never drop each other's records.  Reads go
    through a manifest ``stat`` check that reloads when another writer
    has flushed — gateway B's cache probe sees gateway A's record
    without either restarting.
    """

    MANIFEST = "manifest.json"
    LOCKFILE = "manifest.lock"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest: dict[str, dict[str, Any]] = {}
        #: Keys this instance changed / removed since its last flush —
        #: exactly what read-merge-write overlays onto the disk state.
        self._dirty: set[str] = set()
        self._deleted: set[str] = set()
        self._mutex = threading.RLock()
        self._filelock = FileLock(self.root / self.LOCKFILE)
        self._disk_state: tuple[int, int, int] | None = None
        with self._mutex:
            self._reload_from_disk()

    @property
    def _manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def _stat_state(self) -> tuple[int, int, int] | None:
        """The manifest file's identity: (mtime_ns, inode, size).

        ``os.replace`` swaps in a new inode, so any completed rewrite —
        even one within the same mtime tick — changes this tuple.
        """
        try:
            st = os.stat(self._manifest_path)
        except FileNotFoundError:
            return None
        return (st.st_mtime_ns, st.st_ino, st.st_size)

    def _reload_from_disk(self) -> None:
        """Re-read the manifest, overlaying this instance's pending edits.

        Caller holds ``_mutex``.  The atomic-replace write discipline
        means the read always sees a complete JSON document (old or
        new, never torn).
        """
        state = self._stat_state()
        disk: dict[str, dict[str, Any]] = {}
        if state is not None:
            try:
                disk = json.loads(self._manifest_path.read_text())
            except FileNotFoundError:  # replaced away between stat and read
                state = None
        for key in self._dirty:
            if key in self._manifest:
                disk[key] = self._manifest[key]
        for key in self._deleted:
            disk.pop(key, None)
        self._manifest = disk
        self._disk_state = state

    def _maybe_reload(self) -> None:
        """Pick up other writers' flushes (cheap: one ``stat`` per read)."""
        with self._mutex:
            if self._stat_state() != self._disk_state:
                self._reload_from_disk()

    def __len__(self) -> int:
        self._maybe_reload()
        return len(self._manifest)

    def __contains__(self, fingerprint: str) -> bool:
        return self.has(fingerprint)

    def keys(self) -> list[str]:
        self._maybe_reload()
        return sorted(self._manifest)

    def records(self) -> list[dict[str, Any]]:
        """Manifest records (copies), sorted by fingerprint."""
        with self._mutex:
            self._maybe_reload()
            return [dict(self._manifest[k]) for k in sorted(self._manifest)]

    def has(self, fingerprint: str) -> bool:
        self._maybe_reload()
        return (
            fingerprint in self._manifest
            and (self.root / f"{fingerprint}.npz").exists()
        )

    def contains(self, fingerprint: str) -> bool:
        """Manifest-only cache probe: no NPZ payload is touched.

        The serving tier answers "is this fingerprint cached?" for every
        incoming request; loading (or even ``stat``-ing) the NPZ payload
        on that hot path would make every *miss* pay disk I/O.  This
        answers purely from the in-memory manifest (refreshed by a
        single manifest ``stat`` when another writer flushed) —
        :meth:`load` still verifies the payload exists when a hit is
        actually consumed.
        """
        self._maybe_reload()
        return fingerprint in self._manifest

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The manifest record for a fingerprint (a copy), or ``None``.

        The metadata face of :meth:`contains`: label, backend, spec,
        iterations and timings without loading the NPZ payload — what a
        cache probe or an admission decision needs, at manifest cost.
        """
        with self._mutex:
            self._maybe_reload()
            record = self._manifest.get(fingerprint)
            return None if record is None else dict(record)

    def save(self, entry: PlanEntry, result: SolveResult) -> None:
        """Persist one completed entry (manifest rewritten atomically)."""
        fingerprint = entry.fingerprint
        np.savez_compressed(
            self.root / f"{fingerprint}.npz",
            pressure=result.pressure,
            residual_history=np.asarray(result.residual_history, dtype=np.float64),
        )
        with self._mutex:
            self._manifest[fingerprint] = {
                "fingerprint": fingerprint,
                "label": entry.label,
                "scenario": entry.scenario.name if entry.scenario is not None else None,
                "backend": entry.backend,
                "spec": entry.spec.to_dict(),
                "iterations": int(result.iterations),
                "converged": bool(result.converged),
                "elapsed_seconds": float(result.elapsed_seconds),
                "time_kind": result.telemetry.get("time_kind"),
            }
            self._dirty.add(fingerprint)
            self._deleted.discard(fingerprint)
            self._flush()

    def load(self, fingerprint: str) -> SolveResult:
        """Rehydrate a persisted :class:`SolveResult`."""
        if not self.has(fingerprint):
            raise ConfigurationError(
                f"result store at {self.root} has no entry {fingerprint!r}"
            )
        record = self.get(fingerprint)
        assert record is not None  # has() just confirmed it
        with np.load(self.root / f"{fingerprint}.npz") as arrays:
            pressure = arrays["pressure"]
            history = [float(v) for v in arrays["residual_history"]]
        return SolveResult(
            pressure=pressure,
            iterations=record["iterations"],
            converged=record["converged"],
            residual_history=history,
            elapsed_seconds=record["elapsed_seconds"],
            backend=record["backend"],
            telemetry={"time_kind": record["time_kind"], "from_store": True},
        )

    # -- transient step stacks ------------------------------------------------
    #
    # A simulation persists as an append-only *step stack*: one NPZ per
    # completed step under ``<fingerprint>.steps/`` (written atomically,
    # tmp + rename) plus a manifest record under ``<fingerprint>#steps``
    # tracking ``steps_completed``.  Appending step N touches only step
    # N's file — O(1) per step — and a torn write can at worst lose the
    # step being written, never the stack behind it, so an interrupted
    # run always leaves a valid partial stack for
    # ``repro.simulate(..., store=...)`` to resume from.

    @staticmethod
    def _steps_key(fingerprint: str) -> str:
        return f"{fingerprint}#steps"

    def _steps_dir(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.steps"

    def _step_path(self, fingerprint: str, step: int) -> Path:
        return self._steps_dir(fingerprint) / f"{step:05d}.npz"

    def simulation_steps_completed(self, fingerprint: str) -> int:
        """How many steps of this simulation are already persisted.

        Counts the consecutive on-disk prefix, capped by the manifest
        record — a step file that never finished writing (crash before
        the rename) is simply not there and ends the prefix.
        """
        record = self.get(self._steps_key(fingerprint))
        if not record:
            return 0
        completed = int(record.get("steps_completed", 0))
        for step in range(1, completed + 1):
            if not self._step_path(fingerprint, step).exists():
                return step - 1
        return completed

    def save_simulation_step(
        self,
        fingerprint: str,
        step: StepResult,
        *,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        """Append one completed step to the fingerprint's step stack.

        Steps must arrive in order (``step.step == completed + 1``); the
        manifest record carries ``meta`` (label, backend, spec, n_steps)
        from the first step onward.

        Appending a step that is *already durable* is a silent no-op,
        not an error: steps are content-addressed and deterministic, so
        two producers for one fingerprint (a stream abandoned mid-cut
        racing its resumed successor) write identical bytes, and the
        loser of the race has nothing left to do.  Only a *gap* —
        appending past ``completed + 1`` — is a real bug.
        """
        completed = self.simulation_steps_completed(fingerprint)
        if step.step <= completed:
            return
        if step.step != completed + 1:
            raise ConfigurationError(
                f"simulation store for {fingerprint[:12]} has {completed} "
                f"step(s); cannot append step {step.step}"
            )
        directory = self._steps_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".tmp-{step.step:05d}.npz"
        np.savez_compressed(
            tmp,
            pressure=step.pressure,
            residual_history=np.asarray(step.residual_history, dtype=np.float64),
            iterations=np.int64(step.iterations),
            converged=np.bool_(step.converged),
            time=np.float64(step.time),
            dt=np.float64(step.dt),
            elapsed=np.float64(step.elapsed_seconds),
        )
        os.replace(tmp, self._step_path(fingerprint, step.step))
        key = self._steps_key(fingerprint)
        with self._mutex:
            record = dict(self._manifest.get(key, {}))
            record.update(meta or {})
            record.update(
                kind="simulation",
                fingerprint=fingerprint,
                steps_completed=completed + 1,
                time_kind=step.telemetry.get("time_kind", record.get("time_kind")),
                backend=step.backend or record.get("backend"),
            )
            self._manifest[key] = record
            self._dirty.add(key)
            self._deleted.discard(key)
            self._flush()

    def clear_simulation(self, fingerprint: str) -> None:
        """Drop a fingerprint's step stack (the ``resume=False`` path)."""
        key = self._steps_key(fingerprint)
        with self._mutex:
            self._manifest.pop(key, None)
            self._deleted.add(key)
            self._dirty.discard(key)
            directory = self._steps_dir(fingerprint)
            if directory.exists():
                shutil.rmtree(directory)
            self._flush()

    def load_simulation_steps(self, fingerprint: str) -> list[StepResult]:
        """Rehydrate the persisted step stack (JSON-able core only:
        telemetry is ``{"time_kind": ..., "from_store": True}``)."""
        record = self.get(self._steps_key(fingerprint))
        completed = self.simulation_steps_completed(fingerprint)
        if not record or not completed:
            raise ConfigurationError(
                f"result store at {self.root} has no step stack for "
                f"{fingerprint!r}"
            )
        steps: list[StepResult] = []
        for index in range(1, completed + 1):
            with np.load(self._step_path(fingerprint, index)) as arrays:
                steps.append(
                    StepResult(
                        step=index,
                        time=float(arrays["time"]),
                        dt=float(arrays["dt"]),
                        pressure=arrays["pressure"],
                        iterations=int(arrays["iterations"]),
                        converged=bool(arrays["converged"]),
                        residual_history=[
                            float(v) for v in arrays["residual_history"]
                        ],
                        elapsed_seconds=float(arrays["elapsed"]),
                        backend=record.get("backend") or "",
                        telemetry={
                            "time_kind": record.get("time_kind"),
                            "from_store": True,
                        },
                    )
                )
        return steps

    def _flush(self) -> None:
        """Durably merge this instance's pending edits into the manifest.

        Read-merge-write under the advisory file lock: re-read the disk
        manifest (another writer may have flushed since we last looked),
        overlay our dirty/deleted keys, atomically replace.  A blind
        rewrite here was the classic lost-update bug — two store
        instances interleaving ``put()`` would each persist only their
        own records.
        """
        with self._mutex, self._filelock:
            self._reload_from_disk()
            path = self._manifest_path
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(self._manifest, indent=2, sort_keys=True))
            os.replace(tmp, path)
            self._disk_state = self._stat_state()
            self._dirty.clear()
            self._deleted.clear()


# -- the plan ----------------------------------------------------------------


class ExecutionPlan:
    """An ordered, inspectable batch of solves bound to a session.

    Build one with :meth:`Session.plan`; inspect :attr:`entries` (or
    :meth:`describe`); execute with :meth:`run`.
    """

    def __init__(self, session: "Session", entries: Sequence[PlanEntry]):
        self.session = session
        self.entries: list[PlanEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[PlanEntry]:
        return iter(self.entries)

    def describe(self) -> list[list[Any]]:
        """Table rows (index, label, backend, fingerprint prefix, steps).

        ``steps`` is the time-step count of a transient entry (1 spec =
        1 step *sequence*) or ``"-"`` for steady solves, so transient and
        steady rows stay distinguishable at a glance."""
        return [
            [
                e.index, e.label, e.backend, e.fingerprint[:12],
                "-" if e.n_steps is None else e.n_steps,
            ]
            for e in self.entries
        ]

    def run(
        self,
        *,
        executor: str = "thread",
        n_workers: int | None = None,
        on_result: Callable[[PlanEntryResult], None] | None = None,
        resume: bool = True,
    ) -> list[PlanEntryResult]:
        """Execute every entry; results return in input order.

        Parameters
        ----------
        executor:
            ``"serial"`` (in-process loop), ``"thread"`` (default;
            NumPy releases the GIL in the hot kernels), or ``"process"``
            (true parallelism; entries and results cross a pickle
            boundary, so live telemetry objects must be picklable).
        n_workers:
            Pool width; defaults to ``min(len(pending), cpu_count)``.
        on_result:
            Callback invoked as each entry finishes (completion order),
            including store-satisfied entries.
        resume:
            When the session has a :class:`ResultStore`, skip entries
            whose fingerprint is already stored and rehydrate them
            (``from_store=True``) instead of re-solving.
        """
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose one of "
                f"{', '.join(EXECUTORS)}"
            )
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")

        store = self.session.store
        slots: list[PlanEntryResult | None] = [None] * len(self.entries)
        pending: list[int] = []
        for i, entry in enumerate(self.entries):
            if resume and store is not None and store.has(entry.fingerprint):
                slots[i] = PlanEntryResult(
                    entry=entry, result=store.load(entry.fingerprint),
                    from_store=True,
                )
                if on_result is not None:
                    on_result(slots[i])
            else:
                pending.append(i)

        def _finish(i: int, outcome: tuple) -> None:
            result, error, elapsed = outcome
            slots[i] = PlanEntryResult(
                entry=self.entries[i], result=result, error=error,
                elapsed_seconds=elapsed,
            )
            if store is not None and error is None and result is not None:
                store.save(self.entries[i], result)
            if on_result is not None:
                on_result(slots[i])

        cache = self.session._problem_cache
        if not pending:
            pass
        elif executor == "batched":
            self._run_batched(pending, cache, _finish)
        elif executor == "serial" or (n_workers == 1):
            for i in pending:
                _finish(i, _execute_entry(self.entries[i], cache))
        else:
            workers = n_workers or min(len(pending), os.cpu_count() or 1)
            if executor == "thread":
                pool_cls = concurrent.futures.ThreadPoolExecutor
                submit = lambda e: (_execute_entry, e, cache)  # noqa: E731
            else:
                # Workers rebuild problems themselves: scenarios are plain
                # values and builtin recipes re-register on import.  The
                # parent's memo cache is not shared across processes.
                pool_cls = concurrent.futures.ProcessPoolExecutor
                submit = lambda e: (_execute_entry_in_worker, e)  # noqa: E731
            with pool_cls(max_workers=workers) as pool:
                futures = {
                    pool.submit(*submit(self.entries[i])): i for i in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    _finish(futures[future], future.result())

        return [slot for slot in slots if slot is not None]

    def _run_batched(
        self,
        pending: Sequence[int],
        cache: dict[str, SinglePhaseProblem] | None,
        finish: Callable[[int, tuple], None],
    ) -> None:
        """The ``executor="batched"`` path: fuse compatible entries.

        Entries sharing (backend, spec fingerprint, grid shape) whose
        backend can batch (``solve_batch``) and whose spec doesn't pin
        the event engine are solved as one fused ``(batch, nx, ny, nz)``
        program per group, chunked by ``machine.batch_size``; everything
        else falls back to per-entry serial execution, and per-entry
        error capture still holds (a failing group fails each of its
        entries, nothing else).  Per-entry ``elapsed_seconds`` is the
        group wall clock amortized over its members.
        """
        groups: dict[tuple, list[tuple[int, SinglePhaseProblem]]] = {}
        spec_fps: dict[int, str] = {}  # plans share spec objects; hash once
        for i in pending:
            entry = self.entries[i]
            start = time.perf_counter()
            try:
                backend = get_backend(entry.backend)
                batchable = (
                    hasattr(backend, "solve_batch")
                    and entry.spec.machine.engine != "event"
                )
                if not batchable:
                    finish(i, _execute_entry(entry, cache))
                    continue
                problem = entry.build_problem(cache)
            except Exception as exc:  # noqa: BLE001 - per-entry capture
                finish(i, (None, exc, time.perf_counter() - start))
                continue
            fp = spec_fps.get(id(entry.spec))
            if fp is None:
                fp = spec_fps[id(entry.spec)] = entry.spec.fingerprint()
            key = (entry.backend, fp, problem.grid.shape)
            groups.setdefault(key, []).append((i, problem))

        for (backend_name, _fp, _shape), members in groups.items():
            spec = self.entries[members[0][0]].spec
            start = time.perf_counter()
            try:
                results = get_backend(backend_name).solve_batch(
                    [problem for _, problem in members], spec
                )
            except Exception as exc:  # noqa: BLE001 - per-entry capture
                elapsed = time.perf_counter() - start
                for i, _ in members:
                    finish(i, (None, exc, elapsed / len(members)))
                continue
            elapsed = time.perf_counter() - start
            share = elapsed / len(members)
            for (i, _), result in zip(members, results):
                finish(i, (result, None, share))


class Session:
    """Owns problem-assembly memoization and (optionally) a result store.

    One session per study: plans created from it share the assembly cache
    (N specs over one scenario build the problem once) and the store
    (completed entries are skipped on re-runs).
    """

    def __init__(self, *, store: ResultStore | str | Path | None = None):
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store: ResultStore | None = store
        self._problem_cache: dict[str, SinglePhaseProblem] = {}

    def plan(
        self,
        targets: Iterable[Any],
        spec: SolveSpec | Mapping[str, Any] | None = None,
        *,
        backend: str = "reference",
    ) -> ExecutionPlan:
        """Resolve a batch of targets into an :class:`ExecutionPlan`.

        Each target may be a registered scenario name, a bound
        :class:`Scenario`, a built :class:`SinglePhaseProblem`, or a
        ``(target, spec)`` / ``(target, spec, backend)`` tuple overriding
        the plan-wide spec/backend per entry (heterogeneous batches like
        Table IV's full vs. comm-only pair).
        """
        default_spec = coerce_spec(spec)
        get_backend(backend)  # fail fast on a typo'd plan-wide backend
        entries: list[PlanEntry] = []
        for index, item in enumerate(targets):
            entry_spec, entry_backend = default_spec, backend
            target = item
            if isinstance(item, tuple):
                if not 2 <= len(item) <= 3:
                    raise ConfigurationError(
                        f"plan tuple entries are (target, spec) or "
                        f"(target, spec, backend); got length {len(item)}"
                    )
                target = item[0]
                entry_spec = coerce_spec(item[1])
                if len(item) == 3:
                    entry_backend = item[2]
            get_backend(entry_backend)
            entries.append(
                self._entry(index, target, entry_spec, entry_backend)
            )
        return ExecutionPlan(self, entries)

    def _entry(
        self, index: int, target: Any, spec: SolveSpec, backend: str
    ) -> PlanEntry:
        return plan_entry(target, spec, backend, index=index)


def resolve_target(target: Any) -> tuple[Scenario | None, SinglePhaseProblem | None]:
    """Normalize a plan/simulate target into (scenario, problem)."""
    if isinstance(target, SinglePhaseProblem):
        return None, target
    if isinstance(target, Scenario):
        return target, None
    if isinstance(target, str):
        return _bind_scenario(target), None
    raise ConfigurationError(
        f"cannot plan {target!r}: expected a SinglePhaseProblem, a "
        f"Scenario, or a registered scenario name"
    )


def plan_entry(
    target: Any, spec: SolveSpec, backend: str, *, index: int = 0
) -> PlanEntry:
    """Resolve one (target, spec, backend) into a :class:`PlanEntry`.

    The same resolution and content fingerprint :meth:`Session.plan`
    assigns, usable standalone — the serving tier builds entries this way
    so its cache keys and store records match in-process plans exactly.
    """
    scenario, problem = resolve_target(target)
    target_payload = _target_payload(scenario, problem)
    return PlanEntry(
        index=index,
        spec=spec,
        backend=backend,
        scenario=scenario,
        problem=problem,
        fingerprint=_digest(
            {
                "target": target_payload,
                "spec": spec.to_dict(),
                "backend": backend,
            }
        ),
        scenario_key=_digest({"target": target_payload}),
    )


def entry_fingerprint(target: Any, spec: SolveSpec, backend: str) -> str:
    """The content identity of one (target, spec, backend) entry — the
    same digest :meth:`Session.plan` assigns, usable standalone (e.g. by
    ``repro.simulate``'s store/resume path)."""
    scenario, problem = resolve_target(target)
    return _digest(
        {
            "target": _target_payload(scenario, problem),
            "spec": spec.to_dict(),
            "backend": backend,
        }
    )


def _digest(payload: Mapping[str, Any]) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


__all__ = [
    "EXECUTORS",
    "ExecutionPlan",
    "PlanEntry",
    "PlanEntryResult",
    "ResultStore",
    "Session",
    "entry_fingerprint",
    "plan_entry",
    "resolve_target",
]
