"""Engine-agnostic description of the dataflow CG program.

The paper's program is the same on every PE — a fixed cycle of four
phases (§III-B..III-D):

1. **halo exchange** — obtain the four lateral neighbour columns;
2. **FV apply** — the matrix-free column kernel ``Jx``;
3. **axpy/dot** — the PE-local CG vector updates and partial dot
   products;
4. **all-reduce** — combine the partials into the global scalars that
   gate the next state transition.

:class:`CgProgram` captures that cycle plus every knob that changes what
the phases compute (kernel variant, buffer reuse, preconditioner,
suppressed arithmetic, tolerances), *without* saying how the phases are
executed.  Two engines consume it:

* the event-driven engine (``repro.core.event_engine``) instantiates one
  :class:`~repro.wse.pe.ProcessingElement` per PE and plays the program
  as discrete wavelet events — the cycle-accurate oracle;
* the vectorized engine (``repro.wse.vector_engine``) executes each
  phase over the whole fabric as ``(nx, ny, nz)`` NumPy array sweeps —
  the paper-scale path (Kronbichler & Kormann's observation that a
  matrix-free operator is just structured array sweeps, applied to the
  fabric itself).

Engines return an :class:`EngineReport`, the shared result vocabulary
(solution + machine telemetry) that ``repro.core.solver`` republishes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.fv_kernel import KernelVariant
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.trace import FabricTrace, PerfCounters


class Phase(enum.Enum):
    """The four phases of the per-PE dataflow program."""

    HALO_EXCHANGE = "halo_exchange"
    FV_APPLY = "fv_apply"
    AXPY_DOT = "axpy_dot"
    ALLREDUCE = "allreduce"


#: One CG iteration in phase order (the exchange gates the apply, the
#: all-reduce gates the next iteration — §III-D's state transitions).
CG_PHASES: tuple[Phase, ...] = (
    Phase.HALO_EXCHANGE,
    Phase.FV_APPLY,
    Phase.AXPY_DOT,
    Phase.ALLREDUCE,
)


@dataclass(frozen=True)
class CgProgram:
    """Everything an engine needs to run the distributed CG.

    ``tol_rtr`` is the *resolved* absolute tolerance on the global
    ``r^T r`` (any ``rel_tol`` scaling happens host-side before the
    program is built, as on the real machine).  ``fixed_iterations``
    selects the Table IV methodology (run exactly N steps, convergence
    check disabled); ``comm_only`` additionally suppresses arithmetic.

    ``batch`` is the number of independent problems the program's phases
    sweep per instruction: 1 is the classic single-problem program; a
    larger batch asks the engine to execute every phase over a
    ``(batch, nx, ny, nz)`` stack of problems at once, freezing lanes as
    they converge.  Only the vectorized engine can honour ``batch > 1``
    (the event-driven oracle plays one wavelet at a time and rejects it).

    ``accumulation`` marks the transient program: the FV apply gains one
    fused multiply-add against the per-PE accumulation column
    (``(Jx)_K += a_K x_K``, the backward-Euler diagonal ``φ c_t V / Δt``)
    and the engine stages that column plus a per-step right-hand side.
    The instruction plan, charge model and memory rehearsal all key off
    this flag so both engines stay counter-exact.
    """

    variant: KernelVariant = KernelVariant.PRECOMPUTED
    reuse_buffers: bool = True
    jacobi: bool = False
    comm_only: bool = False
    tol_rtr: float = 2e-10
    max_iters: int = 10_000
    fixed_iterations: int | None = None
    batch: int = 1
    accumulation: bool = False
    #: Which preconditioner the recurrence applies: ``"none"``,
    #: ``"jacobi"`` (PE-local diagonal scaling; kept in sync with the
    #: legacy ``jacobi`` flag both ways), or ``"mg"`` (host-assisted
    #: geometric multigrid V-cycle; per-level work charged analytically
    #: through ``repro.mg.charges`` so every engine stays oracle-pinned).
    preconditioner: str = "none"
    #: Multigrid hierarchy depth cap (``None`` = coarsen until the
    #: lateral grid is trivial) and pre/post smoothing sweeps per level.
    mg_levels: int | None = None
    mg_smoother_iters: int = 2

    def __post_init__(self) -> None:
        if self.preconditioner not in ("none", "jacobi", "mg"):
            raise ConfigurationError(
                f"unknown preconditioner {self.preconditioner!r}; choose "
                f"one of 'none', 'jacobi', 'mg'"
            )
        # Bidirectional sync with the legacy boolean so older call sites
        # (CgProgram(jacobi=True)) and new ones (preconditioner="jacobi")
        # describe the same program.
        if self.jacobi and self.preconditioner == "none":
            object.__setattr__(self, "preconditioner", "jacobi")
        elif self.preconditioner == "jacobi" and not self.jacobi:
            object.__setattr__(self, "jacobi", True)
        elif self.preconditioner == "mg" and self.jacobi:
            raise ConfigurationError(
                "jacobi=True conflicts with preconditioner='mg'"
            )
        if self.fixed_iterations is not None and self.fixed_iterations < 1:
            raise ConfigurationError("fixed_iterations must be >= 1")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.comm_only and self.fixed_iterations is None:
            raise ConfigurationError(
                "comm_only runs never converge; set fixed_iterations "
                "(the paper used the converged run's 225 steps)"
            )
        if self.comm_only and self.preconditioner == "mg":
            raise ConfigurationError(
                "comm_only suppresses the arithmetic the mg V-cycle is "
                "made of; use preconditioner='none' or 'jacobi'"
            )
        if self.max_iters < 1:
            raise ConfigurationError("max_iters must be >= 1")
        if self.mg_levels is not None and not 1 <= self.mg_levels <= 10:
            raise ConfigurationError(
                f"mg_levels must be in [1, 10], got {self.mg_levels}"
            )
        if not 1 <= self.mg_smoother_iters <= 8:
            raise ConfigurationError(
                f"mg_smoother_iters must be in [1, 8], got "
                f"{self.mg_smoother_iters}"
            )

    @property
    def mg(self) -> bool:
        """True when the program preconditions with multigrid."""
        return self.preconditioner == "mg"

    @property
    def uses_z(self) -> bool:
        """True when the recurrence carries a preconditioned residual
        column ``z`` (any preconditioner except ``"none"``)."""
        return self.preconditioner != "none"

    @property
    def check_convergence(self) -> bool:
        return self.fixed_iterations is None

    @property
    def iteration_limit(self) -> int:
        return (
            self.fixed_iterations
            if self.fixed_iterations is not None
            else self.max_iters
        )

    @property
    def phases(self) -> tuple[Phase, ...]:
        return CG_PHASES

    def describe(self) -> list[str]:
        """Phase names in execution order (introspection/docs)."""
        return [phase.value for phase in self.phases]

    def shard_rounds(self) -> tuple["ShardRound", ...]:
        """The program's phases regrouped into coordinator-dispatched
        rounds for domain-sharded execution.

        A sharded engine cannot interleave phases freely: every halo
        exchange needs the previous round's boundary planes published,
        and every reduction is a barrier.  The rounds below are the
        minimal barrier structure of one CG cycle — ``init`` then
        ``publish`` run once, then ``body`` → ``update`` → ``direction``
        repeat; ``stage`` and ``gather`` bracket the solve.
        ``repro.shard`` dispatches worker rounds under exactly these
        names.

        A round never both *reads* the halo mailboxes and *writes* them
        (that is why ``publish`` is split out of ``init``): each mailbox
        plane is single-buffered, so a round that published while its
        neighbours were still filling would race with them — the
        round-barrier structure is the entire synchronization story.
        """
        return (
            ShardRound("stage", (), publishes=True, reduces=False),
            ShardRound(
                "init",
                (Phase.HALO_EXCHANGE, Phase.FV_APPLY, Phase.AXPY_DOT,
                 Phase.ALLREDUCE),
                publishes=False, reduces=True,
            ),
            ShardRound("publish", (), publishes=True, reduces=False),
            ShardRound(
                "body",
                (Phase.HALO_EXCHANGE, Phase.FV_APPLY, Phase.AXPY_DOT,
                 Phase.ALLREDUCE),
                publishes=False, reduces=True,
            ),
            ShardRound(
                "update", (Phase.AXPY_DOT, Phase.ALLREDUCE),
                publishes=False, reduces=True,
            ),
            ShardRound(
                "direction", (Phase.AXPY_DOT,),
                publishes=True, reduces=False,
            ),
            ShardRound("gather", (), publishes=False, reduces=False),
        )


@dataclass(frozen=True)
class ShardRound:
    """One coordinator-dispatched round of the sharded program.

    ``phases`` are the :class:`Phase` members the round executes on every
    shard; ``publishes`` marks rounds that end by publishing boundary
    planes into the halo mailboxes (consumed by the *next* exchange);
    ``reduces`` marks rounds whose per-shard partial dot products the
    coordinator folds into one global scalar.
    """

    name: str
    phases: tuple[Phase, ...]
    publishes: bool = False
    reduces: bool = False


@dataclass
class EngineReport:
    """What any fabric engine produces for one solve.

    The field vocabulary matches the event-driven oracle's native report
    (``WseSolveReport`` republishes it unchanged): solution, CG outcome,
    and the machine-level telemetry the benchmarks consume.  For the
    vectorized engine, ``trace``/``counters``/``memory`` come from the
    analytic model over the same ISA cost tables.
    """

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float]
    trace: FabricTrace
    counters: PerfCounters
    elapsed_seconds: float
    memory: dict[str, float]
    state_visits: list[CGState] = field(default_factory=list)
    engine: str = "event"
    #: Sharded-execution extras (layout, worker mode, inter-shard link
    #: counters) — ``None`` for single-shard engines.  JSON-able.
    shard: dict | None = None
    #: Fused hot-loop extras (kernel backend, tile shape, tiles per
    #: iteration, optional fallback note) — ``None`` for untiled
    #: engines.  JSON-able.
    fused: dict | None = None
    #: Preconditioner telemetry for structured preconditioners (the mg
    #: hierarchy's per-level grids, smoothing sweeps, V-cycle count) —
    #: ``None`` for ``"none"``/``"jacobi"``.  JSON-able.
    preconditioner: dict | None = None


__all__ = ["CG_PHASES", "CgProgram", "EngineReport", "Phase", "ShardRound"]
