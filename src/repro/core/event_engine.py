"""The event-driven fabric engine — the cycle-accurate oracle.

Composes the per-PE machinery (fabric + routers, halo exchange,
all-reduce, FV column kernel, distributed CG state machine) exactly as
the original one-engine solver did, and plays the
:class:`~repro.core.program.CgProgram` as discrete wavelet events.  Every
message, switch advance and DSD instruction is simulated individually,
so traces and counters are byte-stable against the pre-engine code — the
reference the vectorized engine is verified against.
"""

from __future__ import annotations

import numpy as np

from repro.core.allreduce import AllReduce, AllReduceColors
from repro.core.cg_dataflow import DataflowCG
from repro.core.exchange import ExchangeColors, HaloExchange
from repro.core.fv_kernel import FvColumnKernel
from repro.core.host import fabric_memory_report, gather_field, stage_problem
from repro.core.mapping import ProblemMapping
from repro.core.program import CgProgram, EngineReport
from repro.physics.darcy import SinglePhaseProblem
from repro.wse.color import ColorAllocator
from repro.wse.fabric import Fabric
from repro.wse.specs import WseSpecs


class EventEngine:
    """Discrete-event execution of the dataflow CG program.

    Construction stages the problem onto a freshly built fabric (the
    memory arena enforces the 48 KiB budget here, like an oversized CSL
    program failing to load); :meth:`run` plays the program to
    completion and gathers the results.
    """

    name = "event"

    def __init__(
        self,
        problem: SinglePhaseProblem,
        program: CgProgram,
        *,
        spec: WseSpecs,
        dtype=np.float32,
        simd_width: int | None = None,
        initial_pressure: np.ndarray | None = None,
        accumulation: np.ndarray | None = None,
        rhs: np.ndarray | None = None,
    ):
        from repro.perf.memmodel import SCALAR_RESERVE_BYTES
        from repro.util.errors import ConfigurationError

        if program.batch != 1:
            raise ConfigurationError(
                f"the event-driven engine plays one problem at a time; got "
                f"batch={program.batch} (batched execution needs the "
                f"vectorized engine)"
            )
        if program.accumulation != (accumulation is not None):
            raise ConfigurationError(
                "program.accumulation and the staged accumulation array "
                "must be supplied together"
            )
        self.problem = problem
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problem.grid, spec)
        self.fabric = Fabric(
            spec,
            width=problem.grid.nx,
            height=problem.grid.ny,
            dtype=np.dtype(dtype),
            simd_width=simd_width,
            # CG scalars, state-machine bookkeeping and stack live outside
            # the column buffers; reserve them so the capacity model's
            # max_depth is exactly the staging boundary (tested).
            reserved_pe_bytes=SCALAR_RESERVE_BYTES,
        )
        self.colors = ColorAllocator(31)
        self.exchange_colors = ExchangeColors.allocate(self.colors)
        self.allreduce_colors = AllReduceColors.allocate(self.colors)
        self.exchange = HaloExchange(self.fabric, self.exchange_colors, problem.grid.nz)
        self.allreduce = AllReduce(self.fabric, self.allreduce_colors)
        self.kernel = FvColumnKernel()
        self.kernel_configs = stage_problem(
            self.fabric,
            problem,
            self.mapping,
            variant=program.variant,
            reuse_buffers=program.reuse_buffers,
            initial_pressure=initial_pressure,
            jacobi=program.jacobi,
            mg=program.mg,
            accumulation=accumulation,
            rhs=rhs,
        )
        self.mg_hierarchy = None
        self._mg_packet = None
        if program.mg:
            from repro.mg import build_hierarchy, build_mg_packet
            from repro.wse.vector_engine import _ChargeModel

            self.mg_hierarchy = build_hierarchy(
                problem.coefficients,
                problem.dirichlet.mask,
                accumulation=accumulation,
                levels=program.mg_levels,
                smoother_iters=program.mg_smoother_iters,
            )
            # The V-cycle's fabric cost is charged from the same analytic
            # packet the vectorized engine merges (only machine
            # parameters are read, so counters/traffic agree exactly).
            self._mg_packet = build_mg_packet(
                _ChargeModel(
                    width=self.fabric.width,
                    height=self.fabric.height,
                    depth=problem.grid.nz,
                    simd_width=(
                        int(simd_width)
                        if simd_width is not None
                        else spec.simd_width_f32
                    ),
                    spec=spec,
                    suppress=False,
                    kind_counts={},
                    kernel_plans={},
                ),
                self.mg_hierarchy,
            )
        if program.comm_only:
            for pe in self.fabric.iter_pes():
                pe.suppress_fp = True

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        """Run the distributed CG to completion (one shot per engine)."""
        cg = DataflowCG(
            self.fabric,
            self.exchange,
            self.allreduce,
            self.kernel,
            self.kernel_configs,
            self.program,
            track_states_for=track_states_for,
            mg_hierarchy=self.mg_hierarchy,
        )
        cg.launch()
        trace = self.fabric.run()
        pressure = gather_field(self.fabric, self.mapping, "y")
        counters = self.fabric.merged_counters()
        preconditioner = None
        if self.program.mg:
            from repro.mg import merge_mg_packet

            merge_mg_packet(counters, trace, self._mg_packet, cg.mg_applies)
            preconditioner = self.mg_hierarchy.telemetry(cg.mg_applies)
        return EngineReport(
            pressure=pressure,
            iterations=cg.result.iterations,
            converged=cg.result.converged,
            residual_history=cg.result.residual_history,
            trace=trace,
            counters=counters,
            elapsed_seconds=self.fabric.elapsed_seconds(),
            memory=fabric_memory_report(self.fabric),
            state_visits=cg.result.state_visits,
            engine=self.name,
            preconditioner=preconditioner,
        )


__all__ = ["EventEngine"]
