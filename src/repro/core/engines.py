"""Fabric engine registry: how a :class:`CgProgram` gets executed.

Two engines execute the same engine-agnostic program description
(:mod:`repro.core.program`):

* ``"event"`` — the discrete-event oracle (one Python PE per fabric PE,
  one event per wavelet; cycle-accurate, byte-stable traces);
* ``"vectorized"`` — whole-fabric NumPy array sweeps with an analytic
  cycle/counter model (paper-scale fabrics, identical numerics and
  instruction counts).

Selection is declarative via ``MachineSpec(engine=...)``; the solver
resolves the name here.  Engine construction is lazy per name so the
default event path never imports the vectorized module and vice versa.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.program import CgProgram, EngineReport
from repro.physics.darcy import SinglePhaseProblem
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs

#: Engine names MachineSpec.engine accepts (None defers to the default).
ENGINE_NAMES = ("event", "vectorized")

DEFAULT_ENGINE = "event"


class FabricEngine(Protocol):
    """What the solver needs from an engine (structural typing)."""

    name: str

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        ...


def create_engine(
    name: str,
    problem: SinglePhaseProblem,
    program: CgProgram,
    *,
    spec: WseSpecs,
    dtype=np.float32,
    simd_width: int | None = None,
    initial_pressure: np.ndarray | None = None,
    accumulation: np.ndarray | None = None,
    rhs: np.ndarray | None = None,
) -> FabricEngine:
    """Instantiate the engine ``name`` for one solve (staging included)."""
    if name not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown fabric engine {name!r}; choose one of "
            f"{', '.join(ENGINE_NAMES)}"
        )
    kwargs = dict(
        spec=spec,
        dtype=dtype,
        simd_width=simd_width,
        initial_pressure=initial_pressure,
        accumulation=accumulation,
        rhs=rhs,
    )
    if name == "event":
        from repro.core.event_engine import EventEngine

        return EventEngine(problem, program, **kwargs)
    from repro.wse.vector_engine import VectorEngine

    return VectorEngine(problem, program, **kwargs)


#: Engines that can execute a ``batch > 1`` program.  The event oracle
#: plays one wavelet at a time and cannot: asking it to batch is a
#: configuration error, not a silent serialization.
BATCH_CAPABLE_ENGINES = ("vectorized",)


def create_batched_engine(
    name: str,
    problems,
    program: CgProgram,
    *,
    spec: WseSpecs,
    dtype=np.float32,
    simd_width: int | None = None,
    tol_rtrs=None,
    initial_pressure=None,
    accumulation=None,
    rhs=None,
):
    """Instantiate the batched engine for one multi-problem solve.

    ``name`` follows the same vocabulary as :func:`create_engine`; only
    :data:`BATCH_CAPABLE_ENGINES` are accepted."""
    if name not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown fabric engine {name!r}; choose one of "
            f"{', '.join(ENGINE_NAMES)}"
        )
    if name not in BATCH_CAPABLE_ENGINES:
        raise ConfigurationError(
            f"fabric engine {name!r} runs one problem at a time; batched "
            f"execution requires one of "
            f"{', '.join(BATCH_CAPABLE_ENGINES)}"
        )
    from repro.wse.vector_engine import BatchedVectorEngine

    return BatchedVectorEngine(
        problems,
        program,
        spec=spec,
        dtype=dtype,
        simd_width=simd_width,
        tol_rtrs=tol_rtrs,
        initial_pressure=initial_pressure,
        accumulation=accumulation,
        rhs=rhs,
    )


__all__ = [
    "BATCH_CAPABLE_ENGINES",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "FabricEngine",
    "create_batched_engine",
    "create_engine",
]
