"""Fabric engine registry: how a :class:`CgProgram` gets executed.

Three engines execute the same engine-agnostic program description
(:mod:`repro.core.program`):

* ``"event"`` — the discrete-event oracle (one Python PE per fabric PE,
  one event per wavelet; cycle-accurate, byte-stable traces);
* ``"vectorized"`` — whole-fabric NumPy array sweeps with an analytic
  cycle/counter model (paper-scale fabrics, identical numerics and
  instruction counts);
* ``"sharded"`` — the vectorized numerics domain-decomposed across a
  worker pool (threads or shared-memory processes) with real halo
  exchange between shards and cross-shard dot-product reduction;
  counters/traffic/memory stay exactly parity-pinned to the
  single-shard vectorized engine;
* ``"fused"`` — the vectorized numerics executed as one cache-blocked
  pass per CG iteration (FV apply, axpys and dot partials fused per
  lateral tile, optional numba backend); counters/traffic/memory stay
  exactly parity-pinned to the vectorized engine.

Selection is declarative via ``MachineSpec(engine=...)``; the solver
resolves the name here.  Engine construction is lazy per name so the
default event path never imports the vectorized module and vice versa.
"""

from __future__ import annotations

import difflib
from typing import Protocol

import numpy as np

from repro.core.program import CgProgram, EngineReport
from repro.physics.darcy import SinglePhaseProblem
from repro.spec import FABRIC_ENGINES, TILE_ENGINES
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs

#: Engine names MachineSpec.engine accepts (None defers to the default).
#: Aliases :data:`repro.spec.FABRIC_ENGINES` — one source of truth.
ENGINE_NAMES = FABRIC_ENGINES

DEFAULT_ENGINE = "event"

#: Engines that accept a shard layout (``shard_shape``/``shard_workers``).
SHARD_CAPABLE_ENGINES = ("sharded",)

#: Engines that accept a cache-tile shape (``fused_tile``).  The sharded
#: engine qualifies because its workers can run the fused kernel over
#: their halo-extended slabs.  Aliases :data:`repro.spec.TILE_ENGINES`.
TILE_CAPABLE_ENGINES = TILE_ENGINES


def _unknown_engine_error(name: str) -> ConfigurationError:
    close = difflib.get_close_matches(str(name), ENGINE_NAMES, n=1, cutoff=0.5)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return ConfigurationError(
        f"unknown fabric engine {name!r}{hint} "
        f"(valid engines: {', '.join(ENGINE_NAMES)})"
    )


class FabricEngine(Protocol):
    """What the solver needs from an engine (structural typing)."""

    name: str

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        ...


def create_engine(
    name: str,
    problem: SinglePhaseProblem,
    program: CgProgram,
    *,
    spec: WseSpecs,
    dtype=np.float32,
    simd_width: int | None = None,
    initial_pressure: np.ndarray | None = None,
    accumulation: np.ndarray | None = None,
    rhs: np.ndarray | None = None,
    shard_shape=None,
    shard_workers: str | None = None,
    fused_tile=None,
) -> FabricEngine:
    """Instantiate the engine ``name`` for one solve (staging included)."""
    if name not in ENGINE_NAMES:
        raise _unknown_engine_error(name)
    if name not in SHARD_CAPABLE_ENGINES and (
        shard_shape is not None or shard_workers is not None
    ):
        raise ConfigurationError(
            f"fabric engine {name!r} is single-shard; shard_shape/"
            f"shard_workers require one of "
            f"{', '.join(SHARD_CAPABLE_ENGINES)}"
        )
    if name not in TILE_CAPABLE_ENGINES and fused_tile is not None:
        raise ConfigurationError(
            f"fabric engine {name!r} is untiled; fused_tile requires "
            f"one of {', '.join(TILE_CAPABLE_ENGINES)}"
        )
    kwargs = dict(
        spec=spec,
        dtype=dtype,
        simd_width=simd_width,
        initial_pressure=initial_pressure,
        accumulation=accumulation,
        rhs=rhs,
    )
    if name == "event":
        from repro.core.event_engine import EventEngine

        return EventEngine(problem, program, **kwargs)
    if name == "sharded":
        from repro.shard import ShardedVectorEngine

        return ShardedVectorEngine(
            problem,
            program,
            shard_shape=shard_shape if shard_shape is not None else (1, 1),
            shard_workers=shard_workers,  # None -> the adaptive default
            fused_tile=fused_tile,
            **kwargs,
        )
    if name == "fused":
        from repro.fused import FusedVectorEngine

        return FusedVectorEngine(problem, program, fused_tile=fused_tile, **kwargs)
    from repro.wse.vector_engine import VectorEngine

    return VectorEngine(problem, program, **kwargs)


#: Engines that can execute a ``batch > 1`` program.  The event oracle
#: plays one wavelet at a time and cannot; the sharded engine spends its
#: parallelism across the fabric, not across problems.  Asking either to
#: batch is a configuration error, not a silent serialization.
BATCH_CAPABLE_ENGINES = ("vectorized", "fused")


def create_batched_engine(
    name: str,
    problems,
    program: CgProgram,
    *,
    spec: WseSpecs,
    dtype=np.float32,
    simd_width: int | None = None,
    tol_rtrs=None,
    initial_pressure=None,
    accumulation=None,
    rhs=None,
    fused_tile=None,
):
    """Instantiate the batched engine for one multi-problem solve.

    ``name`` follows the same vocabulary as :func:`create_engine`; only
    :data:`BATCH_CAPABLE_ENGINES` are accepted."""
    if name not in ENGINE_NAMES:
        raise _unknown_engine_error(name)
    if name not in BATCH_CAPABLE_ENGINES:
        raise ConfigurationError(
            f"fabric engine {name!r} runs one problem at a time; batched "
            f"execution requires one of "
            f"{', '.join(BATCH_CAPABLE_ENGINES)}"
        )
    if name not in TILE_CAPABLE_ENGINES and fused_tile is not None:
        raise ConfigurationError(
            f"fabric engine {name!r} is untiled; fused_tile requires "
            f"one of {', '.join(TILE_CAPABLE_ENGINES)}"
        )
    kwargs = dict(
        spec=spec,
        dtype=dtype,
        simd_width=simd_width,
        tol_rtrs=tol_rtrs,
        initial_pressure=initial_pressure,
        accumulation=accumulation,
        rhs=rhs,
    )
    if name == "fused":
        from repro.fused import BatchedFusedEngine

        return BatchedFusedEngine(problems, program, fused_tile=fused_tile, **kwargs)
    from repro.wse.vector_engine import BatchedVectorEngine

    return BatchedVectorEngine(problems, program, **kwargs)


__all__ = [
    "BATCH_CAPABLE_ENGINES",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "FabricEngine",
    "SHARD_CAPABLE_ENGINES",
    "TILE_CAPABLE_ENGINES",
    "create_batched_engine",
    "create_engine",
]
