"""The 4-step cardinal halo exchange of Table I (§III-B, Fig. 4).

Every CG iteration each PE must obtain the search-direction columns of its
four lateral neighbours.  The paper's protocol:

* four steps; in each step four *actions* execute concurrently, one per
  parity group (odd/even on X, odd/even on Y);
* two data colors serve the X dimension (C1 for odd senders, C2 for even)
  and two serve Y (C3/C4); eight completion-callback colors (C5–C12)
  notify the caller per action;
* direction reversal (east→west, north→south between steps 1/3 and 2/4)
  is *not* re-programmed: each send is followed by a control wavelet that
  advances the switch position of the sender's and the receiver's routers
  (Fig. 4b / Listing 1), with ring mode restoring position 0 for the next
  iteration;
* a PE progresses to the next step only when the completion callbacks of
  its actions have fired; edge PEs with a missing neighbour complete the
  corresponding action immediately.

Buffers: received columns land in ``halo_W/E/N/S`` (named by the arrival
port, exactly Table I's "into W/E/N/S").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np

from repro.util.errors import ConfigurationError
from repro.wse.color import ColorAllocator
from repro.wse.dsd import Dsd
from repro.wse.fabric import Fabric
from repro.wse.pe import ProcessingElement
from repro.wse.router import Port, RouteEntry

#: Buffer name for the column received on each port.
HALO_BUFFER = {
    Port.WEST: "halo_W",
    Port.EAST: "halo_E",
    Port.NORTH: "halo_N",
    Port.SOUTH: "halo_S",
}

NUM_STEPS = 4


class ActionKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


class Action(NamedTuple):
    """One Table-I action: send to / receive from a port on a color, with
    a completion-callback color."""

    kind: ActionKind
    port: Port
    color: int
    cc: int


@dataclass(frozen=True)
class ExchangeColors:
    """The 12 colors of Table I.

    ``x_odd``/``x_even``/``y_odd``/``y_even`` are the routed data colors
    (C1..C4: named by which parity group *sends* on them); the ``cc_*``
    fields are the local completion-callback colors (C5..C12).
    """

    x_odd: int
    x_even: int
    y_odd: int
    y_even: int
    cc_send_east: int
    cc_recv_west: int
    cc_send_north: int
    cc_recv_south: int
    cc_send_west: int
    cc_recv_east: int
    cc_send_south: int
    cc_recv_north: int

    @classmethod
    def allocate(cls, colors: ColorAllocator) -> "ExchangeColors":
        return cls(
            x_odd=colors.allocate("C1-x-odd-data"),
            x_even=colors.allocate("C2-x-even-data"),
            y_odd=colors.allocate("C3-y-odd-data"),
            y_even=colors.allocate("C4-y-even-data"),
            cc_send_east=colors.allocate("C5-cc-send-east"),
            cc_recv_west=colors.allocate("C6-cc-recv-west"),
            cc_send_north=colors.allocate("C7-cc-send-north"),
            cc_recv_south=colors.allocate("C8-cc-recv-south"),
            cc_send_west=colors.allocate("C9-cc-send-west"),
            cc_recv_east=colors.allocate("C10-cc-recv-east"),
            cc_send_south=colors.allocate("C11-cc-send-south"),
            cc_recv_north=colors.allocate("C12-cc-recv-north"),
        )


class HaloExchange:
    """Reusable exchange engine over a fabric.

    Construction programs every router (switch positions + ring mode) and
    allocates the four halo receive buffers on every PE.  :meth:`start`
    runs one full 4-step round, delivering all four neighbour columns,
    then invokes ``on_pe_complete(pe)`` once per PE (inside that PE's
    task, so the FV kernel can run as a continuation — the event-driven
    "flux computation occurs immediately" behaviour of §III-B).
    """

    def __init__(self, fabric: Fabric, colors: ExchangeColors, depth: int):
        if depth < 1:
            raise ConfigurationError("exchange depth must be >= 1")
        self.fabric = fabric
        self.colors = colors
        self.depth = int(depth)
        self._state: dict[tuple[int, int], dict] = {}
        self._rounds = 0
        self._program_routers()
        self._allocate_buffers()
        self._register_callbacks()

    # -- static schedule -------------------------------------------------------

    def actions_for(self, pe_x: int, pe_y: int, step: int) -> list[Action]:
        """The (up to two) Table-I actions of PE ``(x, y)`` in ``step``.

        Null actions (missing neighbour) are included — the runtime
        completes them immediately — so the returned list always has one X
        action and one Y action.
        """
        if not 1 <= step <= NUM_STEPS:
            raise ConfigurationError(f"step must be 1..4, got {step}")
        c = self.colors
        x_odd = pe_x % 2 == 1
        y_odd = pe_y % 2 == 1
        x_table = {
            # step: (odd action, even action)
            1: (
                Action(ActionKind.SEND, Port.EAST, c.x_odd, c.cc_send_east),
                Action(ActionKind.RECV, Port.WEST, c.x_odd, c.cc_recv_west),
            ),
            2: (
                Action(ActionKind.RECV, Port.WEST, c.x_even, c.cc_recv_west),
                Action(ActionKind.SEND, Port.EAST, c.x_even, c.cc_send_east),
            ),
            3: (
                Action(ActionKind.SEND, Port.WEST, c.x_odd, c.cc_send_west),
                Action(ActionKind.RECV, Port.EAST, c.x_odd, c.cc_recv_east),
            ),
            4: (
                Action(ActionKind.RECV, Port.EAST, c.x_even, c.cc_recv_east),
                Action(ActionKind.SEND, Port.WEST, c.x_even, c.cc_send_west),
            ),
        }
        y_table = {
            1: (
                Action(ActionKind.SEND, Port.NORTH, c.y_odd, c.cc_send_north),
                Action(ActionKind.RECV, Port.SOUTH, c.y_odd, c.cc_recv_south),
            ),
            2: (
                Action(ActionKind.RECV, Port.SOUTH, c.y_even, c.cc_recv_south),
                Action(ActionKind.SEND, Port.NORTH, c.y_even, c.cc_send_north),
            ),
            3: (
                Action(ActionKind.SEND, Port.SOUTH, c.y_odd, c.cc_send_south),
                Action(ActionKind.RECV, Port.NORTH, c.y_odd, c.cc_recv_north),
            ),
            4: (
                Action(ActionKind.RECV, Port.NORTH, c.y_even, c.cc_recv_north),
                Action(ActionKind.SEND, Port.SOUTH, c.y_even, c.cc_send_south),
            ),
        }
        x_action = x_table[step][0 if x_odd else 1]
        y_action = y_table[step][0 if y_odd else 1]
        return [x_action, y_action]

    def _is_live(self, pe_x: int, pe_y: int, action: Action) -> bool:
        """Whether the action actually moves data (neighbour exists)."""
        return self.fabric.neighbor_coords(pe_x, pe_y, action.port) is not None

    # -- router programming ------------------------------------------------------

    def _program_routers(self) -> None:
        """Derive each PE's per-color switch-position list from its live
        actions, in chronological step order (see module docstring)."""
        for pe in self.fabric.iter_pes():
            entries: dict[int, list[RouteEntry]] = {}
            for step in range(1, NUM_STEPS + 1):
                for action in self.actions_for(pe.x, pe.y, step):
                    if not self._is_live(pe.x, pe.y, action):
                        continue
                    if action.kind is ActionKind.SEND:
                        entry = RouteEntry.of(Port.RAMP, action.port)
                    else:
                        entry = RouteEntry.of(action.port, Port.RAMP)
                    entries.setdefault(action.color, []).append(entry)
            router = self.fabric.router(pe.x, pe.y)
            for color, positions in entries.items():
                router.set_route(color, positions, ring_mode=True)

    def _allocate_buffers(self) -> None:
        for pe in self.fabric.iter_pes():
            for name in HALO_BUFFER.values():
                if name not in pe.memory:
                    pe.memory.alloc(name, self.depth, dtype=self.fabric.dtype)

    def _register_callbacks(self) -> None:
        c = self.colors
        cc_colors = [
            c.cc_send_east, c.cc_recv_west, c.cc_send_north, c.cc_recv_south,
            c.cc_send_west, c.cc_recv_east, c.cc_send_south, c.cc_recv_north,
        ]
        for pe in self.fabric.iter_pes():
            for cc in cc_colors:
                pe.on_activate(cc, self._make_cc_handler(pe))

    def _make_cc_handler(self, pe: ProcessingElement) -> Callable[[], None]:
        def _on_cc() -> None:
            state = self._state[(pe.x, pe.y)]
            state["pending"] -= 1
            if state["pending"] < 0:  # pragma: no cover - protocol bug guard
                raise ConfigurationError(
                    f"PE ({pe.x},{pe.y}): spurious completion callback"
                )
            if state["pending"] == 0:
                if state["step"] < NUM_STEPS:
                    state["step"] += 1
                    self._begin_step(pe, state["step"])
                else:
                    state["step"] = NUM_STEPS + 1
                    state["rounds"] = state.get("rounds", 0) + 1
                    on_complete = state.get("on_complete")
                    if on_complete is not None:
                        on_complete(pe)

        return _on_cc

    # -- execution ---------------------------------------------------------------

    def begin_pe(
        self,
        pe: ProcessingElement,
        send_buffer: str,
        on_complete: Callable[[ProcessingElement], None] | None = None,
    ) -> None:
        """Enter one PE into a new exchange round (inside or outside a
        task).  PEs may enter at different times: data from a faster
        neighbour queues in the ramp FIFO and control wavelets advance
        switch positions at the router level regardless of PE progress,
        so up-to-one-step skew is safe (tested).
        """
        prev = self._state.get((pe.x, pe.y))
        rounds = prev.get("rounds", 0) if prev else 0
        self._state[(pe.x, pe.y)] = {
            "step": 1,
            "pending": 0,
            "rounds": rounds,
            "send_buffer": send_buffer,
            "on_complete": on_complete,
        }
        if pe.in_task:
            self._begin_step(pe, 1)
        else:
            self.fabric.schedule_task(
                pe,
                self.fabric.now,
                lambda: self._begin_step(pe, 1),
                tag="exchange-step1",
            )

    def start(
        self,
        send_buffer: str,
        on_pe_complete: Callable[[ProcessingElement], None] | None = None,
    ) -> None:
        """Begin one exchange round on every PE simultaneously.

        Convenience for tests and standalone use; the dataflow CG enters
        PEs individually via :meth:`begin_pe`.
        """
        self._rounds += 1
        for pe in self.fabric.iter_pes():
            self.begin_pe(pe, send_buffer, on_pe_complete)

    @property
    def rounds_completed(self) -> int:
        return self._rounds

    def _begin_step(self, pe: ProcessingElement, step: int) -> None:
        """Run both of the PE's actions for ``step`` (inside a PE task)."""
        state = self._state[(pe.x, pe.y)]
        actions = self.actions_for(pe.x, pe.y, step)
        state["pending"] = len(actions)
        for action in actions:
            live = self._is_live(pe.x, pe.y, action)
            if action.kind is ActionKind.SEND:
                if live:
                    send_dsd = Dsd(pe.memory.get(state["send_buffer"]))
                    pe.send(action.color, send_dsd, tag=f"halo-{action.port.name}")
                    # Advance our own and the receiver's switch for the
                    # reversed direction of step 3/4 (Fig. 4b).
                    pe.send_control(action.color, tag="halo-switch")
                pe.activate(action.cc)
            else:
                dest = Dsd(pe.memory.get(HALO_BUFFER[action.port]))
                expected = self.depth if live else 0
                if not live:
                    # Nothing will arrive: the halo stays zero (and the
                    # boundary coefficient is zero anyway).  Fire the CC.
                    pe.activate(action.cc)
                    continue
                pe.recv_into(
                    action.color,
                    dest,
                    expected,
                    completion_color=action.cc,
                )
