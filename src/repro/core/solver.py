"""Public dataflow solver: :class:`WseMatrixFreeSolver`.

Composes mapping + staging + exchange + all-reduce + kernel + distributed
CG into a one-call solve, and reports both the solution and the machine-
level telemetry (instruction counts, traffic, cycle makespan) the
benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allreduce import AllReduce, AllReduceColors
from repro.core.cg_dataflow import DataflowCG
from repro.core.exchange import ExchangeColors, HaloExchange
from repro.core.fv_kernel import FvColumnKernel, KernelVariant
from repro.core.host import fabric_memory_report, gather_field, stage_problem
from repro.core.mapping import ProblemMapping
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.color import ColorAllocator
from repro.wse.fabric import Fabric
from repro.wse.specs import WSE2, WseSpecs
from repro.wse.trace import FabricTrace, PerfCounters


@dataclass
class WseSolveReport:
    """Everything a dataflow solve produces.

    Attributes
    ----------
    pressure:
        The solution field, gathered from the ``y`` buffers.
    iterations, converged, residual_history:
        CG outcome (global ``r^T r`` totals as every PE saw them).
    trace:
        Fabric-level trace (makespan, message/wavelet counts).
    counters:
        Fabric-aggregated instruction/traffic counters.
    elapsed_seconds:
        Simulated device time (makespan cycles / clock) — the simulator-
        scale analogue of the paper's kernel time.
    memory:
        PE memory statistics (high-water marks vs. the 48 KiB budget).
    state_visits:
        State sequence of the tracked PE (validates the 14-state graph).
    """

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float]
    trace: FabricTrace
    counters: PerfCounters
    elapsed_seconds: float
    memory: dict[str, float]
    state_visits: list[CGState] = field(default_factory=list)


class WseMatrixFreeSolver:
    """Matrix-free FV pressure solver on the simulated dataflow machine.

    Use :meth:`for_problem` to build one from a
    :class:`~repro.physics.darcy.SinglePhaseProblem`; then :meth:`solve`.

    Parameters mirror the paper's design knobs:

    * ``variant`` — precomputed ``c = Υλ`` vs. in-kernel mobility fusion;
    * ``reuse_buffers`` — §III-E.1 memory-saving on/off;
    * ``simd_width`` — §III-E.3 vectorization (2 = DSD SIMD, 1 = scalar);
    * ``comm_only`` — §V-C's Table IV methodology (suppress FP, fixed
      iteration count);
    * ``dtype`` — fp32 (paper) or fp64 (tight numerical cross-checks).
    """

    def __init__(
        self,
        problem: SinglePhaseProblem,
        *,
        spec: WseSpecs = WSE2,
        dtype=np.float32,
        simd_width: int | None = None,
        variant: KernelVariant | str = KernelVariant.PRECOMPUTED,
        reuse_buffers: bool = True,
        tol_rtr: float = 2e-10,
        rel_tol: float | None = None,
        max_iters: int = 10_000,
        comm_only: bool = False,
        fixed_iterations: int | None = None,
        initial_pressure: np.ndarray | None = None,
        jacobi: bool = False,
    ):
        if isinstance(variant, str):
            variant = KernelVariant(variant)
        if comm_only and fixed_iterations is None:
            raise ConfigurationError(
                "comm_only runs never converge; set fixed_iterations "
                "(the paper used the converged run's 225 steps)"
            )
        self.problem = problem
        self.mapping = ProblemMapping(problem.grid, spec)
        self.spec = spec
        self.dtype = np.dtype(dtype)
        self.variant = variant
        self.reuse_buffers = reuse_buffers
        self.tol_rtr = float(tol_rtr)
        self.rel_tol = rel_tol
        self.max_iters = int(max_iters)
        self.comm_only = comm_only
        self.fixed_iterations = fixed_iterations
        self.initial_pressure = initial_pressure
        self.simd_width = simd_width
        self.jacobi = bool(jacobi)

        from repro.perf.memmodel import SCALAR_RESERVE_BYTES

        self.fabric = Fabric(
            spec,
            width=problem.grid.nx,
            height=problem.grid.ny,
            dtype=self.dtype,
            simd_width=simd_width,
            # CG scalars, state-machine bookkeeping and stack live outside
            # the column buffers; reserve them so the capacity model's
            # max_depth is exactly the staging boundary (tested).
            reserved_pe_bytes=SCALAR_RESERVE_BYTES,
        )
        self.colors = ColorAllocator(31)
        self.exchange_colors = ExchangeColors.allocate(self.colors)
        self.allreduce_colors = AllReduceColors.allocate(self.colors)
        self.exchange = HaloExchange(self.fabric, self.exchange_colors, problem.grid.nz)
        self.allreduce = AllReduce(self.fabric, self.allreduce_colors)
        self.kernel = FvColumnKernel()
        self._kernel_configs = stage_problem(
            self.fabric,
            problem,
            self.mapping,
            variant=variant,
            reuse_buffers=reuse_buffers,
            initial_pressure=initial_pressure,
            jacobi=jacobi,
        )
        if comm_only:
            for pe in self.fabric.iter_pes():
                pe.suppress_fp = True

    @classmethod
    def for_problem(cls, problem: SinglePhaseProblem, **kwargs) -> "WseMatrixFreeSolver":
        """Build a solver sized exactly to the problem's lateral grid."""
        return cls(problem, **kwargs)

    def solve(self) -> WseSolveReport:
        """Run the dataflow CG to completion and gather the results."""
        tol = self.tol_rtr
        if self.rel_tol is not None:
            # Scale the absolute ε from the initial residual (host-side
            # estimate; the device still applies a single absolute ε, as
            # the paper does).
            p0 = (
                self.problem.initial_pressure(dtype=np.float64)
                if self.initial_pressure is None
                else np.asarray(self.initial_pressure, dtype=np.float64)
            )
            r0 = self.problem.residual(p0)
            if self.jacobi:
                # The device checks ε against r^T z = r^T M^{-1} r.
                diag = self.problem.coefficients.diagonal.astype(np.float64).copy()
                diag[self.problem.dirichlet.mask] = 1.0
                scale = float(np.vdot(r0, r0 / diag).real)
            else:
                scale = float(np.vdot(r0, r0).real)
            tol = max(tol, self.rel_tol**2 * scale)

        cg = DataflowCG(
            self.fabric,
            self.exchange,
            self.allreduce,
            self.kernel,
            self._kernel_configs,
            tol_rtr=tol,
            max_iters=self.max_iters,
            fixed_iterations=self.fixed_iterations,
            jacobi=self.jacobi,
        )
        cg.launch()
        trace = self.fabric.run()
        pressure = gather_field(self.fabric, self.mapping, "y")
        return WseSolveReport(
            pressure=pressure,
            iterations=cg.result.iterations,
            converged=cg.result.converged,
            residual_history=cg.result.residual_history,
            trace=trace,
            counters=self.fabric.merged_counters(),
            elapsed_seconds=self.fabric.elapsed_seconds(),
            memory=fabric_memory_report(self.fabric),
            state_visits=cg.result.state_visits,
        )
