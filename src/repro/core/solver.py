"""Public dataflow solver: :class:`WseMatrixFreeSolver`.

Builds the engine-agnostic :class:`~repro.core.program.CgProgram` from
the paper's design knobs, hands it to a pluggable fabric engine
(``engine="event"`` — the cycle-accurate discrete-event oracle — or
``engine="vectorized"`` — whole-fabric NumPy sweeps for paper-scale
fabrics), and reports both the solution and the machine-level telemetry
(instruction counts, traffic, cycle makespan) the benchmarks consume.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.engines import DEFAULT_ENGINE, create_batched_engine, create_engine
from repro.core.fv_kernel import KernelVariant
from repro.core.program import CgProgram, EngineReport
from repro.physics.darcy import SinglePhaseProblem
from repro.util.errors import ConfigurationError
from repro.wse.specs import WSE2, WseSpecs


def resolve_preconditioner(
    preconditioner: str | None, jacobi: bool
) -> str:
    """Collapse the legacy ``jacobi`` flag and the ``preconditioner``
    name into one canonical name (``"none"``/``"jacobi"``/``"mg"``)."""
    if preconditioner is None:
        return "jacobi" if jacobi else "none"
    if preconditioner == "jacobi" or not jacobi:
        return preconditioner
    raise ConfigurationError(
        f"jacobi=True conflicts with preconditioner={preconditioner!r}"
    )


def resolve_tolerance(
    problem: SinglePhaseProblem,
    *,
    tol_rtr: float = 2e-10,
    rel_tol: float | None = None,
    jacobi: bool = False,
    preconditioner: str | None = None,
    mg_levels: int | None = None,
    mg_smoother_iters: int | None = None,
    initial_pressure: np.ndarray | None = None,
    accumulation: np.ndarray | None = None,
    rhs: np.ndarray | None = None,
) -> float:
    """The absolute ε on the global ``r^T r`` the device applies.

    ``rel_tol`` is scaled from the initial residual host-side (the
    device still applies a single absolute ε, as the paper does).  For
    transient steps, pass the step's ``accumulation`` diagonal and
    ``rhs`` so the scale comes from the residual of the actual system
    ``(J + A) p = rhs`` the device is about to solve.

    Preconditioned programs check ε against ``r^T z = r^T M^{-1} r``,
    so the scale is the *preconditioned* initial residual norm (the
    inverse diagonal for Jacobi, one V-cycle for mg).
    """
    tol = float(tol_rtr)
    if rel_tol is None:
        return tol
    precond = resolve_preconditioner(preconditioner, jacobi)
    p0 = (
        problem.initial_pressure(dtype=np.float64)
        if initial_pressure is None
        else np.asarray(initial_pressure, dtype=np.float64)
    )
    if accumulation is None:
        r0 = problem.residual(p0)
    else:
        from repro.fv.operator import apply_jx

        if rhs is None:
            raise ConfigurationError(
                "transient tolerance resolution needs the step rhs"
            )
        jx = apply_jx(problem.coefficients, problem.dirichlet, p0)
        r0 = np.asarray(rhs, dtype=np.float64) - (
            jx + accumulation.astype(np.float64) * p0
        )
    if precond == "jacobi":
        # The device checks ε against r^T z = r^T M^{-1} r.
        diag = problem.coefficients.diagonal.astype(np.float64).copy()
        if accumulation is not None:
            diag += accumulation.astype(np.float64)
        diag[problem.dirichlet.mask] = 1.0
        scale = float(np.vdot(r0, r0 / diag).real)
    elif precond == "mg":
        from repro.mg import hierarchy_for_problem, mg_apply

        hier = hierarchy_for_problem(
            problem,
            accumulation=accumulation,
            levels=mg_levels,
            smoother_iters=mg_smoother_iters,
        )
        scale = float(np.vdot(r0, mg_apply(hier, r0)).real)
    else:
        scale = float(np.vdot(r0, r0).real)
    return max(tol, rel_tol**2 * scale)

#: Everything a dataflow solve produces: the solution field gathered from
#: the ``y`` buffers, the CG outcome (global ``r^T r`` totals as every PE
#: saw them), the fabric trace/counters, the simulated device time, the
#: per-PE memory statistics, the tracked PE's state sequence, and the
#: engine that produced it.  Shared verbatim with the engines.
WseSolveReport = EngineReport


class WseMatrixFreeSolver:
    """Matrix-free FV pressure solver on the simulated dataflow machine.

    Use :meth:`for_problem` to build one from a
    :class:`~repro.physics.darcy.SinglePhaseProblem`; then :meth:`solve`.

    Parameters mirror the paper's design knobs:

    * ``variant`` — precomputed ``c = Υλ`` vs. in-kernel mobility fusion;
    * ``reuse_buffers`` — §III-E.1 memory-saving on/off;
    * ``simd_width`` — §III-E.3 vectorization (2 = DSD SIMD, 1 = scalar);
    * ``comm_only`` — §V-C's Table IV methodology (suppress FP, fixed
      iteration count);
    * ``dtype`` — fp32 (paper) or fp64 (tight numerical cross-checks);
    * ``engine`` — ``"event"`` (default: per-PE discrete-event oracle),
      ``"vectorized"`` (whole-fabric array execution with an analytic
      cycle/counter model; same numerics and instruction counts, fabrics
      the event engine cannot reach), or ``"sharded"`` (the vectorized
      numerics domain-decomposed over a worker pool; accepts
      ``shard_shape`` and ``shard_workers``), or ``"fused"`` (the
      vectorized numerics as cache-blocked single-pass CG sweeps;
      accepts ``fused_tile``, also honoured by ``"sharded"`` workers).
    """

    def __init__(
        self,
        problem: SinglePhaseProblem,
        *,
        spec: WseSpecs = WSE2,
        dtype=np.float32,
        simd_width: int | None = None,
        variant: KernelVariant | str = KernelVariant.PRECOMPUTED,
        reuse_buffers: bool = True,
        tol_rtr: float = 2e-10,
        rel_tol: float | None = None,
        max_iters: int = 10_000,
        comm_only: bool = False,
        fixed_iterations: int | None = None,
        initial_pressure: np.ndarray | None = None,
        jacobi: bool = False,
        preconditioner: str | None = None,
        mg_levels: int | None = None,
        mg_smoother_iters: int | None = None,
        engine: str = DEFAULT_ENGINE,
        accumulation: np.ndarray | None = None,
        rhs: np.ndarray | None = None,
        shard_shape=None,
        shard_workers: str | None = None,
        fused_tile=None,
    ):
        if isinstance(variant, str):
            variant = KernelVariant(variant)
        self.problem = problem
        self.spec = spec
        self.dtype = np.dtype(dtype)
        self.variant = variant
        self.reuse_buffers = reuse_buffers
        self.tol_rtr = float(tol_rtr)
        self.rel_tol = rel_tol
        self.max_iters = int(max_iters)
        self.comm_only = comm_only
        self.fixed_iterations = fixed_iterations
        self.initial_pressure = initial_pressure
        self.simd_width = simd_width
        self.preconditioner = resolve_preconditioner(preconditioner, jacobi)
        self.jacobi = self.preconditioner == "jacobi"
        self.mg_levels = mg_levels
        self.mg_smoother_iters = mg_smoother_iters
        self.engine_name = engine
        self.accumulation = accumulation
        self.rhs = rhs
        self.shard_shape = shard_shape
        self.shard_workers = shard_workers
        self.fused_tile = fused_tile

        self.program = CgProgram(
            variant=variant,
            reuse_buffers=reuse_buffers,
            jacobi=self.jacobi,
            preconditioner=self.preconditioner,
            mg_levels=mg_levels,
            mg_smoother_iters=(
                2 if mg_smoother_iters is None else int(mg_smoother_iters)
            ),
            comm_only=comm_only,
            tol_rtr=self._resolved_tolerance(),
            max_iters=self.max_iters,
            fixed_iterations=fixed_iterations,
            accumulation=accumulation is not None,
        )
        # Engine construction stages the problem (and enforces the 48 KiB
        # per-PE budget), exactly as loading an oversized CSL program
        # would fail before the run.
        self.engine = create_engine(
            engine,
            problem,
            self.program,
            spec=spec,
            dtype=self.dtype,
            simd_width=simd_width,
            initial_pressure=initial_pressure,
            accumulation=accumulation,
            rhs=rhs,
            shard_shape=shard_shape,
            shard_workers=shard_workers,
            fused_tile=fused_tile,
        )
        self.mapping = self.engine.mapping
        # Event-engine internals stay reachable for fabric inspection and
        # the protocol-level tests (the vectorized engine has no per-PE
        # machinery to expose).
        self.fabric = getattr(self.engine, "fabric", None)
        self.exchange = getattr(self.engine, "exchange", None)
        self.allreduce = getattr(self.engine, "allreduce", None)
        self.kernel = getattr(self.engine, "kernel", None)
        self._kernel_configs = getattr(self.engine, "kernel_configs", None)

    @classmethod
    def for_problem(cls, problem: SinglePhaseProblem, **kwargs) -> "WseMatrixFreeSolver":
        """Build a solver sized exactly to the problem's lateral grid."""
        return cls(problem, **kwargs)

    def _resolved_tolerance(self) -> float:
        """See :func:`resolve_tolerance` (shared with the batched path)."""
        return resolve_tolerance(
            self.problem,
            tol_rtr=self.tol_rtr,
            rel_tol=self.rel_tol,
            preconditioner=self.preconditioner,
            mg_levels=self.mg_levels,
            mg_smoother_iters=self.mg_smoother_iters,
            initial_pressure=self.initial_pressure,
            accumulation=self.accumulation,
            rhs=self.rhs,
        )

    def solve(self) -> WseSolveReport:
        """Run the dataflow CG to completion and gather the results."""
        return self.engine.run()


def solve_batch(
    problems: Sequence[SinglePhaseProblem],
    *,
    spec: WseSpecs = WSE2,
    dtype=np.float32,
    simd_width: int | None = None,
    variant: KernelVariant | str = KernelVariant.PRECOMPUTED,
    reuse_buffers: bool = True,
    tol_rtr: float = 2e-10,
    rel_tol: float | None = None,
    max_iters: int = 10_000,
    comm_only: bool = False,
    fixed_iterations: int | None = None,
    initial_pressure=None,
    jacobi: bool = False,
    preconditioner: str | None = None,
    mg_levels: int | None = None,
    mg_smoother_iters: int | None = None,
    engine: str = "vectorized",
    batch_size: int | None = None,
    accumulation=None,
    rhs=None,
    fused_tile=None,
) -> list[WseSolveReport]:
    """Solve many independent problems as fused ``(batch, nx, ny, nz)``
    sweeps on the vectorized engine.

    All problems must share one grid shape (heterogeneity fields and
    boundary conditions are free per problem).  ``rel_tol`` is resolved
    per problem, exactly as :class:`WseMatrixFreeSolver` would resolve
    it for a serial solve of that problem.  ``batch_size`` caps the
    lanes per fused program (``None`` fuses everything); reports come
    back in input order, one per problem, and each is identical —
    iterates to fp round-off, counters exactly — to the report a serial
    vectorized solve of that problem alone would produce.
    """
    from repro.wse.vector_engine import normalize_guesses

    problems = list(problems)
    if not problems:
        return []
    if isinstance(variant, str):
        variant = KernelVariant(variant)
    if batch_size is not None and batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    precond = resolve_preconditioner(preconditioner, jacobi)
    guesses = normalize_guesses(
        initial_pressure, len(problems), problems[0].grid.shape
    )
    accs = normalize_guesses(accumulation, len(problems), problems[0].grid.shape)
    rhss = normalize_guesses(rhs, len(problems), problems[0].grid.shape)
    size = batch_size if batch_size is not None else len(problems)
    reports: list[WseSolveReport] = []
    for start in range(0, len(problems), size):
        chunk = problems[start : start + size]
        chunk_guesses = guesses[start : start + size]
        chunk_accs = accs[start : start + size]
        chunk_rhss = rhss[start : start + size]
        tols = [
            resolve_tolerance(
                problem,
                tol_rtr=tol_rtr,
                rel_tol=rel_tol,
                preconditioner=precond,
                mg_levels=mg_levels,
                mg_smoother_iters=mg_smoother_iters,
                initial_pressure=guess,
                accumulation=acc,
                rhs=lane_rhs,
            )
            for problem, guess, acc, lane_rhs in zip(
                chunk, chunk_guesses, chunk_accs, chunk_rhss
            )
        ]
        program = CgProgram(
            variant=variant,
            reuse_buffers=reuse_buffers,
            jacobi=precond == "jacobi",
            preconditioner=precond,
            mg_levels=mg_levels,
            mg_smoother_iters=(
                2 if mg_smoother_iters is None else int(mg_smoother_iters)
            ),
            comm_only=comm_only,
            tol_rtr=float(tol_rtr),
            max_iters=int(max_iters),
            fixed_iterations=fixed_iterations,
            batch=len(chunk),
            accumulation=accumulation is not None,
        )
        batched = create_batched_engine(
            engine,
            chunk,
            program,
            spec=spec,
            dtype=np.dtype(dtype),
            simd_width=simd_width,
            tol_rtrs=tols,
            initial_pressure=chunk_guesses if any(
                g is not None for g in chunk_guesses
            ) else None,
            accumulation=chunk_accs if any(
                a is not None for a in chunk_accs
            ) else None,
            rhs=chunk_rhss if any(r is not None for r in chunk_rhss) else None,
            fused_tile=fused_tile,
        )
        reports.extend(batched.run())
    return reports


# -- transient time stepping --------------------------------------------------


def simulate_reports(
    problem: SinglePhaseProblem,
    *,
    dts: Sequence[float],
    porosity: float = 0.2,
    total_compressibility: float = 1e-4,
    initial_condition="problem",
    warm_start: bool = True,
    start_step: int = 0,
    state: np.ndarray | None = None,
    spec: WseSpecs = WSE2,
    dtype=np.float32,
    simd_width: int | None = None,
    variant: KernelVariant | str = KernelVariant.PRECOMPUTED,
    reuse_buffers: bool = True,
    tol_rtr: float = 2e-10,
    rel_tol: float | None = None,
    max_iters: int = 10_000,
    fixed_iterations: int | None = None,
    jacobi: bool = False,
    preconditioner: str | None = None,
    mg_levels: int | None = None,
    mg_smoother_iters: int | None = None,
    engine: str = DEFAULT_ENGINE,
    shard_shape=None,
    shard_workers: str | None = None,
    fused_tile=None,
):
    """Backward-Euler time stepping on the fabric: one engine solve per
    step, yielded as :class:`EngineReport`\\ s.

    Every step solves ``(J + A) p^{n+1} = A p^n + b_D`` with ``A = diag(φ
    c_t V / Δt)`` staged into the engine's transient kernel — the same
    program on either engine, so per-step counters and traffic stay
    parity-exact between ``"event"`` and ``"vectorized"`` (fuzz-pinned).
    ``warm_start`` starts each step's CG from the previous step's
    pressure; otherwise every step restarts from the initial condition
    (step 1 is identical either way).  ``start_step``/``state`` resume an
    interrupted schedule: skip the first ``start_step`` entries of
    ``dts`` and carry ``state`` as the last completed step's pressure.
    """
    from repro.physics.transient import TransientStepper

    if isinstance(variant, str):
        variant = KernelVariant(variant)
    precond = resolve_preconditioner(preconditioner, jacobi)
    np_dtype = np.dtype(dtype)
    stepper = TransientStepper(
        problem,
        dts=dts,
        porosity=porosity,
        total_compressibility=total_compressibility,
        initial_condition=initial_condition,
        warm_start=warm_start,
        start_step=start_step,
        state=state,
        state_dtype=np_dtype,
    )
    for index in stepper.pending():
        acc, rhs, x0 = stepper.begin(index)
        tol = resolve_tolerance(
            problem,
            tol_rtr=tol_rtr,
            rel_tol=rel_tol,
            preconditioner=precond,
            mg_levels=mg_levels,
            mg_smoother_iters=mg_smoother_iters,
            initial_pressure=x0,
            accumulation=acc,
            rhs=rhs,
        )
        program = CgProgram(
            variant=variant,
            reuse_buffers=reuse_buffers,
            jacobi=precond == "jacobi",
            preconditioner=precond,
            mg_levels=mg_levels,
            mg_smoother_iters=(
                2 if mg_smoother_iters is None else int(mg_smoother_iters)
            ),
            tol_rtr=tol,
            max_iters=int(max_iters),
            fixed_iterations=fixed_iterations,
            accumulation=True,
        )
        step_engine = create_engine(
            engine,
            problem,
            program,
            spec=spec,
            dtype=np_dtype,
            simd_width=simd_width,
            initial_pressure=x0,
            accumulation=acc,
            rhs=rhs,
            shard_shape=shard_shape,
            shard_workers=shard_workers,
            fused_tile=fused_tile,
        )
        report = step_engine.run()
        stepper.advance(report.pressure)
        yield report


def simulate_reports_batch(
    problems: Sequence[SinglePhaseProblem],
    *,
    dts: Sequence[float],
    porosity: float = 0.2,
    total_compressibility: float = 1e-4,
    initial_condition="problem",
    warm_start: bool = True,
    start_step: int = 0,
    states: Sequence[np.ndarray] | None = None,
    spec: WseSpecs = WSE2,
    dtype=np.float32,
    simd_width: int | None = None,
    variant: KernelVariant | str = KernelVariant.PRECOMPUTED,
    reuse_buffers: bool = True,
    tol_rtr: float = 2e-10,
    rel_tol: float | None = None,
    max_iters: int = 10_000,
    fixed_iterations: int | None = None,
    jacobi: bool = False,
    preconditioner: str | None = None,
    mg_levels: int | None = None,
    mg_smoother_iters: int | None = None,
    engine: str = "vectorized",
    batch_size: int | None = None,
    fused_tile=None,
):
    """Time-step ``N`` same-shape realizations together: one fused
    ``(batch, nx, ny, nz)`` program per step, yielded as a list of
    per-lane :class:`EngineReport`\\ s in input order.

    Each lane carries its own accumulation diagonal, right-hand side,
    warm-start state and resolved tolerance; per-lane convergence
    masking inside the batched engine freezes lanes as they converge, so
    every lane's per-step report is exactly what a serial vectorized
    solve of that lane would have produced (fuzz-pinned).
    """
    from repro.physics.transient import TransientStepper

    if isinstance(variant, str):
        variant = KernelVariant(variant)
    problems = list(problems)
    if not problems:
        return
    if states is not None and len(states) != len(problems):
        raise ConfigurationError(
            f"states has {len(states)} entries for {len(problems)} problems"
        )
    np_dtype = np.dtype(dtype)
    steppers = [
        TransientStepper(
            pr,
            dts=dts,
            porosity=porosity,
            total_compressibility=total_compressibility,
            initial_condition=initial_condition,
            warm_start=warm_start,
            start_step=start_step,
            state=None if states is None else states[lane],
            state_dtype=np_dtype,
        )
        for lane, pr in enumerate(problems)
    ]
    for index in steppers[0].pending():
        pieces = [stepper.begin(index) for stepper in steppers]
        reports = solve_batch(
            problems,
            spec=spec,
            dtype=np_dtype,
            simd_width=simd_width,
            variant=variant,
            reuse_buffers=reuse_buffers,
            tol_rtr=tol_rtr,
            rel_tol=rel_tol,
            max_iters=max_iters,
            fixed_iterations=fixed_iterations,
            initial_pressure=[x0 for _, _, x0 in pieces],
            jacobi=jacobi,
            preconditioner=preconditioner,
            mg_levels=mg_levels,
            mg_smoother_iters=mg_smoother_iters,
            engine=engine,
            batch_size=batch_size,
            accumulation=[acc for acc, _, _ in pieces],
            rhs=[rhs for _, rhs, _ in pieces],
            fused_tile=fused_tile,
        )
        for stepper, report in zip(steppers, reports):
            stepper.advance(report.pressure)
        yield reports
