"""Per-PE matrix-free FV kernel: Algorithm 2 over one Z column.

Once the four halo columns have arrived, each PE evaluates

    (Jx)_K = Σ_{L ∈ adj(K)} c_KL (x_K − x_L)   (interior)
    (Jx)_K = x_K                               (K ∈ T_D)

for its entire column in a handful of DSD vector instructions (§III-E.3):
the four lateral terms stream ``x − halo_d`` differences, the two vertical
terms use shifted sub-descriptors of the local column (Z neighbours live
in the same PE, §III-B), and Dirichlet rows are blended in with a final
masked update.

Two kernel variants:

* ``precomputed`` (default): each PE stores the six per-cell products
  ``c = Υ λ`` — numerically identical to the host reference operator;
* ``fused_mobility``: each PE stores transmissibilities and *mobility
  columns* separately and evaluates ``Υ · ½(λ_K + λ_L)`` in-kernel — the
  multiphase-ready path with higher arithmetic intensity (the paper's
  fluid mobility is "computed as the arithmetic average" in the flux,
  Eq. 4).

Buffer-reuse mode (§III-E.1): when enabled, the kernel uses the (already
consumed) halo buffers as scratch for the vertical differences and the
Dirichlet blend, eliminating a dedicated scratch column.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Counter as CounterT

from collections import Counter

from repro.util.errors import ConfigurationError
from repro.wse.dsd import Dsd
from repro.wse.isa import Op
from repro.wse.pe import ProcessingElement
from repro.wse.router import Port

#: Coefficient buffer per lateral port plus the vertical pair.
COEFF_BUFFER = {
    Port.WEST: "c_W",
    Port.EAST: "c_E",
    Port.NORTH: "c_N",
    Port.SOUTH: "c_S",
}
COEFF_DOWN = "c_D"
COEFF_UP = "c_U"

#: Transmissibility / mobility buffers for the fused variant.
UPSILON_BUFFER = {
    Port.WEST: "ups_W",
    Port.EAST: "ups_E",
    Port.NORTH: "ups_N",
    Port.SOUTH: "ups_S",
}
UPSILON_DOWN = "ups_D"
UPSILON_UP = "ups_U"
MOBILITY_BUFFER = {
    Port.WEST: "lam_W",
    Port.EAST: "lam_E",
    Port.NORTH: "lam_N",
    Port.SOUTH: "lam_S",
}
MOBILITY_OWN = "lam"

#: Per-PE accumulation column ``a = φ c_t V / Δt`` (transient programs;
#: zero on Dirichlet rows, staged by the host like the coefficients).
ACCUMULATION_BUFFER = "acc"

HALO_ORDER = (Port.WEST, Port.EAST, Port.NORTH, Port.SOUTH)


class DirichletKind(enum.Enum):
    """How much of a PE's column is Dirichlet-constrained.

    Wells constrain whole columns and most PEs none at all; storing a mask
    column only for genuinely mixed columns is part of the PE-memory
    frugality the paper's §III-E.1 demands.
    """

    NONE = "none"
    FULL = "full"
    PARTIAL = "partial"


class KernelVariant(enum.Enum):
    PRECOMPUTED = "precomputed"
    FUSED_MOBILITY = "fused_mobility"


@dataclass(frozen=True)
class PeKernelConfig:
    """Static kernel configuration for one PE.

    ``accumulation`` selects the transient kernel: one extra FMA against
    the staged accumulation column after the flux terms (the
    backward-Euler diagonal; zero on Dirichlet rows, so the Dirichlet
    blend stays untouched).
    """

    depth: int
    dirichlet: DirichletKind = DirichletKind.NONE
    variant: KernelVariant = KernelVariant.PRECOMPUTED
    reuse_buffers: bool = True
    accumulation: bool = False

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError("kernel depth must be >= 1")


class FvColumnKernel:
    """Executes the column kernel on PEs (one shared instance per fabric).

    The kernel reads ``x_buffer`` (the exchanged column) and the halo
    buffers, and writes ``out_buffer``.  It must run inside a PE task
    (typically as the continuation of the halo-exchange completion — the
    "event-driven fashion" of §III-B).
    """

    def __init__(
        self,
        *,
        x_buffer: str = "p",
        out_buffer: str = "Jx",
        scratch_buffer: str = "scratch",
    ):
        self.x_buffer = x_buffer
        self.out_buffer = out_buffer
        self.scratch_buffer = scratch_buffer

    # -- execution ------------------------------------------------------------

    def run(self, pe: ProcessingElement, config: PeKernelConfig,
            *, x_buffer: str | None = None) -> None:
        """Compute the PE's ``(Jx)`` column (inside a running task)."""
        if not pe.in_task:
            raise ConfigurationError("kernel must run inside a PE task")
        nz = config.depth
        x = Dsd(pe.memory.get(x_buffer or self.x_buffer))
        out = Dsd(pe.memory.get(self.out_buffer))

        if config.variant is KernelVariant.PRECOMPUTED:
            self._lateral_precomputed(pe, x, out, nz)
        else:
            self._lateral_fused(pe, x, out, nz, config)

        self._vertical(pe, x, out, nz, config)
        if config.accumulation:
            # Transient term: out += a ⊙ x (a is zero on Dirichlet rows,
            # so the blend below still sees pure flux + identity rows).
            acc = Dsd(pe.memory.get(ACCUMULATION_BUFFER))
            pe.fmacs(out, acc, x)
        self._dirichlet(pe, x, out, nz, config)

    def _lateral_precomputed(
        self, pe: ProcessingElement, x: Dsd, out: Dsd, nz: int
    ) -> None:
        from repro.core.exchange import HALO_BUFFER

        for i, port in enumerate(HALO_ORDER):
            halo = Dsd(pe.memory.get(HALO_BUFFER[port]))
            coeff = Dsd(pe.memory.get(COEFF_BUFFER[port]))
            # The halo column is dead after this direction: reuse it for
            # the difference (Table-stakes §III-E.1 reuse; always safe).
            pe.fsubs(halo, x, halo)
            if i == 0:
                # First term initializes the accumulator (no zero-fill
                # pass needed — Alg. 2 line 3 folded into line 5).
                pe.fmuls(out, coeff, halo)
            else:
                pe.fmacs(out, coeff, halo)

    def _lateral_fused(
        self,
        pe: ProcessingElement,
        x: Dsd,
        out: Dsd,
        nz: int,
        config: PeKernelConfig,
    ) -> None:
        from repro.core.exchange import HALO_BUFFER

        lam = Dsd(pe.memory.get(MOBILITY_OWN))
        # The halo buffers are all still live here, so the fused variant
        # needs its own scratch for the coefficient (reuse of a dead halo
        # is only legal from the vertical phase onward).
        scratch = Dsd(pe.memory.get("lam_scratch"))
        for i, port in enumerate(HALO_ORDER):
            halo = Dsd(pe.memory.get(HALO_BUFFER[port]))
            ups = Dsd(pe.memory.get(UPSILON_BUFFER[port]))
            lam_nbr = Dsd(pe.memory.get(MOBILITY_BUFFER[port]))
            # c = Υ · ½(λ_K + λ_L), evaluated in-kernel (Eq. 4).
            pe.fadds(scratch, lam, lam_nbr)
            pe.fmuls(scratch, scratch, 0.5)
            pe.fmuls(scratch, scratch, ups)
            pe.fsubs(halo, x, halo)
            pe.fmuls(halo, halo, scratch)
            if i == 0:
                pe.fmovs(out, halo)
            else:
                pe.fadds(out, out, halo)

    def _vertical(
        self,
        pe: ProcessingElement,
        x: Dsd,
        out: Dsd,
        nz: int,
        config: PeKernelConfig,
    ) -> None:
        if nz < 2:
            return
        scratch = self._scratch(pe, config)
        n = nz - 1
        # UP neighbours: cell z couples to z+1 for z in [0, nz-2].
        pe.fsubs(scratch.sub(0, n), x.sub(0, n), x.sub(1, n))
        if config.variant is KernelVariant.PRECOMPUTED:
            c_up = Dsd(pe.memory.get(COEFF_UP))
            pe.fmacs(out.sub(0, n), c_up.sub(0, n), scratch.sub(0, n))
        else:
            self._fused_vertical_accumulate(pe, x, out, scratch, n, up=True)
        # DOWN neighbours: cell z couples to z-1 for z in [1, nz-1].
        pe.fsubs(scratch.sub(1, n), x.sub(1, n), x.sub(0, n))
        if config.variant is KernelVariant.PRECOMPUTED:
            c_down = Dsd(pe.memory.get(COEFF_DOWN))
            pe.fmacs(out.sub(1, n), c_down.sub(1, n), scratch.sub(1, n))
        else:
            self._fused_vertical_accumulate(pe, x, out, scratch, n, up=False)

    def _fused_vertical_accumulate(
        self,
        pe: ProcessingElement,
        x: Dsd,
        out: Dsd,
        diff: Dsd,
        n: int,
        *,
        up: bool,
    ) -> None:
        """Fused-variant vertical term: λ average of the shifted local
        mobility column times Υ, applied to the precomputed difference."""
        lam = Dsd(pe.memory.get(MOBILITY_OWN))
        lam2_name = "lam_scratch"
        lam2 = Dsd(pe.memory.get(lam2_name))
        if up:
            lo, hi, ups_name = 0, 1, UPSILON_UP
        else:
            lo, hi, ups_name = 1, 0, UPSILON_DOWN
        ups = Dsd(pe.memory.get(ups_name))
        # ½(λ_z + λ_z±1) on the coupled range.
        pe.fadds(lam2.sub(lo, n), lam.sub(lo, n), lam.sub(hi, n))
        pe.fmuls(lam2.sub(lo, n), lam2.sub(lo, n), 0.5)
        pe.fmuls(lam2.sub(lo, n), lam2.sub(lo, n), ups.sub(lo, n))
        pe.fmacs(out.sub(lo, n), lam2.sub(lo, n), diff.sub(lo, n))

    def _dirichlet(
        self,
        pe: ProcessingElement,
        x: Dsd,
        out: Dsd,
        nz: int,
        config: PeKernelConfig,
    ) -> None:
        if config.dirichlet is DirichletKind.NONE:
            return
        if config.dirichlet is DirichletKind.FULL:
            # The whole column is constrained (a well): (Jx) = x.
            pe.fmovs(out, x)
            return
        # Mixed column: blend via the mask, out += mask ⊙ (x − out).
        mask = Dsd(pe.memory.get("bc_mask"))
        scratch = self._scratch(pe, config)
        pe.fsubs(scratch, x, out)
        pe.fmacs(out, mask, scratch)

    def _scratch(self, pe: ProcessingElement, config: PeKernelConfig) -> Dsd:
        """Scratch column: a dead halo buffer when reuse is on, a dedicated
        allocation otherwise (the §III-E.1 ablation knob)."""
        from repro.core.exchange import HALO_BUFFER

        if config.reuse_buffers:
            return Dsd(pe.memory.get(HALO_BUFFER[Port.WEST]))
        return Dsd(pe.memory.get(self.scratch_buffer))

    # -- analytic op counts (for trace cross-checks) ------------------------------

    @staticmethod
    def instruction_plan(config: PeKernelConfig) -> list[tuple[Op, int]]:
        """The exact DSD instruction sequence of one column apply.

        One ``(op, element_count)`` pair per issued vector instruction, in
        program order — the ground truth both engines share: the event
        engine's trace must execute exactly this sequence (pinned by
        tests via :meth:`expected_op_counts`), and the vectorized engine
        charges its analytic cycle/counter model from it.
        """
        nz = config.depth
        n = nz - 1
        plan: list[tuple[Op, int]] = []
        if config.variant is KernelVariant.PRECOMPUTED:
            for i in range(4):  # lateral directions in HALO_ORDER
                plan.append((Op.FSUB, nz))  # diff = x - halo
                plan.append((Op.FMUL if i == 0 else Op.FMA, nz))
            if nz >= 2:
                for _ in ("up", "down"):
                    plan.append((Op.FSUB, n))
                    plan.append((Op.FMA, n))
        else:
            for i in range(4):
                plan.append((Op.FADD, nz))  # λ_K + λ_L
                plan.append((Op.FMUL, nz))  # · 0.5
                plan.append((Op.FMUL, nz))  # · Υ
                plan.append((Op.FSUB, nz))  # diff = x - halo
                plan.append((Op.FMUL, nz))  # c ⊙ diff
                plan.append((Op.FMOV if i == 0 else Op.FADD, nz))
            if nz >= 2:
                for _ in ("up", "down"):
                    plan.append((Op.FSUB, n))  # shifted diff
                    plan.append((Op.FADD, n))  # λ_z + λ_z±1
                    plan.append((Op.FMUL, n))  # · 0.5
                    plan.append((Op.FMUL, n))  # · Υ
                    plan.append((Op.FMA, n))
        if config.accumulation:
            plan.append((Op.FMA, nz))  # out += a ⊙ x
        if config.dirichlet is DirichletKind.FULL:
            plan.append((Op.FMOV, nz))
        elif config.dirichlet is DirichletKind.PARTIAL:
            plan.append((Op.FSUB, nz))
            plan.append((Op.FMA, nz))
        return plan

    @staticmethod
    def expected_op_counts(config: PeKernelConfig) -> CounterT:
        """Instruction elements the kernel executes for one column.

        Used by tests to pin the simulator's trace to the kernel
        definition, and by `repro.perf.opcount` to document our kernel's
        mix next to the paper's Table V.
        """
        counts: CounterT = Counter()
        for op, num_elements in FvColumnKernel.instruction_plan(config):
            counts[op] += num_elements
        return counts

    @staticmethod
    def expected_cycles(config: PeKernelConfig, simd_width: int) -> int:
        """Cycles one PE spends in a single column apply (ISA cost model)."""
        from repro.wse.isa import vector_cycles

        return sum(
            vector_cycles(num_elements, simd_width)
            for _, num_elements in FvColumnKernel.instruction_plan(config)
        )
