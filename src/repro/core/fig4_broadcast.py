"""The Fig. 4 eastward localized broadcast — the paper's router-switching
demonstration, reproduced as a standalone protocol.

Fig. 4 shows the *alternating* pattern: one color, two switch positions
per router (pos0 = ``RAMP → EAST`` for a Sending PE, pos1 =
``WEST → RAMP`` for a Receiving PE, ring mode on), and a command wavelet
after each send that flips sender and receiver roles.  "After two steps,
all PEs have sent and received the required data" along the row.

This is distinct from the Table-I parity exchange (`repro.core.exchange`):
here *every* PE runs the same two-position program and the roles alternate
purely through switch state — exactly Listing 1.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.errors import ConfigurationError
from repro.wse.dsd import Dsd
from repro.wse.fabric import Fabric
from repro.wse.pe import ProcessingElement
from repro.wse.router import Port, RouteEntry


class Fig4EastwardBroadcast:
    """One row of PEs exchanging values eastward via switch alternation.

    Even-indexed PEs start as Senders (pos0: RAMP → EAST), odd-indexed as
    Receivers (pos0: WEST → RAMP); each program's *other* role is its
    pos1, ring mode on.  Step 1: evens send, odds receive; the command
    wavelet flips every router; step 2: odds send, evens receive.

    Parameters
    ----------
    fabric:
        The fabric (protocol runs on row ``row``).
    color:
        The single data color used by the whole pattern.
    depth:
        Payload vector length per PE.
    row:
        Which fabric row to run on.
    """

    def __init__(self, fabric: Fabric, color: int, depth: int, *, row: int = 0):
        if fabric.width < 2:
            raise ConfigurationError("Fig. 4 pattern needs at least 2 PEs")
        if not 0 <= row < fabric.height:
            raise ConfigurationError(f"row {row} outside fabric")
        self.fabric = fabric
        self.color = color
        self.depth = int(depth)
        self.row = row
        self._on_complete: Callable[[], None] | None = None
        self._pending = 0
        self._program_routers()
        self._allocate_buffers()

    def _program_routers(self) -> None:
        send = RouteEntry.of(Port.RAMP, Port.EAST)
        recv = RouteEntry.of(Port.WEST, Port.RAMP)
        for x in range(self.fabric.width):
            router = self.fabric.router(x, self.row)
            is_sender_first = x % 2 == 0
            positions = []
            if is_sender_first:
                if x + 1 < self.fabric.width:
                    positions.append(send)
                if x > 0:
                    positions.append(recv)
            else:
                if x > 0:
                    positions.append(recv)
                if x + 1 < self.fabric.width:
                    positions.append(send)
            router.set_route(self.color, positions, ring_mode=True)

    def _allocate_buffers(self) -> None:
        for x in range(self.fabric.width):
            pe = self.fabric.pe(x, self.row)
            if "fig4_out" not in pe.memory:
                pe.memory.alloc("fig4_out", self.depth, dtype=self.fabric.dtype)
            if "fig4_in" not in pe.memory:
                pe.memory.alloc("fig4_in", self.depth, dtype=self.fabric.dtype)

    # -- execution ---------------------------------------------------------------

    def run(self, on_complete: Callable[[], None] | None = None) -> None:
        """Execute the two-step pattern; each PE ends holding its west
        neighbour's payload in ``fig4_in``."""
        self._on_complete = on_complete
        self._pending = 0
        W = self.fabric.width
        for x in range(W):
            pe = self.fabric.pe(x, self.row)
            has_west = x > 0
            if has_west:
                self._pending += 1
        for x in range(W):
            pe = self.fabric.pe(x, self.row)
            if x % 2 == 0:
                self._start_sender_first(pe)
            else:
                self._start_receiver_first(pe)

    def _start_sender_first(self, pe: ProcessingElement) -> None:
        """Even PE: send (step 1), flip switches, then receive (step 2)."""

        def task() -> None:
            if pe.x + 1 < self.fabric.width:
                pe.send(self.color, Dsd(pe.memory.get("fig4_out")), tag="fig4-s1")
                # The command wavelet of Fig. 4b: flips this router (to
                # Receiving) and the neighbour's (to Sending).
                pe.send_control(self.color, tag="fig4-flip")
            if pe.x > 0:
                pe.recv_into(
                    self.color,
                    Dsd(pe.memory.get("fig4_in")),
                    self.depth,
                    on_complete=self._recv_done,
                )

        self.fabric.schedule_task(pe, self.fabric.now, task, tag="fig4-even")

    def _start_receiver_first(self, pe: ProcessingElement) -> None:
        """Odd PE: receive (step 1), then send west-of-it... i.e. send its
        own payload east in step 2 after the switch flip."""

        def after_recv() -> None:
            self._recv_done()
            if pe.x + 1 < self.fabric.width:
                pe.send(self.color, Dsd(pe.memory.get("fig4_out")), tag="fig4-s2")
                pe.send_control(self.color, tag="fig4-flip2")

        def task() -> None:
            if pe.x > 0:
                pe.recv_into(
                    self.color,
                    Dsd(pe.memory.get("fig4_in")),
                    self.depth,
                    on_complete=after_recv,
                )
            elif pe.x + 1 < self.fabric.width:
                # Odd PE at x=0 cannot receive; it only sends in step 2 —
                # but with no step-1 receive its trigger is immediate.
                pe.send(self.color, Dsd(pe.memory.get("fig4_out")), tag="fig4-s2")
                pe.send_control(self.color, tag="fig4-flip2")

        self.fabric.schedule_task(pe, self.fabric.now, task, tag="fig4-odd")

    def _recv_done(self) -> None:
        self._pending -= 1
        if self._pending == 0 and self._on_complete is not None:
            self._on_complete()
