"""Host-side staging: allocate PE buffers and memcpy problem data in/out.

Mirrors the SDK ``memcpy`` flow the paper uses (§V-A): the host loads all
data onto the device before the kernel runs and reads the solution back
after; none of this counts towards kernel time (and none of it charges PE
cycle counters here).
"""

from __future__ import annotations

import numpy as np

from repro.core.fv_kernel import (
    ACCUMULATION_BUFFER,
    COEFF_BUFFER,
    COEFF_DOWN,
    COEFF_UP,
    DirichletKind,
    KernelVariant,
    MOBILITY_BUFFER,
    MOBILITY_OWN,
    PeKernelConfig,
    UPSILON_BUFFER,
    UPSILON_DOWN,
    UPSILON_UP,
)
from repro.core.mapping import DIRECTION_FOR_PORT, ProblemMapping
from repro.fv.mobility import compute_face_mobility
from repro.fv.transmissibility import compute_transmissibility
from repro.mesh.grid import Direction
from repro.physics.darcy import SinglePhaseProblem
from repro.util.errors import ConfigurationError
from repro.wse.fabric import Fabric
from repro.wse.router import Port

#: Column buffers of the CG program (see `cg_dataflow`).
CG_COLUMN_BUFFERS = ("y", "p", "r", "b", "Jx")


def dirichlet_kind_for_column(problem: SinglePhaseProblem, x: int, y: int) -> DirichletKind:
    """Classify a PE column against the Dirichlet set."""
    mask_col = problem.dirichlet.mask[x, y, :]
    if not mask_col.any():
        return DirichletKind.NONE
    if mask_col.all():
        return DirichletKind.FULL
    return DirichletKind.PARTIAL


def stage_problem(
    fabric: Fabric,
    problem: SinglePhaseProblem,
    mapping: ProblemMapping,
    *,
    variant: KernelVariant = KernelVariant.PRECOMPUTED,
    reuse_buffers: bool = True,
    initial_pressure: np.ndarray | None = None,
    jacobi: bool = False,
    mg: bool = False,
    accumulation: np.ndarray | None = None,
    rhs: np.ndarray | None = None,
) -> dict[tuple[int, int], PeKernelConfig]:
    """Allocate and fill every PE's buffers; returns per-PE kernel configs.

    The memory arena enforces the 48 KiB budget as a side effect: problems
    too deep for the per-PE memory raise :class:`PeOutOfMemory` here, just
    as an oversized CSL program would fail to fit.

    ``accumulation`` stages the transient diagonal ``a = φ c_t V / Δt``
    (zero on Dirichlet rows) into every PE's ``acc`` column and folds it
    into the Jacobi diagonal; ``rhs`` overrides the staged right-hand
    side ``b`` on interior rows (the transient ``A p^n`` term — Dirichlet
    rows always carry ``p^D`` regardless).
    """
    grid = problem.grid
    if (grid.nx, grid.ny) != (fabric.width, fabric.height):
        raise ConfigurationError(
            f"fabric {fabric.width}x{fabric.height} does not match grid "
            f"lateral size {grid.nx}x{grid.ny}"
        )
    nz = grid.nz
    dtype = fabric.dtype

    if accumulation is not None and accumulation.shape != grid.shape:
        raise ConfigurationError(
            f"accumulation shape {accumulation.shape} != grid {grid.shape}"
        )
    if rhs is not None and rhs.shape != grid.shape:
        raise ConfigurationError(f"rhs shape {rhs.shape} != grid {grid.shape}")

    if initial_pressure is None:
        p0 = problem.initial_pressure(dtype=dtype)
    else:
        p0 = np.array(initial_pressure, dtype=dtype, copy=True)
        problem.dirichlet.apply_to(p0)

    # Right-hand side of the direct pressure system (J [+ A]) p = b:
    # interior rows carry zero (steady) or the caller-supplied transient
    # term; Dirichlet rows carry p^D.
    b = (
        np.zeros(grid.shape, dtype=dtype)
        if rhs is None
        else np.asarray(rhs, dtype=dtype).copy()
    )
    b[problem.dirichlet.mask] = problem.dirichlet.values[problem.dirichlet.mask]

    coeff_views = {
        port: problem.coefficients.cell_view(DIRECTION_FOR_PORT[port])
        for port in COEFF_BUFFER
    }
    coeff_down = problem.coefficients.cell_view(Direction.DOWN)
    coeff_up = problem.coefficients.cell_view(Direction.UP)

    if jacobi:
        # Jacobi scaling is purely PE-local: each PE stores 1/diag(J+A)
        # for its own column (Dirichlet rows have unit diagonal; the
        # accumulation term is zero there, so the order is immaterial).
        diag = problem.coefficients.diagonal.astype(np.float64).copy()
        if accumulation is not None:
            diag += accumulation.astype(np.float64)
        diag[problem.dirichlet.mask] = 1.0
        inv_diag = (1.0 / diag).astype(dtype)

    if variant is KernelVariant.FUSED_MOBILITY:
        trans = compute_transmissibility(grid, problem.permeability, dtype=np.float64)
        ups_views = {
            port: trans.cell_view(DIRECTION_FOR_PORT[port], dtype=dtype)
            for port in UPSILON_BUFFER
        }
        ups_down = trans.cell_view(Direction.DOWN, dtype=dtype)
        ups_up = trans.cell_view(Direction.UP, dtype=dtype)
        mobility = np.full(grid.shape, 1.0 / problem.viscosity, dtype=dtype)

    configs: dict[tuple[int, int], PeKernelConfig] = {}
    for pe in fabric.iter_pes():
        x, y = pe.x, pe.y
        for name in CG_COLUMN_BUFFERS:
            pe.memory.alloc(name, nz, dtype=dtype)
        if not reuse_buffers:
            pe.memory.alloc("scratch", nz, dtype=dtype)
        if jacobi or mg:
            # Both preconditioners hold the preconditioned residual in a
            # ``z`` column; only Jacobi needs a PE-local inverse diagonal
            # (the mg V-cycle is a host-assisted program construct).
            pe.memory.alloc("z", nz, dtype=dtype)
        if jacobi:
            pe.memory.alloc("inv_diag", nz, dtype=dtype)
            pe.host_write("inv_diag", inv_diag[x, y, :])
        if accumulation is not None:
            pe.memory.alloc(ACCUMULATION_BUFFER, nz, dtype=dtype)
            pe.host_write(ACCUMULATION_BUFFER, accumulation[x, y, :])

        if variant is KernelVariant.PRECOMPUTED:
            for port, bufname in COEFF_BUFFER.items():
                pe.memory.alloc(bufname, nz, dtype=dtype)
                pe.host_write(bufname, coeff_views[port][x, y, :])
            pe.memory.alloc(COEFF_DOWN, nz, dtype=dtype)
            pe.memory.alloc(COEFF_UP, nz, dtype=dtype)
            pe.host_write(COEFF_DOWN, coeff_down[x, y, :])
            pe.host_write(COEFF_UP, coeff_up[x, y, :])
        else:
            for port, bufname in UPSILON_BUFFER.items():
                pe.memory.alloc(bufname, nz, dtype=dtype)
                pe.host_write(bufname, ups_views[port][x, y, :])
            pe.memory.alloc(UPSILON_DOWN, nz, dtype=dtype)
            pe.memory.alloc(UPSILON_UP, nz, dtype=dtype)
            pe.host_write(UPSILON_DOWN, ups_down[x, y, :])
            pe.host_write(UPSILON_UP, ups_up[x, y, :])
            pe.memory.alloc(MOBILITY_OWN, nz, dtype=dtype)
            pe.host_write(MOBILITY_OWN, mobility[x, y, :])
            pe.memory.alloc("lam_scratch", nz, dtype=dtype)
            # Lateral neighbour mobility columns (constant in time: staged
            # once, no per-iteration exchange needed).
            for port, bufname in MOBILITY_BUFFER.items():
                pe.memory.alloc(bufname, nz, dtype=dtype)
                n = fabric.neighbor_coords(x, y, port)
                if n is not None:
                    pe.host_write(bufname, mobility[n[0], n[1], :])

        kind = dirichlet_kind_for_column(problem, x, y)
        if kind is DirichletKind.PARTIAL:
            pe.memory.alloc("bc_mask", nz, dtype=dtype)
            pe.host_write("bc_mask", problem.dirichlet.mask[x, y, :].astype(dtype))
        configs[(x, y)] = PeKernelConfig(
            depth=nz, dirichlet=kind, variant=variant,
            reuse_buffers=reuse_buffers, accumulation=accumulation is not None,
        )

        pe.host_write("y", p0[x, y, :])
        pe.host_write("b", b[x, y, :])

    return configs


def gather_field(fabric: Fabric, mapping: ProblemMapping, name: str) -> np.ndarray:
    """Read a column buffer back from every PE into a full 3D field."""
    out = np.zeros(mapping.grid.shape, dtype=fabric.dtype)
    for pe in fabric.iter_pes():
        out[pe.x, pe.y, :] = pe.host_read(name)
    return out


def fabric_memory_report(fabric: Fabric) -> dict[str, float]:
    """Aggregate PE memory statistics (bytes)."""
    highs = [pe.memory.high_water_bytes for pe in fabric.iter_pes()]
    used = [pe.memory.used_bytes for pe in fabric.iter_pes()]
    return {
        "max_high_water": float(max(highs)),
        "mean_high_water": float(np.mean(highs)),
        "max_used": float(max(used)),
        "capacity": float(fabric.spec.pe_memory_bytes),
    }
