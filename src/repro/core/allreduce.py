"""Whole-fabric all-reduce (§III-C).

The paper's three-step algorithm:

1. *Row reduction*: partial sums flow left → right along every row; the
   right-most PE of each row holds the row total.
2. *Column reduction*: the right-most column reduces top → bottom; the
   bottom-right PE holds the global total.
3. *Broadcast*: the bottom-right PE broadcasts up the right-most column,
   then each right-column PE broadcasts left across its row; every PE
   updates its copy.

It runs as an asynchronous task: each PE calls :meth:`submit` with its
local value (e.g. the local partial dot product) and gets
``on_complete(total)`` once the broadcast reaches it — "when the process
finishes, it triggers a callback task to continue the rest of the program
execution".

Chain routing uses two colors per dimension (parity ping-pong: a router
color cannot simultaneously accept RAMP→EAST and WEST→RAMP without
multicasting, so consecutive hops alternate colors).  Broadcasts multicast
through routers (rx SOUTH → tx {RAMP, NORTH} etc.), so one message covers
a whole column/row.

Re-use across rounds is safe without epoch tags: a PE can only receive
round ``n+1`` traffic after it completed round ``n`` (the broadcast that
completes round ``n`` sweeps right-to-left / bottom-to-top *before* any
PE that gates round ``n+1`` can start it — see tests for the ordering
property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.errors import ConfigurationError
from repro.wse.color import ColorAllocator
from repro.wse.fabric import Fabric
from repro.wse.isa import Op
from repro.wse.pe import ProcessingElement
from repro.wse.router import Port, RouteEntry


@dataclass(frozen=True)
class AllReduceColors:
    """The six routed colors of the all-reduce."""

    row_even: int
    row_odd: int
    col_even: int
    col_odd: int
    bcast_col: int
    bcast_row: int

    @classmethod
    def allocate(cls, colors: ColorAllocator) -> "AllReduceColors":
        return cls(
            row_even=colors.allocate("ar-row-even"),
            row_odd=colors.allocate("ar-row-odd"),
            col_even=colors.allocate("ar-col-even"),
            col_odd=colors.allocate("ar-col-odd"),
            bcast_col=colors.allocate("ar-bcast-col"),
            bcast_row=colors.allocate("ar-bcast-row"),
        )


class AllReduce:
    """Reusable fabric-wide scalar sum.

    Parameters
    ----------
    fabric:
        The fabric to operate on.
    colors:
        Routed colors (allocate once per program).
    """

    def __init__(self, fabric: Fabric, colors: AllReduceColors):
        self.fabric = fabric
        self.colors = colors
        self._state: dict[tuple[int, int], dict] = {}
        self.rounds_completed_at: dict[tuple[int, int], int] = {}
        self._program_routers()
        self._register_handlers()

    # -- router programming ----------------------------------------------------

    def _program_routers(self) -> None:
        W, H = self.fabric.width, self.fabric.height
        c = self.colors
        for pe in self.fabric.iter_pes():
            x, y = pe.x, pe.y
            router = self.fabric.router(x, y)
            # Row chains (all rows).
            send_color = c.row_even if x % 2 == 0 else c.row_odd
            recv_color = c.row_odd if x % 2 == 0 else c.row_even
            if x < W - 1:
                router.set_route(send_color, [RouteEntry.of(Port.RAMP, Port.EAST)])
            if x > 0:
                router.set_route(recv_color, [RouteEntry.of(Port.WEST, Port.RAMP)])
            if x == W - 1:
                # Column chain and broadcasts live on the right-most column.
                send_col = c.col_even if y % 2 == 0 else c.col_odd
                recv_col = c.col_odd if y % 2 == 0 else c.col_even
                if y < H - 1:
                    router.set_route(send_col, [RouteEntry.of(Port.RAMP, Port.SOUTH)])
                if y > 0:
                    router.set_route(recv_col, [RouteEntry.of(Port.NORTH, Port.RAMP)])
                if H > 1:
                    if y == H - 1:
                        router.set_route(
                            c.bcast_col, [RouteEntry.of(Port.RAMP, Port.NORTH)]
                        )
                    elif y == 0:
                        router.set_route(
                            c.bcast_col, [RouteEntry.of(Port.SOUTH, Port.RAMP)]
                        )
                    else:
                        router.set_route(
                            c.bcast_col,
                            [RouteEntry.of(Port.SOUTH, {Port.RAMP, Port.NORTH})],
                        )
                if W > 1:
                    router.set_route(c.bcast_row, [RouteEntry.of(Port.RAMP, Port.WEST)])
            else:
                if W > 1:
                    if x == 0:
                        router.set_route(
                            c.bcast_row, [RouteEntry.of(Port.EAST, Port.RAMP)]
                        )
                    else:
                        router.set_route(
                            c.bcast_row,
                            [RouteEntry.of(Port.EAST, {Port.RAMP, Port.WEST})],
                        )

    def _register_handlers(self) -> None:
        c = self.colors
        W = self.fabric.width
        for pe in self.fabric.iter_pes():
            x, y = pe.x, pe.y
            recv_color = c.row_odd if x % 2 == 0 else c.row_even
            if x > 0:
                pe.on_message(recv_color, self._make_row_handler(pe))
            if x == W - 1:
                recv_col = c.col_odd if y % 2 == 0 else c.col_even
                if y > 0:
                    pe.on_message(recv_col, self._make_col_handler(pe))
                if y < self.fabric.height - 1:
                    pe.on_message(c.bcast_col, self._make_bcast_col_handler(pe))
            else:
                pe.on_message(c.bcast_row, self._make_bcast_row_handler(pe))

    # -- per-PE state ------------------------------------------------------------

    def _get_state(self, pe: ProcessingElement) -> dict:
        key = (pe.x, pe.y)
        if key not in self._state:
            self._state[key] = {
                "own": None,
                "west_in": None,
                "col_in": None,
                "row_sum": None,
                "on_complete": None,
                "rounds": self._state.get(key, {}).get("rounds", 0),
            }
        return self._state[key]

    def _clear_state(self, pe: ProcessingElement) -> None:
        rounds = self._state.get((pe.x, pe.y), {}).get("rounds", 0)
        self._state.pop((pe.x, pe.y), None)
        self.rounds_completed_at[(pe.x, pe.y)] = rounds + 1
        # Preserve the per-PE round count for diagnostics.
        self._state[(pe.x, pe.y)] = {
            "own": None,
            "west_in": None,
            "col_in": None,
            "row_sum": None,
            "on_complete": None,
            "rounds": rounds + 1,
        }

    # -- public API ----------------------------------------------------------------

    def submit(
        self,
        pe: ProcessingElement,
        value: float,
        on_complete: Callable[[float], None],
    ) -> None:
        """Contribute ``pe``'s local value to the current round.

        Must be called inside a task on ``pe``.  ``on_complete(total)``
        runs as a continuation of the broadcast delivery (or of the final
        combine, on the bottom-right PE).
        """
        if not pe.in_task:
            raise ConfigurationError("submit must run inside a PE task")
        state = self._get_state(pe)
        if state["own"] is not None:
            raise ConfigurationError(
                f"PE ({pe.x},{pe.y}) already submitted this round"
            )
        state["own"] = float(value)
        state["on_complete"] = on_complete
        self._try_row(pe, state)

    # -- phase 1: row reduction ------------------------------------------------------

    def _make_row_handler(self, pe: ProcessingElement):
        def _on_row(message) -> None:
            state = self._get_state(pe)
            if state["west_in"] is not None:  # pragma: no cover - guard
                raise ConfigurationError(
                    f"PE ({pe.x},{pe.y}) received two row partials"
                )
            state["west_in"] = float(message.payload[0])
            self._try_row(pe, state)

        return _on_row

    def _try_row(self, pe: ProcessingElement, state: dict) -> None:
        if state["own"] is None:
            return
        x, W = pe.x, self.fabric.width
        if x > 0 and state["west_in"] is None:
            return
        partial = state["own"]
        if x > 0:
            pe.scalar_op(Op.FADD)
            partial = partial + state["west_in"]
        if x < W - 1:
            color = (
                self.colors.row_even if x % 2 == 0 else self.colors.row_odd
            )
            pe.send(color, self.fabric.dtype.type(partial), tag="ar-row")
            return
        # Right-most PE: row total in hand, join the column phase.
        state["row_sum"] = partial
        self._try_col(pe, state)

    # -- phase 2: column reduction ------------------------------------------------------

    def _make_col_handler(self, pe: ProcessingElement):
        def _on_col(message) -> None:
            state = self._get_state(pe)
            if state["col_in"] is not None:  # pragma: no cover - guard
                raise ConfigurationError(
                    f"PE ({pe.x},{pe.y}) received two column partials"
                )
            state["col_in"] = float(message.payload[0])
            self._try_col(pe, state)

        return _on_col

    def _try_col(self, pe: ProcessingElement, state: dict) -> None:
        if state["row_sum"] is None:
            return
        y, H = pe.y, self.fabric.height
        if y > 0 and state["col_in"] is None:
            return
        partial = state["row_sum"]
        if y > 0:
            pe.scalar_op(Op.FADD)
            partial = partial + state["col_in"]
        if y < H - 1:
            color = (
                self.colors.col_even if y % 2 == 0 else self.colors.col_odd
            )
            pe.send(color, self.fabric.dtype.type(partial), tag="ar-col")
            return
        # Bottom-right PE holds the global total: broadcast it.
        total = partial
        if H > 1:
            pe.send(self.colors.bcast_col, self.fabric.dtype.type(total), tag="ar-bcast-col")
        if self.fabric.width > 1:
            pe.send(self.colors.bcast_row, self.fabric.dtype.type(total), tag="ar-bcast-row")
        self._complete(pe, state, total)

    # -- phase 3: broadcast ----------------------------------------------------------------

    def _make_bcast_col_handler(self, pe: ProcessingElement):
        def _on_bcast_col(message) -> None:
            total = float(message.payload[0])
            # Fan out along this PE's own row, then complete locally.
            if self.fabric.width > 1:
                pe.send(self.colors.bcast_row, self.fabric.dtype.type(total), tag="ar-bcast-row")
            state = self._get_state(pe)
            self._complete(pe, state, total)

        return _on_bcast_col

    def _make_bcast_row_handler(self, pe: ProcessingElement):
        def _on_bcast_row(message) -> None:
            total = float(message.payload[0])
            state = self._get_state(pe)
            self._complete(pe, state, total)

        return _on_bcast_row

    def _complete(self, pe: ProcessingElement, state: dict, total: float) -> None:
        on_complete = state["on_complete"]
        if on_complete is None:
            raise ConfigurationError(
                f"PE ({pe.x},{pe.y}) completed an all-reduce it never joined"
            )
        self._clear_state(pe)
        on_complete(total)
