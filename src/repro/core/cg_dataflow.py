"""Conjugate gradient on the fabric: the 14-state machine, distributed.

Every PE drives the state graph of :mod:`repro.solvers.state_machine`
independently; synchronization is implicit in the collectives (the halo
exchange gates COMPUTE_JX, the all-reduce gates COMPUTE_ALPHA and
THRES_CHECK), exactly as §III-D describes: "All conditional checks ... are
converted into state transitions."

Buffers per PE (names shared with `repro.core.host`):

    y   — solution iterate (pressure), exchanged once during INIT;
    p   — search direction, exchanged every iteration;
    r   — residual column;
    b   — right-hand side column (read once, in INIT);
    Jx  — operator output / accumulator;
    halo_W/E/N/S, c_* / ups_* / lam_* — see `fv_kernel` / `exchange`.

Scalars (α, β, r^T r, p^T J p) are held per PE — every PE computes its own
copy from the broadcast totals, as on the real machine.

``fixed_iterations`` mode runs exactly N iterations with the convergence
check disabled — the paper's Table IV methodology ("the run without
computation never converged, we terminated it at step 225").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.allreduce import AllReduce
from repro.core.exchange import HaloExchange
from repro.core.fv_kernel import FvColumnKernel, PeKernelConfig
from repro.core.program import CgProgram
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.dsd import Dsd
from repro.wse.fabric import Fabric
from repro.wse.pe import ProcessingElement


@dataclass
class PeCgState:
    """Per-PE CG scalars and bookkeeping."""

    k: int = 0
    rtr: float = 0.0
    rtr_new: float = 0.0
    pap: float = 0.0
    alpha: float = 0.0
    beta: float = 0.0
    state: CGState = CGState.INIT
    terminal: bool = False


@dataclass
class DataflowCGResult:
    """Fabric-side solve outcome (solution gathered by the solver)."""

    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)
    state_visits: list[CGState] = field(default_factory=list)


class DataflowCG:
    """Distributed CG over all PEs of a fabric.

    Parameters
    ----------
    fabric, exchange, allreduce, kernel:
        The composed machinery (routers/buffers already programmed).
    kernel_configs:
        Per-PE kernel configuration keyed by (x, y) (Dirichlet kinds
        differ between well columns and interior PEs).
    program:
        The engine-agnostic :class:`~repro.core.program.CgProgram`:
        resolved tolerance (Algorithm 1's ε on the *global* ``r^T r``),
        iteration cap, ``fixed_iterations`` (Table IV methodology),
        Jacobi preconditioning (purely PE-local diagonal scaling — the
        CG scalars become ``r^T z`` and ε applies to ``r^T z``).
    """

    def __init__(
        self,
        fabric: Fabric,
        exchange: HaloExchange,
        allreduce: AllReduce,
        kernel: FvColumnKernel,
        kernel_configs: dict[tuple[int, int], PeKernelConfig],
        program: CgProgram,
        *,
        track_states_for: tuple[int, int] = (0, 0),
        mg_hierarchy=None,
    ):
        self.fabric = fabric
        self.exchange = exchange
        self.allreduce = allreduce
        self.kernel = kernel
        self.kernel_configs = kernel_configs
        self.program = program
        self.tol_rtr = float(program.tol_rtr)
        self.max_iters = int(program.max_iters)
        self.fixed_iterations = program.fixed_iterations
        self.jacobi = bool(program.jacobi)
        self.mg = bool(program.mg)
        self.mg_hierarchy = mg_hierarchy
        if self.mg and mg_hierarchy is None:
            raise ConfigurationError(
                "an mg-preconditioned program needs its hierarchy staged"
            )
        #: V-cycle applications performed (the engine folds this many
        #: analytic mg charge packets into the run's counters/trace).
        self.mg_applies = 0
        self._mg_waiting: list[tuple[ProcessingElement, Callable[[], None]]] = []
        self._pe_state: dict[tuple[int, int], PeCgState] = {
            (pe.x, pe.y): PeCgState() for pe in fabric.iter_pes()
        }
        self._tracked = track_states_for
        self.result = DataflowCGResult(iterations=0, converged=False)
        self._terminal_count = 0
        self._num_pes = fabric.width * fabric.height

    # -- helpers -----------------------------------------------------------------

    def _st(self, pe: ProcessingElement) -> PeCgState:
        return self._pe_state[(pe.x, pe.y)]

    def _visit(self, pe: ProcessingElement, state: CGState) -> None:
        st = self._st(pe)
        st.state = state
        # A couple of cycles of sequencer work per transition.
        pe.scalar_cycles(2)
        if (pe.x, pe.y) == self._tracked:
            self.result.state_visits.append(state)

    def _config(self, pe: ProcessingElement) -> PeKernelConfig:
        return self.kernel_configs[(pe.x, pe.y)]

    @property
    def check_convergence(self) -> bool:
        return self.fixed_iterations is None

    # -- mg preconditioning (host-assisted barrier) ------------------------------

    def _mg_submit(self, pe: ProcessingElement, cont: Callable[[], None]) -> None:
        """Park ``pe`` at the V-cycle barrier; the last arrival runs the
        (host-assisted, float64) V-cycle over the gathered residual and
        resumes every PE with its ``z`` column written back.

        The numerical work happens host-side — like tolerance resolution,
        it is a *program-level* construct shared verbatim by every engine
        so ``z`` stays bitwise identical — while the fabric cost of the
        cycle is charged analytically by the engine from one
        :func:`repro.mg.build_mg_packet` per application (see
        ``mg_applies``).
        """
        self._mg_waiting.append((pe, cont))
        if len(self._mg_waiting) < self._num_pes:
            return
        waiting, self._mg_waiting = self._mg_waiting, []
        from repro.mg import mg_apply

        nz = waiting[0][0].memory.get("r").shape[0]
        r = np.zeros((self.fabric.width, self.fabric.height, nz), dtype=np.float64)
        for peer, _ in waiting:
            r[peer.x, peer.y, :] = peer.host_read("r")
        z = mg_apply(self.mg_hierarchy, r).astype(self.fabric.dtype)
        self.mg_applies += 1
        now = self.fabric.now
        for peer, peer_cont in waiting:
            peer.host_write("z", z[peer.x, peer.y, :])
            self.fabric.schedule_task(peer, now, peer_cont)

    # -- program entry --------------------------------------------------------------

    def launch(self) -> None:
        """Kick off INIT on every PE (host-side program start)."""
        for pe in self.fabric.iter_pes():
            self.fabric.schedule_task(pe, self.fabric.now, lambda pe=pe: self._init(pe))

    # -- INIT: r0 = b - A y0 ; p0 = r0 ; rtr = <r0, r0> --------------------------------

    def _init(self, pe: ProcessingElement) -> None:
        self._visit(pe, CGState.INIT)
        self._visit(pe, CGState.EXCHANGE)
        self.exchange.begin_pe(pe, "y", self._init_after_halo)

    def _init_after_halo(self, pe: ProcessingElement) -> None:
        self._visit(pe, CGState.COMPUTE_JX)
        self.kernel.run(pe, self._config(pe), x_buffer="y")
        r = Dsd(pe.memory.get("r"))
        b = Dsd(pe.memory.get("b"))
        jx = Dsd(pe.memory.get("Jx"))
        p = Dsd(pe.memory.get("p"))
        pe.fsubs(r, b, jx)
        if self.mg:
            self._mg_submit(pe, lambda pe=pe: self._init_after_mg(pe))
            return
        if self.jacobi:
            z = Dsd(pe.memory.get("z"))
            inv = Dsd(pe.memory.get("inv_diag"))
            pe.fmuls(z, r, inv)
            pe.fmovs(p, z)
            local = pe.dot_local(r, z)
        else:
            pe.fmovs(p, r)
            local = pe.dot_local(r, r)
        self._visit(pe, CGState.DOT_RR)
        self.allreduce.submit(pe, local, lambda total, pe=pe: self._init_rtr(pe, total))

    def _init_after_mg(self, pe: ProcessingElement) -> None:
        r = Dsd(pe.memory.get("r"))
        p = Dsd(pe.memory.get("p"))
        z = Dsd(pe.memory.get("z"))
        pe.fmovs(p, z)
        local = pe.dot_local(r, z)
        self._visit(pe, CGState.DOT_RR)
        self.allreduce.submit(pe, local, lambda total, pe=pe: self._init_rtr(pe, total))

    def _init_rtr(self, pe: ProcessingElement, total: float) -> None:
        st = self._st(pe)
        st.rtr = total
        if (pe.x, pe.y) == self._tracked:
            self.result.residual_history.append(total)
        self._iter_check(pe)

    # -- ITER_CHECK -> EXCHANGE -> COMPUTE_JX -> DOT_PAP --------------------------------

    def _iter_check(self, pe: ProcessingElement) -> None:
        self._visit(pe, CGState.ITER_CHECK)
        st = self._st(pe)
        limit = self.fixed_iterations if self.fixed_iterations is not None else self.max_iters
        if self.check_convergence and st.rtr < self.tol_rtr:
            self._terminal(pe, CGState.CONVERGED)
            return
        if st.k >= limit:
            terminal = (
                CGState.CONVERGED
                if (self.check_convergence and st.rtr < self.tol_rtr)
                else CGState.MAXITER
            )
            self._terminal(pe, terminal)
            return
        self._visit(pe, CGState.EXCHANGE)
        self.exchange.begin_pe(pe, "p", self._after_halo)

    def _after_halo(self, pe: ProcessingElement) -> None:
        self._visit(pe, CGState.COMPUTE_JX)
        self.kernel.run(pe, self._config(pe), x_buffer="p")
        p = Dsd(pe.memory.get("p"))
        jx = Dsd(pe.memory.get("Jx"))
        local_pap = pe.dot_local(p, jx)
        self._visit(pe, CGState.DOT_PAP)
        self.allreduce.submit(pe, local_pap, lambda total, pe=pe: self._after_pap(pe, total))

    # -- COMPUTE_ALPHA -> UPDATE_SOL -> UPDATE_RES -> DOT_RR -------------------------------

    def _after_pap(self, pe: ProcessingElement, pap_total: float) -> None:
        st = self._st(pe)
        st.pap = pap_total
        self._visit(pe, CGState.COMPUTE_ALPHA)
        if pap_total == 0.0:
            # Only legal with FP suppressed (Table IV runs); otherwise the
            # SPD operator guarantees pap > 0 for a nonzero direction.
            if not pe.suppress_fp and self.check_convergence:
                raise ConfigurationError(
                    f"PE ({pe.x},{pe.y}): p^T A p = 0 with live arithmetic"
                )
            st.alpha = 0.0
        else:
            st.alpha = st.rtr / pap_total
        pe.scalar_cycles(4)  # scalar divide on the CE

        y = Dsd(pe.memory.get("y"))
        p = Dsd(pe.memory.get("p"))
        r = Dsd(pe.memory.get("r"))
        jx = Dsd(pe.memory.get("Jx"))
        self._visit(pe, CGState.UPDATE_SOL)
        pe.fmacs(y, st.alpha, p)
        self._visit(pe, CGState.UPDATE_RES)
        pe.fmacs(r, -st.alpha, jx)
        if self.mg:
            self._mg_submit(pe, lambda pe=pe: self._body_after_mg(pe))
            return
        if self.jacobi:
            z = Dsd(pe.memory.get("z"))
            inv = Dsd(pe.memory.get("inv_diag"))
            pe.fmuls(z, r, inv)
            local_rtr = pe.dot_local(r, z)
        else:
            local_rtr = pe.dot_local(r, r)
        self._visit(pe, CGState.DOT_RR)
        self.allreduce.submit(pe, local_rtr, lambda total, pe=pe: self._after_rtr(pe, total))

    def _body_after_mg(self, pe: ProcessingElement) -> None:
        r = Dsd(pe.memory.get("r"))
        z = Dsd(pe.memory.get("z"))
        local_rtr = pe.dot_local(r, z)
        self._visit(pe, CGState.DOT_RR)
        self.allreduce.submit(pe, local_rtr, lambda total, pe=pe: self._after_rtr(pe, total))

    # -- THRES_CHECK -> (CONVERGED | COMPUTE_BETA -> UPDATE_DIR -> ITER_CHECK) -----------------

    def _after_rtr(self, pe: ProcessingElement, rtr_total: float) -> None:
        st = self._st(pe)
        st.rtr_new = rtr_total
        st.k += 1
        self._visit(pe, CGState.THRES_CHECK)
        if (pe.x, pe.y) == self._tracked:
            self.result.residual_history.append(rtr_total)
        if self.check_convergence and rtr_total < self.tol_rtr:
            self._terminal(pe, CGState.CONVERGED)
            return
        self._visit(pe, CGState.COMPUTE_BETA)
        st.beta = (st.rtr_new / st.rtr) if st.rtr > 0 else 0.0
        pe.scalar_cycles(4)
        self._visit(pe, CGState.UPDATE_DIR)
        p = Dsd(pe.memory.get("p"))
        pe.fmuls(p, p, st.beta)
        if self.jacobi or self.mg:
            pe.fadds(p, p, Dsd(pe.memory.get("z")))
        else:
            pe.fadds(p, p, Dsd(pe.memory.get("r")))
        st.rtr = st.rtr_new
        self._iter_check(pe)

    # -- termination ------------------------------------------------------------------

    def _terminal(self, pe: ProcessingElement, state: CGState) -> None:
        st = self._st(pe)
        if st.terminal:  # pragma: no cover - guard
            raise ConfigurationError(f"PE ({pe.x},{pe.y}) terminated twice")
        self._visit(pe, state)
        st.terminal = True
        self._terminal_count += 1
        if self._terminal_count == self._num_pes:
            tracked = self._pe_state[self._tracked]
            self.result.iterations = tracked.k
            self.result.converged = all(
                s.state is CGState.CONVERGED for s in self._pe_state.values()
            )
