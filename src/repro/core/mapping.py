"""Data mapping: 3D Cartesian mesh onto the 2D fabric (§III-A, Fig. 3).

Cell ``(x, y, z)`` lives on PE ``(x, y)``; the whole Z column is contiguous
in that PE's private memory.  X–Y neighbours are one fabric hop away; Z
neighbours are local memory accesses — "no data movement is required"
(§III-B).

Axis orientation: mesh +y maps to fabric +y, which the fabric's Port
vocabulary calls SOUTH (the wafer's row 0 is the top).  The
:data:`PORT_FOR_DIRECTION` table is derived from coordinate offsets, so the
pairing is correct by construction (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import CartesianGrid3D, Direction, LATERAL_DIRECTIONS
from repro.util.errors import ConfigurationError
from repro.wse.router import Port
from repro.wse.specs import WseSpecs

#: Fabric port that reaches the mesh-lateral neighbour in each direction,
#: matched on coordinate offsets (mesh SOUTH = y-1 = fabric NORTH, etc.).
PORT_FOR_DIRECTION: dict[Direction, Port] = {
    d: next(p for p in (Port.WEST, Port.EAST, Port.NORTH, Port.SOUTH)
            if p.offset == (d.offset[0], d.offset[1]))
    for d in LATERAL_DIRECTIONS
}

#: Inverse view: mesh direction whose neighbour data arrives on each port.
DIRECTION_FOR_PORT: dict[Port, Direction] = {
    p: d for d, p in PORT_FOR_DIRECTION.items()
}


@dataclass(frozen=True)
class ProblemMapping:
    """Assignment of a grid to a fabric rectangle (one column per PE).

    The fabric rectangle is exactly ``nx × ny``; the constructor checks it
    fits the machine.  Column depth ``nz`` is bounded only by PE memory
    (checked downstream by the memory arena when buffers are allocated).
    """

    grid: CartesianGrid3D
    spec: WseSpecs

    def __post_init__(self) -> None:
        if self.grid.nx > self.spec.fabric_width or self.grid.ny > self.spec.fabric_height:
            raise ConfigurationError(
                f"grid {self.grid.nx}x{self.grid.ny} (lateral) exceeds the "
                f"{self.spec.fabric_width}x{self.spec.fabric_height} fabric"
            )

    @property
    def fabric_width(self) -> int:
        return self.grid.nx

    @property
    def fabric_height(self) -> int:
        return self.grid.ny

    @property
    def column_depth(self) -> int:
        return self.grid.nz

    def pe_for_cell(self, x: int, y: int, z: int) -> tuple[int, int]:
        """The PE owning cell (x, y, z)."""
        self.grid.check_cell(x, y, z)
        return (x, y)

    def column_of(self, field: np.ndarray, x: int, y: int) -> np.ndarray:
        """The (contiguous) Z column of a cell field at PE (x, y)."""
        if field.shape != self.grid.shape:
            raise ConfigurationError(
                f"field shape {field.shape} != grid {self.grid.shape}"
            )
        return field[x, y, :]

    def scatter(self, field: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
        """Split a field into per-PE columns (views, zero-copy)."""
        return {
            (x, y): self.column_of(field, x, y)
            for x in range(self.grid.nx)
            for y in range(self.grid.ny)
        }

    def gather(self, columns: dict[tuple[int, int], np.ndarray], *, dtype=None) -> np.ndarray:
        """Reassemble per-PE columns into a full field."""
        out = np.zeros(self.grid.shape, dtype=dtype or np.float32)
        for (x, y), col in columns.items():
            out[x, y, :] = col
        return out

    def estimate_pe_bytes(self, num_columns: int, *, dtype_bytes: int = 4,
                          scalar_slots: int = 16) -> int:
        """Estimated per-PE footprint for ``num_columns`` column buffers.

        Used by capacity planning (`repro.perf.memmodel`) and by tests that
        pin down the maximum Z depth a PE can host.
        """
        return num_columns * self.grid.nz * dtype_bytes + scalar_slots * dtype_bytes
