"""The paper's contribution: matrix-free FV kernels on the dataflow fabric.

Composes the `repro.wse` simulator into the system of §III:

* `mapping`     — 3D mesh → 2D fabric data mapping (§III-A, Fig. 3);
* `exchange`    — the 4-step odd/even cardinal halo exchange of Table I,
                  driven by router switch positions (Fig. 4);
* `allreduce`   — the whole-fabric all-reduce (§III-C);
* `fv_kernel`   — the per-PE matrix-free Jx computation over a Z column,
                  vectorized with DSDs (§III-E.3);
* `cg_dataflow` — conjugate gradient as the 14-state event-driven machine
                  (§III-D), distributed over all PEs;
* `program`     — the engine-agnostic CG program description (phases:
                  halo exchange, FV apply, axpy/dot, all-reduce);
* `engines`     — the pluggable engine registry: ``"event"`` (per-PE
                  discrete-event oracle) / ``"vectorized"`` (whole-fabric
                  NumPy sweeps, `repro.wse.vector_engine`);
* `event_engine`— the event-driven engine composition;
* `solver`      — :class:`WseMatrixFreeSolver`, the public entry point;
* `host`        — memcpy-style host staging (outside kernel timing, §IV/V).
"""

from repro.core.mapping import ProblemMapping, PORT_FOR_DIRECTION
from repro.core.exchange import HaloExchange, ExchangeColors
from repro.core.allreduce import AllReduce, AllReduceColors
from repro.core.engines import DEFAULT_ENGINE, ENGINE_NAMES, create_engine
from repro.core.fv_kernel import PeKernelConfig, FvColumnKernel
from repro.core.program import CG_PHASES, CgProgram, EngineReport, Phase
from repro.core.solver import WseMatrixFreeSolver, WseSolveReport

__all__ = [
    "ProblemMapping",
    "PORT_FOR_DIRECTION",
    "HaloExchange",
    "ExchangeColors",
    "AllReduce",
    "AllReduceColors",
    "PeKernelConfig",
    "FvColumnKernel",
    "CG_PHASES",
    "CgProgram",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "EngineReport",
    "Phase",
    "create_engine",
    "WseMatrixFreeSolver",
    "WseSolveReport",
]
