"""String-keyed backend registry.

The registry is the seam future hardware targets plug into: registering a
:class:`~repro.backends.base.SolverBackend` under a name makes it reachable
from :func:`repro.solve`, `solve_many`, the benchmarks and the examples
without touching any of them.
"""

from __future__ import annotations

from typing import Iterator

from repro.backends.base import SolverBackend
from repro.util.errors import ConfigurationError

_REGISTRY: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, *, overwrite: bool = False) -> SolverBackend:
    """Register ``backend`` under ``backend.name``.

    Raises
    ------
    ConfigurationError
        If the name is already taken and ``overwrite`` is not set, or the
        object does not satisfy the :class:`SolverBackend` protocol.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend {backend!r} has no usable 'name' attribute"
        )
    if not callable(getattr(backend, "solve", None)):
        raise ConfigurationError(f"backend {name!r} has no callable solve()")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (mainly for tests tearing down fakes)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by registry name.

    Unknown names raise with the list of available backends, so a typo'd
    ``backend=`` argument is self-diagnosing.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        ) from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def iter_backends() -> Iterator[SolverBackend]:
    for name in available_backends():
        yield _REGISTRY[name]
