"""Pluggable solver backends — the library's single front door.

The three paper machines ship pre-registered::

    >>> from repro import backends
    >>> backends.available_backends()
    ['gpu', 'reference', 'wse']
    >>> result = backends.get_backend("reference").solve(problem)

New targets plug in without touching any call site::

    >>> backends.register_backend(MyBackend())
    >>> repro.solve(problem, backend="my-backend")
"""

from __future__ import annotations

from repro.backends.base import (
    SimulationResult,
    SolveResult,
    SolverBackend,
    StepResult,
)
from repro.backends.gpu import GpuBackend
from repro.backends.reference import ReferenceBackend
from repro.backends.registry import (
    available_backends,
    get_backend,
    iter_backends,
    register_backend,
    unregister_backend,
)
from repro.backends.wse import WseBackend

#: The paper's three machines, registered at import time.
BUILTIN_BACKENDS = (ReferenceBackend(), WseBackend(), GpuBackend())
for _backend in BUILTIN_BACKENDS:
    if _backend.name not in available_backends():
        register_backend(_backend)

__all__ = [
    "BUILTIN_BACKENDS",
    "GpuBackend",
    "ReferenceBackend",
    "SimulationResult",
    "SolveResult",
    "SolverBackend",
    "StepResult",
    "WseBackend",
    "available_backends",
    "get_backend",
    "iter_backends",
    "register_backend",
    "unregister_backend",
]
