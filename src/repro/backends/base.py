"""Canonical solver result and the backend contract.

Every backend — the NumPy host reference, the wafer-scale dataflow
simulator, the CUDA-like GPU model, and anything registered later —
answers the same question ("solve this pressure problem") through the same
signature and returns the same :class:`SolveResult`.  Backend-specific
riches (fabric traces, instruction counters, memory high-water marks, GPU
DRAM traffic) live in the open ``telemetry`` mapping so cross-backend code
never has to branch on the concrete type.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.physics.darcy import SinglePhaseProblem


# -- wire encoding -----------------------------------------------------------
#
# Results must survive a JSON hop (the network gateway's POST /v1/solve
# and WebSocket step frames) without losing a bit of the field data.
# ndarrays travel as base64 of their raw bytes plus shape/dtype — exact,
# compact, and decodable with nothing but the stdlib — and telemetry is
# filtered to its JSON-able core (live objects collapse to an
# ``{"__opaque__": <type>}`` marker; the stable ``to_dict()`` summaries
# every engine reports since PR 3 pass through untouched).


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """A JSON-able, bit-exact stand-in for an ndarray."""
    data = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(data.tobytes()).decode("ascii"),
        "shape": list(data.shape),
        "dtype": data.dtype.name,
    }


def decode_array(payload: Any) -> np.ndarray:
    raw = base64.b64decode(payload["__ndarray__"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


def is_encoded_array(value: Any) -> bool:
    return isinstance(value, dict) and "__ndarray__" in value


def jsonable_telemetry(value: Any) -> Any:
    """Telemetry reduced to what JSON can carry, arrays encoded exactly."""
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): jsonable_telemetry(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable_telemetry(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__opaque__": type(value).__name__}


def decode_telemetry(value: Any) -> Any:
    if is_encoded_array(value):
        return decode_array(value)
    if isinstance(value, dict):
        return {k: decode_telemetry(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_telemetry(v) for v in value]
    return value


@dataclass
class SolveResult:
    """The canonical outcome of a pressure solve on any backend.

    Attributes
    ----------
    pressure:
        Converged pressure field, shaped like the problem grid.
    iterations:
        Linear (CG) iterations performed, summed over Newton steps where
        applicable.
    converged:
        Whether the backend's convergence criterion was met.
    residual_history:
        ``r^T r`` values as the backend observed them, initial residual
        first.
    elapsed_seconds:
        The backend's native notion of solve time: wall clock for the
        host reference, simulated device time for the fabric, modeled
        kernel time for the GPU.  ``telemetry["time_kind"]`` says which.
    backend:
        Registry name of the backend that produced this result.
    telemetry:
        Open mapping of backend-specific extras (e.g. ``trace``,
        ``counters``, ``memory`` for the fabric; ``counters``,
        ``device_bytes`` for the GPU; ``newton_iterations`` for the
        reference).  Keys are backend-defined; consumers must tolerate
        absence.
    """

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str = ""
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def final_rtr(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")

    def summary(self) -> str:
        """One-line human-readable digest (used by examples)."""
        return (
            f"[{self.backend}] {self.iterations} iterations, "
            f"converged={self.converged}, "
            f"elapsed={self.elapsed_seconds:.3e}s, "
            f"pressure in [{float(self.pressure.min()):.4f}, "
            f"{float(self.pressure.max()):.4f}]"
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able encoding that :meth:`from_dict` round-trips —
        pressure bit-exact (base64), telemetry reduced to its JSON-able
        core.  This is the gateway's ``POST /v1/solve`` response body."""
        return {
            "pressure": encode_array(self.pressure),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "residual_history": [float(v) for v in self.residual_history],
            "elapsed_seconds": float(self.elapsed_seconds),
            "backend": self.backend,
            "telemetry": jsonable_telemetry(self.telemetry),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SolveResult":
        return cls(
            pressure=decode_array(data["pressure"]),
            iterations=int(data["iterations"]),
            converged=bool(data["converged"]),
            residual_history=[float(v) for v in data["residual_history"]],
            elapsed_seconds=float(data["elapsed_seconds"]),
            backend=data.get("backend", ""),
            telemetry=decode_telemetry(data.get("telemetry", {})),
        )


@dataclass
class StepResult:
    """One backward-Euler step of a transient simulation.

    The per-step analogue of :class:`SolveResult`: the step's converged
    pressure, its CG cost, and the backend's step telemetry.  ``time`` is
    the physical time *after* the step; ``step`` is 1-based.
    """

    step: int
    time: float
    dt: float
    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str = ""
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def final_rtr(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")

    def summary(self) -> str:
        return (
            f"[{self.backend}] step {self.step} (t={self.time:g}, "
            f"dt={self.dt:g}): {self.iterations} iterations, "
            f"converged={self.converged}"
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able encoding that :meth:`from_dict` round-trips —
        the gateway's WebSocket step-frame payload."""
        return {
            "step": int(self.step),
            "time": float(self.time),
            "dt": float(self.dt),
            "pressure": encode_array(self.pressure),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "residual_history": [float(v) for v in self.residual_history],
            "elapsed_seconds": float(self.elapsed_seconds),
            "backend": self.backend,
            "telemetry": jsonable_telemetry(self.telemetry),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StepResult":
        return cls(
            step=int(data["step"]),
            time=float(data["time"]),
            dt=float(data["dt"]),
            pressure=decode_array(data["pressure"]),
            iterations=int(data["iterations"]),
            converged=bool(data["converged"]),
            residual_history=[float(v) for v in data["residual_history"]],
            elapsed_seconds=float(data["elapsed_seconds"]),
            backend=data.get("backend", ""),
            telemetry=decode_telemetry(data.get("telemetry", {})),
        )


@dataclass
class SimulationResult:
    """The outcome of a transient simulation: an ordered step stack.

    Collects the :class:`StepResult` stream of one ``simulate`` run plus
    run-level telemetry; aggregates (total iterations, summed device
    time) answer the questions a study asks of the whole simulation.
    """

    steps: list[StepResult] = field(default_factory=list)
    backend: str = ""
    telemetry: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        steps: Any,
        *,
        backend: str = "",
        telemetry: dict[str, Any] | None = None,
    ) -> "SimulationResult":
        """Drain a step iterator into a result (the non-streaming path)."""
        out = cls(steps=list(steps), backend=backend, telemetry=dict(telemetry or {}))
        if out.steps:
            if not out.backend:
                out.backend = out.steps[0].backend
            first = out.steps[0].telemetry
            out.telemetry.setdefault("time_kind", first.get("time_kind"))
            if first.get("engine") is not None:
                out.telemetry.setdefault("engine", first.get("engine"))
        return out

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def final_pressure(self) -> np.ndarray:
        return self.steps[-1].pressure

    @property
    def times(self) -> list[float]:
        return [s.time for s in self.steps]

    @property
    def dts(self) -> list[float]:
        return [s.dt for s in self.steps]

    @property
    def per_step_iterations(self) -> list[int]:
        return [s.iterations for s in self.steps]

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.steps)

    @property
    def elapsed_seconds(self) -> float:
        return sum(s.elapsed_seconds for s in self.steps)

    @property
    def converged(self) -> bool:
        return all(s.converged for s in self.steps)

    def summary(self) -> str:
        return (
            f"[{self.backend}] {self.n_steps} steps to t="
            f"{self.times[-1] if self.steps else 0.0:g}, "
            f"{self.total_iterations} total CG iterations, "
            f"converged={self.converged}, "
            f"elapsed={self.elapsed_seconds:.3e}s"
        )

    def to_dict(self) -> dict[str, Any]:
        """The stable serialized face (scalars only, no field arrays) —
        what the golden-schema tests pin and stores/benches may record."""
        return {
            "backend": self.backend,
            "n_steps": self.n_steps,
            "times": [float(t) for t in self.times],
            "dts": [float(dt) for dt in self.dts],
            "per_step_iterations": [int(n) for n in self.per_step_iterations],
            "per_step_converged": [bool(s.converged) for s in self.steps],
            "total_iterations": int(self.total_iterations),
            "converged": bool(self.converged),
            "elapsed_seconds": float(self.elapsed_seconds),
            "time_kind": self.telemetry.get("time_kind"),
            "engine": self.telemetry.get("engine"),
            "warm_start": self.telemetry.get("warm_start"),
        }

    def as_solve_result(self) -> SolveResult:
        """Fold the simulation into one canonical :class:`SolveResult`.

        The final state is the pressure; ``iterations`` and
        ``elapsed_seconds`` aggregate over every step (so plan rows and
        store manifests stay meaningful for multi-step entries);
        ``residual_history`` concatenates the per-step histories;
        ``telemetry["transient"]`` keeps the per-step breakdown.
        """
        if not self.steps:
            raise ValueError("cannot fold an empty simulation")
        history: list[float] = []
        for s in self.steps:
            history.extend(float(v) for v in s.residual_history)
        telemetry = dict(self.telemetry)
        telemetry["transient"] = self.to_dict()
        return SolveResult(
            pressure=self.final_pressure,
            iterations=self.total_iterations,
            converged=self.converged,
            residual_history=history,
            elapsed_seconds=self.elapsed_seconds,
            backend=self.backend,
            telemetry=telemetry,
        )


@runtime_checkable
class SolverBackend(Protocol):
    """The contract every registered backend satisfies.

    ``name`` is the registry key; ``solve`` takes a problem plus a typed,
    validated :class:`~repro.spec.SolveSpec` (``None`` meaning "all
    defaults") and returns a :class:`SolveResult`.  Backends are strict:
    a spec field the machine cannot honour raises
    :class:`~repro.util.errors.ConfigurationError` instead of being
    silently ignored.  Backends are stateless: per-solve state lives
    inside ``solve``.

    Backends that can time-step declare ``supports_transient = True`` and
    implement ``simulate(problem, spec, *, start_step=0, state=None)``
    returning an iterator of :class:`StepResult`; their ``solve`` must
    answer a spec with ``time`` set by folding the simulation via
    :meth:`SimulationResult.as_solve_result` (one signature for steady
    and transient studies).
    """

    name: str

    def solve(
        self, problem: SinglePhaseProblem, spec: Any = None
    ) -> SolveResult:  # pragma: no cover - protocol signature
        ...
