"""Canonical solver result and the backend contract.

Every backend — the NumPy host reference, the wafer-scale dataflow
simulator, the CUDA-like GPU model, and anything registered later —
answers the same question ("solve this pressure problem") through the same
signature and returns the same :class:`SolveResult`.  Backend-specific
riches (fabric traces, instruction counters, memory high-water marks, GPU
DRAM traffic) live in the open ``telemetry`` mapping so cross-backend code
never has to branch on the concrete type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.physics.darcy import SinglePhaseProblem


@dataclass
class SolveResult:
    """The canonical outcome of a pressure solve on any backend.

    Attributes
    ----------
    pressure:
        Converged pressure field, shaped like the problem grid.
    iterations:
        Linear (CG) iterations performed, summed over Newton steps where
        applicable.
    converged:
        Whether the backend's convergence criterion was met.
    residual_history:
        ``r^T r`` values as the backend observed them, initial residual
        first.
    elapsed_seconds:
        The backend's native notion of solve time: wall clock for the
        host reference, simulated device time for the fabric, modeled
        kernel time for the GPU.  ``telemetry["time_kind"]`` says which.
    backend:
        Registry name of the backend that produced this result.
    telemetry:
        Open mapping of backend-specific extras (e.g. ``trace``,
        ``counters``, ``memory`` for the fabric; ``counters``,
        ``device_bytes`` for the GPU; ``newton_iterations`` for the
        reference).  Keys are backend-defined; consumers must tolerate
        absence.
    """

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str = ""
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def final_rtr(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")

    def summary(self) -> str:
        """One-line human-readable digest (used by examples)."""
        return (
            f"[{self.backend}] {self.iterations} iterations, "
            f"converged={self.converged}, "
            f"elapsed={self.elapsed_seconds:.3e}s, "
            f"pressure in [{float(self.pressure.min()):.4f}, "
            f"{float(self.pressure.max()):.4f}]"
        )


@runtime_checkable
class SolverBackend(Protocol):
    """The contract every registered backend satisfies.

    ``name`` is the registry key; ``solve`` takes a problem plus a typed,
    validated :class:`~repro.spec.SolveSpec` (``None`` meaning "all
    defaults") and returns a :class:`SolveResult`.  Backends are strict:
    a spec field the machine cannot honour raises
    :class:`~repro.util.errors.ConfigurationError` instead of being
    silently ignored.  Backends are stateless: per-solve state lives
    inside ``solve``.
    """

    name: str

    def solve(
        self, problem: SinglePhaseProblem, spec: Any = None
    ) -> SolveResult:  # pragma: no cover - protocol signature
        ...
