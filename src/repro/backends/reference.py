"""The vectorized NumPy host reference as a registered backend."""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.backends.base import SolveResult
from repro.physics.darcy import SinglePhaseProblem
from repro.physics.simulation import NewtonReport, newton_solve
from repro.solvers.cg import PAPER_TOLERANCE_RTR
from repro.solvers.preconditioning import linear_solver_for
from repro.spec import SolveSpec, coerce_spec


class ReferenceBackend:
    """Float64 NumPy Newton/CG solve — the numerical ground truth.

    Consumes a :class:`~repro.spec.SolveSpec`: tolerances map onto
    :func:`repro.physics.simulation.newton_solve` (``rel_tol`` is the
    cross-backend spelling of the relative tolerance, forwarded as
    ``newton_rtol``), ``precision.dtype`` defaults to float64, and
    ``preconditioner="jacobi"`` swaps the inner linear solver for the
    diagonally scaled CG.  Machine knobs (fabric specs, SIMD widths,
    block shapes) are rejected — there is no machine here.
    """

    name = "reference"

    #: MachineSpec knobs this backend honours: none — it is the host.
    SUPPORTED_MACHINE_FIELDS: set[str] = set()

    def solve_native(
        self, problem: SinglePhaseProblem, **options: Any
    ) -> NewtonReport:
        """Run the solve and return the legacy :class:`NewtonReport`."""
        options.setdefault("tol_rtr", PAPER_TOLERANCE_RTR)
        rel_tol = options.pop("rel_tol", None)
        if rel_tol is not None:
            options.setdefault("newton_rtol", float(rel_tol))
        return newton_solve(problem, **options)

    def _native_options(
        self, problem: SinglePhaseProblem, spec: SolveSpec
    ) -> dict[str, Any]:
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        options: dict[str, Any] = {
            "tol_rtr": (
                spec.tolerance.tol_rtr
                if spec.tolerance.tol_rtr is not None
                else PAPER_TOLERANCE_RTR
            ),
            "dtype": spec.precision.numpy_dtype(default=np.float64),
        }
        if spec.tolerance.rel_tol is not None:
            options["newton_rtol"] = spec.tolerance.rel_tol
        if spec.tolerance.max_iters is not None:
            options["max_iters"] = spec.tolerance.max_iters
        if spec.preconditioner != "none":
            options["linear_solver"] = linear_solver_for(problem, spec.preconditioner)
        return options

    def solve(self, problem: SinglePhaseProblem, spec: SolveSpec | None = None) -> SolveResult:
        spec = coerce_spec(spec)
        options = self._native_options(problem, spec)
        start = time.perf_counter()
        report = self.solve_native(problem, **options)
        elapsed = time.perf_counter() - start
        history: list[float] = []
        for linear in report.linear_results:
            history.extend(float(v) for v in linear.residual_history)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.total_linear_iterations,
            # newton_solve raises ConvergenceError on failure, so reaching
            # here means the Newton criterion was met.
            converged=True,
            residual_history=history,
            elapsed_seconds=elapsed,
            backend=self.name,
            telemetry={
                "time_kind": "wall_clock",
                "preconditioner": spec.preconditioner,
                "newton_iterations": report.newton_iterations,
                "newton_residual_norms": list(report.residual_norms),
                "linear_results": list(report.linear_results),
            },
        )
