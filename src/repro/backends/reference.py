"""The vectorized NumPy host reference as a registered backend."""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.backends.base import SolveResult
from repro.physics.darcy import SinglePhaseProblem
from repro.physics.simulation import NewtonReport, newton_solve
from repro.solvers.cg import PAPER_TOLERANCE_RTR


class ReferenceBackend:
    """Float64 NumPy Newton/CG solve — the numerical ground truth.

    Options map onto :func:`repro.physics.simulation.newton_solve`;
    ``rel_tol`` is accepted as the cross-backend spelling of the relative
    tolerance and forwarded as ``newton_rtol``.
    """

    name = "reference"

    def solve_native(
        self, problem: SinglePhaseProblem, **options: Any
    ) -> NewtonReport:
        """Run the solve and return the legacy :class:`NewtonReport`."""
        options.setdefault("tol_rtr", PAPER_TOLERANCE_RTR)
        rel_tol = options.pop("rel_tol", None)
        if rel_tol is not None:
            options.setdefault("newton_rtol", float(rel_tol))
        return newton_solve(problem, **options)

    def solve(self, problem: SinglePhaseProblem, **options: Any) -> SolveResult:
        start = time.perf_counter()
        report = self.solve_native(problem, **options)
        elapsed = time.perf_counter() - start
        history: list[float] = []
        for linear in report.linear_results:
            history.extend(float(v) for v in linear.residual_history)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.total_linear_iterations,
            # newton_solve raises ConvergenceError on failure, so reaching
            # here means the Newton criterion was met.
            converged=True,
            residual_history=history,
            elapsed_seconds=elapsed,
            backend=self.name,
            telemetry={
                "time_kind": "wall_clock",
                "newton_iterations": report.newton_iterations,
                "newton_residual_norms": list(report.residual_norms),
                "linear_results": list(report.linear_results),
            },
        )
