"""The vectorized NumPy host reference as a registered backend."""

from __future__ import annotations

import time
from typing import Any, Iterator

import numpy as np

from repro.backends.base import SimulationResult, SolveResult, StepResult
from repro.physics.darcy import SinglePhaseProblem
from repro.physics.simulation import NewtonReport, newton_solve
from repro.solvers.cg import PAPER_TOLERANCE_RTR, conjugate_gradient
from repro.solvers.preconditioning import linear_solver_for, operator_diagonal
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError


class ReferenceBackend:
    """Float64 NumPy Newton/CG solve — the numerical ground truth.

    Consumes a :class:`~repro.spec.SolveSpec`: tolerances map onto
    :func:`repro.physics.simulation.newton_solve` (``rel_tol`` is the
    cross-backend spelling of the relative tolerance, forwarded as
    ``newton_rtol``), ``precision.dtype`` defaults to float64, and
    ``preconditioner`` swaps the inner linear solver — ``"jacobi"`` for
    the diagonally scaled CG, ``"mg"`` for the geometric-multigrid
    PCG.  Machine knobs (fabric specs, SIMD widths,
    block shapes) are rejected — there is no machine here.
    """

    name = "reference"

    #: Transient specs route through the host-side
    #: :class:`~repro.physics.transient.TransientOperator` (the same
    #: backward-Euler system the fabric engines solve).
    supports_transient = True

    #: MachineSpec knobs this backend honours: none — it is the host.
    SUPPORTED_MACHINE_FIELDS: set[str] = set()

    def solve_native(
        self, problem: SinglePhaseProblem, **options: Any
    ) -> NewtonReport:
        """Run the solve and return the legacy :class:`NewtonReport`."""
        options.setdefault("tol_rtr", PAPER_TOLERANCE_RTR)
        rel_tol = options.pop("rel_tol", None)
        if rel_tol is not None:
            options.setdefault("newton_rtol", float(rel_tol))
        return newton_solve(problem, **options)

    def _native_options(
        self, problem: SinglePhaseProblem, spec: SolveSpec
    ) -> dict[str, Any]:
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        options: dict[str, Any] = {
            "tol_rtr": (
                spec.tolerance.tol_rtr
                if spec.tolerance.tol_rtr is not None
                else PAPER_TOLERANCE_RTR
            ),
            "dtype": spec.precision.numpy_dtype(default=np.float64),
        }
        if spec.tolerance.rel_tol is not None:
            options["newton_rtol"] = spec.tolerance.rel_tol
        if spec.tolerance.max_iters is not None:
            options["max_iters"] = spec.tolerance.max_iters
        if spec.preconditioner != "none":
            options["linear_solver"] = linear_solver_for(
                problem,
                spec.preconditioner,
                mg_levels=spec.mg_levels,
                mg_smoother_iters=spec.mg_smoother_iters,
            )
        return options

    def _precond_telemetry(
        self, problem: SinglePhaseProblem, spec: SolveSpec, cycles: int
    ):
        """The telemetry ``preconditioner`` entry: the plain spec string
        for none/jacobi, the structured multigrid record (level shapes,
        sweeps, V-cycle count) for mg — the same shape the fabric
        engines' reports carry."""
        if spec.preconditioner != "mg":
            return spec.preconditioner
        from repro.mg import hierarchy_for_problem

        return hierarchy_for_problem(
            problem,
            accumulation=None,
            levels=spec.mg_levels,
            smoother_iters=spec.mg_smoother_iters,
        ).telemetry(cycles)

    def simulate(
        self,
        problem: SinglePhaseProblem,
        spec: SolveSpec | None = None,
        *,
        start_step: int = 0,
        state: np.ndarray | None = None,
    ) -> Iterator[StepResult]:
        """Stream the backward-Euler steps of ``spec.time``.

        Each step solves ``(J + A) p^{n+1} = A p^n + b_D`` with the host
        CG on the existing :class:`~repro.physics.transient.TransientOperator`
        (Jacobi-scaled when the spec says so); warm starts carry the
        previous step's pressure into the next CG.
        """
        from repro.physics.transient import TransientOperator, TransientStepper
        from repro.solvers.jacobi import jacobi_preconditioned_cg

        spec = coerce_spec(spec)
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        tspec = spec.time
        if tspec is None:
            raise ConfigurationError(
                "simulate needs spec.time (a TimeSpec); use solve() for "
                "steady problems"
            )
        dtype = spec.precision.numpy_dtype(default=np.float64)
        tol_rtr = (
            spec.tolerance.tol_rtr
            if spec.tolerance.tol_rtr is not None
            else PAPER_TOLERANCE_RTR
        )
        rel_tol = spec.tolerance.rel_tol
        max_iters = (
            spec.tolerance.max_iters
            if spec.tolerance.max_iters is not None
            else 10_000
        )
        jacobi = spec.preconditioner == "jacobi"
        mg = spec.preconditioner == "mg"
        if mg:
            from repro.mg import hierarchy_for_problem, mg_preconditioned_cg

        times = tspec.times()
        # The reference works in one precision throughout (float64 by
        # default), so accumulation/rhs arithmetic stays in that dtype.
        stepper = TransientStepper(
            problem,
            dts=tspec.dts(),
            porosity=tspec.porosity,
            total_compressibility=tspec.total_compressibility,
            initial_condition=tspec.initial_condition,
            warm_start=tspec.warm_start,
            start_step=start_step,
            state=state,
            state_dtype=dtype,
            acc_dtype=dtype,
            rhs_dtype=dtype,
        )
        for idx in stepper.pending():
            start = time.perf_counter()
            acc, rhs, x0 = stepper.begin(idx)
            operator = TransientOperator(problem, acc)
            tol = float(tol_rtr)
            if rel_tol is not None:
                r0 = rhs - operator(x0)
                tol = max(tol, rel_tol**2 * float(np.vdot(r0, r0).real))
            hier = None
            if jacobi:
                diagonal = operator_diagonal(problem, dtype=dtype) + acc
                result = jacobi_preconditioned_cg(
                    operator, diagonal, rhs, x0, tol_rtr=tol, max_iters=max_iters
                )
            elif mg:
                # The step's hierarchy folds the backward-Euler diagonal
                # into every level, preconditioning the actual (J + A)
                # system being solved.
                hier = hierarchy_for_problem(
                    problem,
                    accumulation=acc,
                    levels=spec.mg_levels,
                    smoother_iters=spec.mg_smoother_iters,
                )
                result = mg_preconditioned_cg(
                    operator, hier, rhs, x0, tol_rtr=tol, max_iters=max_iters
                )
            else:
                result = conjugate_gradient(
                    operator, rhs, x0=x0, tol_rtr=tol, max_iters=max_iters
                )
            p = result.x
            problem.dirichlet.apply_to(p)
            stepper.advance(p)
            yield StepResult(
                step=idx + 1,
                time=times[idx],
                dt=stepper.dts[idx],
                pressure=p.copy(),
                iterations=result.iterations,
                converged=result.converged,
                residual_history=[float(v) for v in result.residual_history],
                elapsed_seconds=time.perf_counter() - start,
                backend=self.name,
                telemetry={
                    "time_kind": "wall_clock",
                    "preconditioner": (
                        hier.telemetry(result.iterations + 1)
                        if hier is not None
                        else spec.preconditioner
                    ),
                },
            )

    def solve(self, problem: SinglePhaseProblem, spec: SolveSpec | None = None) -> SolveResult:
        spec = coerce_spec(spec)
        if spec.time is not None:
            sim = SimulationResult.collect(
                self.simulate(problem, spec),
                backend=self.name,
                telemetry={
                    "time_kind": "wall_clock",
                    "preconditioner": spec.preconditioner,
                    "warm_start": spec.time.warm_start,
                },
            )
            return sim.as_solve_result()
        options = self._native_options(problem, spec)
        start = time.perf_counter()
        report = self.solve_native(problem, **options)
        elapsed = time.perf_counter() - start
        history: list[float] = []
        for linear in report.linear_results:
            history.extend(float(v) for v in linear.residual_history)
        # One V-cycle seeds each inner PCG solve plus one per iteration.
        cycles = sum(lr.iterations + 1 for lr in report.linear_results)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.total_linear_iterations,
            # newton_solve raises ConvergenceError on failure, so reaching
            # here means the Newton criterion was met.
            converged=True,
            residual_history=history,
            elapsed_seconds=elapsed,
            backend=self.name,
            telemetry={
                "time_kind": "wall_clock",
                "preconditioner": self._precond_telemetry(problem, spec, cycles),
                "newton_iterations": report.newton_iterations,
                "newton_residual_norms": list(report.residual_norms),
                "linear_results": list(report.linear_results),
            },
        )
