"""The simulated wafer-scale dataflow fabric as a registered backend.

The simulator machinery is imported lazily inside ``solve`` so importing
``repro`` (or solving on the reference/GPU paths) never pays for it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import SolveResult
from repro.physics.darcy import SinglePhaseProblem


class WseBackend:
    """Matrix-free CG on the event-driven fabric simulator.

    Options map onto :class:`repro.core.solver.WseMatrixFreeSolver`
    (``spec``, ``dtype``, ``variant``, ``reuse_buffers``, ``simd_width``,
    ``tol_rtr``, ``rel_tol``, ``max_iters``, ``comm_only``,
    ``fixed_iterations``, ``jacobi`` …).  The default :data:`WSE2` spec is
    the full 750×994 CS-2 fabric, so any simulator-scale grid fits.
    """

    name = "wse"

    def solve_native(self, problem: SinglePhaseProblem, **options: Any):
        """Run the solve and return the legacy ``WseSolveReport``."""
        from repro.core.solver import WseMatrixFreeSolver

        return WseMatrixFreeSolver.for_problem(problem, **options).solve()

    def solve(self, problem: SinglePhaseProblem, **options: Any) -> SolveResult:
        report = self.solve_native(problem, **options)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.elapsed_seconds,
            backend=self.name,
            telemetry={
                "time_kind": "simulated_device",
                "trace": report.trace,
                "counters": report.counters,
                "memory": report.memory,
                "state_visits": report.state_visits,
            },
        )
