"""The simulated wafer-scale dataflow fabric as a registered backend.

The simulator machinery is imported lazily inside ``solve`` so importing
``repro`` (or solving on the reference/GPU paths) never pays for it.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.backends.base import SimulationResult, SolveResult, StepResult
from repro.physics.darcy import SinglePhaseProblem
from repro.spec import SolveSpec, TimeSpec, coerce_spec
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs


class WseBackend:
    """Matrix-free CG on the event-driven fabric simulator.

    Consumes a :class:`~repro.spec.SolveSpec`: ``machine.spec`` is the
    :class:`WseSpecs` target (default :data:`WSE2`, the full 750×994 CS-2
    fabric, so any simulator-scale grid fits), ``machine.engine`` selects
    the fabric execution engine (``"event"``, the per-PE discrete-event
    oracle and the default; ``"vectorized"``, whole-fabric NumPy
    sweeps for paper-scale fabrics; ``"sharded"``, the vectorized
    numerics domain-decomposed over a worker pool — ``shard_shape``
    picks the decomposition; or ``"fused"``, the vectorized numerics
    as cache-blocked single-pass CG sweeps — ``fused_tile`` picks the
    tile, and also routes sharded workers through the tiled kernel),
    plus the dataflow design knobs
    ``simd_width`` (§III-E.3), ``variant`` (precomputed ``c = Υλ`` vs.
    in-kernel mobility fusion), ``reuse_buffers`` (§III-E.1),
    ``comm_only``/``fixed_iterations`` (§V-C's Table IV methodology) and
    ``preconditioner`` — ``"jacobi"`` (purely PE-local diagonal scaling)
    or ``"mg"`` (host-assisted geometric multigrid V-cycle, charged
    through the shared packet builders; ``mg_levels`` /
    ``mg_smoother_iters`` tune the hierarchy).
    ``block_shape`` belongs to the GPU and is rejected here.
    """

    name = "wse"

    #: This backend answers ``spec.time`` natively: the transient kernel
    #: (accumulation FMA) runs on either fabric engine, batched included.
    supports_transient = True

    #: MachineSpec knobs this backend honours.
    SUPPORTED_MACHINE_FIELDS = {
        "spec", "engine", "simd_width", "variant", "reuse_buffers",
        "comm_only", "fixed_iterations", "batch_size", "shard_shape",
        "fused_tile",
    }

    @staticmethod
    def _require_batch_capable(engine: str | None) -> None:
        """Reject multi-problem entry points on single-problem engines
        (an unset engine defaults to ``"vectorized"`` when batching)."""
        from repro.core.engines import BATCH_CAPABLE_ENGINES

        if (engine or "vectorized") not in BATCH_CAPABLE_ENGINES:
            raise ConfigurationError(
                f"engine {engine!r} runs one problem at a time; batched "
                f"execution requires one of "
                f"{', '.join(BATCH_CAPABLE_ENGINES)} (or an unset engine)"
            )

    def solve_native(self, problem: SinglePhaseProblem, **options: Any):
        """Run the solve and return the legacy ``WseSolveReport``."""
        from repro.core.solver import WseMatrixFreeSolver

        return WseMatrixFreeSolver.for_problem(problem, **options).solve()

    def _native_options(self, spec: SolveSpec) -> dict[str, Any]:
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        machine = spec.machine
        if machine.spec is not None and not isinstance(machine.spec, WseSpecs):
            raise ConfigurationError(
                f"backend {self.name!r} needs machine.spec to be a WseSpecs, "
                f"got {type(machine.spec).__name__}"
            )
        options: dict[str, Any] = {
            "dtype": spec.precision.numpy_dtype(default=np.float32),
            "preconditioner": spec.preconditioner,
        }
        if spec.mg_levels is not None:
            options["mg_levels"] = spec.mg_levels
        if spec.mg_smoother_iters is not None:
            options["mg_smoother_iters"] = spec.mg_smoother_iters
        if machine.spec is not None:
            options["spec"] = machine.spec
        if machine.engine is not None:
            options["engine"] = machine.engine
        if machine.simd_width is not None:
            options["simd_width"] = machine.simd_width
        if machine.variant is not None:
            options["variant"] = machine.variant
        if machine.reuse_buffers is not None:
            options["reuse_buffers"] = machine.reuse_buffers
        if machine.comm_only:
            options["comm_only"] = True
        if machine.fixed_iterations is not None:
            options["fixed_iterations"] = machine.fixed_iterations
        if machine.shard_shape is not None:
            options["shard_shape"] = machine.shard_shape
        if machine.fused_tile is not None:
            options["fused_tile"] = machine.fused_tile
        if spec.tolerance.tol_rtr is not None:
            options["tol_rtr"] = spec.tolerance.tol_rtr
        if spec.tolerance.rel_tol is not None:
            options["rel_tol"] = spec.tolerance.rel_tol
        if spec.tolerance.max_iters is not None:
            options["max_iters"] = spec.tolerance.max_iters
        return options

    def _telemetry_from_report(
        self, report, spec: SolveSpec, extra_telemetry: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        # Telemetry carries stable to_dict() summaries, not live simulator
        # objects: ResultStore manifests, bench JSON and pickled
        # process-pool results stay serializable and small.  The native
        # path (solve_native) still returns the live WseSolveReport.
        # mg reports carry a structured preconditioner record (levels,
        # sweeps, V-cycle count); none/jacobi stay the plain spec string.
        precond = getattr(report, "preconditioner", None)
        telemetry: dict[str, Any] = {
            "time_kind": "simulated_device",
            "preconditioner": (
                precond if precond is not None else spec.preconditioner
            ),
            "engine": report.engine,
            "trace": report.trace.to_dict(),
            "counters": report.counters.to_dict(),
            "memory": dict(report.memory),
            "state_visits": [state.name for state in report.state_visits],
        }
        shard = getattr(report, "shard", None)
        if shard is not None:
            telemetry["shard"] = shard
        fused = getattr(report, "fused", None)
        if fused is not None:
            telemetry["fused"] = fused
        if extra_telemetry:
            telemetry.update(extra_telemetry)
        return telemetry

    def _result_from_report(
        self, report, spec: SolveSpec, extra_telemetry: dict[str, Any] | None = None
    ) -> SolveResult:
        telemetry = self._telemetry_from_report(report, spec, extra_telemetry)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.elapsed_seconds,
            backend=self.name,
            telemetry=telemetry,
        )

    def solve(self, problem: SinglePhaseProblem, spec: SolveSpec | None = None) -> SolveResult:
        spec = coerce_spec(spec)
        machine = spec.machine
        if machine.batch_size is not None:
            from repro.core.engines import BATCH_CAPABLE_ENGINES

            # In a single solve the engine default is the event oracle,
            # which plays one problem at a time and cannot honour a
            # batching knob; the sharded engine spends its parallelism
            # across the fabric, not across problems.
            if (machine.engine or "event") not in BATCH_CAPABLE_ENGINES:
                raise ConfigurationError(
                    f"machine.batch_size needs a batch-capable engine "
                    f"({', '.join(BATCH_CAPABLE_ENGINES)}); engine="
                    f"{(machine.engine or 'event')!r} plays one problem "
                    f"at a time (set engine='vectorized' or "
                    f"engine='fused', or drop batch_size)"
                )
        if spec.time is not None:
            # Transient study: one signature for steady and time-dependent
            # targets — the simulation folds into a canonical SolveResult
            # (final state; aggregate iterations/device time; per-step
            # breakdown under telemetry["transient"]).
            return self._collect_simulation(
                self.simulate(problem, spec), spec
            ).as_solve_result()
        report = self.solve_native(problem, **self._native_options(spec))
        return self._result_from_report(report, spec)

    # -- transient time stepping ----------------------------------------------

    def _transient_options(self, spec: SolveSpec) -> tuple[TimeSpec, dict[str, Any]]:
        """Validated native options for a transient run (shared by the
        streaming and batched paths)."""
        time = spec.time
        if time is None:
            raise ConfigurationError(
                "simulate needs spec.time (a TimeSpec); use solve() for "
                "steady problems"
            )
        if spec.machine.comm_only:
            raise ConfigurationError(
                "comm_only suppresses arithmetic, so a transient schedule "
                "has no state to advance; drop comm_only or spec.time"
            )
        options = self._native_options(spec)
        options.pop("comm_only", None)
        options.update(
            porosity=time.porosity,
            total_compressibility=time.total_compressibility,
            initial_condition=time.initial_condition,
            warm_start=time.warm_start,
        )
        return time, options

    def _step_from_report(
        self,
        report,
        spec: SolveSpec,
        *,
        step: int,
        time: float,
        dt: float,
        extra_telemetry: dict[str, Any] | None = None,
    ) -> StepResult:
        return StepResult(
            step=step,
            time=time,
            dt=dt,
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.elapsed_seconds,
            backend=self.name,
            telemetry=self._telemetry_from_report(report, spec, extra_telemetry),
        )

    def _collect_simulation(
        self, steps: Iterator[StepResult], spec: SolveSpec
    ) -> SimulationResult:
        sim = SimulationResult.collect(steps, backend=self.name)
        assert spec.time is not None
        sim.telemetry.update(
            time_kind="simulated_device",
            preconditioner=spec.preconditioner,
            engine=(
                sim.steps[0].telemetry.get("engine")
                if sim.steps
                else spec.machine.engine
            ),
            warm_start=spec.time.warm_start,
        )
        return sim

    def simulate(
        self,
        problem: SinglePhaseProblem,
        spec: SolveSpec | None = None,
        *,
        start_step: int = 0,
        state: np.ndarray | None = None,
    ) -> Iterator[StepResult]:
        """Stream the backward-Euler steps of ``spec.time`` as
        :class:`StepResult`\\ s.

        Each step runs the transient CG program (flux stencil plus the
        accumulation FMA) on the spec's fabric engine; warm starts carry
        the previous step's pressure into the next step's CG.
        ``start_step``/``state`` resume an interrupted schedule (the
        :class:`~repro.session.ResultStore` resume path).
        """
        from repro.core.solver import simulate_reports

        spec = coerce_spec(spec)
        time, options = self._transient_options(spec)
        dts, times = time.dts(), time.times()
        reports = simulate_reports(
            problem, dts=dts, start_step=start_step, state=state, **options
        )
        for offset, report in enumerate(reports):
            idx = start_step + offset
            yield self._step_from_report(
                report, spec, step=idx + 1, time=times[idx], dt=dts[idx]
            )

    def simulate_batch(
        self,
        problems: list[SinglePhaseProblem],
        spec: SolveSpec | None = None,
        *,
        start_step: int = 0,
        states=None,
    ) -> list[SimulationResult]:
        """Time-step many same-shape realizations together.

        Every step is one fused ``(batch, nx, ny, nz)`` program with
        per-lane accumulation/rhs/warm-start/tolerance and per-lane
        convergence masking; each realization comes back as its own
        :class:`SimulationResult` whose per-step counters equal a serial
        vectorized simulation of that realization alone.
        """
        from repro.core.solver import simulate_reports_batch

        spec = coerce_spec(spec)
        problems = list(problems)
        if not problems:
            return []
        machine = spec.machine
        self._require_batch_capable(machine.engine)
        time, options = self._transient_options(spec)
        options["engine"] = machine.engine or "vectorized"
        dts, times = time.dts(), time.times()
        n = len(problems)
        size = machine.batch_size or n
        lane_steps: list[list[StepResult]] = [[] for _ in problems]
        step_lists = simulate_reports_batch(
            problems,
            dts=dts,
            start_step=start_step,
            states=states,
            batch_size=machine.batch_size,
            **options,
        )
        for offset, reports in enumerate(step_lists):
            idx = start_step + offset
            for lane, report in enumerate(reports):
                chunk_start = (lane // size) * size
                lane_steps[lane].append(
                    self._step_from_report(
                        report,
                        spec,
                        step=idx + 1,
                        time=times[idx],
                        dt=dts[idx],
                        extra_telemetry={
                            "batch": {
                                "size": min(size, n - chunk_start),
                                "lane": lane - chunk_start,
                            },
                        },
                    )
                )
        return [
            self._collect_simulation(iter(steps), spec) for steps in lane_steps
        ]

    def solve_batch(
        self, problems: list[SinglePhaseProblem], spec: SolveSpec | None = None
    ) -> list[SolveResult]:
        """Solve many independent problems as fused ``(batch, nx, ny,
        nz)`` NumPy sweeps on the vectorized engine.

        All problems must share one grid shape.  ``machine.batch_size``
        caps lanes per fused program (``None`` fuses everything);
        ``machine.engine`` may be omitted (batching implies
        ``"vectorized"``) but ``"event"`` is rejected.  Results come
        back in input order; each carries ``telemetry["engine"] ==
        "batched"`` plus a ``telemetry["batch"]`` record (fused-chunk
        size and lane) so batched and serial results stay
        distinguishable, and per-problem counters identical to a serial
        vectorized solve of that problem.
        """
        from repro.core.solver import solve_batch

        spec = coerce_spec(spec)
        problems = list(problems)
        if not problems:
            return []
        machine = spec.machine
        self._require_batch_capable(machine.engine)
        if spec.time is not None:
            # Batched transient: N realizations time-step together; each
            # folds into its own canonical SolveResult.
            return [
                sim.as_solve_result()
                for sim in self.simulate_batch(problems, spec)
            ]
        options = dict(self._native_options(spec))
        options["engine"] = machine.engine or "vectorized"
        reports = solve_batch(
            problems, batch_size=machine.batch_size, **options
        )
        # Chunk boundaries are deterministic (input order, fixed chunk
        # width), so each report's fused-chunk size and lane follow from
        # its index.
        n = len(problems)
        size = machine.batch_size or n
        results: list[SolveResult] = []
        for index, report in enumerate(reports):
            chunk_start = (index // size) * size
            results.append(
                self._result_from_report(
                    report, spec,
                    extra_telemetry={
                        "batch": {
                            "size": min(size, n - chunk_start),
                            "lane": index - chunk_start,
                        },
                    },
                )
            )
        return results
