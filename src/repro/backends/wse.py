"""The simulated wafer-scale dataflow fabric as a registered backend.

The simulator machinery is imported lazily inside ``solve`` so importing
``repro`` (or solving on the reference/GPU paths) never pays for it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import SolveResult
from repro.physics.darcy import SinglePhaseProblem
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs


class WseBackend:
    """Matrix-free CG on the event-driven fabric simulator.

    Consumes a :class:`~repro.spec.SolveSpec`: ``machine.spec`` is the
    :class:`WseSpecs` target (default :data:`WSE2`, the full 750×994 CS-2
    fabric, so any simulator-scale grid fits), ``machine.engine`` selects
    the fabric execution engine (``"event"``, the per-PE discrete-event
    oracle and the default; or ``"vectorized"``, whole-fabric NumPy
    sweeps for paper-scale fabrics), plus the dataflow design knobs
    ``simd_width`` (§III-E.3), ``variant`` (precomputed ``c = Υλ`` vs.
    in-kernel mobility fusion), ``reuse_buffers`` (§III-E.1),
    ``comm_only``/``fixed_iterations`` (§V-C's Table IV methodology) and
    ``preconditioner="jacobi"`` (purely PE-local diagonal scaling).
    ``block_shape`` belongs to the GPU and is rejected here.
    """

    name = "wse"

    #: MachineSpec knobs this backend honours.
    SUPPORTED_MACHINE_FIELDS = {
        "spec", "engine", "simd_width", "variant", "reuse_buffers",
        "comm_only", "fixed_iterations", "batch_size",
    }

    def solve_native(self, problem: SinglePhaseProblem, **options: Any):
        """Run the solve and return the legacy ``WseSolveReport``."""
        from repro.core.solver import WseMatrixFreeSolver

        return WseMatrixFreeSolver.for_problem(problem, **options).solve()

    def _native_options(self, spec: SolveSpec) -> dict[str, Any]:
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        machine = spec.machine
        if machine.spec is not None and not isinstance(machine.spec, WseSpecs):
            raise ConfigurationError(
                f"backend {self.name!r} needs machine.spec to be a WseSpecs, "
                f"got {type(machine.spec).__name__}"
            )
        options: dict[str, Any] = {
            "dtype": spec.precision.numpy_dtype(default=np.float32),
            "jacobi": spec.preconditioner == "jacobi",
        }
        if machine.spec is not None:
            options["spec"] = machine.spec
        if machine.engine is not None:
            options["engine"] = machine.engine
        if machine.simd_width is not None:
            options["simd_width"] = machine.simd_width
        if machine.variant is not None:
            options["variant"] = machine.variant
        if machine.reuse_buffers is not None:
            options["reuse_buffers"] = machine.reuse_buffers
        if machine.comm_only:
            options["comm_only"] = True
        if machine.fixed_iterations is not None:
            options["fixed_iterations"] = machine.fixed_iterations
        if spec.tolerance.tol_rtr is not None:
            options["tol_rtr"] = spec.tolerance.tol_rtr
        if spec.tolerance.rel_tol is not None:
            options["rel_tol"] = spec.tolerance.rel_tol
        if spec.tolerance.max_iters is not None:
            options["max_iters"] = spec.tolerance.max_iters
        return options

    def _result_from_report(
        self, report, spec: SolveSpec, extra_telemetry: dict[str, Any] | None = None
    ) -> SolveResult:
        # Telemetry carries stable to_dict() summaries, not live simulator
        # objects: ResultStore manifests, bench JSON and pickled
        # process-pool results stay serializable and small.  The native
        # path (solve_native) still returns the live WseSolveReport.
        telemetry: dict[str, Any] = {
            "time_kind": "simulated_device",
            "preconditioner": spec.preconditioner,
            "engine": report.engine,
            "trace": report.trace.to_dict(),
            "counters": report.counters.to_dict(),
            "memory": dict(report.memory),
            "state_visits": [state.name for state in report.state_visits],
        }
        if extra_telemetry:
            telemetry.update(extra_telemetry)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.elapsed_seconds,
            backend=self.name,
            telemetry=telemetry,
        )

    def solve(self, problem: SinglePhaseProblem, spec: SolveSpec | None = None) -> SolveResult:
        spec = coerce_spec(spec)
        machine = spec.machine
        if machine.batch_size is not None and (machine.engine or "event") == "event":
            # In a single solve the engine default is the event oracle,
            # which plays one problem at a time and cannot honour a
            # batching knob.
            raise ConfigurationError(
                "machine.batch_size needs the vectorized engine; the "
                "event-driven oracle plays one problem at a time "
                "(set engine='vectorized' or drop batch_size)"
            )
        report = self.solve_native(problem, **self._native_options(spec))
        return self._result_from_report(report, spec)

    def solve_batch(
        self, problems: list[SinglePhaseProblem], spec: SolveSpec | None = None
    ) -> list[SolveResult]:
        """Solve many independent problems as fused ``(batch, nx, ny,
        nz)`` NumPy sweeps on the vectorized engine.

        All problems must share one grid shape.  ``machine.batch_size``
        caps lanes per fused program (``None`` fuses everything);
        ``machine.engine`` may be omitted (batching implies
        ``"vectorized"``) but ``"event"`` is rejected.  Results come
        back in input order; each carries ``telemetry["engine"] ==
        "batched"`` plus a ``telemetry["batch"]`` record (fused-chunk
        size and lane) so batched and serial results stay
        distinguishable, and per-problem counters identical to a serial
        vectorized solve of that problem.
        """
        from repro.core.solver import solve_batch

        spec = coerce_spec(spec)
        problems = list(problems)
        if not problems:
            return []
        machine = spec.machine
        if (machine.engine or "vectorized") == "event":
            raise ConfigurationError(
                "the event-driven engine runs one problem at a time; "
                "batched execution requires engine='vectorized' (or an "
                "unset engine)"
            )
        options = dict(self._native_options(spec))
        options["engine"] = machine.engine or "vectorized"
        reports = solve_batch(
            problems, batch_size=machine.batch_size, **options
        )
        # Chunk boundaries are deterministic (input order, fixed chunk
        # width), so each report's fused-chunk size and lane follow from
        # its index.
        n = len(problems)
        size = machine.batch_size or n
        results: list[SolveResult] = []
        for index, report in enumerate(reports):
            chunk_start = (index // size) * size
            results.append(
                self._result_from_report(
                    report, spec,
                    extra_telemetry={
                        "batch": {
                            "size": min(size, n - chunk_start),
                            "lane": index - chunk_start,
                        },
                    },
                )
            )
        return results
