"""The CUDA-like GPU reference model as a registered backend."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import SolveResult
from repro.gpu.specs import GpuSpecs
from repro.physics.darcy import SinglePhaseProblem
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError


class GpuBackend:
    """Matrix-free CG driven through the device-model kernels.

    Consumes a :class:`~repro.spec.SolveSpec`: ``machine.spec`` is the
    :class:`GpuSpecs` target (default: the paper's A100),
    ``machine.block_shape`` the CUDA thread-block shape, plus tolerances,
    precision and ``fixed_iterations``.  Dataflow-only knobs
    (``simd_width``, ``variant``, ``reuse_buffers``, ``comm_only``) and
    the Jacobi preconditioner (not implemented in the device-model CG)
    are rejected.  ``elapsed_seconds`` is the calibrated timing model
    applied to the run's measured DRAM traffic, never Python wall clock.
    """

    name = "gpu"

    #: MachineSpec knobs this backend honours.
    SUPPORTED_MACHINE_FIELDS = {"spec", "block_shape", "fixed_iterations"}

    def solve_native(self, problem: SinglePhaseProblem, **options: Any):
        """Run the solve and return the legacy ``GpuSolveReport``."""
        from repro.gpu.cg import GpuCGSolver

        return GpuCGSolver.for_problem(problem, **options).solve()

    def _native_options(self, spec: SolveSpec) -> dict[str, Any]:
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        machine = spec.machine
        if machine.spec is not None and not isinstance(machine.spec, GpuSpecs):
            raise ConfigurationError(
                f"backend {self.name!r} needs machine.spec to be a GpuSpecs, "
                f"got {type(machine.spec).__name__}"
            )
        if spec.preconditioner != "none":
            raise ConfigurationError(
                f"backend {self.name!r} does not support "
                f"preconditioner={spec.preconditioner!r}; the device-model CG "
                f"is unpreconditioned (Algorithm 1)"
            )
        options: dict[str, Any] = {
            "dtype": spec.precision.numpy_dtype(default=np.float32),
        }
        if machine.spec is not None:
            options["specs"] = machine.spec
        if machine.block_shape is not None:
            from repro.gpu.model import BlockShape

            options["block_shape"] = BlockShape(*machine.block_shape)
        if machine.fixed_iterations is not None:
            options["fixed_iterations"] = machine.fixed_iterations
        if spec.tolerance.tol_rtr is not None:
            options["tol_rtr"] = spec.tolerance.tol_rtr
        if spec.tolerance.rel_tol is not None:
            options["rel_tol"] = spec.tolerance.rel_tol
        if spec.tolerance.max_iters is not None:
            options["max_iters"] = spec.tolerance.max_iters
        return options

    def solve(self, problem: SinglePhaseProblem, spec: SolveSpec | None = None) -> SolveResult:
        spec = coerce_spec(spec)
        report = self.solve_native(problem, **self._native_options(spec))
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.modeled_seconds,
            backend=self.name,
            telemetry={
                "time_kind": "modeled_kernel",
                "preconditioner": spec.preconditioner,
                "counters": report.counters,
                "device_bytes": report.device_bytes,
            },
        )
