"""The CUDA-like GPU reference model as a registered backend."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import SolveResult
from repro.physics.darcy import SinglePhaseProblem


class GpuBackend:
    """Matrix-free CG driven through the device-model kernels.

    Options map onto :class:`repro.gpu.cg.GpuCGSolver` (``specs``,
    ``timing``, ``block_shape``, ``dtype``, ``tol_rtr``, ``rel_tol``,
    ``max_iters``, ``fixed_iterations``).  ``elapsed_seconds`` is the
    calibrated timing model applied to the run's measured DRAM traffic,
    never Python wall clock.
    """

    name = "gpu"

    def solve_native(self, problem: SinglePhaseProblem, **options: Any):
        """Run the solve and return the legacy ``GpuSolveReport``."""
        from repro.gpu.cg import GpuCGSolver

        return GpuCGSolver.for_problem(problem, **options).solve()

    def solve(self, problem: SinglePhaseProblem, **options: Any) -> SolveResult:
        report = self.solve_native(problem, **options)
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.modeled_seconds,
            backend=self.name,
            telemetry={
                "time_kind": "modeled_kernel",
                "counters": report.counters,
                "device_bytes": report.device_bytes,
            },
        )
