"""The CUDA-like GPU reference model as a registered backend."""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.backends.base import SimulationResult, SolveResult, StepResult
from repro.gpu.specs import GpuSpecs
from repro.physics.darcy import SinglePhaseProblem
from repro.spec import SolveSpec, coerce_spec
from repro.util.errors import ConfigurationError


class GpuBackend:
    """Matrix-free CG driven through the device-model kernels.

    Consumes a :class:`~repro.spec.SolveSpec`: ``machine.spec`` is the
    :class:`GpuSpecs` target (default: the paper's A100),
    ``machine.block_shape`` the CUDA thread-block shape, plus tolerances,
    precision and ``fixed_iterations``.  Dataflow-only knobs
    (``simd_width``, ``variant``, ``reuse_buffers``, ``comm_only``) and
    the Jacobi preconditioner (not implemented in the device-model CG)
    are rejected.  ``elapsed_seconds`` is the calibrated timing model
    applied to the run's measured DRAM traffic, never Python wall clock.
    """

    name = "gpu"

    #: Transient specs run natively: the accumulation diagonal rides
    #: on-device and every apply fuses one extra elementwise FMA launch.
    supports_transient = True

    #: MachineSpec knobs this backend honours.
    SUPPORTED_MACHINE_FIELDS = {"spec", "block_shape", "fixed_iterations"}

    def solve_native(self, problem: SinglePhaseProblem, **options: Any):
        """Run the solve and return the legacy ``GpuSolveReport``."""
        from repro.gpu.cg import GpuCGSolver

        return GpuCGSolver.for_problem(problem, **options).solve()

    def _native_options(self, spec: SolveSpec) -> dict[str, Any]:
        spec.require_machine_support(self.name, self.SUPPORTED_MACHINE_FIELDS)
        machine = spec.machine
        if machine.spec is not None and not isinstance(machine.spec, GpuSpecs):
            raise ConfigurationError(
                f"backend {self.name!r} needs machine.spec to be a GpuSpecs, "
                f"got {type(machine.spec).__name__}"
            )
        if spec.preconditioner != "none":
            raise ConfigurationError(
                f"backend {self.name!r} does not support "
                f"preconditioner={spec.preconditioner!r}; the device-model CG "
                f"is unpreconditioned (Algorithm 1)"
            )
        options: dict[str, Any] = {
            "dtype": spec.precision.numpy_dtype(default=np.float32),
        }
        if machine.spec is not None:
            options["specs"] = machine.spec
        if machine.block_shape is not None:
            from repro.gpu.model import BlockShape

            options["block_shape"] = BlockShape(*machine.block_shape)
        if machine.fixed_iterations is not None:
            options["fixed_iterations"] = machine.fixed_iterations
        if spec.tolerance.tol_rtr is not None:
            options["tol_rtr"] = spec.tolerance.tol_rtr
        if spec.tolerance.rel_tol is not None:
            options["rel_tol"] = spec.tolerance.rel_tol
        if spec.tolerance.max_iters is not None:
            options["max_iters"] = spec.tolerance.max_iters
        return options

    def simulate(
        self,
        problem: SinglePhaseProblem,
        spec: SolveSpec | None = None,
        *,
        start_step: int = 0,
        state: np.ndarray | None = None,
    ) -> Iterator[StepResult]:
        """Stream the backward-Euler steps of ``spec.time`` on the
        device model: per step, the matrix-free CG with the accumulation
        FMA fused into every operator apply, timed by the calibrated
        traffic model."""
        import dataclasses

        from repro.gpu.cg import GpuCGSolver
        from repro.physics.transient import TransientStepper

        spec = coerce_spec(spec)
        tspec = spec.time
        if tspec is None:
            raise ConfigurationError(
                "simulate needs spec.time (a TimeSpec); use solve() for "
                "steady problems"
            )
        options = self._native_options(spec)
        times = tspec.times()
        stepper = TransientStepper(
            problem,
            dts=tspec.dts(),
            porosity=tspec.porosity,
            total_compressibility=tspec.total_compressibility,
            initial_condition=tspec.initial_condition,
            warm_start=tspec.warm_start,
            start_step=start_step,
            state=state,
            state_dtype=options["dtype"],
        )
        for idx in stepper.pending():
            acc, rhs, x0 = stepper.begin(idx)
            solver = GpuCGSolver.for_problem(
                problem,
                accumulation=acc,
                rhs=rhs,
                initial_pressure=x0,
                **options,
            )
            report = solver.solve()
            stepper.advance(report.pressure)
            yield StepResult(
                step=idx + 1,
                time=times[idx],
                dt=stepper.dts[idx],
                pressure=np.array(report.pressure, copy=True),
                iterations=report.iterations,
                converged=report.converged,
                residual_history=[float(v) for v in report.residual_history],
                elapsed_seconds=report.modeled_seconds,
                backend=self.name,
                telemetry={
                    # Stable JSON-able summaries, not live device objects
                    # (the same convention as the fabric backend).
                    "time_kind": "modeled_kernel",
                    "preconditioner": spec.preconditioner,
                    "counters": dataclasses.asdict(report.counters),
                    "device_bytes": int(report.device_bytes),
                },
            )

    def solve(self, problem: SinglePhaseProblem, spec: SolveSpec | None = None) -> SolveResult:
        spec = coerce_spec(spec)
        if spec.time is not None:
            sim = SimulationResult.collect(
                self.simulate(problem, spec),
                backend=self.name,
                telemetry={
                    "time_kind": "modeled_kernel",
                    "preconditioner": spec.preconditioner,
                    "warm_start": spec.time.warm_start,
                },
            )
            return sim.as_solve_result()
        report = self.solve_native(problem, **self._native_options(spec))
        return SolveResult(
            pressure=np.asarray(report.pressure),
            iterations=report.iterations,
            converged=report.converged,
            residual_history=[float(v) for v in report.residual_history],
            elapsed_seconds=report.modeled_seconds,
            backend=self.name,
            telemetry={
                "time_kind": "modeled_kernel",
                "preconditioner": spec.preconditioner,
                "counters": report.counters,
                "device_bytes": report.device_bytes,
            },
        )
