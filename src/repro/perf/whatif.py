"""What-if projections: the calibrated models applied to hypothetical
machines (the "post-exascale" direction the paper's §II-C cites).

With the CS-2 model calibrated, we can ask the questions a follow-up
study would: what does a bigger wafer, a faster clock, wider SIMD or a
deeper-memory PE buy for this kernel?  The projections keep the
calibrated per-hop and per-instruction constants and scale only the
stated machine parameters — they are *model extrapolations*, clearly not
measurements, and are labelled as such by the bench that prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perf.memmodel import PeMemoryModel, SCALAR_RESERVE_BYTES
from repro.perf.timemodel import Cs2TimeModel
from repro.util.errors import ConfigurationError
from repro.wse.specs import WSE2, WseSpecs


@dataclass(frozen=True)
class WhatIfScenario:
    """A hypothetical machine derived from the CS-2 baseline.

    Attributes scale the respective baseline parameter (1.0 = CS-2).
    """

    name: str
    fabric_scale: float = 1.0  # linear scale on width and height
    clock_scale: float = 1.0
    simd_scale: float = 1.0
    memory_scale: float = 1.0  # per-PE memory

    def apply(self, base: WseSpecs = WSE2) -> WseSpecs:
        if min(self.fabric_scale, self.clock_scale, self.simd_scale,
               self.memory_scale) <= 0:
            raise ConfigurationError("scenario scales must be > 0")
        width = max(1, int(round(base.fabric_width * self.fabric_scale)))
        height = max(1, int(round(base.fabric_height * self.fabric_scale)))
        simd = max(1, int(round(base.simd_width_f32 * self.simd_scale)))
        clock = base.clock_hz * self.clock_scale
        peak = simd * 2.0 * clock * width * height
        return WseSpecs(
            name=f"{base.name} [{self.name}]",
            fabric_width=width,
            fabric_height=height,
            pe_memory_bytes=int(base.pe_memory_bytes * self.memory_scale),
            clock_hz=clock,
            simd_width_f32=simd,
            peak_flops=peak,
            memory_bandwidth_bytes=base.memory_bandwidth_bytes
            * self.fabric_scale**2 * self.clock_scale,
            fabric_bandwidth_bytes=base.fabric_bandwidth_bytes
            * self.fabric_scale**2 * self.clock_scale,
        )


#: Scenarios a follow-up study would table.
DEFAULT_SCENARIOS = (
    WhatIfScenario("baseline CS-2"),
    WhatIfScenario("2x clock", clock_scale=2.0),
    WhatIfScenario("4-wide SIMD", simd_scale=2.0),
    WhatIfScenario("2x wafer (linear)", fabric_scale=2.0),
    WhatIfScenario("2x PE memory", memory_scale=2.0),
    WhatIfScenario("all of the above", fabric_scale=2.0, clock_scale=2.0,
                   simd_scale=2.0, memory_scale=2.0),
)


@dataclass(frozen=True)
class WhatIfProjection:
    """Model outputs for one scenario on the paper's workload."""

    scenario: WhatIfScenario
    spec: WseSpecs
    alg1_time_s: float
    alg2_time_s: float
    max_depth: int
    max_cells: int

    @property
    def speedup_vs_baseline_shape(self) -> float:
        """Filled in by :func:`project` relative to the first scenario."""
        return self._speedup  # type: ignore[attr-defined]


def project(
    scenarios=DEFAULT_SCENARIOS,
    *,
    iterations: int = 225,
    nz: int = 922,
) -> list[dict]:
    """Project the paper's largest run onto each scenario.

    The per-PE work (nz cells) and iteration count are held fixed; the
    fabric extent of the run scales with the machine (weak scaling, as in
    Table III).  Returns row dictionaries ready for tabulation.
    """
    base_model = Cs2TimeModel.calibrated()
    rows: list[dict] = []
    baseline_time = None
    for scenario in scenarios:
        spec = scenario.apply()
        # The calibrated constants are per-cycle quantities; they carry
        # over. SIMD scaling enters the kernel cycle count directly.
        model = Cs2TimeModel(
            spec=spec,
            issue_factor=base_model.issue_factor,
            collective_base_cycles=base_model.collective_base_cycles,
            collective_hop_cycles=base_model.collective_hop_cycles,
            comm_wire_factor=base_model.comm_wire_factor,
        )
        depth_model = PeMemoryModel(spec=spec)
        max_depth = depth_model.max_depth()
        run_nz = min(nz, max_depth)
        t_alg2 = model.total_time_alg2(run_nz, iterations)
        t_alg1 = model.total_time_alg1(
            spec.fabric_width, spec.fabric_height, run_nz, iterations
        )
        max_cells = spec.fabric_width * spec.fabric_height * max_depth
        if baseline_time is None:
            baseline_time = t_alg1
        rows.append(
            {
                "scenario": scenario.name,
                "fabric": f"{spec.fabric_width}x{spec.fabric_height}",
                "nz_run": run_nz,
                "alg2_s": t_alg2,
                "alg1_s": t_alg1,
                "speedup": baseline_time / t_alg1,
                "max_depth": max_depth,
                "max_cells": max_cells,
                "peak_pflops": spec.peak_flops / 1e15,
            }
        )
    return rows
