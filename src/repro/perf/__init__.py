"""Performance models: op counts (Table V), CS-2 time model, rooflines.

Everything here is analytic and deterministic; the WSE simulator
cross-validates the structure at small scale, and EXPERIMENTS.md records
paper-vs-model numbers for every published row.
"""

from repro.perf.opcount import (
    PAPER_TABLE5,
    Table5Row,
    paper_flops_per_cell,
    paper_mem_ops_per_cell,
    paper_fabric_loads_per_cell,
    paper_arithmetic_intensities,
    simulator_kernel_counts,
)
from repro.perf.timemodel import Cs2TimeModel
from repro.perf.roofline import RooflineCeiling, RooflinePoint, build_cs2_roofline, build_a100_roofline
from repro.perf.throughput import gigacells_per_second, achieved_flops
from repro.perf.memmodel import PeMemoryModel

__all__ = [
    "PAPER_TABLE5",
    "Table5Row",
    "paper_flops_per_cell",
    "paper_mem_ops_per_cell",
    "paper_fabric_loads_per_cell",
    "paper_arithmetic_intensities",
    "simulator_kernel_counts",
    "Cs2TimeModel",
    "RooflineCeiling",
    "RooflinePoint",
    "build_cs2_roofline",
    "build_a100_roofline",
    "gigacells_per_second",
    "achieved_flops",
    "PeMemoryModel",
]
