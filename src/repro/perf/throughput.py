"""Throughput helpers (the Gcell/s column of Table III).

The paper reports throughput as total cell-updates per second:
``cells × iterations / time``.  Sanity anchor: 687,351,000 cells × 225
iterations / 0.0122 s ≈ 12,688 Gcell/s (the published Alg. 2 number).
"""

from __future__ import annotations

from repro.perf.opcount import paper_flops_per_cell
from repro.util.validation import check_positive


def gigacells_per_second(num_cells: int, iterations: int, seconds: float) -> float:
    """Cell updates per second, in Gcell/s."""
    check_positive("seconds", seconds)
    check_positive("iterations", iterations)
    return num_cells * iterations / seconds / 1e9


def achieved_flops(num_cells: int, seconds_per_iteration: float,
                   *, flops_per_cell: int | None = None) -> float:
    """Achieved FLOP/s for one kernel iteration over the mesh.

    Defaults to the paper's 96-FLOP/cell accounting (which, over the
    Alg. 2 kernel time, yields the 1.217 PFLOP/s headline).
    """
    check_positive("seconds_per_iteration", seconds_per_iteration)
    per_cell = paper_flops_per_cell() if flops_per_cell is None else flops_per_cell
    return per_cell * num_cells / seconds_per_iteration


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Plain time ratio (Table II's 427.82x / 209.68x columns)."""
    check_positive("baseline_seconds", baseline_seconds)
    check_positive("accelerated_seconds", accelerated_seconds)
    return baseline_seconds / accelerated_seconds
