"""Instruction and traffic accounting — the paper's Table V, verbatim,
plus our simulator's own kernel mix for comparison.

Table V charges, per mesh cell per CG iteration on the CS-2:

* Algorithm 2 (the matrix-free flux kernel, 6 neighbours × 14 FLOPs):
  FMUL×36, FSUB×24, FNEG×6, FADD×6, FMA×6, FMOV×4 → 84 FLOPs;
* rest of Algorithm 1 (vector updates + dots): FMUL×2, FMA×5, FMOV×4
  → 12 FLOPs;
* totals: 96 FLOPs, 268 memory loads+stores, 8 fabric loads per cell —
  giving the arithmetic intensities 0.0895 FLOP/B (memory) and
  3.0 FLOP/B (fabric) plotted in Fig. 6.

Our simulator's kernel precomputes ``c = Υλ`` per face (the paper's PEs
re-derive part of the flux in-kernel), so its mix is leaner; both are
reported side by side by ``benchmarks/bench_table5_opcounts.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Counter as CounterT

from repro.wse.isa import F32_BYTES, OP_FLOPS, Op


@dataclass(frozen=True)
class Table5Row:
    """One row of Table V.

    ``count`` is instruction instances per cell; ``flop`` per instance;
    loads/stores are fp32 memory accesses per instance; ``fabric_loads``
    per instance.
    """

    area: str
    op: Op
    count: int
    flop: int
    mem_loads: int
    mem_stores: int
    fabric_loads: int

    @property
    def total_flops(self) -> int:
        return self.count * self.flop

    @property
    def total_mem_ops(self) -> int:
        return self.count * (self.mem_loads + self.mem_stores)

    @property
    def total_fabric_loads(self) -> int:
        return self.count * self.fabric_loads


#: Table V verbatim.
PAPER_TABLE5: tuple[Table5Row, ...] = (
    Table5Row("Alg. 2", Op.FMUL, 36, 1, 2, 1, 0),
    Table5Row("Alg. 2", Op.FSUB, 24, 1, 2, 1, 0),
    Table5Row("Alg. 2", Op.FNEG, 6, 1, 1, 1, 0),
    Table5Row("Alg. 2", Op.FADD, 6, 1, 2, 1, 0),
    Table5Row("Alg. 2", Op.FMA, 6, 2, 3, 1, 0),
    Table5Row("Alg. 2", Op.FMOV, 4, 0, 0, 1, 1),
    Table5Row("Rest of Alg. 1", Op.FMUL, 2, 1, 2, 1, 0),
    Table5Row("Rest of Alg. 1", Op.FMA, 5, 2, 3, 1, 0),
    Table5Row("Rest of Alg. 1", Op.FMOV, 4, 0, 0, 1, 1),
)


def paper_flops_per_cell(area: str | None = None) -> int:
    """Per-cell FLOPs (96 total; 84 for Alg. 2; 12 for the rest)."""
    return sum(
        row.total_flops for row in PAPER_TABLE5 if area is None or row.area == area
    )


def paper_mem_ops_per_cell() -> int:
    """Per-cell fp32 loads+stores to local memory (268)."""
    return sum(row.total_mem_ops for row in PAPER_TABLE5)


def paper_fabric_loads_per_cell() -> int:
    """Per-cell fabric loads (8: four halo columns + four all-reduce legs)."""
    return sum(row.total_fabric_loads for row in PAPER_TABLE5)


def paper_instruction_elements_per_cell() -> int:
    """Total instruction instances per cell (feeds the cycle model)."""
    return sum(row.count for row in PAPER_TABLE5)


def paper_arithmetic_intensities() -> tuple[float, float]:
    """(memory AI, fabric AI) in FLOP/byte — the Fig. 6 dot abscissae.

    Memory AI = 96 / (268 × 4 B) = 0.0895; fabric AI = 96 / (8 × 4 B) = 3.
    """
    flops = paper_flops_per_cell()
    mem_bytes = paper_mem_ops_per_cell() * F32_BYTES
    fabric_bytes = paper_fabric_loads_per_cell() * F32_BYTES
    return flops / mem_bytes, flops / fabric_bytes


def simulator_kernel_counts(depth: int, *, variant: str = "precomputed") -> CounterT:
    """Our simulator kernel's per-column instruction mix (for the
    side-by-side Table V comparison), including the per-iteration CG
    vector work and halo FMOVs."""
    from collections import Counter

    from repro.core.fv_kernel import FvColumnKernel, KernelVariant, PeKernelConfig

    config = PeKernelConfig(depth=depth, variant=KernelVariant(variant))
    counts = Counter(FvColumnKernel.expected_op_counts(config))
    # Halo receives: 4 columns of FMOVs per iteration.
    counts[Op.FMOV] += 4 * depth
    # CG vector work per column: two local dots (FMA each), y/r FMA
    # updates, p = r + beta p (FMUL + FADD).
    counts[Op.FMA] += 4 * depth
    counts[Op.FMUL] += depth
    counts[Op.FADD] += depth
    return counts


def counts_to_flops(counts: CounterT) -> int:
    """FLOPs for an instruction-count dictionary."""
    return sum(OP_FLOPS[op] * n for op, n in counts.items())
