"""Roofline model (Fig. 6): ceilings, points, bound classification.

The CS-2 chart has a compute roof at 1.785 PFLOP/s and two bandwidth
slopes — memory at 20 PB/s and fabric at 3.3 PB/s — with the kernel
plotted twice (once per resource).  The paper's headline: both dots are
*compute-bound* at 68 % of peak (1.217 PFLOP/s achieved, using the
96-FLOP/cell count over the Alg. 2 kernel time).

The A100 chart uses the measured ERT ceilings (14.7 TFLOP/s; L1/L2/HBM
slopes); the kernel is memory-bound there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import A100, GpuSpecs
from repro.gpu.timing import GpuTimingModel, jx_traffic_bytes
from repro.perf.opcount import paper_arithmetic_intensities, paper_flops_per_cell
from repro.perf.timemodel import Cs2TimeModel
from repro.util.errors import ConfigurationError
from repro.wse.specs import WSE2, WseSpecs


@dataclass(frozen=True)
class RooflineCeiling:
    """One bandwidth slope (or the compute roof) of a roofline chart."""

    name: str
    bandwidth_bytes: float | None  # None for the compute roof
    peak_flops: float

    def bound_at(self, intensity: float) -> float:
        """Attainable FLOP/s at a given arithmetic intensity."""
        if intensity <= 0:
            raise ConfigurationError("arithmetic intensity must be > 0")
        if self.bandwidth_bytes is None:
            return self.peak_flops
        return min(self.peak_flops, self.bandwidth_bytes * intensity)


@dataclass(frozen=True)
class RooflinePoint:
    """A measured/modelled kernel point on a roofline chart."""

    label: str
    intensity_flops_per_byte: float
    achieved_flops: float
    ceiling: RooflineCeiling

    @property
    def attainable_flops(self) -> float:
        return self.ceiling.bound_at(self.intensity_flops_per_byte)

    @property
    def fraction_of_attainable(self) -> float:
        return self.achieved_flops / self.attainable_flops

    @property
    def fraction_of_peak(self) -> float:
        return self.achieved_flops / self.ceiling.peak_flops

    @property
    def is_compute_bound(self) -> bool:
        """True when the bandwidth slope at this AI clears the roof."""
        if self.ceiling.bandwidth_bytes is None:
            return True
        return (
            self.ceiling.bandwidth_bytes * self.intensity_flops_per_byte
            >= self.ceiling.peak_flops
        )


@dataclass(frozen=True)
class RooflineChart:
    """A platform's ceilings plus its kernel points."""

    platform: str
    ceilings: tuple[RooflineCeiling, ...]
    points: tuple[RooflinePoint, ...]


def build_cs2_roofline(
    *,
    spec: WseSpecs = WSE2,
    num_cells: int = 750 * 994 * 922,
    model: Cs2TimeModel | None = None,
) -> RooflineChart:
    """The Fig. 6 (top) chart: memory and fabric dots for the FV kernel.

    Achieved FLOP/s follows the paper's accounting: 96 FLOPs per cell over
    the Alg. 2 kernel time per iteration.
    """
    model = model or Cs2TimeModel.calibrated(spec)
    ai_mem, ai_fabric = paper_arithmetic_intensities()
    t_iter = model.iteration_time_alg2(922)
    achieved = paper_flops_per_cell() * num_cells / t_iter
    mem_ceiling = RooflineCeiling("memory", spec.memory_bandwidth_bytes, spec.peak_flops)
    fabric_ceiling = RooflineCeiling("fabric", spec.fabric_bandwidth_bytes, spec.peak_flops)
    points = (
        RooflinePoint("FV kernel (memory)", ai_mem, achieved, mem_ceiling),
        RooflinePoint("FV kernel (fabric)", ai_fabric, achieved, fabric_ceiling),
    )
    return RooflineChart("CS-2 (WSE-2)", (mem_ceiling, fabric_ceiling), points)


def build_a100_roofline(
    *,
    specs: GpuSpecs = A100,
    grid_shape: tuple[int, int, int] = (750, 994, 922),
    iterations: int = 225,
    timing: GpuTimingModel | None = None,
) -> RooflineChart:
    """The Fig. 6 (bottom) chart: the kernel's DRAM dot on the A100.

    Arithmetic intensity uses the paper's 96-FLOP/cell count over our
    block-level DRAM traffic model; achieved FLOP/s uses the published
    Alg. 2 kernel time.  The kernel is memory-bound (the paper's
    classification), with the achieved fraction discussed in
    EXPERIMENTS.md.
    """
    timing = timing or GpuTimingModel.calibrated_a100()
    n = grid_shape[0] * grid_shape[1] * grid_shape[2]
    flops_per_iter = paper_flops_per_cell() * n
    bytes_per_iter = jx_traffic_bytes(grid_shape, timing.block_shape)
    ai_dram = flops_per_iter / bytes_per_iter
    t_iter = timing.iteration_time_alg2(grid_shape)
    achieved = flops_per_iter / t_iter
    hbm = RooflineCeiling("HBM", specs.hbm_bandwidth, specs.peak_flops_f32)
    l2 = RooflineCeiling("L2", specs.l2_bandwidth, specs.peak_flops_f32)
    l1 = RooflineCeiling("L1", specs.l1_bandwidth, specs.peak_flops_f32)
    points = (RooflinePoint("FV kernel (DRAM)", ai_dram, achieved, hbm),)
    return RooflineChart(specs.name, (hbm, l2, l1), points)
