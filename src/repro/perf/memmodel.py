"""PE memory capacity planning (§III-E.1).

Each PE's 48 KiB must hold the CG program's column buffers.  This model
counts columns per configuration and answers the capacity questions the
paper's memory-saving optimizations exist for: the maximum Z depth per
configuration, and how much depth buffer reuse buys.

Column inventory (fp32, one column = ``nz`` values):

* CG vectors: pressure ``y``, search ``p``, residual ``r``, rhs ``b``,
  output ``Jx`` (5);
* halo receive buffers: W/E/N/S (4);
* precomputed variant: six ``c = Υλ`` coefficient columns (6);
* fused variant: six Υ columns + own λ + four neighbour λ + λ-scratch (12);
* without buffer reuse: one extra scratch column;
* mixed Dirichlet columns: one mask column.

The paper reports fitting Nz = 922; that implies ≤ 13 columns plus code.
Our cleanest configuration needs 15 (we keep ``b`` and the solution
separate); the gap — and the extra tricks the paper's hand-tuned CSL must
be using — is quantified in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fv_kernel import DirichletKind, KernelVariant
from repro.util.errors import ConfigurationError
from repro.wse.specs import WSE2, WseSpecs

#: Bytes per fp32 value.
F32 = 4

#: Scalar slots reserved per PE (CG scalars, state machine, stack).
SCALAR_RESERVE_BYTES = 256


@dataclass(frozen=True)
class PeMemoryModel:
    """Column accounting for one PE configuration."""

    variant: KernelVariant = KernelVariant.PRECOMPUTED
    reuse_buffers: bool = True
    dirichlet: DirichletKind = DirichletKind.NONE
    spec: WseSpecs = WSE2

    def num_columns(self) -> int:
        """Column buffers required by this configuration."""
        columns = 5 + 4  # CG vectors + halos
        if self.variant is KernelVariant.PRECOMPUTED:
            columns += 6
        else:
            columns += 6 + 1 + 4 + 1  # Υ, λ own, λ neighbours, λ scratch
        if not self.reuse_buffers:
            columns += 1
        if self.dirichlet is DirichletKind.PARTIAL:
            columns += 1
        return columns

    def bytes_for_depth(self, nz: int) -> int:
        if nz < 1:
            raise ConfigurationError("nz must be >= 1")
        return self.num_columns() * nz * F32 + SCALAR_RESERVE_BYTES

    def fits(self, nz: int) -> bool:
        return self.bytes_for_depth(nz) <= self.spec.pe_memory_bytes

    def max_depth(self) -> int:
        """Largest Z column this configuration can host in PE memory."""
        budget = self.spec.pe_memory_bytes - SCALAR_RESERVE_BYTES
        return budget // (self.num_columns() * F32)

    def utilization(self, nz: int) -> float:
        return self.bytes_for_depth(nz) / self.spec.pe_memory_bytes

    def report(self, nz: int) -> dict[str, float]:
        return {
            "columns": float(self.num_columns()),
            "bytes": float(self.bytes_for_depth(nz)),
            "capacity": float(self.spec.pe_memory_bytes),
            "utilization_pct": 100.0 * self.utilization(nz),
            "max_depth": float(self.max_depth()),
        }


#: The paper's claimed depth at full fabric.
PAPER_DEPTH = 922


def reuse_depth_gain() -> tuple[int, int]:
    """(max depth with reuse, without reuse) for the default variant —
    the §III-E.1 ablation headline."""
    with_reuse = PeMemoryModel(reuse_buffers=True).max_depth()
    without = PeMemoryModel(reuse_buffers=False).max_depth()
    return with_reuse, without
