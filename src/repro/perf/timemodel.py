"""CS-2 time model: first-principles structure, two-point calibration.

Structure (per CG iteration):

* **Kernel (Alg. 2) time** — every PE processes its whole Z column with
  the Table-V instruction mix; with 2-wide fp32 SIMD the cycle count per
  cell is ``elements / (simd · issue)``, where ``issue`` is the effective
  instructions-per-cycle-per-lane factor (memory/ALU dual-issue) that we
  calibrate from the published Alg. 2 time (0.0122 s / 225 iterations for
  a 922-deep column).  Per-PE work is independent of the fabric extent,
  which is *why* the paper's Alg. 2 weak scaling is perfectly flat.
* **Collective (rest of Alg. 1) time** — two all-reduces per iteration
  travel O(W + H) hops of sequential chain work plus a fixed per-iteration
  vector-update cost: ``extra = c0 + c1 · (W + H)``.  The two constants
  are calibrated on Table III's smallest and largest rows; the five middle
  rows are *predictions* (they land within rounding of the paper's
  numbers — the published times are affine in W + H to 4 digits).
* **Communication-only time (Table IV)** — the 4-step exchange moves
  ``nz`` wavelets per step plus the all-reduce/broadcast wire sweeps:
  ``comm = 4(nz + hop) + k_wire · (W + H)`` cycles per iteration, with
  ``k_wire`` calibrated on the published 0.0034 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.opcount import paper_instruction_elements_per_cell
from repro.util.errors import ConfigurationError
from repro.wse.specs import WSE2, WseSpecs

#: Published CS-2 rows used for calibration (Table III).
PAPER_CS2_ALG2_TIME = 0.0122  # s, all rows, Nz = 922
PAPER_CS2_ALG1_SMALL = (200, 200, 226, 0.0251)  # nx, ny, steps, seconds
PAPER_CS2_ALG1_LARGE = (750, 994, 225, 0.0542)
PAPER_CS2_COMM_TIME = 0.0034  # s, Table IV, largest mesh, 225 steps
PAPER_NZ = 922
PAPER_STEPS_LARGE = 225


@dataclass(frozen=True)
class Cs2TimeModel:
    """Calibrated CS-2 timing.

    Attributes
    ----------
    spec:
        Machine description (clock, SIMD width).
    issue_factor:
        Effective instruction elements retired per cycle per SIMD lane
        (≥ 1 means some dual-issue of memory and ALU ops).
    collective_base_cycles:
        Per-iteration fixed cycles of the non-kernel work (vector updates,
        state machine, broadcast fan-out) — ``c0``.
    collective_hop_cycles:
        Per-(W+H)-hop cycles of the all-reduce chains — ``c1``.
    comm_wire_factor:
        Wire sweeps per iteration charged ``(W + H)`` cycles each in the
        communication-only model — ``k_wire``.
    """

    spec: WseSpecs = WSE2
    issue_factor: float = 1.0
    collective_base_cycles: float = 0.0
    collective_hop_cycles: float = 0.0
    comm_wire_factor: float = 3.0

    # -- component times (seconds) -------------------------------------------------

    def kernel_cycles_per_cell(self) -> float:
        elements = paper_instruction_elements_per_cell()
        return elements / (self.spec.simd_width_f32 * self.issue_factor)

    def iteration_time_alg2(self, nz: int) -> float:
        """Alg. 2 (kernel-only) per-iteration time; fabric-size free."""
        cycles = self.kernel_cycles_per_cell() * nz
        return cycles / self.spec.clock_hz

    def iteration_time_collectives(self, width: int, height: int) -> float:
        cycles = self.collective_base_cycles + self.collective_hop_cycles * (
            width + height
        )
        return cycles / self.spec.clock_hz

    def iteration_time_alg1(self, width: int, height: int, nz: int) -> float:
        return self.iteration_time_alg2(nz) + self.iteration_time_collectives(
            width, height
        )

    def total_time_alg2(self, nz: int, iterations: int) -> float:
        return self.iteration_time_alg2(nz) * iterations

    def total_time_alg1(
        self, width: int, height: int, nz: int, iterations: int
    ) -> float:
        return self.iteration_time_alg1(width, height, nz) * iterations

    def comm_time(
        self, width: int, height: int, nz: int, iterations: int
    ) -> float:
        """Communication-only time (the Table IV experiment)."""
        per_iter = (
            4 * (nz + self.spec.hop_latency_cycles)
            + self.comm_wire_factor * (width + height)
        )
        return per_iter * iterations / self.spec.clock_hz

    def time_distribution(
        self, width: int, height: int, nz: int, iterations: int
    ) -> dict[str, float]:
        """Table IV's rows: data movement vs. computation split."""
        total = self.total_time_alg1(width, height, nz, iterations)
        comm = self.comm_time(width, height, nz, iterations)
        if comm > total:
            raise ConfigurationError("comm model exceeds total model")
        return {
            "data_movement_s": comm,
            "computation_min_s": total - comm,
            "computation_max_s": total,
            "total_s": total,
            "data_movement_pct": 100.0 * comm / total,
            "computation_pct": 100.0 * (total - comm) / total,
        }

    # -- calibration -----------------------------------------------------------------

    @classmethod
    def calibrated(cls, spec: WseSpecs = WSE2) -> "Cs2TimeModel":
        """Fit the model on the published Alg. 2 time, the two Alg. 1
        endpoints and the Table IV communication time."""
        elements = paper_instruction_elements_per_cell()
        # Alg. 2: issue factor from the flat kernel time.
        per_iter_alg2 = PAPER_CS2_ALG2_TIME / PAPER_STEPS_LARGE
        cycles_per_cell = per_iter_alg2 * spec.clock_hz / PAPER_NZ
        issue = elements / (spec.simd_width_f32 * cycles_per_cell)

        # Alg. 1 extras: affine fit on (W + H).
        sx, sy, s_steps, s_time = PAPER_CS2_ALG1_SMALL
        lx, ly, l_steps, l_time = PAPER_CS2_ALG1_LARGE
        e_small = (s_time - PAPER_CS2_ALG2_TIME) / s_steps * spec.clock_hz
        e_large = (l_time - PAPER_CS2_ALG2_TIME) / l_steps * spec.clock_hz
        c1 = (e_large - e_small) / ((lx + ly) - (sx + sy))
        c0 = e_small - c1 * (sx + sy)

        # Comm-only: wire factor from the published 0.0034 s.
        comm_cycles_iter = PAPER_CS2_COMM_TIME / PAPER_STEPS_LARGE * spec.clock_hz
        k_wire = (comm_cycles_iter - 4 * (PAPER_NZ + spec.hop_latency_cycles)) / (
            lx + ly
        )
        return cls(
            spec=spec,
            issue_factor=issue,
            collective_base_cycles=c0,
            collective_hop_cycles=c1,
            comm_wire_factor=max(k_wire, 0.0),
        )
