"""Fused cache-blocked hot-loop execution of the dataflow CG program.

The package behind ``MachineSpec(engine="fused")``: cache-tile
selection (:mod:`repro.fused.tiling`), the tiled FV-apply kernel and
the numpy/numba pass backends (:mod:`repro.fused.kernels`,
:mod:`repro.fused.numba_backend`), and the engines themselves
(:mod:`repro.fused.engine`).
"""

from repro.fused.engine import BatchedFusedEngine, FusedVectorEngine
from repro.fused.kernels import (
    BACKEND_ENV,
    BACKEND_NAMES,
    numba_available,
    resolve_backend,
)
from repro.fused.tiling import auto_tile, normalize_fused_tile, tile_boxes

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BatchedFusedEngine",
    "FusedVectorEngine",
    "auto_tile",
    "normalize_fused_tile",
    "numba_available",
    "resolve_backend",
    "tile_boxes",
]
