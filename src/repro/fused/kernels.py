"""Tiled FV-apply kernel and the fused pass backends.

:class:`TiledApply` is the cache-blocked matrix-free operator: it
computes the FV apply over one lateral tile at a time, reading the
stencil input through a globally zero-padded ``(nx+2, ny+2, nz)`` buffer
(pure shifted *slices* — no ``_shifted`` copies, no per-sweep
allocation) and writing straight into the output array's tile view.
Every tile's arithmetic mirrors
:meth:`repro.shard.halo.ShardFields.apply` operand for operand — which
itself mirrors ``_apply_fields`` — so the tiled result is **bitwise**
equal to the whole-fabric sweep: tiling is a pure loop reorder over
elementwise/stencil-local operations.  The sharded engine's workers
reuse exactly this class over their halo-extended slabs when a
``fused_tile`` is configured.

:class:`FusedNumpyBackend` drives one CG solve's numerics as four tiled
*passes* (init / body / update / direction): per tile it fuses the FV
apply, the axpy updates and a float64 dot partial, then the engine sums
the per-tile partials sequentially in row-major tile order — the shard
engine's deterministic-reduction trick, so repeated runs are
bit-identical while iterates stay within fp round-off of the vectorized
oracle (the only divergence is the partial-sum order of the dots).

Full-width tiles (``tile_y == ny``, what
:func:`~repro.fused.tiling.auto_tile` picks) take a *slab fast path*:
every work array's tile view is then a contiguous row slab, so the
apply runs with construction-time precomputed effective coefficients
and a flattened-column vertical sweep (the strided z-slice views that
dominate the vectorized engine's apply cost run ~8x slower than the
same arithmetic on contiguous buffers).  The fast path's boundary
planes are save/restored around the flattened sweeps, keeping it
bitwise equal to the strided reference.  Narrow tiles fall back to the
general strided :class:`TiledApply` — same results, exercised by the
fuzz suite.

An optional numba backend (:mod:`repro.fused.numba_backend`) JIT-compiles
the tile apply; it is detected at import time and selected via
``REPRO_FUSED_BACKEND=numpy|numba`` (or automatically when available),
falling back to numpy with a telemetry note when numba is absent.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.fv_kernel import HALO_ORDER, KernelVariant
from repro.fused.tiling import tile_boxes
from repro.util.errors import ConfigurationError

#: Kernel backends the fused engine understands (``"auto"`` picks numba
#: when importable, numpy otherwise).
BACKEND_NAMES = ("auto", "numpy", "numba")

#: Environment override for the backend choice.
BACKEND_ENV = "REPRO_FUSED_BACKEND"

_NUMBA_AVAILABLE: bool | None = None


def numba_available() -> bool:
    """Whether the optional numba backend can be imported (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def resolve_backend(requested: str | None = None) -> tuple[str, str | None]:
    """Resolve the kernel backend name and an optional telemetry note.

    ``requested`` wins over the ``REPRO_FUSED_BACKEND`` environment
    variable; ``None``/``"auto"`` picks numba when importable and numpy
    otherwise.  Asking for numba without numba installed *falls back*
    (with a note the telemetry carries) rather than failing — the numpy
    tiled path is always available.
    """
    if requested is None:
        requested = os.environ.get(BACKEND_ENV) or "auto"
    requested = str(requested).lower()
    if requested not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown fused backend {requested!r}; choose one of "
            f"{', '.join(BACKEND_NAMES)} (or set {BACKEND_ENV})"
        )
    if requested == "numpy":
        return "numpy", None
    if numba_available():
        return "numba", None
    if requested == "numba":
        return "numpy", "numba requested but not importable; using the numpy tiled backend"
    return "numpy", None


# -- the cache-blocked FV apply -----------------------------------------------


class TiledApply:
    """The matrix-free FV operator, one lateral tile at a time.

    Construction takes the *owned-region* staged arrays (shape
    ``(NX, NY, nz)`` — views are fine), the zero-padded stencil input
    ``x_ext`` of shape ``(NX+2, NY+2, nz)``, the output array, and the
    tile boxes; it prebuilds every per-tile operand view and the
    max-tile-shaped scratch so :meth:`apply_tile` allocates nothing.
    The pad ring of ``x_ext`` reproduces ``_shifted``'s zero halos
    (edge planes are never written).
    """

    def __init__(
        self,
        *,
        x_ext: np.ndarray,
        out: np.ndarray,
        boxes,
        variant: KernelVariant,
        dtype: np.dtype,
        coeff=None,
        coeff_down=None,
        coeff_up=None,
        ups=None,
        ups_down=None,
        ups_up=None,
        lam=None,
        lam_nbr=None,
        acc=None,
        full_cols=None,
        blend_mask=None,
        has_full: bool = False,
        has_partial: bool = False,
    ):
        self.variant = variant
        self.boxes = list(boxes)
        self.has_full = has_full
        self.has_partial = has_partial
        self.has_acc = acc is not None
        dtype = np.dtype(dtype)
        nz = x_ext.shape[2]
        self.nz = nz
        max_tx = max(x1 - x0 for x0, x1, _, _ in self.boxes)
        max_ty = max(y1 - y0 for _, _, y0, y1 in self.boxes)
        self.max_tile = (max_tx, max_ty)

        # Max-tile scratch, sliced per tile below.  `diff`/`tmp` mirror
        # ShardFields' `_diff`/`_tmp`; `vd`/`vt`/`vl` are the vertical
        # scratch; `diff` doubles as the engines' axpy scratch (only
        # live inside a single tile's step, exactly like the shard
        # workers' reuse of `f._diff`).
        shape = (max_tx, max_ty, nz)
        self._diff_full = np.empty(shape, dtype=dtype)
        self._tmp_full = np.empty(shape, dtype=dtype)
        if nz >= 2:
            vshape = (max_tx, max_ty, nz - 1)
            self._vd_full = np.empty(vshape, dtype=dtype)
            self._vt_full = np.empty(vshape, dtype=dtype)
            self._vl_full = np.empty(vshape, dtype=dtype) if lam is not None else None

        lo = (Ellipsis, slice(0, nz - 1))
        hi = (Ellipsis, slice(1, nz))

        def tview(arr, box):
            x0, x1, y0, y1 = box
            return None if arr is None else arr[x0:x1, y0:y1]

        self._t: list[dict] = []
        for box in self.boxes:
            x0, x1, y0, y1 = box
            tnx, tny = x1 - x0, y1 - y0
            t: dict = {}
            # Stencil input: the tile's owned window of x_ext, plus the
            # four shifted windows (each reads into the pad ring or a
            # neighbouring tile's owned cells — same global field state).
            t["x"] = x_ext[x0 + 1:x1 + 1, y0 + 1:y1 + 1, :]
            t["shift"] = tuple(
                x_ext[
                    x0 + 1 + port.offset[0]:x1 + 1 + port.offset[0],
                    y0 + 1 + port.offset[1]:y1 + 1 + port.offset[1],
                    :,
                ]
                for port in HALO_ORDER
            )
            t["out"] = out[x0:x1, y0:y1]
            if variant is KernelVariant.PRECOMPUTED:
                t["coeff"] = tuple(tview(coeff[port], box) for port in HALO_ORDER)
                t["coeff_down"] = tview(coeff_down, box)
                t["coeff_up"] = tview(coeff_up, box)
            else:
                t["ups"] = tuple(tview(ups[port], box) for port in HALO_ORDER)
                t["ups_down"] = tview(ups_down, box)
                t["ups_up"] = tview(ups_up, box)
                t["lam"] = tview(lam, box)
                t["lam_nbr"] = tuple(tview(lam_nbr[port], box) for port in HALO_ORDER)
            t["acc"] = tview(acc, box)
            t["full_cols"] = tview(full_cols, box)
            t["blend"] = tview(blend_mask, box)
            t["diff"] = self._diff_full[:tnx, :tny]
            t["tmp"] = self._tmp_full[:tnx, :tny]
            if nz >= 2:
                t["vd"] = self._vd_full[:tnx, :tny]
                t["vt"] = self._vt_full[:tnx, :tny]
                t["vl"] = (
                    None if self._vl_full is None else self._vl_full[:tnx, :tny]
                )
                t["x_lo"], t["x_hi"] = t["x"][lo], t["x"][hi]
                t["out_lo"], t["out_hi"] = t["out"][lo], t["out"][hi]
                if variant is KernelVariant.PRECOMPUTED:
                    t["cup_lo"] = t["coeff_up"][lo]
                    t["cdn_hi"] = t["coeff_down"][hi]
                else:
                    t["ups_up_lo"] = t["ups_up"][lo]
                    t["ups_dn_hi"] = t["ups_down"][hi]
                    t["lam_lo"], t["lam_hi"] = t["lam"][lo], t["lam"][hi]
            self._t.append(t)

    def __len__(self) -> int:
        return len(self.boxes)

    def diff_view(self, t: int) -> np.ndarray:
        """The tile's scratch buffer (free outside :meth:`apply_tile`)."""
        return self._t[t]["diff"]

    def apply_tile(self, t: int) -> np.ndarray:
        """FV apply over tile ``t``, written into the output tile view.

        Mirrors :meth:`ShardFields.apply` operand for operand (which
        mirrors ``_apply_fields``), so results are bitwise equal to the
        untiled sweep.
        """
        tv = self._t[t]
        x, out, diff, tmp = tv["x"], tv["out"], tv["diff"], tv["tmp"]
        if self.variant is KernelVariant.PRECOMPUTED:
            for i in range(4):
                np.subtract(x, tv["shift"][i], out=diff)
                if i == 0:
                    np.multiply(tv["coeff"][i], diff, out=out)
                else:
                    np.multiply(tv["coeff"][i], diff, out=tmp)
                    out += tmp
        else:
            c = tmp
            for i in range(4):
                np.add(tv["lam"], tv["lam_nbr"][i], out=c)
                np.multiply(c, 0.5, out=c, casting="unsafe")
                np.multiply(c, tv["ups"][i], out=c, casting="unsafe")
                np.subtract(x, tv["shift"][i], out=diff)
                np.multiply(diff, c, out=diff, casting="unsafe")
                if i == 0:
                    out[...] = diff
                else:
                    out += diff
        if self.nz >= 2:
            vd, vt = tv["vd"], tv["vt"]
            if self.variant is KernelVariant.PRECOMPUTED:
                np.subtract(tv["x_lo"], tv["x_hi"], out=vd)
                np.multiply(tv["cup_lo"], vd, out=vt)
                tv["out_lo"] += vt
                np.subtract(tv["x_hi"], tv["x_lo"], out=vd)
                np.multiply(tv["cdn_hi"], vd, out=vt)
                tv["out_hi"] += vt
            else:
                vl = tv["vl"]
                for rng, other, ups in (
                    ("lo", "hi", tv["ups_up_lo"]),
                    ("hi", "lo", tv["ups_dn_hi"]),
                ):
                    np.subtract(tv[f"x_{rng}"], tv[f"x_{other}"], out=vd)
                    np.add(tv[f"lam_{rng}"], tv[f"lam_{other}"], out=vl)
                    np.multiply(vl, 0.5, out=vl, casting="unsafe")
                    np.multiply(vl, ups, out=vl, casting="unsafe")
                    np.multiply(vl, vd, out=vt)
                    tv[f"out_{rng}"] += vt
        if self.has_acc:
            np.multiply(tv["acc"], x, out=diff)
            out += diff
        if self.has_full:
            fc = tv["full_cols"]
            out[fc] = x[fc]
        if self.has_partial:
            np.subtract(x, out, out=diff)
            np.multiply(tv["blend"], diff, out=diff)
            out += diff
        return out

    def apply(self) -> None:
        """The whole-grid apply, tile by tile (the shard-composition
        entry point — bitwise equal to an untiled sweep)."""
        for t in range(len(self.boxes)):
            self.apply_tile(t)


def tiled_apply_from_staging(
    st, variant: KernelVariant, *, x_ext: np.ndarray, out: np.ndarray, boxes,
    dtype: np.dtype,
) -> TiledApply:
    """Build a :class:`TiledApply` over a staging's owned arrays.

    ``st`` may be a global :class:`~repro.wse.vector_engine._Staging`
    (fused engine) or any object exposing the same coefficient
    attributes as owned-region arrays.
    """
    coeff = None if st.coeff is None else {p: st.coeff[p] for p in HALO_ORDER}
    ups = None if st.ups is None else {p: st.ups[p] for p in HALO_ORDER}
    lam_nbr = None if st.lam_nbr is None else {p: st.lam_nbr[p] for p in HALO_ORDER}
    return TiledApply(
        x_ext=x_ext, out=out, boxes=boxes, variant=variant, dtype=dtype,
        coeff=coeff, coeff_down=st.coeff_down, coeff_up=st.coeff_up,
        ups=ups, ups_down=st.ups_down, ups_up=st.ups_up,
        lam=st.lam, lam_nbr=lam_nbr,
        acc=st.acc, full_cols=st.full_cols, blend_mask=st.blend_mask,
        has_full=st.has_full, has_partial=st.has_partial,
    )


# -- the fused pass backend ---------------------------------------------------


class FusedNumpyBackend:
    """Pure-NumPy tiled execution of the fused CG passes.

    Owns one problem's work arrays (the staging's ``y``/``b``/``r``/
    ``z``/``p`` plus a padded stencil buffer refreshed from the pass's
    source field before each apply sweep, shard-worker style) and
    executes each CG phase as one pass over the tiles, returning
    per-tile float64 dot partials in row-major tile order.  Always
    available; the tests' parity baseline.
    """

    name = "numpy"

    def __init__(self, st, program, *, tile: tuple[int, int], dtype: np.dtype):
        self.jacobi = program.jacobi
        self.mg = program.mg
        self.uses_z = program.uses_z
        dtype = np.dtype(dtype)
        nx, ny, nz = st.y.shape
        self.y, self.b, self.r, self.p = st.y, st.b, st.r, st.p
        self.z, self.inv_diag = st.z, st.inv_diag
        # The padded stencil buffer: filled from the pass's source field
        # (y at init, p in the body) so stencil reads are pure slices —
        # the pad ring stays zero forever, reproducing `_shifted`.
        self.x_ext = np.zeros((nx + 2, ny + 2, nz), dtype=dtype)
        self._inner = self.x_ext[1:-1, 1:-1, :]
        self.jx = np.empty((nx, ny, nz), dtype=dtype)
        self.boxes = tile_boxes(nx, ny, tile)
        self.tiled = tiled_apply_from_staging(
            st, program.variant, x_ext=self.x_ext, out=self.jx,
            boxes=self.boxes, dtype=dtype,
        )
        n_tiles = len(self.boxes)
        self.n_tiles = n_tiles
        # Per-tile work views + float64 dot scratch (flat, so np.dot
        # sees contiguous buffers; the shaped views alias them for
        # allocation-free strided copies — same conversion, same BLAS
        # reduction as `astype(float64)` would produce).
        max_cells = max((x1 - x0) * (y1 - y0) * nz for x0, x1, y0, y1 in self.boxes)
        self._d64a = np.empty(max_cells, dtype=np.float64)
        self._d64b = np.empty(max_cells, dtype=np.float64)
        self._views = []
        for box in self.boxes:
            x0, x1, y0, y1 = box
            sl = (slice(x0, x1), slice(y0, y1))
            cells = (x1 - x0) * (y1 - y0) * nz
            shape3 = (x1 - x0, y1 - y0, nz)
            self._views.append({
                "y": self.y[sl], "b": self.b[sl], "r": self.r[sl],
                "z": None if self.z is None else self.z[sl],
                "inv_diag": None if self.inv_diag is None else self.inv_diag[sl],
                "p": self.p[sl], "jx": self.jx[sl],
                "d64a": self._d64a[:cells].reshape(shape3),
                "d64b": self._d64b[:cells].reshape(shape3),
                "cells": cells,
            })
        self._partials = np.zeros(n_tiles, dtype=np.float64)
        # Full-width tiles get the contiguous slab fast path.
        self._use_slab = all(y0 == 0 and y1 == ny for _, _, y0, y1 in self.boxes)
        if self._use_slab:
            self._build_slab_path(program.variant, dtype, nx, ny, nz)

    # -- the contiguous slab fast path ----------------------------------------

    def _build_slab_path(self, variant, dtype, nx, ny, nz) -> None:
        """Precompute per-slab effective coefficients and flattened
        vertical-coefficient buffers.

        The effective coefficient of a face is iteration-invariant (for
        ``FUSED_MOBILITY`` it is computed here once with the exact
        reference op sequence, so downstream arithmetic sees bitwise
        what a per-apply recomputation would feed it); the vertical
        coefficients are laid out flat so the z sweeps run on contiguous
        buffers.  Entries of the flat buffers that cross a column
        boundary are never consumed: the boundary planes are
        save/restored around the flattened sweeps."""
        max_tx = self.tiled.max_tile[0]
        self._plane_a = np.empty((max_tx, ny), dtype=dtype)
        self._plane_b = np.empty((max_tx, ny), dtype=dtype)
        if nz >= 2:
            max_cells = max_tx * ny * nz
            self._vdf = np.empty(max_cells - 1, dtype=dtype)
            self._vtf = np.empty(max_cells - 1, dtype=dtype)
        self._slabs = []
        for ti, (box, t) in enumerate(zip(self.boxes, self.tiled._t)):
            x0, x1 = box[0], box[1]
            sl = (slice(x0, x1),)
            tnx = x1 - x0
            cells = tnx * ny * nz
            s: dict = {
                "src": {"y": self.y[sl], "p": self.p[sl]},
                "out": self.jx[sl],
                "outf": self.jx[sl].reshape(-1),
                "cells": cells,
                "diff": self.tiled._diff_full[:tnx],
                "tmp": self.tiled._tmp_full[:tnx],
                "plane_a": self._plane_a[:tnx],
                "plane_b": self._plane_b[:tnx],
                "shift": t["shift"],
                "acc": t["acc"],
                "full_cols": t["full_cols"],
                "blend": t["blend"],
            }
            if variant is KernelVariant.PRECOMPUTED:
                s["ceff"] = tuple(np.ascontiguousarray(c) for c in t["coeff"])
                cup = np.ascontiguousarray(t["coeff_up"])
                cdn = np.ascontiguousarray(t["coeff_down"])
            else:
                ceff = []
                for i in range(4):
                    c = np.empty((tnx, ny, nz), dtype=dtype)
                    np.add(t["lam"], t["lam_nbr"][i], out=c)
                    np.multiply(c, 0.5, out=c, casting="unsafe")
                    np.multiply(c, t["ups"][i], out=c, casting="unsafe")
                    ceff.append(c)
                s["ceff"] = tuple(ceff)
                cup = np.zeros((tnx, ny, nz), dtype=dtype)
                cdn = np.zeros((tnx, ny, nz), dtype=dtype)
                if nz >= 2:
                    lo = (Ellipsis, slice(0, nz - 1))
                    hi = (Ellipsis, slice(1, nz))
                    vl = np.empty((tnx, ny, nz - 1), dtype=dtype)
                    np.add(t["lam"][lo], t["lam"][hi], out=vl)
                    np.multiply(vl, 0.5, out=vl, casting="unsafe")
                    np.multiply(vl, t["ups_up"][lo], out=vl, casting="unsafe")
                    cup[lo] = vl
                    np.add(t["lam"][hi], t["lam"][lo], out=vl)
                    np.multiply(vl, 0.5, out=vl, casting="unsafe")
                    np.multiply(vl, t["ups_down"][hi], out=vl, casting="unsafe")
                    cdn[hi] = vl
            if nz >= 2:
                s["cupf"] = np.ascontiguousarray(cup.reshape(-1)[: cells - 1])
                s["cdnf"] = np.ascontiguousarray(cdn.reshape(-1)[1:])
            self._slabs.append(s)

    def _apply_slab(self, t: int, src: str) -> None:
        """The contiguous-slab FV apply: identical arithmetic to
        :meth:`TiledApply.apply_tile`, reordered onto contiguous
        buffers — bitwise-equal results, pinned by the fuzz suite."""
        s = self._slabs[t]
        x, out, diff, tmp = s["src"][src], s["out"], s["diff"], s["tmp"]
        ceff = s["ceff"]
        for i in range(4):
            np.subtract(x, s["shift"][i], out=diff)
            if i == 0:
                np.multiply(ceff[i], diff, out=out)
            else:
                np.multiply(ceff[i], diff, out=tmp)
                out += tmp
        nz = self.tiled.nz
        if nz >= 2:
            # Flattened z sweeps over the whole slab.  Elements that
            # cross a column boundary compute garbage into the boundary
            # planes; saving the plane a sweep must not touch and
            # restoring it afterwards leaves the state exactly where the
            # strided lo/hi reference sweeps put it.
            xf = x.reshape(-1)
            outf = s["outf"]
            n1 = s["cells"] - 1
            vd, vt = self._vdf[:n1], self._vtf[:n1]
            plane = s["plane_a"]
            np.copyto(plane, out[:, :, nz - 1])
            np.subtract(xf[:-1], xf[1:], out=vd)
            np.multiply(s["cupf"], vd, out=vt)
            outf[:n1] += vt
            np.copyto(out[:, :, nz - 1], plane)
            plane = s["plane_b"]
            np.copyto(plane, out[:, :, 0])
            np.subtract(xf[1:], xf[:-1], out=vd)
            np.multiply(s["cdnf"], vd, out=vt)
            outf[1:] += vt
            np.copyto(out[:, :, 0], plane)
        if self.tiled.has_acc:
            np.multiply(s["acc"], x, out=diff)
            out += diff
        if self.tiled.has_full:
            fc = s["full_cols"]
            out[fc] = x[fc]
        if self.tiled.has_partial:
            np.subtract(x, out, out=diff)
            np.multiply(s["blend"], diff, out=diff)
            out += diff

    # -- apply dispatch -------------------------------------------------------

    def _apply_tile(self, t: int) -> None:
        """The narrow-tile FV apply step (the numba backend's override
        point — everything else is already vectorized numpy)."""
        self.tiled.apply_tile(t)

    def _apply(self, t: int, src: str) -> None:
        if self._use_slab:
            self._apply_slab(t, src)
        else:
            self._apply_tile(t)

    # -- per-tile dot (float64, deterministic row-major element order) --------

    def _dot(self, tv, a: np.ndarray, b: np.ndarray) -> float:
        np.copyto(tv["d64a"], a)
        np.copyto(tv["d64b"], b)
        n = tv["cells"]
        return float(np.dot(self._d64a[:n], self._d64b[:n]))

    # -- the four passes ------------------------------------------------------

    def init_pass(self) -> np.ndarray:
        """INIT: load y into the stencil buffer, then per tile compute
        ``jx = A y``, ``r = b - jx``, the (optional) Jacobi ``z``, the
        direction seed ``p = z|r`` and the init dot partial."""
        jacobi = self.jacobi
        np.copyto(self._inner, self.y)
        partials = self._partials
        for t, tv in enumerate(self._views):
            self._apply(t, "y")
            np.subtract(tv["b"], tv["jx"], out=tv["r"], casting="unsafe")
            if jacobi:
                np.multiply(tv["r"], tv["inv_diag"], out=tv["z"], casting="unsafe")
                np.copyto(tv["p"], tv["z"])
                partials[t] = self._dot(tv, tv["r"], tv["z"])
            else:
                np.copyto(tv["p"], tv["r"])
                partials[t] = self._dot(tv, tv["r"], tv["r"])
        return partials

    def body_pass(self) -> np.ndarray:
        """Per tile: ``jx = A p`` fused with the ``p·jx`` partial."""
        np.copyto(self._inner, self.p)
        partials = self._partials
        for t, tv in enumerate(self._views):
            self._apply(t, "p")
            partials[t] = self._dot(tv, tv["p"], tv["jx"])
        return partials

    def update_pass(self, alpha: float) -> np.ndarray:
        """Per tile: ``y += α p``, ``r -= α jx``, Jacobi ``z`` and the
        ``r·(z|r)`` partial — one cache-resident visit per tile."""
        jacobi = self.jacobi
        partials = self._partials
        for t, tv in enumerate(self._views):
            d = self.tiled.diff_view(t)
            np.multiply(tv["p"], alpha, out=d, casting="unsafe")
            tv["y"] += d
            np.multiply(tv["jx"], -alpha, out=d, casting="unsafe")
            tv["r"] += d
            if jacobi:
                np.multiply(tv["r"], tv["inv_diag"], out=tv["z"], casting="unsafe")
                partials[t] = self._dot(tv, tv["r"], tv["z"])
            else:
                partials[t] = self._dot(tv, tv["r"], tv["r"])
        return partials

    def direction_pass(self, beta: float) -> None:
        """Per tile: ``p = β p + (z|r)``, in place."""
        uses_z = self.uses_z
        for tv in self._views:
            pt = tv["p"]
            np.multiply(pt, beta, out=pt, casting="unsafe")
            pt += tv["z"] if uses_z else tv["r"]

    # -- the multigrid split points -------------------------------------------
    #
    # The V-cycle is a *global* construct (coarse grids couple every
    # tile), so the mg-preconditioned program splits the init and update
    # passes at the two z-points: a tiled half-pass up to the residual,
    # the engine's global ``mg_apply`` into ``z``, then a tiled
    # half-pass for the seeds/dots.  The jacobi/none passes above are
    # untouched — their iterates stay bitwise what they were.

    def init_residual_pass(self) -> None:
        """INIT, first half: per tile ``jx = A y``, ``r = b - jx``."""
        np.copyto(self._inner, self.y)
        for t, tv in enumerate(self._views):
            self._apply(t, "y")
            np.subtract(tv["b"], tv["jx"], out=tv["r"], casting="unsafe")

    def mg_seed_pass(self) -> np.ndarray:
        """INIT, second half (after the engine's V-cycle filled ``z``):
        per tile ``p = z`` and the ``r·z`` init partial."""
        partials = self._partials
        for t, tv in enumerate(self._views):
            np.copyto(tv["p"], tv["z"])
            partials[t] = self._dot(tv, tv["r"], tv["z"])
        return partials

    def update_axpy_pass(self, alpha: float) -> None:
        """UPDATE, first half: per tile ``y += α p``, ``r -= α jx``."""
        for t, tv in enumerate(self._views):
            d = self.tiled.diff_view(t)
            np.multiply(tv["p"], alpha, out=d, casting="unsafe")
            tv["y"] += d
            np.multiply(tv["jx"], -alpha, out=d, casting="unsafe")
            tv["r"] += d

    def mg_dot_pass(self) -> np.ndarray:
        """UPDATE, second half: per tile the ``r·z`` partial."""
        partials = self._partials
        for t, tv in enumerate(self._views):
            partials[t] = self._dot(tv, tv["r"], tv["z"])
        return partials


def create_backend(
    name: str, st, program, *, tile: tuple[int, int], dtype: np.dtype
):
    """Instantiate the resolved kernel backend (see :func:`resolve_backend`)."""
    if name == "numba":
        from repro.fused.numba_backend import FusedNumbaBackend

        return FusedNumbaBackend(st, program, tile=tile, dtype=dtype)
    return FusedNumpyBackend(st, program, tile=tile, dtype=dtype)


__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "FusedNumpyBackend",
    "TiledApply",
    "create_backend",
    "numba_available",
    "resolve_backend",
    "tiled_apply_from_staging",
]
