"""The fused cache-blocked hot-loop engine.

:class:`FusedVectorEngine` runs the same CG program as
:class:`~repro.wse.vector_engine.VectorEngine`, but executes each CG
phase as a **single tiled pass** over the lateral grid: per cache-sized
tile the FV apply, the axpy updates and the float64 dot partial are
fused back-to-back while the tile's working set is still resident,
instead of streaming six-plus full-grid temporaries through DRAM per
iteration (the paper's point, applied to the host).  The tile shape is
auto-picked from grid and dtype, overridable via the ``fused_tile``
spec knob; tile-order sequential reduction of the per-tile dot partials
(the shard engine's trick) makes every run bit-identical.

Parity contract (pinned in ``tests/test_fused_engine.py`` and fuzzed
5-way in ``tests/test_engine_fuzz.py``):

* **counters / traffic / memory / state visits / makespan** — *exactly*
  equal to the vectorized engine: the engine merges the same prebuilt
  analytic charge packets (:func:`~repro.wse.vector_engine.build_init_packet`
  / :func:`~repro.wse.vector_engine.build_iteration_packets`) through
  the identical control flow.  Tiling changes how the host sweeps, not
  what the machine is charged for.
* **iterates** — bitwise equal per element through every sweep (tiling
  is a pure loop reorder over elementwise/stencil-local ops; the padded
  stencil buffer reproduces ``_shifted`` exactly); only the tile-order
  float64 partial-sum of the dots differs from the single ``np.dot``,
  so alpha/beta — and therefore the pressure field — agree to fp
  round-off and iteration counts almost always coincide.

:class:`BatchedFusedEngine` is the lane-parallel counterpart: each lane
advances its own fused backend in lockstep and composes charges with
:class:`~repro.wse.vector_engine.BatchedVectorEngine`'s terminal-aware
packet accounting, so every lane's report is exactly what a serial
fused solve of that problem would produce.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.mapping import ProblemMapping
from repro.core.program import CgProgram, EngineReport
from repro.fused.kernels import create_backend, resolve_backend
from repro.fused.tiling import auto_tile, normalize_fused_tile
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs
from repro.wse.vector_engine import (
    _ChargeModel,
    _memory_report,
    _stage_problem,
    build_init_packet,
    build_iteration_packets,
    normalize_guesses,
)


def _resolve_tile(fused_tile, grid, dtype) -> tuple[int, int]:
    tile = normalize_fused_tile(fused_tile)
    if tile is None:
        tile = auto_tile(grid.nx, grid.ny, grid.nz, np.dtype(dtype).itemsize)
    return (min(tile[0], grid.nx), min(tile[1], grid.ny))


class FusedVectorEngine:
    """Tiled hot-loop execution of the dataflow CG program.

    Constructor vocabulary extends the vectorized engine's with the
    tiling: ``fused_tile`` (``None`` auto-picks from grid/dtype; an int,
    pair or ``"16x16"`` string overrides) and ``backend`` (``None``/
    ``"auto"``, ``"numpy"`` or ``"numba"``; also settable through the
    ``REPRO_FUSED_BACKEND`` environment variable, with graceful
    fallback to numpy when numba is not importable).
    """

    name = "fused"

    def __init__(
        self,
        problem: SinglePhaseProblem,
        program: CgProgram,
        *,
        spec: WseSpecs,
        fused_tile=None,
        backend: str | None = None,
        dtype=np.float32,
        simd_width: int | None = None,
        initial_pressure: np.ndarray | None = None,
        accumulation: np.ndarray | None = None,
        rhs: np.ndarray | None = None,
    ):
        if program.batch != 1:
            raise ConfigurationError(
                f"FusedVectorEngine runs single-problem programs; got "
                f"batch={program.batch} (use BatchedFusedEngine)"
            )
        self.problem = problem
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problem.grid, spec)
        self.dtype = np.dtype(dtype)
        self.simd_width = int(
            simd_width if simd_width is not None else spec.simd_width_f32
        )
        grid = problem.grid
        self.width, self.height, self.depth = grid.nx, grid.ny, grid.nz
        self.num_pes = self.width * self.height
        self._suppress = program.comm_only

        self.tile = _resolve_tile(fused_tile, grid, self.dtype)
        backend_name, self._backend_note = resolve_backend(backend)

        self.st = _stage_problem(
            problem, program, self.dtype, initial_pressure,
            accumulation=accumulation, rhs=rhs,
        )
        self._memory = _memory_report(
            spec, program, self.depth, self.dtype, self.st.kind_counts
        )
        self.model = _ChargeModel(
            width=self.width, height=self.height, depth=self.depth,
            simd_width=self.simd_width, spec=spec, suppress=self._suppress,
            kind_counts=self.st.kind_counts, kernel_plans=self.st.kernel_plans,
        )
        self.backend = create_backend(
            backend_name, self.st, program, tile=self.tile, dtype=self.dtype
        )
        self._mg_packet = None
        if program.mg:
            from repro.mg import build_mg_packet

            self._mg_packet = build_mg_packet(self.model, self.st.mg_hier)
        self._history: list[float] = []

    # -- deterministic tile-order reduction -----------------------------------

    def _reduce(self, partials) -> float:
        """Row-major tile-order float64 sum of the per-tile dot partials
        — the engine's only fp divergence from the single-sweep dot."""
        if self._suppress:
            return 0.0
        total = 0.0
        for value in partials:
            total += value
        return float(total)

    def fused_info(self) -> dict:
        """The ``EngineReport.fused`` telemetry payload."""
        info = {
            "backend": self.backend.name,
            "tile": [int(self.tile[0]), int(self.tile[1])],
            "tiles": int(self.backend.n_tiles),
        }
        if self._backend_note:
            info["note"] = self._backend_note
        return info

    # -- the solve ------------------------------------------------------------

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        """Execute the CG program in tiled passes; control flow and the
        merged charge stream replicate :meth:`VectorEngine.run` exactly."""
        program, m = self.program, self.model
        suppress = self._suppress
        backend = self.backend
        mg = program.mg
        if mg:
            from repro.mg import mg_apply

        # INIT: r0 = b - A y0 ; p0 = r0 (or z0) ; rtr = <r0, r0|z0>
        pk_init = build_init_packet(m, program.jacobi, self._mg_packet)
        m.merge_scaled(pk_init, 1)
        m.state_visits.extend(pk_init.state_visits)
        if suppress:
            rtr = 0.0
        elif mg:
            # The V-cycle is global (coarse grids couple all tiles):
            # tiled pass to the residual, host V-cycle into z, tiled
            # pass for the seed and dot.
            backend.init_residual_pass()
            self.st.z[...] = mg_apply(self.st.mg_hier, self.st.r).astype(
                self.dtype
            )
            rtr = self._reduce(backend.mg_seed_pass())
        else:
            rtr = self._reduce(backend.init_pass())
        self._history.append(rtr)

        pk_check, pk_body, pk_direction = build_iteration_packets(
            m, program.jacobi, self._mg_packet
        )
        k = 0
        terminal: CGState | None = None
        while terminal is None:
            m.merge_scaled(pk_check, 1)
            m.state_visits.extend(pk_check.state_visits)
            if program.check_convergence and rtr < program.tol_rtr:
                terminal = CGState.CONVERGED
                break
            if k >= program.iteration_limit:
                terminal = (
                    CGState.CONVERGED
                    if (program.check_convergence and rtr < program.tol_rtr)
                    else CGState.MAXITER
                )
                break

            # One fused pass: per tile Jp and the p^T Jp partial.
            pap = 0.0 if suppress else self._reduce(backend.body_pass())
            m.merge_scaled(pk_body, 1)
            m.state_visits.extend(pk_body.state_visits)
            if pap == 0.0:
                if not suppress and program.check_convergence:
                    raise ConfigurationError(
                        "fused engine: p^T A p = 0 with live arithmetic"
                    )
                alpha = 0.0
            else:
                alpha = rtr / pap

            # One fused pass: per tile y/r axpys, Jacobi z, r·(z|r) partial.
            if suppress:
                rtr_new = 0.0
            elif mg:
                backend.update_axpy_pass(alpha)
                self.st.z[...] = mg_apply(self.st.mg_hier, self.st.r).astype(
                    self.dtype
                )
                rtr_new = self._reduce(backend.mg_dot_pass())
            else:
                rtr_new = self._reduce(backend.update_pass(alpha))
            k += 1
            self._history.append(rtr_new)
            if program.check_convergence and rtr_new < program.tol_rtr:
                terminal = CGState.CONVERGED
                break
            beta = (rtr_new / rtr) if rtr > 0 else 0.0
            # One fused pass: per tile p = beta p + (z|r), in place.
            if not suppress:
                backend.direction_pass(beta)
            m.merge_scaled(pk_direction, 1)
            m.state_visits.extend(pk_direction.state_visits)
            rtr = rtr_new

        m.visit(terminal)
        converged = terminal is CGState.CONVERGED
        m.finalize()
        return EngineReport(
            pressure=self.st.y.copy(),
            iterations=k,
            converged=converged,
            residual_history=list(self._history),
            trace=m.trace,
            counters=m.counters,
            elapsed_seconds=m.makespan / self.spec.clock_hz,
            memory=dict(self._memory),
            state_visits=list(m.state_visits),
            engine=self.name,
            fused=self.fused_info(),
            preconditioner=(
                self.st.mg_hier.telemetry(k + 1) if mg else None
            ),
        )


# -- the batched (lane) engine ------------------------------------------------


class BatchedFusedEngine:
    """Lane-parallel fused execution of one program over many problems.

    Same admission vocabulary as
    :class:`~repro.wse.vector_engine.BatchedVectorEngine` (shared grid
    shape, per-lane tolerances/guesses/rhs), plus the fused knobs.  Each
    lane owns its own tiled backend over its own staging and all lanes
    advance in lockstep, freezing as they converge — so every lane's
    iterates are **bitwise** what a serial :class:`FusedVectorEngine`
    solve of that problem alone would produce, and the composed charge
    stream (the batched engine's terminal-aware packet accounting) makes
    counters/traffic/memory/makespan exactly the serial reports'.
    """

    name = "batched_fused"

    def __init__(
        self,
        problems: Sequence[SinglePhaseProblem],
        program: CgProgram,
        *,
        spec: WseSpecs,
        fused_tile=None,
        backend: str | None = None,
        dtype=np.float32,
        simd_width: int | None = None,
        tol_rtrs: Sequence[float] | None = None,
        initial_pressure=None,
        accumulation=None,
        rhs=None,
    ):
        problems = list(problems)
        if not problems:
            raise ConfigurationError("batched engine needs at least one problem")
        if program.batch != len(problems):
            raise ConfigurationError(
                f"program.batch is {program.batch} but {len(problems)} "
                f"problems were supplied"
            )
        shapes = {p.grid.shape for p in problems}
        if len(shapes) != 1:
            raise ConfigurationError(
                f"all problems in a batch must share one grid shape; got "
                f"{sorted(shapes)}"
            )
        self.problems = problems
        self.batch = len(problems)
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problems[0].grid, spec)
        self.dtype = np.dtype(dtype)
        self.simd_width = int(
            simd_width if simd_width is not None else spec.simd_width_f32
        )
        grid = problems[0].grid
        self.width, self.height, self.depth = grid.nx, grid.ny, grid.nz
        self._suppress = program.comm_only

        if tol_rtrs is None:
            tol_rtrs = [program.tol_rtr] * self.batch
        if len(tol_rtrs) != self.batch:
            raise ConfigurationError(
                f"tol_rtrs has {len(tol_rtrs)} entries for a batch of "
                f"{self.batch}"
            )
        self._tols = [float(t) for t in tol_rtrs]

        self.tile = _resolve_tile(fused_tile, grid, self.dtype)
        backend_name, self._backend_note = resolve_backend(backend)

        guesses = normalize_guesses(initial_pressure, self.batch, grid.shape)
        accs = normalize_guesses(accumulation, self.batch, grid.shape)
        rhss = normalize_guesses(rhs, self.batch, grid.shape)
        self._stagings = [
            _stage_problem(
                problem, program, self.dtype, guess,
                accumulation=acc, rhs=lane_rhs,
            )
            for problem, guess, acc, lane_rhs in zip(
                problems, guesses, accs, rhss
            )
        ]
        self._memory = [
            _memory_report(spec, program, self.depth, self.dtype, s.kind_counts)
            for s in self._stagings
        ]
        self._models = [
            _ChargeModel(
                width=self.width, height=self.height, depth=self.depth,
                simd_width=self.simd_width, spec=spec, suppress=self._suppress,
                kind_counts=s.kind_counts, kernel_plans=s.kernel_plans,
            )
            for s in self._stagings
        ]
        self._backends = [
            create_backend(
                backend_name, s, program, tile=self.tile, dtype=self.dtype
            )
            for s in self._stagings
        ]
        self._mg_hiers = [s.mg_hier for s in self._stagings]
        self._mg_packet = None
        if program.mg:
            from repro.mg import build_mg_packet

            # All lanes share the grid shape and the program's mg knobs,
            # so one packet serves every lane.
            self._mg_packet = build_mg_packet(
                self._models[0], self._stagings[0].mg_hier
            )
        # One packet set per distinct Dirichlet histogram, exactly the
        # batched vectorized engine's trick.
        self._packets: dict[tuple, dict[str, _ChargeModel]] = {}
        self._lane_sig = []
        for s, model in zip(self._stagings, self._models):
            sig = tuple(sorted((k.name, v) for k, v in s.kind_counts.items()))
            self._lane_sig.append(sig)
            if sig not in self._packets:
                init = build_init_packet(model, program.jacobi, self._mg_packet)
                check, body, direction = build_iteration_packets(
                    model, program.jacobi, self._mg_packet
                )
                self._packets[sig] = {
                    "init": init, "check": check,
                    "body": body, "direction": direction,
                }

    def _reduce(self, partials) -> float:
        if self._suppress:
            return 0.0
        total = 0.0
        for value in partials:
            total += value
        return float(total)

    def fused_info(self) -> dict:
        info = {
            "backend": self._backends[0].name,
            "tile": [int(self.tile[0]), int(self.tile[1])],
            "tiles": int(self._backends[0].n_tiles),
        }
        if self._backend_note:
            info["note"] = self._backend_note
        return info

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> list[EngineReport]:
        """Advance every lane's fused backend in lockstep; per-lane
        control flow replicates the serial fused engine exactly, with
        converged lanes frozen out of passes and charges."""
        program = self.program
        B = self.batch
        suppress = self._suppress
        tols = self._tols
        backends = self._backends
        mg = program.mg
        if mg:
            from repro.mg import mg_apply

        histories: list[list[float]] = [[] for _ in range(B)]
        iters = [0] * B
        terminal: list[CGState | None] = [None] * B
        terminal_at = ["check"] * B
        rtr = [0.0] * B

        for i in range(B):
            if suppress:
                rtr[i] = 0.0
            elif mg:
                backends[i].init_residual_pass()
                st = self._stagings[i]
                st.z[...] = mg_apply(self._mg_hiers[i], st.r).astype(
                    self.dtype
                )
                rtr[i] = self._reduce(backends[i].mg_seed_pass())
            else:
                rtr[i] = self._reduce(backends[i].init_pass())
            histories[i].append(rtr[i])

        active = list(range(B))
        while active:
            survivors = []
            for i in active:
                if program.check_convergence and rtr[i] < tols[i]:
                    terminal[i] = CGState.CONVERGED
                elif iters[i] >= program.iteration_limit:
                    terminal[i] = (
                        CGState.CONVERGED
                        if (program.check_convergence and rtr[i] < tols[i])
                        else CGState.MAXITER
                    )
                else:
                    survivors.append(i)
            active = survivors
            if not active:
                break

            new_rtr = dict.fromkeys(active, 0.0)
            for i in active:
                pap = 0.0 if suppress else self._reduce(backends[i].body_pass())
                if pap == 0.0:
                    if not suppress and program.check_convergence:
                        raise ConfigurationError(
                            "fused engine: p^T A p = 0 with live arithmetic "
                            f"(batch lane {i})"
                        )
                    alpha = 0.0
                else:
                    alpha = rtr[i] / pap
                if suppress:
                    new_rtr[i] = 0.0
                elif mg:
                    backends[i].update_axpy_pass(alpha)
                    st = self._stagings[i]
                    st.z[...] = mg_apply(self._mg_hiers[i], st.r).astype(
                        self.dtype
                    )
                    new_rtr[i] = self._reduce(backends[i].mg_dot_pass())
                else:
                    new_rtr[i] = self._reduce(backends[i].update_pass(alpha))
                iters[i] += 1
                histories[i].append(new_rtr[i])

            survivors = []
            for i in active:
                if program.check_convergence and new_rtr[i] < tols[i]:
                    terminal[i] = CGState.CONVERGED
                    terminal_at[i] = "thres"
                else:
                    survivors.append(i)

            for i in survivors:
                beta = (new_rtr[i] / rtr[i]) if rtr[i] > 0 else 0.0
                if not suppress:
                    backends[i].direction_pass(beta)
            for i in active:
                rtr[i] = new_rtr[i]
            active = survivors

        fused_info = self.fused_info()
        reports = []
        for i in range(B):
            m = self._models[i]
            pk = self._packets[self._lane_sig[i]]
            k = iters[i]
            if terminal_at[i] == "thres":
                n_check, n_body, n_dir = k, k, k - 1
            else:
                n_check, n_body, n_dir = k + 1, k, k
            m.merge_scaled(pk["init"], 1)
            m.merge_scaled(pk["check"], n_check)
            m.merge_scaled(pk["body"], n_body)
            m.merge_scaled(pk["direction"], n_dir)
            full_iter = (
                pk["check"].state_visits
                + pk["body"].state_visits
                + pk["direction"].state_visits
            )
            visits = list(pk["init"].state_visits)
            if terminal_at[i] == "thres":
                visits += full_iter * (k - 1)
                visits += pk["check"].state_visits + pk["body"].state_visits
            else:
                visits += full_iter * k
                visits += pk["check"].state_visits
            m.state_visits = visits
            m.visit(terminal[i])
            m.finalize()
            reports.append(
                EngineReport(
                    pressure=np.array(self._stagings[i].y, copy=True),
                    iterations=iters[i],
                    converged=terminal[i] is CGState.CONVERGED,
                    residual_history=histories[i],
                    trace=m.trace,
                    counters=m.counters,
                    elapsed_seconds=m.makespan / self.spec.clock_hz,
                    memory=dict(self._memory[i]),
                    state_visits=list(m.state_visits),
                    engine=self.name,
                    fused=dict(fused_info),
                    preconditioner=(
                        self._mg_hiers[i].telemetry(iters[i] + 1)
                        if mg else None
                    ),
                )
            )
        return reports


__all__ = ["BatchedFusedEngine", "FusedVectorEngine"]
