"""Optional numba-compiled tile kernels for the fused engine.

This module imports :mod:`numba` at module import time and therefore
must only be imported once :func:`repro.fused.kernels.resolve_backend`
has confirmed numba is available — the registry never reaches it
otherwise (absent numba resolves to the numpy backend with a telemetry
note instead of an ImportError).

:class:`FusedNumbaBackend` subclasses the numpy backend and overrides
**only** the per-tile FV apply step with ``numba.njit(parallel=True)``
kernels (``prange`` over tile rows); the dots, axpys and the
deterministic tile-order reduction stay on the numpy path.  The jitted
kernels replay the numpy backend's per-element operation sequence in the
array dtype — same scalar ops, same order, ``fastmath`` left off, the
``0.5`` mobility constant passed pre-cast to the field dtype — so both
backends agree bitwise on every tile.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.core.fv_kernel import KernelVariant
from repro.fused.kernels import FusedNumpyBackend


@njit(cache=True, parallel=True)
def _tile_precomputed(
    x, sw, se, sn, ss, cw, ce, cn, cs, cup, cdn,
    acc, full_cols, blend, out,
    has_vert, has_acc, has_full, has_partial,
):  # pragma: no cover - requires numba
    tnx, tny, nz = x.shape
    for i in prange(tnx):
        for j in range(tny):
            for k in range(nz):
                v = cw[i, j, k] * (x[i, j, k] - sw[i, j, k])
                v += ce[i, j, k] * (x[i, j, k] - se[i, j, k])
                v += cn[i, j, k] * (x[i, j, k] - sn[i, j, k])
                v += cs[i, j, k] * (x[i, j, k] - ss[i, j, k])
                # lo-face term before hi-face term: the numpy path runs
                # the whole lo sweep first, so element k accumulates its
                # UP flux before its DOWN flux.
                if has_vert and k < nz - 1:
                    v += cup[i, j, k] * (x[i, j, k] - x[i, j, k + 1])
                if has_vert and k >= 1:
                    v += cdn[i, j, k] * (x[i, j, k] - x[i, j, k - 1])
                if has_acc:
                    v += acc[i, j, k] * x[i, j, k]
                if has_full and full_cols[i, j]:
                    v = x[i, j, k]
                if has_partial:
                    v += blend[i, j, k] * (x[i, j, k] - v)
                out[i, j, k] = v


@njit(cache=True, parallel=True)
def _tile_fused(
    x, sw, se, sn, ss, uw, ue, un, us, uup, udn,
    lam, lw, le, ln, ls,
    acc, full_cols, blend, out, half,
    has_vert, has_acc, has_full, has_partial,
):  # pragma: no cover - requires numba
    tnx, tny, nz = x.shape
    for i in prange(tnx):
        for j in range(tny):
            for k in range(nz):
                lc = lam[i, j, k]
                v = ((lc + lw[i, j, k]) * half) * uw[i, j, k] * (
                    x[i, j, k] - sw[i, j, k]
                )
                v += ((lc + le[i, j, k]) * half) * ue[i, j, k] * (
                    x[i, j, k] - se[i, j, k]
                )
                v += ((lc + ln[i, j, k]) * half) * un[i, j, k] * (
                    x[i, j, k] - sn[i, j, k]
                )
                v += ((lc + ls[i, j, k]) * half) * us[i, j, k] * (
                    x[i, j, k] - ss[i, j, k]
                )
                if has_vert and k < nz - 1:
                    v += (((lc + lam[i, j, k + 1]) * half) * uup[i, j, k]) * (
                        x[i, j, k] - x[i, j, k + 1]
                    )
                if has_vert and k >= 1:
                    v += (((lc + lam[i, j, k - 1]) * half) * udn[i, j, k]) * (
                        x[i, j, k] - x[i, j, k - 1]
                    )
                if has_acc:
                    v += acc[i, j, k] * x[i, j, k]
                if has_full and full_cols[i, j]:
                    v = x[i, j, k]
                if has_partial:
                    v += blend[i, j, k] * (x[i, j, k] - v)
                out[i, j, k] = v


class FusedNumbaBackend(FusedNumpyBackend):
    """Numpy tiled backend with jitted per-tile FV apply kernels."""

    name = "numba"

    def __init__(self, st, program, *, tile, dtype):
        super().__init__(st, program, tile=tile, dtype=dtype)
        # The jitted kernels ARE the fast path here — always route the
        # apply through _apply_tile rather than the numpy slab path.
        self._use_slab = False
        dtype = np.dtype(dtype)
        self._half = dtype.type(0.5)
        dummy3 = np.zeros((0, 0, 0), dtype=dtype)
        dummy2 = np.zeros((0, 0), dtype=bool)
        self._tile_args = []
        for t, tv in enumerate(self.tiled._t):
            a = {
                "x": tv["x"], "shift": tv["shift"], "out": tv["out"],
                "acc": tv["acc"] if tv["acc"] is not None else dummy3,
                "full_cols": (
                    tv["full_cols"] if tv["full_cols"] is not None else dummy2
                ),
                "blend": tv["blend"] if tv["blend"] is not None else dummy3,
            }
            if self.tiled.variant is KernelVariant.PRECOMPUTED:
                a["coeff"] = tv["coeff"]
                a["cup"] = tv["coeff_up"] if tv["coeff_up"] is not None else dummy3
                a["cdn"] = tv["coeff_down"] if tv["coeff_down"] is not None else dummy3
            else:
                a["ups"] = tv["ups"]
                a["uup"] = tv["ups_up"] if tv["ups_up"] is not None else dummy3
                a["udn"] = tv["ups_down"] if tv["ups_down"] is not None else dummy3
                a["lam"] = tv["lam"]
                a["lam_nbr"] = tv["lam_nbr"]
            self._tile_args.append(a)

    def _apply_tile(self, t: int) -> None:  # pragma: no cover - requires numba
        tiled = self.tiled
        a = self._tile_args[t]
        has_vert = tiled.nz >= 2
        if tiled.variant is KernelVariant.PRECOMPUTED:
            _tile_precomputed(
                a["x"], *a["shift"], *a["coeff"], a["cup"], a["cdn"],
                a["acc"], a["full_cols"], a["blend"], a["out"],
                has_vert, tiled.has_acc, tiled.has_full, tiled.has_partial,
            )
        else:
            _tile_fused(
                a["x"], *a["shift"], *a["ups"], a["uup"], a["udn"],
                a["lam"], *a["lam_nbr"],
                a["acc"], a["full_cols"], a["blend"], a["out"], self._half,
                has_vert, tiled.has_acc, tiled.has_full, tiled.has_partial,
            )


__all__ = ["FusedNumbaBackend"]
