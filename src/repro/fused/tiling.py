"""Cache-tile selection for the fused hot-loop engine.

The fused engine sweeps the lateral grid in rectangular *tiles* sized so
one tile's working set — the stencil input window plus every coefficient
and CG work column it touches — stays resident in cache between the FV
apply, the axpy updates and the dot partial it fuses (the paper's whole
premise: matrix-free kernels win by keeping the working set next to the
compute).  A tile is an ``(x0, x1, y0, y1)`` lateral box; the z axis is
never split (a PE owns a whole column).

Tile order is row-major over the tile grid and doubles as the engine's
*deterministic reduction order*: per-tile float64 dot partials are summed
sequentially in this order (the sharded engine's trick), so repeated runs
are bit-identical regardless of backend or thread count.
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigurationError

#: Lateral working-set arrays one fused sweep touches per cell (stencil
#: input + output + 4..6 coefficient columns + y/b/r/z/inv_diag + masks);
#: deliberately on the generous side so the auto-picked tile errs small.
_ARRAYS_PER_CELL = 14

#: Target per-tile working set: comfortably inside a desktop L2.
_TARGET_TILE_BYTES = 512 * 1024

_TILE_STRING = re.compile(r"^\s*(\d+)\s*[xX,]\s*(\d+)\s*$")


def normalize_fused_tile(value) -> tuple[int, int] | None:
    """Coerce a tile spec to a ``(tile_x, tile_y)`` pair.

    Accepts ``None`` (auto-pick), a positive int (square tile), a
    two-sequence of positive ints, or a ``"16x16"``-style string (the
    CLI/env spelling).  Anything else raises :class:`ConfigurationError`.
    """
    if value is None:
        return None
    if isinstance(value, str):
        match = _TILE_STRING.match(value)
        if not match:
            raise ConfigurationError(
                f"fused_tile string must look like '16x16', got {value!r}"
            )
        value = (int(match.group(1)), int(match.group(2)))
    if isinstance(value, bool):
        raise ConfigurationError(f"fused_tile must be an int or pair, got {value!r}")
    if isinstance(value, int):
        value = (value, value)
    try:
        tile = tuple(int(v) for v in value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"fused_tile must be a positive int, a (tile_x, tile_y) pair, "
            f"or a '16x16' string, got {value!r}"
        ) from None
    if len(tile) != 2 or any(v < 1 for v in tile):
        raise ConfigurationError(
            f"fused_tile must be two positive integers, got {value!r}"
        )
    return tile


def auto_tile(nx: int, ny: int, nz: int, itemsize: int) -> tuple[int, int]:
    """Pick a tile shape from the grid and dtype.

    Always picks a *full-width row slab* ``(rows, ny)``: slab tiles keep
    every work array's tile view contiguous, which is what unlocks the
    numpy backend's fast apply path (see
    :class:`~repro.fused.kernels.FusedNumpyBackend`).  The row count
    targets ``_TARGET_TILE_BYTES`` of working set per tile (``~14``
    arrays × ``nz`` × ``itemsize`` bytes per lateral cell), clamped to
    the grid; small grids come back as one whole-grid tile — per-tile
    dispatch is pure overhead below the cache ceiling.
    """
    bytes_per_row = max(1, _ARRAYS_PER_CELL * ny * nz * itemsize)
    rows = max(8, int(_TARGET_TILE_BYTES // bytes_per_row))
    return (min(nx, rows), ny)


def tile_boxes(
    nx: int, ny: int, tile: tuple[int, int]
) -> list[tuple[int, int, int, int]]:
    """Row-major ``(x0, x1, y0, y1)`` lateral boxes covering the grid.

    The list order is the engine's deterministic dot-reduction order.
    Edge tiles are clipped, never padded, so every cell belongs to
    exactly one box.
    """
    tx, ty = tile
    tx, ty = min(tx, nx), min(ty, ny)
    boxes = []
    for x0 in range(0, nx, tx):
        for y0 in range(0, ny, ty):
            boxes.append((x0, min(x0 + tx, nx), y0, min(y0 + ty, ny)))
    return boxes


__all__ = ["auto_tile", "normalize_fused_tile", "tile_boxes"]
