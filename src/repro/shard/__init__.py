"""Sharded fabric execution: domain decomposition, halo exchange,
worker crews and inter-shard link accounting.

Entry point: :class:`ShardedVectorEngine`, registered behind
``MachineSpec(engine="sharded")`` (see :mod:`repro.core.engines`).
"""

from repro.shard.engine import ShardedVectorEngine
from repro.shard.layout import ShardBox, ShardLayout, normalize_shard_shape
from repro.shard.links import (
    InterShardLinkModel,
    MultiWaferLink,
    ShardLinkCounters,
    project_multiwafer,
)
from repro.shard.workers import CREW_MODES, default_crew

__all__ = [
    "CREW_MODES",
    "default_crew",
    "InterShardLinkModel",
    "MultiWaferLink",
    "ShardBox",
    "ShardLayout",
    "ShardLinkCounters",
    "ShardedVectorEngine",
    "normalize_shard_shape",
    "project_multiwafer",
]
