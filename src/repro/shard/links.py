"""Analytic inter-shard link accounting and multi-wafer what-if counters.

Two layers:

* :class:`InterShardLinkModel` — counts the *actual* traffic the sharded
  engine moves between shards during a solve: one boundary plane per
  live boundary per halo exchange, plus the gather/broadcast scalars of
  every cross-shard dot-product reduction.  Charged in lockstep with the
  engine's rounds, so the counters are exact, not estimated.  On a
  ``1x1`` layout every counter is zero — sharding a fabric onto one
  worker moves nothing.

* :func:`project_multiwafer` — the ROADMAP's "what-if" study: extend the
  same link accounting to fabrics *larger than one wafer*, where each
  shard is a whole WSE-2 and the inter-shard links are a cabled
  interconnect instead of on-wafer wires.  Per-iteration compute time
  comes from the calibrated CS-2 time model (per-PE work is
  fabric-size-free — the paper's flat weak scaling), link time from the
  seam traffic over the modelled cable bandwidth/latency; the output
  rows quantify how much interconnect a multi-wafer CG would need to
  stay compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.shard.layout import ShardLayout
from repro.util.errors import ConfigurationError
from repro.wse.specs import WSE2, WseSpecs

#: Bytes of one reduced partial (dot products reduce in float64).
REDUCE_SCALAR_BYTES = 8


@dataclass
class ShardLinkCounters:
    """Exact inter-shard traffic of one sharded solve."""

    exchanges: int = 0
    reductions: int = 0
    halo_messages: int = 0
    halo_bytes: int = 0
    reduce_messages: int = 0
    reduce_bytes: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "exchanges": self.exchanges,
            "reductions": self.reductions,
            "halo_messages": self.halo_messages,
            "halo_bytes": self.halo_bytes,
            "reduce_messages": self.reduce_messages,
            "reduce_bytes": self.reduce_bytes,
        }


class InterShardLinkModel:
    """Charge inter-shard traffic alongside the engine's rounds.

    A halo exchange moves each live boundary's plane in both directions
    (two messages of ``extent * nz`` elements); a reduction gathers one
    float64 partial per non-root shard and broadcasts the total back.
    """

    def __init__(self, layout: ShardLayout, nz: int, elem_bytes: int):
        if nz < 1:
            raise ConfigurationError(f"nz must be >= 1, got {nz}")
        self.layout = layout
        self.nz = int(nz)
        self.elem_bytes = int(elem_bytes)
        boundaries = layout.boundaries()
        self._messages_per_exchange = 2 * len(boundaries)
        self._elems_per_exchange = 2 * sum(ext for _, _, ext in boundaries) * nz
        self.counters = ShardLinkCounters()

    def charge_exchange(self) -> None:
        c = self.counters
        c.exchanges += 1
        c.halo_messages += self._messages_per_exchange
        c.halo_bytes += self._elems_per_exchange * self.elem_bytes

    def charge_reduce(self) -> None:
        c = self.counters
        c.reductions += 1
        n = self.layout.n_shards
        if n > 1:
            # Gather (n-1 partials to the root) + broadcast (n-1 totals).
            c.reduce_messages += 2 * (n - 1)
            c.reduce_bytes += 2 * (n - 1) * REDUCE_SCALAR_BYTES

    def to_dict(self) -> dict:
        return {
            "boundaries": len(self.layout.boundaries()),
            "halo_elems_per_exchange": self._elems_per_exchange,
            **self.counters.to_dict(),
        }


# -- multi-wafer what-if projection -------------------------------------------


@dataclass(frozen=True)
class MultiWaferLink:
    """The cabled inter-wafer interconnect of the what-if machine.

    Defaults model an aggressive chassis-to-chassis link (100 GB/s
    effective, 1 µs one-way latency) — far below on-wafer bandwidth,
    which is the point of the study.
    """

    bandwidth_bytes_per_s: float = 100e9
    latency_s: float = 1e-6

    def transfer_time(self, payload_bytes: float) -> float:
        return self.latency_s + payload_bytes / self.bandwidth_bytes_per_s


def project_multiwafer(
    wafers: tuple[int, ...] = (1, 2, 4, 8, 16),
    *,
    nz: int = 922,
    iterations: int = 225,
    spec: WseSpecs = WSE2,
    link: MultiWaferLink | None = None,
    elem_bytes: int = 4,
) -> list[dict]:
    """What-if rows for a CG sheet spanning ``w`` wafers side by side.

    Each wafer is one shard of a ``(w * W) x H`` fabric (wafers tiled
    along x, so every seam carries ``H * nz`` elements per direction per
    exchange).  Per-iteration compute time comes from the calibrated
    CS-2 model and is identical on every wafer (weak scaling); link time
    is one seam's bidirectional halo transfer plus the two all-reduces'
    gather/broadcast chain across wafers, serialized over the cable.
    ``efficiency`` is compute over compute-plus-link — the fraction of a
    perfect ``w``-wafer speedup the interconnect leaves standing.
    """
    from repro.perf.timemodel import Cs2TimeModel

    if link is None:
        link = MultiWaferLink()
    model = Cs2TimeModel.calibrated(spec)
    W, H = spec.fabric_width, spec.fabric_height
    compute_iter = model.iteration_time_alg1(W, H, nz)
    rows: list[dict] = []
    for w in wafers:
        if w < 1:
            raise ConfigurationError(f"wafer counts must be >= 1, got {w}")
        layout = ShardLayout.build((w, 1), w * W, H)
        links = InterShardLinkModel(layout, nz, elem_bytes)
        # One exchange + two reductions per iteration (plus the init
        # round's, amortized into `iterations` here).
        links.charge_exchange()
        links.charge_reduce()
        links.charge_reduce()
        per_iter = links.counters
        if w == 1:
            link_iter = 0.0
        else:
            # Seams transfer concurrently (each wafer drives its own
            # cables), so the exchange costs one seam's bidirectional
            # payload; the reduce chain pays one hop per seam crossed.
            seam_payload = 2 * H * nz * elem_bytes
            exchange_t = link.transfer_time(seam_payload)
            reduce_t = 2 * (w - 1) * link.transfer_time(2 * REDUCE_SCALAR_BYTES)
            link_iter = exchange_t + reduce_t
        total_iter = compute_iter + link_iter
        rows.append({
            "wafers": w,
            "fabric": [w * W, H],
            "nz": nz,
            "iterations": iterations,
            "cells": w * W * H * nz,
            "halo_bytes_per_iter": per_iter.halo_bytes,
            "reduce_bytes_per_iter": per_iter.reduce_bytes,
            "compute_s_per_iter": compute_iter,
            "link_s_per_iter": link_iter,
            "total_s": total_iter * iterations,
            "efficiency": compute_iter / total_iter,
            "cells_per_s": (w * W * H * nz) / total_iter,
        })
    return rows


__all__ = [
    "InterShardLinkModel",
    "MultiWaferLink",
    "REDUCE_SCALAR_BYTES",
    "ShardLinkCounters",
    "project_multiwafer",
]
