"""Shard workers and the pools ("crews") that run them.

A :class:`ShardWorker` owns one shard's numerics; the coordinator
(:class:`repro.shard.engine.ShardedVectorEngine`) drives all workers in
lockstep *rounds* (named after :meth:`CgProgram.shard_rounds`): every
round is a barrier — the coordinator dispatches it to every worker,
collects every shard's partial dot product, reduces, and only then
dispatches the next round.  Halo mailboxes are written at the end of one
round and read at the start of a later one, so the barrier *is* the
happens-before edge that makes the exchange race-free.

Rounds are split into ``dispatch(name, scalar)`` / ``collect()`` halves
so the coordinator can run its (pure-Python) charge-model bookkeeping
*between* the two — overlapping with the workers' NumPy sweeps on the
thread and process crews instead of serialising after them.  ``round()``
is dispatch immediately followed by collect; ``collect()`` is the
barrier either way.

Three crews share the worker code:

* ``serial`` — an in-process loop (deterministic baseline, tests);
* ``thread`` — persistent daemon threads over the coordinator's own
  arrays (NumPy releases the GIL inside the sweeps, so shards genuinely
  overlap; zero-copy staging — the default);
* ``process`` — one ``multiprocessing`` process per shard over
  shared-memory buffers (``RawArray``: staged fields, halo mailboxes and
  the gathered result live in anonymous shared mappings inherited by the
  children — no files, no named segments to leak).  Pays a per-solve
  spawn cost; wins only when sweeps are large enough that thread-level
  parallelism is memory-bandwidth-bound.

Every crew guarantees **no orphaned workers**: threads and processes are
daemonic, and ``close()`` (called by the engine in a ``finally``) joins
them with a terminate fallback.  ``benchmarks/shard_smoke.py`` asserts
this in CI.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import traceback
from dataclasses import dataclass

import numpy as np

from repro.core.fv_kernel import KernelVariant
from repro.shard.halo import ShardFields
from repro.shard.layout import DIRECTIONS, OPPOSITE, ShardBox, ShardLayout
from repro.util.errors import ConfigurationError

#: Worker-pool modes the sharded engine accepts.
CREW_MODES = ("serial", "thread", "process")


def default_crew(layout: ShardLayout) -> str:
    """The crew a solve gets when the caller doesn't choose one.

    A worker pool only pays for its barrier sync when shards can
    actually sweep concurrently: with a single shard, or a single host
    CPU, the pool is pure overhead, so those solves run the in-process
    serial crew.  Every crew is bit-identical, so the choice is purely
    a throughput matter."""
    if len(layout.boxes) == 1 or (os.cpu_count() or 1) < 2:
        return "serial"
    return "thread"


@dataclass(frozen=True)
class WorkerParams:
    """Per-solve scalars every worker needs (picklable — no arrays)."""

    variant: KernelVariant
    jacobi: bool
    suppress: bool
    dtype: str
    has_full: bool
    has_partial: bool
    #: Cache-tile shape for the fused-kernel composition (``None`` keeps
    #: the strided whole-slab sweep).
    fused_tile: tuple[int, int] | None = None
    #: Multigrid preconditioning: workers push residual blocks to the
    #: result board and read the coordinator's V-cycle output back from
    #: it (the ``push``/``mg_*`` rounds).
    mg: bool = False


class ShardWorker:
    """One shard's CG numerics between coordinator rounds."""

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        box: ShardBox,
        neighbors: dict[str, int | None],
        outboxes: list[dict[str, np.ndarray]],
        result: np.ndarray,
        params: WorkerParams,
    ):
        self.box = box
        self.params = params
        self.fields = ShardFields(
            arrays, box,
            variant=params.variant, jacobi=params.jacobi,
            has_full=params.has_full, has_partial=params.has_partial,
            dtype=np.dtype(params.dtype),
            fused_tile=params.fused_tile,
            mg=params.mg,
        )
        self.outbox = outboxes[box.index]
        # My halo source in direction d is that neighbour's plane
        # published *toward me* — its OPPOSITE[d] mailbox.
        self.inboxes: dict[str, np.ndarray | None] = {
            direction: (
                outboxes[nbr][OPPOSITE[direction]] if nbr is not None else None
            )
            for direction, nbr in neighbors.items()
        }
        self.result = result
        self.jx: np.ndarray | None = None

    def _board(self) -> np.ndarray:
        box = self.box
        return self.result[box.x0:box.x1, box.y0:box.y1, :]

    def round(self, name: str, scalar: float | None = None) -> float | None:
        f = self.fields
        jacobi, mg = self.params.jacobi, self.params.mg
        suppress = self.params.suppress
        box = self.box
        if name == "gather":
            self.result[box.x0:box.x1, box.y0:box.y1, :] = f.y
            return None
        if suppress:
            # comm-only programs never touch the arithmetic; partial
            # dots are zero exactly as on the single-shard engines.
            return 0.0 if name in ("init", "body", "update") else None
        if name == "stage":
            f.publish(f.y, self.outbox)
            return None
        if name == "init":
            f.fill(f.y, self.inboxes)
            jx = f.apply()
            np.subtract(f.b, jx, out=f.r, casting="unsafe")
            if mg:
                # The V-cycle is a host-assisted program construct: push
                # the residual block to the board and wait for the
                # coordinator's z ("mg_init" completes the phase).
                self._board()[...] = f.r
                return None
            if jacobi:
                np.multiply(f.r, f.inv_diag, out=f.z, casting="unsafe")
                f.p[...] = f.z
                local = f.dot(f.r, f.z)
            else:
                f.p[...] = f.r
                local = f.dot(f.r, f.r)
            # p is NOT published here: neighbours may still be filling
            # their y halos from these same single-buffered mailbox
            # planes — the coordinator runs the "publish" round after
            # the init barrier.
            return local
        if name == "mg_init":
            f.z[...] = self._board()
            f.p[...] = f.z
            return f.dot(f.r, f.z)
        if name == "publish":
            f.publish(f.p, self.outbox)
            return None
        if name == "body":
            f.fill(f.p, self.inboxes)
            self.jx = f.apply()
            return f.dot(f.p, self.jx)
        if name == "update":
            # axpys through the fields' scratch (f._diff is only live
            # inside apply) — `alpha * p` lands in the same dtype with
            # the same rounding, minus the temporary.
            alpha = scalar
            np.multiply(f.p, alpha, out=f._diff, casting="unsafe")
            f.y += f._diff
            np.multiply(self.jx, -alpha, out=f._diff, casting="unsafe")
            f.r += f._diff
            if mg:
                self._board()[...] = f.r
                return None
            if jacobi:
                np.multiply(f.r, f.inv_diag, out=f.z, casting="unsafe")
                return f.dot(f.r, f.z)
            return f.dot(f.r, f.r)
        if name == "mg_update":
            f.z[...] = self._board()
            return f.dot(f.r, f.z)
        if name == "direction":
            beta = scalar
            np.multiply(f.p, beta, out=f.p, casting="unsafe")
            f.p += f.z if (jacobi or mg) else f.r
            f.publish(f.p, self.outbox)
            return None
        raise ConfigurationError(f"unknown shard round {name!r}")


def _build_outboxes(
    layout: ShardLayout, nz: int, dtype: np.dtype, make
) -> list[dict[str, np.ndarray]]:
    """One mailbox plane per live (shard, direction); ``make(shape)``
    allocates (numpy for serial/thread, shared memory for process)."""
    out: list[dict[str, np.ndarray]] = []
    for box in layout.boxes:
        planes: dict[str, np.ndarray] = {}
        for direction, _, _ in DIRECTIONS:
            if layout.neighbor_index(box, direction) is not None:
                extent = box.ny if direction in ("west", "east") else box.nx
                planes[direction] = make((extent, nz), dtype)
        out.append(planes)
    return out


# -- crews --------------------------------------------------------------------


class SerialCrew:
    """All shards in one loop — the determinism/debug baseline."""

    mode = "serial"

    def __init__(self, layout, arrays, params, nz, dtype):
        dtype = np.dtype(dtype)
        shape = (layout.nx, layout.ny, nz)

        def make(s, dt):
            return np.zeros(s, dtype=dt)

        self._result = np.zeros(shape, dtype=dtype)
        outboxes = _build_outboxes(layout, nz, dtype, make)
        self._workers = [
            ShardWorker(
                arrays, box, layout.neighbors(box), outboxes,
                self._result, params,
            )
            for box in layout.boxes
        ]

    def start(self) -> None:
        self.round("stage")

    def dispatch(self, name: str, scalar: float | None = None) -> None:
        # No workers to hand off to — run the round inline and let
        # collect() hand back the results.
        self._pending = [w.round(name, scalar) for w in self._workers]

    def collect(self) -> list[float | None]:
        pending, self._pending = self._pending, None
        return pending

    def round(self, name: str, scalar: float | None = None) -> list[float | None]:
        self.dispatch(name, scalar)
        return self.collect()

    def board(self) -> np.ndarray:
        """The shared full-grid scratch board (mg residual/correction
        staging between barriers; also the gather target)."""
        return self._result

    def gather(self) -> np.ndarray:
        self.round("gather")
        return self._result.copy()

    def close(self) -> None:
        pass


class ThreadCrew:
    """Persistent daemon threads, one per shard, dispatched per round."""

    mode = "thread"

    def __init__(self, layout, arrays, params, nz, dtype):
        dtype = np.dtype(dtype)
        shape = (layout.nx, layout.ny, nz)

        def make(s, dt):
            return np.zeros(s, dtype=dt)

        self._result = np.zeros(shape, dtype=dtype)
        outboxes = _build_outboxes(layout, nz, dtype, make)
        self._workers = [
            ShardWorker(
                arrays, box, layout.neighbors(box), outboxes,
                self._result, params,
            )
            for box in layout.boxes
        ]
        self._cmd: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in self._workers
        ]
        self._out: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._loop, args=(i,), daemon=True,
                name=f"shard-worker-{i}",
            )
            for i in range(len(self._workers))
        ]

    def _loop(self, i: int) -> None:
        while True:
            cmd = self._cmd[i].get()
            if cmd is None:
                return
            name, scalar = cmd
            try:
                self._out.put((i, "ok", self._workers[i].round(name, scalar)))
            except BaseException as exc:  # surfaced by the coordinator
                self._out.put((i, "err", exc))

    def start(self) -> None:
        for t in self._threads:
            t.start()
        self.round("stage")

    def dispatch(self, name: str, scalar: float | None = None) -> None:
        for q in self._cmd:
            q.put((name, scalar))

    def collect(self) -> list[float | None]:
        results: list[float | None] = [None] * len(self._workers)
        error: BaseException | None = None
        for _ in self._workers:
            i, status, payload = self._out.get()
            if status == "err":
                error = error or payload
            else:
                results[i] = payload
        if error is not None:
            raise error
        return results

    def round(self, name: str, scalar: float | None = None) -> list[float | None]:
        self.dispatch(name, scalar)
        return self.collect()

    def board(self) -> np.ndarray:
        """See :meth:`SerialCrew.board` (queue hand-offs order the
        coordinator's board writes against the workers' reads)."""
        return self._result

    def gather(self) -> np.ndarray:
        self.round("gather")
        return self._result.copy()

    def close(self) -> None:
        for q in self._cmd:
            q.put(None)
        for t in self._threads:
            if t.is_alive():
                t.join(timeout=5.0)


def _shared_array(ctx, shape, dtype: np.dtype):
    """An anonymous shared-memory ndarray (inherited, never named —
    nothing to unlink, nothing to orphan)."""
    n = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    raw = ctx.RawArray("b", max(n, 1))
    return raw, (tuple(int(v) for v in shape), dtype.str)


def _view(raw, meta) -> np.ndarray:
    shape, dtype_str = meta
    return np.frombuffer(raw, dtype=np.dtype(dtype_str)).reshape(shape)


def _process_main(conn, arrays_shm, box, neighbors, outbox_shm, result_shm, params):
    """Child entry point: rebuild shared views, then serve rounds."""
    try:
        arrays = {k: _view(raw, meta) for k, (raw, meta) in arrays_shm.items()}
        outboxes = [
            {d: _view(raw, meta) for d, (raw, meta) in planes.items()}
            for planes in outbox_shm
        ]
        result = _view(*result_shm)
        worker = ShardWorker(arrays, box, neighbors, outboxes, result, params)
        conn.send(("ready", None))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        return
    while True:
        msg = conn.recv()
        if msg is None:
            return
        name, scalar = msg
        try:
            conn.send(("ok", worker.round(name, scalar)))
        except BaseException:
            conn.send(("err", traceback.format_exc()))


class ProcessCrew:
    """One spawned process per shard over anonymous shared memory."""

    mode = "process"

    def __init__(self, layout, arrays, params, nz, dtype):
        dtype = np.dtype(dtype)
        ctx = mp.get_context("spawn")
        # Stage every global array into shared memory (children slice
        # out their shards at construction).
        arrays_shm = {}
        for key, arr in arrays.items():
            raw, meta = _shared_array(ctx, arr.shape, arr.dtype)
            _view(raw, meta)[...] = arr
            arrays_shm[key] = (raw, meta)
        outbox_shm = []

        def make_shm(shape, dt):
            return _shared_array(ctx, shape, np.dtype(dt))

        for box in layout.boxes:
            planes = {}
            for direction, _, _ in DIRECTIONS:
                if layout.neighbor_index(box, direction) is not None:
                    extent = box.ny if direction in ("west", "east") else box.nx
                    planes[direction] = make_shm((extent, nz), dtype)
            outbox_shm.append(planes)
        self._result_shm = _shared_array(ctx, (layout.nx, layout.ny, nz), dtype)
        self._procs = []
        self._conns = []
        for box in layout.boxes:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_process_main,
                args=(
                    child, arrays_shm, box, layout.neighbors(box),
                    outbox_shm, self._result_shm, params,
                ),
                daemon=True,
                name=f"shard-worker-{box.index}",
            )
            self._procs.append(proc)
            self._conns.append(parent)

    def start(self) -> None:
        for proc in self._procs:
            proc.start()
        for conn in self._conns:
            status, payload = conn.recv()
            if status == "err":
                self.close()
                raise ConfigurationError(
                    f"shard worker failed to start:\n{payload}"
                )
        self.round("stage")

    def dispatch(self, name: str, scalar: float | None = None) -> None:
        self._round_name = name
        for conn in self._conns:
            conn.send((name, scalar))

    def collect(self) -> list[float | None]:
        results: list[float | None] = [None] * len(self._conns)
        error: str | None = None
        for i, conn in enumerate(self._conns):
            status, payload = conn.recv()
            if status == "err":
                error = error or payload
            else:
                results[i] = payload
        if error is not None:
            raise RuntimeError(
                f"shard worker round {self._round_name!r} failed:\n{error}"
            )
        return results

    def round(self, name: str, scalar: float | None = None) -> list[float | None]:
        self.dispatch(name, scalar)
        return self.collect()

    def board(self) -> np.ndarray:
        """See :meth:`SerialCrew.board` (the shared-memory view; pipe
        messages order writes against the children's reads)."""
        return _view(*self._result_shm)

    def gather(self) -> np.ndarray:
        self.round("gather")
        return _view(*self._result_shm).copy()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()


_CREWS = {"serial": SerialCrew, "thread": ThreadCrew, "process": ProcessCrew}


def create_crew(mode: str, layout, arrays, params, nz, dtype):
    if mode not in _CREWS:
        raise ConfigurationError(
            f"unknown shard worker mode {mode!r}; choose one of "
            f"{', '.join(CREW_MODES)}"
        )
    return _CREWS[mode](layout, arrays, params, nz, dtype)


__all__ = [
    "CREW_MODES",
    "ProcessCrew",
    "SerialCrew",
    "ShardWorker",
    "ThreadCrew",
    "WorkerParams",
    "create_crew",
    "default_crew",
]
