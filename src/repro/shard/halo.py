"""Per-shard field state and one-plane halo buffers.

Each shard owns a contiguous ``(snx, sny, nz)`` block of every CG field
plus a zero-padded *extended* buffer ``(snx+2, sny+2, nz)`` for the one
field the FV apply reads through the stencil.  The pad ring holds:

* **neighbour planes** — copied from adjacent shards' mailboxes at each
  halo exchange (real data movement, counted by
  :mod:`repro.shard.links`);
* **zeros at fabric edges** — never written, which reproduces the
  vectorized engine's ``_shifted`` zero-padding (and the event fabric's
  empty edge halos; the boundary coefficient is zero anyway).

Because the FV apply, the axpys and the masks are all elementwise or
stencil-local, every owned cell of a sharded sweep is *bitwise* equal to
the same cell of a whole-fabric sweep — the only fp divergence in the
whole engine is the shard-ordered dot-product reduction.

Staged coefficient arrays are sliced per shard from the coordinator's
global staging (``staging_to_arrays``) and embedded in extended buffers
once at construction; only their owned region is ever read (stencil
outputs on the pad ring are discarded), so the pad values are free.
"""

from __future__ import annotations

import numpy as np

from repro.core.fv_kernel import (
    COEFF_BUFFER,
    HALO_ORDER,
    KernelVariant,
    MOBILITY_BUFFER,
    UPSILON_BUFFER,
)
from repro.shard.layout import DIRECTIONS, ShardBox
from repro.wse.vector_engine import _Staging


def dot64(a: np.ndarray, b: np.ndarray) -> float:
    """Shard-local dot product, float64 accumulation (the same
    flatten-and-accumulate the single-shard engines use, over the
    shard's contiguous block)."""
    return float(
        np.dot(a.reshape(-1).astype(np.float64), b.reshape(-1).astype(np.float64))
    )


def boundary_plane(field: np.ndarray, direction: str) -> np.ndarray:
    """The one-cell boundary plane a shard publishes toward ``direction``."""
    if direction == "west":
        return field[0, :, :]
    if direction == "east":
        return field[-1, :, :]
    if direction == "north":
        return field[:, 0, :]
    if direction == "south":
        return field[:, -1, :]
    raise ValueError(f"unknown direction {direction!r}")


class ShardFields:
    """One shard's staged arrays, work arrays and halo-extended buffers."""

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        box: ShardBox,
        *,
        variant: KernelVariant,
        jacobi: bool,
        has_full: bool,
        has_partial: bool,
        dtype: np.dtype,
        fused_tile: tuple[int, int] | None = None,
        mg: bool = False,
    ):
        self.box = box
        self.variant = variant
        self.jacobi = jacobi
        self.mg = mg
        dtype = np.dtype(dtype)
        snx, sny = box.nx, box.ny
        nz = arrays["y"].shape[2]
        owned = (slice(box.x0, box.x1), slice(box.y0, box.y1))
        inner = (slice(1, 1 + snx), slice(1, 1 + sny))

        def local(name: str) -> np.ndarray:
            return np.ascontiguousarray(arrays[name][owned])

        def extended(name: str) -> np.ndarray:
            src = arrays[name]
            out = np.zeros((snx + 2, sny + 2) + src.shape[2:], dtype=src.dtype)
            out[inner] = src[owned]
            return out

        # Owned-block work arrays (the shard's CG state).
        self.y = local("y")
        self.b = local("b")
        self.r = np.zeros((snx, sny, nz), dtype=dtype)
        self.p = np.zeros((snx, sny, nz), dtype=dtype)
        self.z = np.zeros((snx, sny, nz), dtype=dtype) if (jacobi or mg) else None
        self.inv_diag = local("inv_diag") if jacobi else None
        self.jx: np.ndarray | None = None

        # The halo-extended stencil input (pad ring starts — and at
        # fabric edges stays — zero).
        self.x_ext = np.zeros((snx + 2, sny + 2, nz), dtype=dtype)
        self._inner = inner

        # Extended staging for `_apply_fields`: owned slices of the
        # global staged arrays, embedded at the same offsets as x_ext.
        st = _Staging()
        st.y = st.b = st.r = st.p = st.z = st.inv_diag = None
        st.kind_counts = st.kernel_plans = None
        st.acc = extended("acc") if "acc" in arrays else None
        st.coeff = st.coeff_down = st.coeff_up = None
        st.ups = st.ups_down = st.ups_up = st.lam = st.lam_nbr = None
        if variant is KernelVariant.PRECOMPUTED:
            st.coeff = {
                port: extended(f"coeff_{port.name}") for port in COEFF_BUFFER
            }
            st.coeff_down = extended("coeff_down")
            st.coeff_up = extended("coeff_up")
        else:
            st.ups = {port: extended(f"ups_{port.name}") for port in UPSILON_BUFFER}
            st.ups_down = extended("ups_down")
            st.ups_up = extended("ups_up")
            st.lam = extended("lam")
            st.lam_nbr = {
                port: extended(f"lam_nbr_{port.name}") for port in MOBILITY_BUFFER
            }
        st.full_cols = extended("full_cols")
        st.blend_mask = extended("blend_mask")
        # Global flags, not per-shard: a shard without partial columns
        # still runs the (no-op) blend so its op sequence — and every
        # ±0.0 — matches the whole-fabric sweep exactly.
        st.has_full = has_full
        st.has_partial = has_partial
        self.ext_st = st

        # -- the zero-allocation apply path ---------------------------------
        # `apply` computes only the owned block, through *views* of the
        # extended buffers (the pad ring makes every stencil read a pure
        # slice — no `_shifted` copies) and preallocated scratch, so a
        # worker's hot round allocates nothing.  Every operation below
        # mirrors `_apply_fields` operand for operand on the owned
        # cells, so the results stay bitwise equal to the whole-fabric
        # sweep.
        self._x_in = self.x_ext[inner]
        self._x_shift = {
            port: self.x_ext[
                1 + port.offset[0]: 1 + port.offset[0] + snx,
                1 + port.offset[1]: 1 + port.offset[1] + sny,
                :,
            ]
            for port in HALO_ORDER
        }
        view = lambda a: None if a is None else a[inner]  # noqa: E731
        self._coeff = None if st.coeff is None else {
            port: view(st.coeff[port]) for port in st.coeff
        }
        self._coeff_down = view(st.coeff_down)
        self._coeff_up = view(st.coeff_up)
        self._ups = None if st.ups is None else {
            port: view(st.ups[port]) for port in st.ups
        }
        self._ups_down = view(st.ups_down)
        self._ups_up = view(st.ups_up)
        self._lam = view(st.lam)
        self._lam_nbr = None if st.lam_nbr is None else {
            port: view(st.lam_nbr[port]) for port in st.lam_nbr
        }
        self._acc = view(st.acc)
        self._full_cols = view(st.full_cols)
        self._blend = view(st.blend_mask)
        shape = (snx, sny, nz)
        self._out = np.empty(shape, dtype=dtype)
        self._diff = np.empty(shape, dtype=dtype)
        self._tmp = np.empty(shape, dtype=dtype)
        if nz >= 2:
            vshape = (snx, sny, nz - 1)
            self._vd = np.empty(vshape, dtype=dtype)
            self._vt = np.empty(vshape, dtype=dtype)
            self._vl = np.empty(vshape, dtype=dtype) if self._lam is not None else None
        self._d64a = np.empty(snx * sny * nz, dtype=np.float64)
        self._d64b = np.empty(snx * sny * nz, dtype=np.float64)

        # Optional fused-kernel composition: with a ``fused_tile`` the
        # worker's FV sweep runs the cache-blocked TiledApply over this
        # shard's halo-extended slab instead of the strided whole-slab
        # sweep above.  Tiling is a pure loop reorder of the identical
        # per-element arithmetic, so the shard's results — and therefore
        # the engine's parity contract — are unchanged bitwise.
        self._tiled = None
        if fused_tile is not None:
            from repro.fused.kernels import TiledApply
            from repro.fused.tiling import tile_boxes

            self._tiled = TiledApply(
                x_ext=self.x_ext,
                out=self._out,
                boxes=tile_boxes(snx, sny, fused_tile),
                variant=variant,
                dtype=dtype,
                coeff=self._coeff,
                coeff_down=self._coeff_down,
                coeff_up=self._coeff_up,
                ups=self._ups,
                ups_down=self._ups_down,
                ups_up=self._ups_up,
                lam=self._lam,
                lam_nbr=self._lam_nbr,
                acc=self._acc,
                full_cols=self._full_cols,
                blend_mask=self._blend,
                has_full=st.has_full,
                has_partial=st.has_partial,
            )

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """:func:`dot64` through preallocated float64 scratch — same
        conversion, same BLAS dot on the same values (so bitwise the
        same result), no per-round allocation."""
        np.copyto(self._d64a, a.reshape(-1))
        np.copyto(self._d64b, b.reshape(-1))
        return float(np.dot(self._d64a, self._d64b))

    def fill(self, field: np.ndarray, halos: dict[str, np.ndarray | None]) -> None:
        """Load the stencil input: owned block + neighbour halo planes.

        ``halos`` maps each direction to the adjacent shard's published
        boundary plane (``None`` at fabric edges — those pad planes stay
        zero forever, matching ``_shifted``)."""
        ext = self.x_ext
        ext[self._inner] = field
        west, east = halos.get("west"), halos.get("east")
        north, south = halos.get("north"), halos.get("south")
        if west is not None:
            ext[0, 1:-1, :] = west
        if east is not None:
            ext[-1, 1:-1, :] = east
        if north is not None:
            ext[1:-1, 0, :] = north
        if south is not None:
            ext[1:-1, -1, :] = south

    def apply(self) -> np.ndarray:
        """The FV operator over the extended buffer, owned block only.

        Allocation-free mirror of ``_apply_fields`` (same operands, same
        order — bitwise-equal results); the returned buffer is reused by
        the next apply, which is safe because every consumer (the dot,
        the residual update) reads it before the next round.
        """
        if self._tiled is not None:
            self._tiled.apply()
            return self._out
        x, out, diff, tmp = self._x_in, self._out, self._diff, self._tmp
        if self.variant is KernelVariant.PRECOMPUTED:
            for i, port in enumerate(HALO_ORDER):
                np.subtract(x, self._x_shift[port], out=diff)
                if i == 0:
                    np.multiply(self._coeff[port], diff, out=out)
                else:
                    np.multiply(self._coeff[port], diff, out=tmp)
                    out += tmp
        else:
            c = tmp
            for i, port in enumerate(HALO_ORDER):
                np.add(self._lam, self._lam_nbr[port], out=c)
                np.multiply(c, 0.5, out=c, casting="unsafe")
                np.multiply(c, self._ups[port], out=c, casting="unsafe")
                np.subtract(x, self._x_shift[port], out=diff)
                np.multiply(diff, c, out=diff, casting="unsafe")
                if i == 0:
                    out[...] = diff
                else:
                    out += diff
        nz = x.shape[-1]
        if nz >= 2:
            lo = (Ellipsis, slice(0, nz - 1))
            hi = (Ellipsis, slice(1, nz))
            vd, vt = self._vd, self._vt
            if self.variant is KernelVariant.PRECOMPUTED:
                np.subtract(x[lo], x[hi], out=vd)
                np.multiply(self._coeff_up[lo], vd, out=vt)
                out[lo] += vt
                np.subtract(x[hi], x[lo], out=vd)
                np.multiply(self._coeff_down[hi], vd, out=vt)
                out[hi] += vt
            else:
                vl = self._vl
                for rng, other, ups in (
                    (lo, hi, self._ups_up),
                    (hi, lo, self._ups_down),
                ):
                    np.subtract(x[rng], x[other], out=vd)
                    np.add(self._lam[rng], self._lam[other], out=vl)
                    np.multiply(vl, 0.5, out=vl, casting="unsafe")
                    np.multiply(vl, ups[rng], out=vl, casting="unsafe")
                    np.multiply(vl, vd, out=vt)
                    out[rng] += vt
        if self._acc is not None:
            np.multiply(self._acc, x, out=diff)
            out += diff
        if self.ext_st.has_full:
            out[self._full_cols] = x[self._full_cols]
        if self.ext_st.has_partial:
            np.subtract(x, out, out=diff)
            np.multiply(self._blend, diff, out=diff)
            out += diff
        return out

    def publish(self, field: np.ndarray, outbox: dict[str, np.ndarray]) -> None:
        """Copy this shard's boundary planes into its mailbox buffers
        (one per direction with a live neighbour)."""
        for direction, _, _ in DIRECTIONS:
            plane = outbox.get(direction)
            if plane is not None:
                plane[...] = boundary_plane(field, direction)


__all__ = ["ShardFields", "boundary_plane", "dot64"]
