"""Domain decomposition of the fabric into rectangular shards.

A :class:`ShardLayout` is a validated ``shards_x x shards_y`` tensor
decomposition of the ``nx x ny`` lateral grid: each shard owns a
contiguous block of whole PE columns (the z axis is never split — a
column is the unit of PE state, exactly as in the paper's mapping).
Splits are balanced (``numpy.array_split`` semantics: the first
``n % parts`` shards get one extra plane), so shard counts that do not
divide the grid are first-class rather than an error.

The layout is pure geometry: boxes, neighbour topology and boundary
extents.  Halo buffers live in :mod:`repro.shard.halo`, the analytic
link accounting in :mod:`repro.shard.links`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError

#: The four lateral directions, as (attribute, dx, dy) in fabric
#: coordinates (x grows eastward, y grows southward — matrix style, like
#: :class:`repro.wse.router.Port`).
DIRECTIONS = (
    ("west", -1, 0),
    ("east", 1, 0),
    ("north", 0, -1),
    ("south", 0, 1),
)

#: direction -> the direction a neighbour publishes toward us.
OPPOSITE = {"west": "east", "east": "west", "north": "south", "south": "north"}


def _split(n: int, parts: int) -> list[tuple[int, int]]:
    """Balanced contiguous half-open ranges covering ``range(n)``."""
    base, extra = divmod(n, parts)
    ranges, start = [], 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class ShardBox:
    """One shard's owned block of the fabric (half-open ranges)."""

    index: int
    ix: int
    iy: int
    x0: int
    x1: int
    y0: int
    y1: int

    @property
    def nx(self) -> int:
        return self.x1 - self.x0

    @property
    def ny(self) -> int:
        return self.y1 - self.y0

    @property
    def columns(self) -> int:
        """PE columns (lateral cells) this shard owns."""
        return self.nx * self.ny


def normalize_shard_shape(shard_shape) -> tuple[int, int]:
    """``int`` → 1-D ``(n, 1)``; otherwise a validated 2-tuple."""
    if isinstance(shard_shape, (int, np.integer)) and not isinstance(
        shard_shape, bool
    ):
        shape = (int(shard_shape), 1)
    else:
        try:
            shape = tuple(int(v) for v in shard_shape)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"shard_shape must be a positive int or a "
                f"(shards_x, shards_y) pair, got {shard_shape!r}"
            ) from None
    if len(shape) != 2 or any(v < 1 for v in shape):
        raise ConfigurationError(
            f"shard_shape must be a positive int or a (shards_x, shards_y) "
            f"pair of positive integers, got {shard_shape!r}"
        )
    return shape


@dataclass(frozen=True)
class ShardLayout:
    """A validated decomposition of an ``nx x ny`` fabric into shards.

    Boxes are ordered row-major in shard coordinates
    (``index = ix * shards_y + iy``); that order is also the
    deterministic reduction order of cross-shard dot products.
    """

    shards_x: int
    shards_y: int
    nx: int
    ny: int
    boxes: tuple[ShardBox, ...]

    @classmethod
    def build(cls, shard_shape, nx: int, ny: int) -> "ShardLayout":
        sx, sy = normalize_shard_shape(shard_shape)
        if sx > nx or sy > ny:
            raise ConfigurationError(
                f"shard_shape ({sx}, {sy}) needs at least one grid plane "
                f"per shard; the fabric is {nx} x {ny}"
            )
        xr = _split(nx, sx)
        yr = _split(ny, sy)
        boxes = tuple(
            ShardBox(
                index=ix * sy + iy, ix=ix, iy=iy,
                x0=xr[ix][0], x1=xr[ix][1], y0=yr[iy][0], y1=yr[iy][1],
            )
            for ix in range(sx)
            for iy in range(sy)
        )
        return cls(shards_x=sx, shards_y=sy, nx=nx, ny=ny, boxes=boxes)

    @property
    def n_shards(self) -> int:
        return self.shards_x * self.shards_y

    def neighbor_index(self, box: ShardBox, direction: str) -> int | None:
        """The shard adjacent to ``box`` in ``direction``, or ``None`` at
        the fabric edge."""
        for name, dx, dy in DIRECTIONS:
            if name == direction:
                ix, iy = box.ix + dx, box.iy + dy
                if 0 <= ix < self.shards_x and 0 <= iy < self.shards_y:
                    return ix * self.shards_y + iy
                return None
        raise ConfigurationError(f"unknown direction {direction!r}")

    def neighbors(self, box: ShardBox) -> dict[str, int | None]:
        """All four lateral neighbours of ``box`` (``None`` off-fabric)."""
        return {name: self.neighbor_index(box, name) for name, _, _ in DIRECTIONS}

    def boundaries(self) -> list[tuple[int, int, int]]:
        """Undirected inter-shard boundaries as ``(a, b, extent)``.

        ``extent`` is the number of shared boundary cell columns (each
        exchange moves ``extent * nz`` values per direction across it).
        """
        out: list[tuple[int, int, int]] = []
        for box in self.boxes:
            east = self.neighbor_index(box, "east")
            if east is not None:
                out.append((box.index, east, box.ny))
            south = self.neighbor_index(box, "south")
            if south is not None:
                out.append((box.index, south, box.nx))
        return out

    def to_dict(self) -> dict:
        return {
            "shards_x": self.shards_x,
            "shards_y": self.shards_y,
            "nx": self.nx,
            "ny": self.ny,
            "columns_per_shard": [box.columns for box in self.boxes],
        }


__all__ = [
    "DIRECTIONS",
    "OPPOSITE",
    "ShardBox",
    "ShardLayout",
    "normalize_shard_shape",
]
