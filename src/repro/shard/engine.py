"""The sharded fabric engine: domain-decomposed vectorized execution.

:class:`ShardedVectorEngine` runs the same CG program as
:class:`~repro.wse.vector_engine.VectorEngine`, but partitions the
fabric into a :class:`~repro.shard.layout.ShardLayout` of rectangular
shards and runs each shard's sweeps on a worker crew (serial loop,
threads, or shared-memory processes).  Between phases the shards
exchange *real* one-plane halos through mailbox buffers, and dot
products reduce across shards in deterministic shard order.

Parity contract (pinned in ``tests/test_sharded_engine.py`` and fuzzed
4-way in ``tests/test_engine_fuzz.py``):

* **counters / traffic / memory / state visits** — *exactly* equal to
  the single-shard vectorized engine, including ``idle_cycles`` and the
  makespan: the coordinator charges the analytic
  :class:`~repro.wse.vector_engine._ChargeModel` through the identical
  visit/vec/scalar/kernel/exchange/reduce sequence.  Sharding changes
  who computes, not what the machine is charged for.
* **iterates** — bitwise equal per element through every sweep (the
  halo-extended buffers reproduce ``_shifted`` exactly); only the
  cross-shard *reduction order* of the float64 dot partials differs, so
  alpha/beta — and therefore the pressure field — agree to fp round-off
  and iteration counts almost always coincide.
* **inter-shard traffic** — counted for real by
  :class:`~repro.shard.links.InterShardLinkModel`, charged in lockstep
  with the engine's own exchange/reduce charges and reported under
  ``EngineReport.shard["links"]``.  A ``1x1`` layout moves zero bytes.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import ProblemMapping
from repro.core.program import CgProgram, EngineReport
from repro.physics.darcy import SinglePhaseProblem
from repro.fused.tiling import normalize_fused_tile
from repro.shard.layout import ShardLayout
from repro.shard.links import InterShardLinkModel
from repro.shard.workers import (
    CREW_MODES,
    WorkerParams,
    create_crew,
    default_crew,
)
from repro.solvers.state_machine import CGState
from repro.util.errors import ConfigurationError
from repro.wse.isa import Op
from repro.wse.specs import WseSpecs
from repro.wse.vector_engine import (
    _ChargeModel,
    _memory_report,
    _stage_problem,
    build_iteration_packets,
    staging_to_arrays,
)


class ShardedVectorEngine:
    """Domain-decomposed vectorized execution of the dataflow CG program.

    Constructor vocabulary extends the vectorized engine's with the
    decomposition: ``shard_shape`` (an ``(sx, sy)`` pair or an int for a
    1-D split) and ``shard_workers`` (``"serial"``, ``"thread"`` or
    ``"process"``; ``None`` picks :func:`~repro.shard.workers.default_crew`
    — threads when shards can sweep concurrently, the serial loop when
    they can't).
    """

    name = "sharded"

    def __init__(
        self,
        problem: SinglePhaseProblem,
        program: CgProgram,
        *,
        spec: WseSpecs,
        shard_shape=(1, 1),
        shard_workers: str | None = None,
        fused_tile=None,
        dtype=np.float32,
        simd_width: int | None = None,
        initial_pressure: np.ndarray | None = None,
        accumulation: np.ndarray | None = None,
        rhs: np.ndarray | None = None,
    ):
        if program.batch != 1:
            raise ConfigurationError(
                f"ShardedVectorEngine runs single-problem programs; got "
                f"batch={program.batch} (use BatchedVectorEngine)"
            )
        if shard_workers is not None and shard_workers not in CREW_MODES:
            raise ConfigurationError(
                f"unknown shard worker mode {shard_workers!r}; choose one "
                f"of {', '.join(CREW_MODES)}"
            )
        self.problem = problem
        self.program = program
        self.spec = spec
        self.mapping = ProblemMapping(problem.grid, spec)
        self.dtype = np.dtype(dtype)
        self.simd_width = int(
            simd_width if simd_width is not None else spec.simd_width_f32
        )
        grid = problem.grid
        self.width, self.height, self.depth = grid.nx, grid.ny, grid.nz
        self._suppress = program.comm_only
        self.layout = ShardLayout.build(shard_shape, grid.nx, grid.ny)
        self.shard_workers = (
            shard_workers if shard_workers is not None
            else default_crew(self.layout)
        )
        self.links = InterShardLinkModel(
            self.layout, grid.nz, self.dtype.itemsize
        )

        # Staging, memory rehearsal and the charge model are *global* —
        # the machine being modelled is one fabric, however many workers
        # sweep it; this is what makes the counter parity exact.
        self.st = _stage_problem(
            problem, program, self.dtype, initial_pressure,
            accumulation=accumulation, rhs=rhs,
        )
        self._memory = _memory_report(
            spec, program, self.depth, self.dtype, self.st.kind_counts
        )
        self.model = _ChargeModel(
            width=self.width, height=self.height, depth=self.depth,
            simd_width=self.simd_width, spec=spec, suppress=self._suppress,
            kind_counts=self.st.kind_counts, kernel_plans=self.st.kernel_plans,
        )
        self._arrays = staging_to_arrays(self.st, program)
        # Optional fused-kernel composition: each worker's FV sweep runs
        # the cache-blocked tile kernel over its halo-extended slab (a
        # pure loop reorder — bitwise-identical shard results).
        self.fused_tile = normalize_fused_tile(fused_tile)
        self._params = WorkerParams(
            variant=program.variant,
            jacobi=program.jacobi,
            suppress=self._suppress,
            dtype=self.dtype.str,
            has_full=self.st.has_full,
            has_partial=self.st.has_partial,
            fused_tile=self.fused_tile,
            mg=program.mg,
        )
        self._mg_packet = None
        self._mg_host_bytes = 0
        if program.mg:
            from repro.mg import build_mg_packet

            self._mg_packet = build_mg_packet(self.model, self.st.mg_hier)
        self._history: list[float] = []

    # -- cross-shard reduction ------------------------------------------------

    def _reduce(self, partials) -> float:
        """Shard-order float64 sum of the workers' local dot products —
        the engine's only fp divergence from the single-shard sweep."""
        if self._suppress:
            return 0.0
        total = 0.0
        for value in partials:
            total += value
        return float(total)

    def _allreduce(self, partials) -> float:
        self.model.charge_allreduce()
        self.links.charge_reduce()
        return self._reduce(partials)

    def _exchange(self) -> None:
        self.model.charge_exchange()
        self.links.charge_exchange()

    # -- per-iteration charge packets -----------------------------------------

    def _iteration_packets(self):
        """The loop's charge sequence is iteration-invariant, so the
        coordinator plays it once on fresh models — one packet per loop
        segment, exactly the batched engine's lane-packet trick — and
        bulk-merges per iteration instead of re-itemising ~30 charges.
        ``merge_scaled`` is additive, so counters, trace and makespan
        land bitwise where itemised charging would put them; state
        visits (order-sensitive) are extended from the packets' own
        recorded sequences."""
        return build_iteration_packets(
            self.model, self.program.jacobi, self._mg_packet
        )

    def _mg_cycle(self, crew) -> None:
        """Run one host-assisted V-cycle over the board's residual.

        Workers have just pushed their ``r`` blocks to the crew board
        (a barrier separates their writes from this read); the float64
        V-cycle — the identical program-level construct every engine
        shares — replaces the board contents with the ``z`` field the
        ``mg_*`` rounds read back.  Host gather/scatter bytes are
        tracked separately (``shard["mg_host_bytes"]``): the fabric-side
        cost of the cycle is charged through the analytic packet, and
        the inter-shard link model stays untouched (pinned:
        ``links["exchanges"] == iterations + 1`` with or without mg).
        """
        from repro.mg import mg_apply

        board = crew.board()
        board[...] = mg_apply(self.st.mg_hier, board).astype(self.dtype)
        self._mg_host_bytes += 2 * board.nbytes

    # -- the solve ------------------------------------------------------------

    def run(self, *, track_states_for: tuple[int, int] = (0, 0)) -> EngineReport:
        """Execute the CG program across the shard crew; phase order and
        control flow replicate the vectorized engine's run exactly (the
        charge sequence *is* the vectorized engine's, verbatim)."""
        program, m = self.program, self.model
        jacobi, mg = program.jacobi, program.mg
        crew = create_crew(
            self.shard_workers, self.layout, self._arrays, self._params,
            self.depth, self.dtype,
        )
        try:
            crew.start()  # spawn workers + stage round (publish y planes)

            # INIT: r0 = b - A y0 ; p0 = r0 (or z0) ; rtr = <r0, r0|z0>
            # Rounds are dispatched *before* their charge-model
            # bookkeeping and collected after: the workers' NumPy sweeps
            # overlap the coordinator's pure-Python charging, and the
            # charge sequence itself is still the vectorized engine's,
            # verbatim.  collect() is the barrier each exchange needs.
            crew.dispatch("init")
            m.visit(CGState.INIT)
            m.visit(CGState.EXCHANGE)
            self._exchange()
            m.visit(CGState.COMPUTE_JX)
            m.charge_kernel()
            partials = crew.collect()
            if mg:
                # The init barrier left every shard's r on the board;
                # run the V-cycle and finish the phase on its z.
                self._mg_cycle(crew)
                crew.dispatch("mg_init")
                m.vec(Op.FSUB)  # r = b - Jx
                m.merge_scaled(self._mg_packet, 1)  # z = V-cycle(r)
                m.vec(Op.FMOV)  # p = z
                partials = crew.collect()
                crew.dispatch("publish")  # p planes, after the mg barrier
            else:
                crew.dispatch("publish")  # p planes, after the init barrier
                m.vec(Op.FSUB)  # r = b - Jx
                if jacobi:
                    m.vec(Op.FMUL)  # z = r / diag
                    m.vec(Op.FMOV)  # p = z
                else:
                    m.vec(Op.FMOV)  # p = r
            m.vec(Op.FMA)  # local dot
            m.visit(CGState.DOT_RR)
            rtr = self._allreduce(partials)
            self._history.append(rtr)
            crew.collect()  # publish barrier before any body round

            # The loop charges by packet (see _iteration_packets):
            # charges are bookkeeping, so their placement against the
            # crew rounds is free — only the merged totals and the
            # state-visit order must land exactly where itemised
            # charging would put them, and merge_scaled is additive so
            # they do.
            pk_check, pk_body, pk_direction = self._iteration_packets()
            k = 0
            terminal: CGState | None = None
            while terminal is None:
                m.merge_scaled(pk_check, 1)
                m.state_visits.extend(pk_check.state_visits)
                if program.check_convergence and rtr < program.tol_rtr:
                    terminal = CGState.CONVERGED
                    break
                if k >= program.iteration_limit:
                    terminal = (
                        CGState.CONVERGED
                        if (program.check_convergence and rtr < program.tol_rtr)
                        else CGState.MAXITER
                    )
                    break

                crew.dispatch("body")  # fill(p), Jp, <p, Jp>
                self.links.charge_exchange()
                self.links.charge_reduce()  # the DOT_PAP reduction
                self.links.charge_reduce()  # ... and the DOT_RR one
                m.merge_scaled(pk_body, 1)
                m.state_visits.extend(pk_body.state_visits)
                partials = crew.collect()
                pap = self._reduce(partials)

                if pap == 0.0:
                    if not self._suppress and program.check_convergence:
                        raise ConfigurationError(
                            "sharded engine: p^T A p = 0 with live arithmetic"
                        )
                    alpha = 0.0
                else:
                    alpha = rtr / pap

                crew.dispatch("update", alpha)
                partials = crew.collect()
                if mg:
                    self._mg_cycle(crew)
                    partials = crew.round("mg_update")
                rtr_new = self._reduce(partials)

                k += 1
                self._history.append(rtr_new)
                if program.check_convergence and rtr_new < program.tol_rtr:
                    terminal = CGState.CONVERGED
                    break
                beta = (rtr_new / rtr) if rtr > 0 else 0.0
                crew.dispatch("direction", beta)  # also republishes p planes
                m.merge_scaled(pk_direction, 1)
                m.state_visits.extend(pk_direction.state_visits)
                crew.collect()
                rtr = rtr_new

            m.visit(terminal)
            converged = terminal is CGState.CONVERGED
            pressure = crew.gather()
        finally:
            crew.close()
        m.finalize()
        return EngineReport(
            pressure=pressure,
            iterations=k,
            converged=converged,
            residual_history=list(self._history),
            trace=m.trace,
            counters=m.counters,
            elapsed_seconds=m.makespan / self.spec.clock_hz,
            memory=dict(self._memory),
            state_visits=list(m.state_visits),
            engine=self.name,
            shard={
                "layout": self.layout.to_dict(),
                "workers": self.shard_workers,
                "links": self.links.to_dict(),
                "fused_tile": (
                    None if self.fused_tile is None else list(self.fused_tile)
                ),
                **(
                    {"mg_host_bytes": self._mg_host_bytes}
                    if program.mg else {}
                ),
            },
            preconditioner=(
                self.st.mg_hier.telemetry(k + 1) if program.mg else None
            ),
        )


__all__ = ["ShardedVectorEngine"]
