"""Cell-centered fields attached to a :class:`CartesianGrid3D`.

A :class:`CellField` is a thin, validated wrapper over a NumPy array of shape
``grid.shape``.  It exists so that solver code can pass named, shape-checked
quantities (pressure, permeability, residual) instead of bare arrays, while
still exposing ``.data`` for zero-copy vectorized math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import CartesianGrid3D
from repro.util.errors import ValidationError


@dataclass
class CellField:
    """A named scalar field with one value per grid cell.

    Attributes
    ----------
    grid:
        The grid this field is defined on.
    data:
        Array of shape ``grid.shape``; mutated in place by solvers.
    name:
        Human-readable name used in error messages and reports.
    """

    grid: CartesianGrid3D
    data: np.ndarray
    name: str = "field"

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.shape != self.grid.shape:
            raise ValidationError(
                f"field '{self.name}' shape {self.data.shape} does not match "
                f"grid shape {self.grid.shape}"
            )

    # -- accessors ---------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def flat(self) -> np.ndarray:
        """Flat view (no copy) in the grid's flat-index order."""
        return self.data.reshape(-1)

    def column(self, x: int, y: int) -> np.ndarray:
        """The contiguous Z column at PE coordinates ``(x, y)`` (no copy)."""
        self.grid.check_cell(x, y, 0)
        return self.data[x, y, :]

    def copy(self, name: str | None = None) -> "CellField":
        return CellField(self.grid, self.data.copy(), name or self.name)

    def fill(self, value: float) -> "CellField":
        self.data.fill(value)
        return self

    # -- arithmetic helpers (in-place, guide-recommended) -------------------

    def axpy(self, alpha: float, other: "CellField") -> "CellField":
        """``self += alpha * other`` in place."""
        self._check_compatible(other)
        self.data += alpha * other.data
        return self

    def scale(self, alpha: float) -> "CellField":
        self.data *= alpha
        return self

    def dot(self, other: "CellField") -> float:
        """Full-grid dot product (the quantity the fabric all-reduce computes)."""
        self._check_compatible(other)
        return float(np.vdot(self.data, other.data))

    def norm2(self) -> float:
        """Squared 2-norm, ``r^T r`` in Algorithm 1's convergence check."""
        return float(np.vdot(self.data, self.data).real)

    def _check_compatible(self, other: "CellField") -> None:
        if other.grid.shape != self.grid.shape:
            raise ValidationError(
                f"fields '{self.name}' and '{other.name}' live on different grids"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellField({self.name!r}, shape={self.data.shape}, dtype={self.dtype})"


def make_cell_field(
    grid: CartesianGrid3D,
    value: float | np.ndarray = 0.0,
    *,
    name: str = "field",
    dtype: np.dtype | type = np.float32,
) -> CellField:
    """Create a field filled with ``value`` (scalar) or wrapping an array.

    The paper runs everything in fp32 on both CS-2 and GPUs (§V-C), so
    float32 is the default dtype throughout the library.
    """
    if np.isscalar(value):
        data = np.full(grid.shape, value, dtype=dtype)
    else:
        data = np.asarray(value, dtype=dtype).reshape(grid.shape).copy()
    return CellField(grid, data, name)
