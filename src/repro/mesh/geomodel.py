"""Synthetic geomodels: permeability-field generators.

The paper evaluates on "highly detailed geomodels" that are proprietary; we
substitute synthetic permeability fields that exercise exactly the same code
paths (heterogeneous transmissibilities entering the TPFA flux of Eq. 4):

* homogeneous          — sanity baseline, recovers the constant-Υ Laplacian;
* layered              — depth-dependent strata, common in reservoir models;
* lognormal            — Gaussian-correlated log-permeability, the standard
                         geostatistical stand-in for field heterogeneity;
* channelized          — high-permeability channels in a low-perm background,
                         an SPE10-like fluvial analog with strong contrast.

All generators return arrays of shape ``grid.shape`` in milli-darcy-like
positive units and take an integer ``seed`` for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import CartesianGrid3D
from repro.util.validation import check_positive


def homogeneous_permeability(
    grid: CartesianGrid3D, value: float = 100.0, *, dtype=np.float32
) -> np.ndarray:
    """Constant permeability everywhere."""
    check_positive("value", value)
    return np.full(grid.shape, value, dtype=dtype)


def layered_permeability(
    grid: CartesianGrid3D,
    *,
    num_layers: int = 5,
    low: float = 1.0,
    high: float = 1000.0,
    seed: int = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Horizontal strata: permeability constant within each Z layer.

    Layer values are log-uniform between ``low`` and ``high`` so contrasts
    span orders of magnitude, as in real stacked formations.
    """
    check_positive("low", low)
    check_positive("high", high)
    if num_layers < 1:
        num_layers = 1
    rng = np.random.default_rng(seed)
    layer_values = np.exp(
        rng.uniform(np.log(low), np.log(high), size=num_layers)
    ).astype(dtype)
    layer_of_z = np.minimum(
        (np.arange(grid.nz) * num_layers) // max(grid.nz, 1), num_layers - 1
    )
    perm = np.empty(grid.shape, dtype=dtype)
    perm[:, :, :] = layer_values[layer_of_z][np.newaxis, np.newaxis, :]
    return perm


def lognormal_permeability(
    grid: CartesianGrid3D,
    *,
    mean_log: float = np.log(100.0),
    sigma_log: float = 1.0,
    correlation_cells: float = 4.0,
    seed: int = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Spatially-correlated lognormal permeability.

    A white-noise log field is smoothed by an approximate Gaussian filter
    (separable box-blur passes — avoids a scipy.ndimage dependency here) and
    renormalized to the target log-mean/log-std.  Correlation length is in
    cells.
    """
    check_positive("sigma_log", sigma_log, strict=False)
    check_positive("correlation_cells", correlation_cells)
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(grid.shape)
    radius = max(1, int(round(correlation_cells / 2)))
    smoothed = noise
    for _ in range(3):  # 3 box passes ~ Gaussian
        smoothed = _box_blur(smoothed, radius)
    std = smoothed.std()
    if std > 0:
        smoothed = (smoothed - smoothed.mean()) / std
    log_perm = mean_log + sigma_log * smoothed
    return np.exp(log_perm).astype(dtype)


def channelized_permeability(
    grid: CartesianGrid3D,
    *,
    num_channels: int = 3,
    background: float = 1.0,
    channel: float = 1000.0,
    width_cells: int = 3,
    seed: int = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Sinuous high-permeability channels through a tight background.

    Channels run along X with a random sinusoidal centerline in Y per
    Z-slab, giving the strong, structured contrast typical of fluvial
    systems (the hard case for linear solvers).
    """
    check_positive("background", background)
    check_positive("channel", channel)
    rng = np.random.default_rng(seed)
    perm = np.full(grid.shape, background, dtype=dtype)
    xs = np.arange(grid.nx, dtype=np.float64)
    ys = np.arange(grid.ny, dtype=np.float64)
    half_width = max(1, width_cells) / 2.0
    for _ in range(max(0, num_channels)):
        y0 = rng.uniform(0, grid.ny)
        amplitude = rng.uniform(0.05, 0.25) * grid.ny
        wavelength = rng.uniform(0.5, 2.0) * max(grid.nx, 1)
        phase = rng.uniform(0, 2 * np.pi)
        z_lo = rng.integers(0, grid.nz)
        z_hi = int(min(grid.nz, z_lo + max(1, grid.nz // 3)))
        centerline = y0 + amplitude * np.sin(2 * np.pi * xs / wavelength + phase)
        dist = np.abs(ys[np.newaxis, :] - centerline[:, np.newaxis])
        in_channel = dist <= half_width  # (nx, ny)
        perm[:, :, z_lo:z_hi][in_channel] = channel
    return perm


def _box_blur(a: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur with edge clamping (helper for lognormal fields)."""
    out = a
    for axis in range(a.ndim):
        out = _box_blur_axis(out, radius, axis)
    return out


def _box_blur_axis(a: np.ndarray, radius: int, axis: int) -> np.ndarray:
    n = a.shape[axis]
    if n == 1 or radius < 1:
        return a
    pad = [(0, 0)] * a.ndim
    pad[axis] = (radius, radius)
    padded = np.pad(a, pad, mode="edge")
    csum = np.cumsum(padded, axis=axis)
    window = 2 * radius + 1
    upper = _take_range(csum, axis, window - 1, window - 1 + n)
    lower_head = _take_range(csum, axis, 0, 1) * 0.0
    lower_tail = _take_range(csum, axis, 0, n - 1)
    lower = np.concatenate([lower_head, lower_tail], axis=axis)
    return (upper - lower) / window


def _take_range(a: np.ndarray, axis: int, start: int, stop: int) -> np.ndarray:
    index = [slice(None)] * a.ndim
    index[axis] = slice(start, stop)
    return a[tuple(index)]
