"""Wells modelled as Dirichlet pressure columns.

Fig. 5 of the paper shows pressure propagating from a source at the top-left
of the domain to a producer at the bottom-right — the classic quarter
five-spot pattern.  We model each vertical well as a column of Dirichlet
cells (constant bottom-hole pressure), which is exactly how the set ``T_D``
in Eq. (3) is populated for that experiment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.mesh.boundary import DirichletSet
from repro.mesh.grid import CartesianGrid3D
from repro.util.validation import check_index


class WellKind(enum.Enum):
    """Injector holds high pressure; producer holds low pressure."""

    INJECTOR = "injector"
    PRODUCER = "producer"


@dataclass(frozen=True)
class Well:
    """A vertical well completed over the full Z extent.

    Attributes
    ----------
    name:
        Identifier used in reports.
    x, y:
        Lateral cell coordinates of the well column.
    pressure:
        Imposed bottom-hole pressure (Dirichlet value).
    kind:
        Injector or producer; informational (the Dirichlet machinery only
        needs the pressure).
    """

    name: str
    x: int
    y: int
    pressure: float
    kind: WellKind = WellKind.INJECTOR


def apply_wells(grid: CartesianGrid3D, wells: list[Well]) -> DirichletSet:
    """Build the Dirichlet set ``T_D`` from a list of wells."""
    dirichlet = DirichletSet(grid)
    for well in wells:
        check_index(f"well {well.name!r} x", well.x, grid.nx)
        check_index(f"well {well.name!r} y", well.y, grid.ny)
        dirichlet.set_column(well.x, well.y, well.pressure)
    return dirichlet


def quarter_five_spot(
    grid: CartesianGrid3D,
    *,
    injection_pressure: float = 1.0,
    production_pressure: float = 0.0,
) -> tuple[list[Well], DirichletSet]:
    """The Fig. 5 well pattern: injector at (0, 0), producer at (nx-1, ny-1).

    Returns the wells and the assembled Dirichlet set.
    """
    wells = [
        Well("INJ", 0, 0, injection_pressure, WellKind.INJECTOR),
        Well("PROD", grid.nx - 1, grid.ny - 1, production_pressure, WellKind.PRODUCER),
    ]
    return wells, apply_wells(grid, wells)
