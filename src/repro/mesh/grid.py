"""3D Cartesian grid geometry and indexing.

Layout convention
-----------------
Cell arrays have shape ``(nx, ny, nz)`` in C order, so the Z index varies
fastest and each ``field[x, y, :]`` column is contiguous.  This mirrors the
paper's data mapping (§III-A): cell ``(x, y, z)`` lives on PE ``(x, y)`` and
the whole Z column resides in that PE's private memory.  (The paper's GPU
reference uses X innermost; `repro.gpu` handles its own layout.)

Flat indices follow ``flat = (x * ny + y) * nz + z``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.util.validation import as_tuple3, check_positive, check_index


class Direction(enum.Enum):
    """The six face directions of the 7-point stencil (Fig. 1).

    WEST/EAST step along X, SOUTH/NORTH along Y, DOWN/UP along Z.  The X–Y
    pairs are exchanged over the fabric; DOWN/UP stay inside one PE column.
    """

    WEST = (-1, 0, 0)
    EAST = (1, 0, 0)
    SOUTH = (0, -1, 0)
    NORTH = (0, 1, 0)
    DOWN = (0, 0, -1)
    UP = (0, 0, 1)

    @property
    def offset(self) -> tuple[int, int, int]:
        return self.value

    @property
    def axis(self) -> int:
        """Axis index: 0 for X, 1 for Y, 2 for Z."""
        return [i for i, d in enumerate(self.value) if d != 0][0]

    @property
    def sign(self) -> int:
        return self.value[self.axis]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]

    @property
    def is_lateral(self) -> bool:
        """True for the four X–Y (fabric) directions."""
        return self.axis != 2


_OPPOSITE = {
    Direction.WEST: Direction.EAST,
    Direction.EAST: Direction.WEST,
    Direction.SOUTH: Direction.NORTH,
    Direction.NORTH: Direction.SOUTH,
    Direction.DOWN: Direction.UP,
    Direction.UP: Direction.DOWN,
}

#: All six stencil directions in a stable order (X pair, Y pair, Z pair).
DIRECTIONS: tuple[Direction, ...] = (
    Direction.WEST,
    Direction.EAST,
    Direction.SOUTH,
    Direction.NORTH,
    Direction.DOWN,
    Direction.UP,
)

#: The four lateral (fabric) directions.
LATERAL_DIRECTIONS: tuple[Direction, ...] = (
    Direction.WEST,
    Direction.EAST,
    Direction.SOUTH,
    Direction.NORTH,
)


@dataclass(frozen=True)
class CartesianGrid3D:
    """A uniform 3D Cartesian cell-centered grid.

    Parameters
    ----------
    nx, ny, nz:
        Cell counts along X, Y, Z.  Z is the depth dimension that collapses
        onto a single PE in the dataflow mapping.
    dx, dy, dz:
        Cell sizes (uniform per axis); default 1.0 each.
    """

    nx: int
    ny: int
    nz: int
    dx: float = 1.0
    dy: float = 1.0
    dz: float = 1.0

    def __post_init__(self) -> None:
        as_tuple3("grid dims", (self.nx, self.ny, self.nz))
        check_positive("dx", self.dx)
        check_positive("dy", self.dy)
        check_positive("dz", self.dz)

    # -- shape / size ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def spacing(self) -> tuple[float, float, float]:
        return (self.dx, self.dy, self.dz)

    def face_shape(self, axis: int) -> tuple[int, int, int]:
        """Shape of the internal-face array along ``axis`` (0=X, 1=Y, 2=Z).

        There are ``n-1`` internal faces along an axis of ``n`` cells.
        """
        check_index("axis", axis, 3)
        shape = [self.nx, self.ny, self.nz]
        shape[axis] -= 1
        return tuple(shape)  # type: ignore[return-value]

    def num_internal_faces(self) -> int:
        return sum(int(np.prod(self.face_shape(axis))) for axis in range(3))

    # -- geometry ----------------------------------------------------------

    def face_area(self, axis: int) -> float:
        """Area of a face orthogonal to ``axis``."""
        check_index("axis", axis, 3)
        if axis == 0:
            return self.dy * self.dz
        if axis == 1:
            return self.dx * self.dz
        return self.dx * self.dy

    def cell_volume(self) -> float:
        return self.dx * self.dy * self.dz

    def axis_spacing(self, axis: int) -> float:
        check_index("axis", axis, 3)
        return (self.dx, self.dy, self.dz)[axis]

    def cell_center(self, x: int, y: int, z: int) -> tuple[float, float, float]:
        """Physical coordinates of a cell center."""
        self.check_cell(x, y, z)
        return ((x + 0.5) * self.dx, (y + 0.5) * self.dy, (z + 0.5) * self.dz)

    # -- indexing ----------------------------------------------------------

    def check_cell(self, x: int, y: int, z: int) -> tuple[int, int, int]:
        check_index("x", x, self.nx)
        check_index("y", y, self.ny)
        check_index("z", z, self.nz)
        return (x, y, z)

    def flat_index(self, x: int, y: int, z: int) -> int:
        """Flat (row-major over x,y,z) index of a cell."""
        self.check_cell(x, y, z)
        return (x * self.ny + y) * self.nz + z

    def unflatten(self, flat: int) -> tuple[int, int, int]:
        """Inverse of :meth:`flat_index`."""
        check_index("flat", flat, self.num_cells)
        x, rem = divmod(flat, self.ny * self.nz)
        y, z = divmod(rem, self.nz)
        return (x, y, z)

    def contains(self, x: int, y: int, z: int) -> bool:
        return 0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz

    def neighbor(
        self, x: int, y: int, z: int, direction: Direction
    ) -> tuple[int, int, int] | None:
        """Neighbouring cell coordinates in ``direction``, or None off-grid."""
        self.check_cell(x, y, z)
        ox, oy, oz = direction.offset
        n = (x + ox, y + oy, z + oz)
        return n if self.contains(*n) else None

    def neighbors(self, x: int, y: int, z: int) -> Iterator[tuple[Direction, tuple[int, int, int]]]:
        """Iterate (direction, neighbour-coords) over in-grid neighbours."""
        for direction in DIRECTIONS:
            n = self.neighbor(x, y, z, direction)
            if n is not None:
                yield direction, n

    def num_neighbors(self, x: int, y: int, z: int) -> int:
        return sum(1 for _ in self.neighbors(x, y, z))

    def is_boundary_cell(self, x: int, y: int, z: int) -> bool:
        """True if the cell touches any grid boundary face."""
        self.check_cell(x, y, z)
        return (
            x in (0, self.nx - 1)
            or y in (0, self.ny - 1)
            or z in (0, self.nz - 1)
        )

    def iter_cells(self) -> Iterator[tuple[int, int, int]]:
        """Iterate all cell coordinates in flat-index order."""
        for x in range(self.nx):
            for y in range(self.ny):
                for z in range(self.nz):
                    yield (x, y, z)

    # -- convenience constructors -----------------------------------------

    @staticmethod
    def cube(n: int, spacing: float = 1.0) -> "CartesianGrid3D":
        """An ``n**3`` grid with uniform spacing."""
        return CartesianGrid3D(n, n, n, spacing, spacing, spacing)

    def with_shape(self, nx: int, ny: int, nz: int) -> "CartesianGrid3D":
        """Same spacing, different cell counts."""
        return CartesianGrid3D(nx, ny, nz, self.dx, self.dy, self.dz)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CartesianGrid3D({self.nx}x{self.ny}x{self.nz}, "
            f"d=({self.dx:g},{self.dy:g},{self.dz:g}))"
        )
