"""Dirichlet boundary sets — the cell set ``T_D`` of Eq. (3).

In the paper's formulation, cells in ``T_D`` carry a fixed pressure
``p^D_K``; their residual row is ``r_K = p_K - p^D_K`` and the matrix-free
operator acts as identity on them (Eq. 6).  Wells (injector/producer) are
modelled as Dirichlet columns, which is how Fig. 5's source/producer pair is
set up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import CartesianGrid3D
from repro.util.errors import ValidationError


@dataclass
class DirichletSet:
    """The set ``T_D`` with imposed pressures.

    Attributes
    ----------
    grid:
        Grid the set refers to.
    mask:
        Boolean array of shape ``grid.shape``; True for cells in ``T_D``.
    values:
        Imposed pressure ``p^D``; only entries under ``mask`` are meaningful.
    """

    grid: CartesianGrid3D
    mask: np.ndarray = field(default=None)  # type: ignore[assignment]
    values: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mask is None:
            self.mask = np.zeros(self.grid.shape, dtype=bool)
        else:
            self.mask = np.asarray(self.mask, dtype=bool)
        if self.values is None:
            self.values = np.zeros(self.grid.shape, dtype=np.float32)
        else:
            self.values = np.asarray(self.values, dtype=np.float32)
        if self.mask.shape != self.grid.shape:
            raise ValidationError(
                f"Dirichlet mask shape {self.mask.shape} != grid {self.grid.shape}"
            )
        if self.values.shape != self.grid.shape:
            raise ValidationError(
                f"Dirichlet values shape {self.values.shape} != grid {self.grid.shape}"
            )

    # -- mutation ------------------------------------------------------------

    def set_cell(self, x: int, y: int, z: int, pressure: float) -> "DirichletSet":
        """Impose ``p = pressure`` on one cell."""
        self.grid.check_cell(x, y, z)
        self.mask[x, y, z] = True
        self.values[x, y, z] = pressure
        return self

    def set_column(self, x: int, y: int, pressure: float) -> "DirichletSet":
        """Impose a pressure on an entire Z column (a vertical well)."""
        self.grid.check_cell(x, y, 0)
        self.mask[x, y, :] = True
        self.values[x, y, :] = pressure
        return self

    def set_plane(self, axis: int, index: int, pressure: float) -> "DirichletSet":
        """Impose a pressure on a full grid plane (e.g. a constant-pressure face)."""
        if axis == 0:
            self.grid.check_cell(index, 0, 0)
            self.mask[index, :, :] = True
            self.values[index, :, :] = pressure
        elif axis == 1:
            self.grid.check_cell(0, index, 0)
            self.mask[:, index, :] = True
            self.values[:, index, :] = pressure
        elif axis == 2:
            self.grid.check_cell(0, 0, index)
            self.mask[:, :, index] = True
            self.values[:, :, index] = pressure
        else:
            raise ValidationError(f"axis must be 0, 1 or 2, got {axis}")
        return self

    # -- queries -------------------------------------------------------------

    @property
    def num_dirichlet(self) -> int:
        return int(self.mask.sum())

    @property
    def is_empty(self) -> bool:
        return not bool(self.mask.any())

    def contains(self, x: int, y: int, z: int) -> bool:
        self.grid.check_cell(x, y, z)
        return bool(self.mask[x, y, z])

    def apply_to(self, pressure: np.ndarray) -> np.ndarray:
        """Overwrite Dirichlet entries of ``pressure`` with imposed values.

        Returns ``pressure`` (modified in place) for chaining.  Solvers call
        this on the initial guess so the Dirichlet-residual invariant holds.
        """
        if pressure.shape != self.grid.shape:
            raise ValidationError(
                f"pressure shape {pressure.shape} != grid {self.grid.shape}"
            )
        np.copyto(pressure, self.values.astype(pressure.dtype), where=self.mask)
        return pressure

    def copy(self) -> "DirichletSet":
        return DirichletSet(self.grid, self.mask.copy(), self.values.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DirichletSet({self.num_dirichlet} cells of {self.grid.num_cells})"
