"""3D Cartesian mesh substrate.

The paper discretizes single-phase Darcy flow on a 3D Cartesian mesh where
each interior cell has six neighbours (the 7-point stencil of Fig. 1).  This
subpackage provides the grid geometry, cell fields, Dirichlet boundary sets
(the set ``T_D`` of Eq. 3), synthetic geomodels (permeability generators) and
wells expressed as Dirichlet columns.
"""

from repro.mesh.grid import CartesianGrid3D, Direction, DIRECTIONS
from repro.mesh.fields import CellField, make_cell_field
from repro.mesh.boundary import DirichletSet
from repro.mesh.geomodel import (
    homogeneous_permeability,
    layered_permeability,
    lognormal_permeability,
    channelized_permeability,
)
from repro.mesh.wells import Well, WellKind, quarter_five_spot, apply_wells

__all__ = [
    "CartesianGrid3D",
    "Direction",
    "DIRECTIONS",
    "CellField",
    "make_cell_field",
    "DirichletSet",
    "homogeneous_permeability",
    "layered_permeability",
    "lognormal_permeability",
    "channelized_permeability",
    "Well",
    "WellKind",
    "quarter_five_spot",
    "apply_wells",
]
