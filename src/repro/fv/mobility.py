"""Interfacial fluid mobility ``λ_KL`` (Eq. 4).

The paper treats single-phase flow with constant viscosity, so the cell
mobility is ``λ_K = 1/µ`` and the interfacial mobility is "the arithmetic
average of the mobilities in cells K and L".  We keep the full machinery
(per-cell mobility field, arithmetic face averaging) so that the code path
matches the multiphase generalization the paper points to, and so the
dataflow kernel has the same in-kernel averaging work to do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import CartesianGrid3D, Direction
from repro.util.errors import ValidationError
from repro.util.validation import check_positive, check_shape


@dataclass(frozen=True)
class FaceMobility:
    """Arithmetic-average mobilities on internal faces (same layout as
    :class:`repro.fv.transmissibility.FaceTransmissibility`)."""

    grid: CartesianGrid3D
    mx: np.ndarray
    my: np.ndarray
    mz: np.ndarray

    def __post_init__(self) -> None:
        check_shape("mx", self.mx, self.grid.face_shape(0))
        check_shape("my", self.my, self.grid.face_shape(1))
        check_shape("mz", self.mz, self.grid.face_shape(2))

    def axis(self, axis: int) -> np.ndarray:
        return (self.mx, self.my, self.mz)[axis]

    def face_value(self, x: int, y: int, z: int, direction: Direction) -> float:
        self.grid.check_cell(x, y, z)
        n = self.grid.neighbor(x, y, z, direction)
        if n is None:
            return 0.0
        lo = min((x, y, z), n, key=lambda c: c[direction.axis])
        return float(self.axis(direction.axis)[lo])


def cell_mobility(
    grid: CartesianGrid3D, viscosity: float, *, dtype=np.float32
) -> np.ndarray:
    """Constant cell mobility field ``λ = 1/µ``."""
    check_positive("viscosity", viscosity)
    return np.full(grid.shape, 1.0 / viscosity, dtype=dtype)


def compute_face_mobility(
    grid: CartesianGrid3D,
    mobility: np.ndarray | float,
    *,
    dtype=np.float32,
) -> FaceMobility:
    """Arithmetic average ``λ_KL = (λ_K + λ_L) / 2`` on all internal faces.

    ``mobility`` may be a scalar (constant-viscosity case) or a per-cell
    array (the multiphase-ready path).
    """
    if np.isscalar(mobility):
        check_positive("mobility", float(mobility))  # type: ignore[arg-type]
        mob = np.full(grid.shape, float(mobility), dtype=np.float64)  # type: ignore[arg-type]
    else:
        mob = np.asarray(mobility, dtype=np.float64)
        if mob.shape != grid.shape:
            raise ValidationError(
                f"mobility shape {mob.shape} != grid {grid.shape}"
            )
        if not np.all(mob > 0):
            raise ValidationError("mobility must be strictly positive")
    faces = []
    for axis in range(3):
        lo = _take_lo(mob, axis)
        hi = _take_hi(mob, axis)
        faces.append((0.5 * (lo + hi)).astype(dtype))
    return FaceMobility(grid, *faces)


def _take_lo(a: np.ndarray, axis: int) -> np.ndarray:
    index = [slice(None)] * a.ndim
    index[axis] = slice(0, -1)
    return a[tuple(index)]


def _take_hi(a: np.ndarray, axis: int) -> np.ndarray:
    index = [slice(None)] * a.ndim
    index[axis] = slice(1, None)
    return a[tuple(index)]
