"""The 7-point stencil (Fig. 1) as data.

The stencil is the communication footprint of the matrix-free kernel: four
lateral neighbours exchanged over the fabric, two vertical neighbours
resident in the same PE column.
"""

from __future__ import annotations

from repro.mesh.grid import CartesianGrid3D, Direction, DIRECTIONS

#: (direction, offset) pairs for the 6 off-center stencil points.
STENCIL_OFFSETS: tuple[tuple[Direction, tuple[int, int, int]], ...] = tuple(
    (d, d.offset) for d in DIRECTIONS
)

#: Number of stencil neighbours for an interior cell.
INTERIOR_NEIGHBORS = 6

#: FLOPs the paper charges per neighbour contribution (14, with FMA = 2).
PAPER_FLOPS_PER_NEIGHBOR = 14

#: FLOPs the paper charges per cell for the rest of Algorithm 1 (12).
PAPER_FLOPS_REST_OF_CG = 12

#: Total per-cell FLOPs in the paper's accounting (6 * 14 + 12 = 96).
PAPER_FLOPS_PER_CELL = INTERIOR_NEIGHBORS * PAPER_FLOPS_PER_NEIGHBOR + PAPER_FLOPS_REST_OF_CG


def stencil_neighbors(
    grid: CartesianGrid3D, x: int, y: int, z: int
) -> list[tuple[Direction, tuple[int, int, int]]]:
    """In-grid stencil neighbours of a cell, in canonical direction order.

    Boundary cells simply have fewer neighbours (no-flow natural boundary:
    missing faces contribute zero flux, equivalently zero transmissibility).
    """
    return list(grid.neighbors(x, y, z))
