"""The FV residual ``r(p)`` (Eq. 3), outflow-positive convention.

    r_K = Σ_{L ∈ adj(K)} Υ_KL λ_KL (p_K - p_L)   if K ∉ T_D,
    r_K = p_K - p^D_K                            otherwise.

Because the flux is linear in p, the residual is ``J p`` with the Dirichlet
rows shifted by ``p^D`` — which is exactly what :func:`compute_residual`
evaluates (reusing the matrix-free operator, as the paper's implementation
reuses the flux kernel for both residual and Jx).
"""

from __future__ import annotations

import numpy as np

from repro.fv.coefficients import FluxCoefficients
from repro.fv.operator import apply_jx
from repro.mesh.boundary import DirichletSet
from repro.util.errors import ValidationError


def compute_residual(
    coeffs: FluxCoefficients,
    dirichlet: DirichletSet,
    pressure: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate ``r(p)`` for the incompressible single-phase system.

    Parameters
    ----------
    coeffs:
        Flux coefficients ``c = Υ λ``.
    dirichlet:
        The set ``T_D`` and its imposed pressures ``p^D``.
    pressure:
        Current pressure field, shape ``grid.shape``.
    out:
        Optional preallocated output.
    """
    grid = coeffs.grid
    pressure = np.asarray(pressure)
    if pressure.shape != grid.shape:
        raise ValidationError(
            f"pressure shape {pressure.shape} != grid {grid.shape}"
        )
    out = apply_jx(coeffs, None, pressure, out=out)
    if not dirichlet.is_empty:
        boundary_residual = pressure - dirichlet.values.astype(pressure.dtype)
        np.copyto(out, boundary_residual, where=dirichlet.mask)
    return out


def newton_rhs(
    coeffs: FluxCoefficients,
    dirichlet: DirichletSet,
    pressure: np.ndarray,
) -> np.ndarray:
    """Right-hand side ``-r(p)`` of the Newton system ``J δp = -r`` (Eq. 5)."""
    return -compute_residual(coeffs, dirichlet, pressure)
