"""Matrix-BASED baseline: assemble the sparse Jacobian J explicitly.

The paper's matrix-free method exists to avoid this assembly (memory and
fill time); we implement it anyway because (a) it is the baseline the
matrix-free approach is compared against conceptually, and (b) it provides
an independent ground truth: ``assemble_jacobian(...) @ x.ravel()`` must
equal ``apply_jx(..., x)`` exactly (property-tested).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fv.coefficients import FluxCoefficients
from repro.mesh.boundary import DirichletSet


def assemble_jacobian(
    coeffs: FluxCoefficients,
    dirichlet: DirichletSet | None = None,
    *,
    dtype=np.float64,
) -> sp.csr_matrix:
    """Assemble J in CSR form, matching the matrix-free operator exactly.

    Interior rows: ``D_K`` on the diagonal, ``-c_KL`` towards every in-grid
    neighbour (including Dirichlet neighbours).  Dirichlet rows: identity.
    The matrix therefore reproduces Eq. 6 verbatim — and like Eq. 6 it is
    only symmetric on the subspace of vectors vanishing on ``T_D``.
    """
    grid = coeffs.grid
    n = grid.num_cells
    nyz = grid.ny * grid.nz
    nz = grid.nz

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    flat = np.arange(n).reshape(grid.shape)

    # Diagonal entries.
    rows.append(flat.reshape(-1))
    cols.append(flat.reshape(-1))
    vals.append(coeffs.diagonal.astype(dtype).reshape(-1))

    # Off-diagonals per axis: face between lo cell and hi cell.
    strides = (nyz, nz, 1)
    for axis in range(3):
        c = coeffs.axis(axis).astype(dtype)
        lo_index = [slice(None)] * 3
        lo_index[axis] = slice(0, -1)
        lo_flat = flat[tuple(lo_index)].reshape(-1)
        hi_flat = lo_flat + strides[axis]
        cf = c.reshape(-1)
        rows.append(lo_flat)
        cols.append(hi_flat)
        vals.append(-cf)
        rows.append(hi_flat)
        cols.append(lo_flat)
        vals.append(-cf)

    J = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()

    if dirichlet is not None and not dirichlet.is_empty:
        mask_flat = dirichlet.mask.reshape(-1)
        d_idx = np.flatnonzero(mask_flat)
        # Zero the Dirichlet rows, then put 1 on their diagonal.
        row_scale = np.ones(n, dtype=dtype)
        row_scale[d_idx] = 0.0
        J = sp.diags(row_scale).dot(J).tocsr()
        J = (J + sp.coo_matrix(
            (np.ones(d_idx.size, dtype=dtype), (d_idx, d_idx)), shape=(n, n)
        )).tocsr()
    return J


def eliminate_dirichlet(
    J: sp.csr_matrix,
    dirichlet: DirichletSet,
    rhs: np.ndarray,
) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Reduce ``J u = rhs`` to the truly-symmetric interior system.

    Moves known Dirichlet values to the right-hand side and drops their
    rows/columns.  Returns ``(J_ii, rhs_i, interior_index)`` where
    ``interior_index`` maps interior unknowns back to flat cell indices.
    Useful for scipy eigensolver/SPD checks on the reduced matrix.
    """
    n = J.shape[0]
    mask_flat = dirichlet.mask.reshape(-1)
    interior = np.flatnonzero(~mask_flat)
    boundary = np.flatnonzero(mask_flat)
    rhs_flat = np.asarray(rhs).reshape(-1).astype(np.float64)

    J_ii = J[np.ix_(interior, interior)].tocsr()
    J_ib = J[np.ix_(interior, boundary)].tocsr()
    u_b = dirichlet.values.reshape(-1)[boundary].astype(np.float64)
    rhs_i = rhs_flat[interior] - J_ib.dot(u_b)
    return J_ii, rhs_i, interior


def assembled_matrix_bytes(J: sp.csr_matrix) -> int:
    """Memory footprint of the assembled CSR matrix (values + indices).

    Used by the matrix-free vs. matrix-based ablation: the matrix-free
    approach stores only the six per-cell coefficients.
    """
    return int(J.data.nbytes + J.indices.nbytes + J.indptr.nbytes)
