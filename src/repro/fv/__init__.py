"""Finite-volume (TPFA) discretization substrate.

Implements the two-point flux approximation of the paper's Eqs. (3)-(6):

* half/harmonic transmissibilities ``Υ_KL`` on internal faces,
* arithmetic-averaged interfacial mobility ``λ_KL``,
* the matrix-free operator ``x -> Jx`` (Eq. 6, vectorized reference),
* the residual ``r(p)`` (Eq. 3),
* an assembled sparse-matrix baseline (the matrix-based approach the paper's
  matrix-free method replaces).

Sign convention: outflow-positive (``r_K = Σ Υλ (p_K - p_L)``) so that J is
literally symmetric positive definite — see DESIGN.md §1.
"""

from repro.fv.transmissibility import (
    FaceTransmissibility,
    compute_transmissibility,
    half_transmissibility,
)
from repro.fv.mobility import FaceMobility, compute_face_mobility
from repro.fv.coefficients import FluxCoefficients, build_flux_coefficients
from repro.fv.operator import MatrixFreeOperator, apply_jx
from repro.fv.residual import compute_residual
from repro.fv.assembly import assemble_jacobian, eliminate_dirichlet
from repro.fv.stencil import STENCIL_OFFSETS, stencil_neighbors

__all__ = [
    "FaceTransmissibility",
    "compute_transmissibility",
    "half_transmissibility",
    "FaceMobility",
    "compute_face_mobility",
    "FluxCoefficients",
    "build_flux_coefficients",
    "MatrixFreeOperator",
    "apply_jx",
    "compute_residual",
    "assemble_jacobian",
    "eliminate_dirichlet",
    "STENCIL_OFFSETS",
    "stencil_neighbors",
]
