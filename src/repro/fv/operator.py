"""The matrix-free operator ``x -> Jx`` (Eq. 6) — vectorized NumPy reference.

This is the numerical ground truth the dataflow and GPU implementations are
validated against.  With the outflow-positive sign convention,

    (Jx)_K = Σ_{L ∈ adj(K)} c_KL (x_K - x_L)   if K ∉ T_D,
    (Jx)_K = x_K                               otherwise,

where ``c_KL = Υ_KL λ_KL``.  J is SPD on the subspace of vectors vanishing
on ``T_D`` (the Krylov subspace CG explores when the initial guess honours
the Dirichlet values — a tested invariant).
"""

from __future__ import annotations

import numpy as np

from repro.fv.coefficients import FluxCoefficients
from repro.mesh.boundary import DirichletSet
from repro.util.errors import ValidationError


def apply_jx(
    coeffs: FluxCoefficients,
    dirichlet: DirichletSet | None,
    x: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Matrix-free application of J to a field ``x`` of shape ``grid.shape``.

    Parameters
    ----------
    coeffs:
        Precomputed flux coefficients (includes the diagonal).
    dirichlet:
        The set ``T_D``; identity rows.  ``None`` means no Dirichlet cells
        (pure Neumann operator — singular, useful in tests).
    x:
        Input field, shape ``grid.shape``.
    out:
        Optional output array (same shape/dtype) for allocation-free loops.
    """
    grid = coeffs.grid
    x = np.asarray(x)
    if x.shape != grid.shape:
        raise ValidationError(f"x shape {x.shape} != grid {grid.shape}")
    if out is None:
        out = np.empty_like(x)
    elif out.shape != x.shape:
        raise ValidationError(f"out shape {out.shape} != x shape {x.shape}")

    # Diagonal term: D_K * x_K.
    np.multiply(coeffs.diagonal, x, out=out)

    # Off-diagonal terms: subtract c * x_neighbor for both orientations of
    # every internal face (one face couples two rows symmetrically).
    for axis in range(3):
        c = coeffs.axis(axis)
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        lo_t, hi_t = tuple(lo), tuple(hi)
        out[lo_t] -= c * x[hi_t]
        out[hi_t] -= c * x[lo_t]

    if dirichlet is not None and not dirichlet.is_empty:
        np.copyto(out, x, where=dirichlet.mask)
    return out


class MatrixFreeOperator:
    """Callable operator wrapper with a scipy ``LinearOperator`` view.

    Examples
    --------
    >>> op = MatrixFreeOperator(coeffs, dirichlet)
    >>> y = op(x)                      # field in, field out
    >>> sp = op.as_linear_operator()   # for scipy.sparse.linalg solvers
    """

    def __init__(self, coeffs: FluxCoefficients, dirichlet: DirichletSet | None = None):
        self.coeffs = coeffs
        self.dirichlet = dirichlet
        self.grid = coeffs.grid
        self._scratch: np.ndarray | None = None
        #: Number of operator applications performed (profiling aid).
        self.num_applications = 0

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        self.num_applications += 1
        return apply_jx(self.coeffs, self.dirichlet, x, out=out)

    def apply_flat(self, x_flat: np.ndarray) -> np.ndarray:
        """Flat-vector interface (for scipy and dense comparisons)."""
        x = x_flat.reshape(self.grid.shape)
        if self._scratch is None or self._scratch.dtype != x.dtype:
            self._scratch = np.empty(self.grid.shape, dtype=x.dtype)
        return self(x, out=self._scratch).reshape(-1).copy()

    def as_linear_operator(self):
        """A ``scipy.sparse.linalg.LinearOperator`` over flat vectors."""
        from scipy.sparse.linalg import LinearOperator

        n = self.grid.num_cells
        return LinearOperator(
            (n, n), matvec=self.apply_flat, rmatvec=self.apply_flat,
            dtype=self.coeffs.dtype,
        )

    def diagonal_flat(self) -> np.ndarray:
        """Operator diagonal as a flat vector (Jacobi-scaling extension)."""
        diag = self.coeffs.diagonal.astype(np.float64).copy()
        if self.dirichlet is not None and not self.dirichlet.is_empty:
            diag[self.dirichlet.mask] = 1.0
        return diag.reshape(-1)
