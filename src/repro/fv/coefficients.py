"""Combined flux coefficients ``c_KL = Υ_KL λ_KL`` and the operator diagonal.

The matrix-free operator only ever needs the product of transmissibility and
interfacial mobility (Eq. 6).  :class:`FluxCoefficients` stores the product
per internal face plus the precomputed row diagonal
``D_K = Σ_{L ∈ adj(K)} c_KL``, which the vectorized reference operator uses
(the dataflow PEs instead recompute the λ average in-kernel; see
``repro.core.fv_kernel``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fv.mobility import FaceMobility, compute_face_mobility
from repro.fv.transmissibility import FaceTransmissibility, compute_transmissibility
from repro.mesh.grid import CartesianGrid3D, Direction
from repro.util.validation import check_shape


@dataclass(frozen=True)
class FluxCoefficients:
    """Per-face products ``c = Υ λ`` and the per-cell diagonal ``Σ c``."""

    grid: CartesianGrid3D
    cx: np.ndarray
    cy: np.ndarray
    cz: np.ndarray
    diagonal: np.ndarray

    def __post_init__(self) -> None:
        check_shape("cx", self.cx, self.grid.face_shape(0))
        check_shape("cy", self.cy, self.grid.face_shape(1))
        check_shape("cz", self.cz, self.grid.face_shape(2))
        check_shape("diagonal", self.diagonal, self.grid.shape)

    def axis(self, axis: int) -> np.ndarray:
        return (self.cx, self.cy, self.cz)[axis]

    def face_value(self, x: int, y: int, z: int, direction: Direction) -> float:
        """Coefficient of the face leaving ``(x,y,z)`` towards ``direction``
        (0.0 at the domain boundary)."""
        self.grid.check_cell(x, y, z)
        n = self.grid.neighbor(x, y, z, direction)
        if n is None:
            return 0.0
        lo = min((x, y, z), n, key=lambda c: c[direction.axis])
        return float(self.axis(direction.axis)[lo])

    def cell_view(self, direction: Direction) -> np.ndarray:
        """Per-cell coefficient towards ``direction``, zero-padded at the
        boundary — the layout each PE stores (six coefficients per cell)."""
        faces = self.axis(direction.axis)
        out = np.zeros(self.grid.shape, dtype=faces.dtype)
        index = [slice(None)] * 3
        if direction.sign > 0:
            index[direction.axis] = slice(0, -1)
        else:
            index[direction.axis] = slice(1, None)
        out[tuple(index)] = faces
        return out

    @property
    def dtype(self) -> np.dtype:
        return self.cx.dtype


def build_flux_coefficients(
    grid: CartesianGrid3D,
    permeability: np.ndarray,
    *,
    viscosity: float = 1.0,
    mobility: np.ndarray | float | None = None,
    dtype=np.float32,
) -> FluxCoefficients:
    """Assemble ``c = Υ λ`` from permeability and viscosity (or mobility).

    Parameters
    ----------
    grid, permeability:
        Geometry and rock property entering ``Υ``.
    viscosity:
        Constant fluid viscosity µ; ignored if ``mobility`` given.
    mobility:
        Optional per-cell mobility ``λ`` overriding ``1/µ``.
    """
    trans = compute_transmissibility(grid, permeability, dtype=np.float64)
    if mobility is None:
        mobility = 1.0 / float(viscosity)
    mob = compute_face_mobility(grid, mobility, dtype=np.float64)

    faces = []
    for axis in range(3):
        faces.append((trans.axis(axis) * mob.axis(axis)).astype(dtype))

    diagonal = np.zeros(grid.shape, dtype=np.float64)
    for axis, c in enumerate(faces):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        diagonal[tuple(lo)] += c
        diagonal[tuple(hi)] += c
    return FluxCoefficients(grid, *faces, diagonal.astype(dtype))


def coefficients_from_faces(
    grid: CartesianGrid3D,
    trans: FaceTransmissibility,
    mob: FaceMobility,
    *,
    dtype=np.float32,
) -> FluxCoefficients:
    """Combine precomputed face transmissibilities and mobilities."""
    faces = [
        (trans.axis(axis).astype(np.float64) * mob.axis(axis)).astype(dtype)
        for axis in range(3)
    ]
    diagonal = np.zeros(grid.shape, dtype=np.float64)
    for axis, c in enumerate(faces):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        diagonal[tuple(lo)] += c
        diagonal[tuple(hi)] += c
    return FluxCoefficients(grid, *faces, diagonal.astype(dtype))
