"""TPFA transmissibilities (the ``Υ_KL`` of Eq. 4).

For a uniform Cartesian grid, the half-transmissibility of cell K towards a
face orthogonal to axis ``a`` is ``T_K = k_K * A_a / (Δ_a / 2)`` where
``A_a`` is the face area and ``Δ_a`` the cell size.  The face
transmissibility is the harmonic combination

    Υ_KL = (T_K * T_L) / (T_K + T_L)
         = (A_a / Δ_a) * 2 k_K k_L / (k_K + k_L),

which accounts for "the geometry of the cells and their permeability"
exactly as the paper states.  Faces on the domain boundary do not exist
(no-flow natural boundary), so we only store internal faces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import CartesianGrid3D, Direction
from repro.util.errors import ValidationError
from repro.util.validation import check_shape


@dataclass(frozen=True)
class FaceTransmissibility:
    """Internal-face transmissibilities for the three axes.

    Attributes
    ----------
    grid:
        The grid the faces belong to.
    tx, ty, tz:
        Arrays of shape ``grid.face_shape(axis)``: ``tx[i, j, k]`` is the
        transmissibility of the face between cells ``(i, j, k)`` and
        ``(i+1, j, k)``, and similarly for ``ty``/``tz``.
    """

    grid: CartesianGrid3D
    tx: np.ndarray
    ty: np.ndarray
    tz: np.ndarray

    def __post_init__(self) -> None:
        check_shape("tx", self.tx, self.grid.face_shape(0))
        check_shape("ty", self.ty, self.grid.face_shape(1))
        check_shape("tz", self.tz, self.grid.face_shape(2))

    def axis(self, axis: int) -> np.ndarray:
        """Face array for ``axis`` (0=X, 1=Y, 2=Z)."""
        return (self.tx, self.ty, self.tz)[axis]

    def face_value(self, x: int, y: int, z: int, direction: Direction) -> float:
        """Transmissibility of the face leaving cell ``(x,y,z)`` towards
        ``direction``; 0.0 for a (nonexistent) boundary face.

        This is the per-cell "six transmissibilities" view each PE stores in
        the dataflow mapping (§III-A).
        """
        self.grid.check_cell(x, y, z)
        n = self.grid.neighbor(x, y, z, direction)
        if n is None:
            return 0.0
        lo = min((x, y, z), n, key=lambda c: c[direction.axis])
        return float(self.axis(direction.axis)[lo])

    def cell_view(self, direction: Direction, dtype=None) -> np.ndarray:
        """Full-grid array of per-cell face transmissibilities towards
        ``direction``, zero-padded at the domain boundary.

        ``cell_view(EAST)[x, y, z]`` is the transmissibility between
        ``(x,y,z)`` and ``(x+1,y,z)`` (0 if x == nx-1).  This is the exact
        layout a PE holds in local memory.
        """
        faces = self.axis(direction.axis)
        out = np.zeros(self.grid.shape, dtype=dtype or faces.dtype)
        index = [slice(None)] * 3
        if direction.sign > 0:
            index[direction.axis] = slice(0, -1)
        else:
            index[direction.axis] = slice(1, None)
        out[tuple(index)] = faces
        return out

    @property
    def dtype(self) -> np.dtype:
        return self.tx.dtype


def half_transmissibility(
    grid: CartesianGrid3D, permeability: np.ndarray, axis: int
) -> np.ndarray:
    """Half-transmissibility ``T_K = k * A / (Δ/2)`` of every cell along ``axis``."""
    permeability = np.asarray(permeability)
    if permeability.shape != grid.shape:
        raise ValidationError(
            f"permeability shape {permeability.shape} != grid {grid.shape}"
        )
    area = grid.face_area(axis)
    half_dist = grid.axis_spacing(axis) / 2.0
    return permeability * (area / half_dist)


def compute_transmissibility(
    grid: CartesianGrid3D,
    permeability: np.ndarray,
    *,
    dtype=np.float32,
) -> FaceTransmissibility:
    """Harmonic-mean TPFA transmissibilities on all internal faces.

    Parameters
    ----------
    grid:
        The Cartesian grid.
    permeability:
        Cell permeability ``k`` (scalar/isotropic), shape ``grid.shape``,
        strictly positive.
    dtype:
        Output dtype; fp32 by default (the paper's precision).
    """
    permeability = np.asarray(permeability, dtype=np.float64)
    if permeability.shape != grid.shape:
        raise ValidationError(
            f"permeability shape {permeability.shape} != grid {grid.shape}"
        )
    if not np.all(permeability > 0):
        raise ValidationError("permeability must be strictly positive")

    faces = []
    for axis in range(3):
        half = half_transmissibility(grid, permeability, axis)
        lo = _take_lo(half, axis)
        hi = _take_hi(half, axis)
        # Harmonic combination of the two half-transmissibilities.
        faces.append((lo * hi / (lo + hi)).astype(dtype))
    return FaceTransmissibility(grid, *faces)


def _take_lo(a: np.ndarray, axis: int) -> np.ndarray:
    index = [slice(None)] * a.ndim
    index[axis] = slice(0, -1)
    return a[tuple(index)]


def _take_hi(a: np.ndarray, axis: int) -> np.ndarray:
    index = [slice(None)] * a.ndim
    index[axis] = slice(1, None)
    return a[tuple(index)]
