"""Top-level solve entry points: ``repro.solve`` and ``repro.solve_many``.

One signature for every machine and every workload::

    spec = repro.SolveSpec.from_kwargs(dtype="float64", rel_tol=1e-9)
    result = repro.solve("quarter_five_spot", backend="wse", spec=spec)
    results = repro.solve_many(scenarios.weak_scaling_family(),
                               backend="gpu", spec=spec, n_workers=4)

``solve`` accepts a built :class:`SinglePhaseProblem`, a bound
:class:`Scenario`, or a registered scenario name.  Configuration travels
as a typed :class:`~repro.spec.SolveSpec`; the legacy flat-kwarg form
(``repro.solve(..., dtype=..., rel_tol=...)``) still works as a
deprecation shim — kwargs are validated through
:meth:`SolveSpec.from_kwargs` (typos raise ``ConfigurationError``) under
a :class:`DeprecationWarning`.

``solve_many`` routes through a :class:`~repro.session.Session` plan, so
one raising entry no longer loses the rest of the batch: every entry
finishes, then the first error (in input order) is raised.  For plans,
stores and process fan-out, use :class:`repro.Session` directly.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, Mapping, Sequence

from repro.backends import SolveResult, get_backend
from repro.gpu.specs import GpuSpecs
from repro.physics.darcy import SinglePhaseProblem
from repro.scenarios.base import Scenario, scenario as _bind_scenario
from repro.spec import SolveSpec
from repro.util.errors import ConfigurationError
from repro.wse.specs import WseSpecs


def _resolve_problem(target: Any) -> SinglePhaseProblem:
    if isinstance(target, SinglePhaseProblem):
        return target
    if isinstance(target, Scenario):
        return target.build()
    if isinstance(target, str):
        return _bind_scenario(target).build()
    raise ConfigurationError(
        f"cannot solve {target!r}: expected a SinglePhaseProblem, a "
        f"Scenario, or a registered scenario name"
    )


def _warn_kwargs_deprecated() -> None:
    warnings.warn(
        "passing flat keyword options to repro.solve/solve_many is "
        "deprecated; build a typed spec with repro.SolveSpec.from_kwargs(...) "
        "and pass it as spec=...",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_spec(spec: Any, options: dict[str, Any]) -> SolveSpec:
    """Coerce the ``spec=`` argument plus legacy kwargs into a SolveSpec.

    ``spec`` may be a :class:`SolveSpec`, a ``SolveSpec.to_dict()``
    mapping, ``None``, or — for back compatibility with the PR-1
    vocabulary where ``spec=`` meant the *machine* spec — a
    :class:`WseSpecs`/:class:`GpuSpecs`, which is folded into the legacy
    kwargs.  Legacy kwargs are validated (unknown keys raise) and warn.
    """
    if isinstance(spec, (WseSpecs, GpuSpecs)):
        options = dict(options, spec=spec)
        spec = None
    if isinstance(spec, SolveSpec) or isinstance(spec, Mapping):
        if options:
            raise ConfigurationError(
                f"pass configuration either as spec=... or as keyword "
                f"options, not both (got spec plus "
                f"{', '.join(sorted(options))})"
            )
        return spec if isinstance(spec, SolveSpec) else SolveSpec.from_dict(spec)
    if spec is not None:
        raise ConfigurationError(
            f"spec must be a SolveSpec, a SolveSpec.to_dict() mapping, a "
            f"machine spec (WseSpecs/GpuSpecs), or None; got "
            f"{type(spec).__name__}"
        )
    if options:
        _warn_kwargs_deprecated()
        return SolveSpec.from_kwargs(**options)
    return SolveSpec()


def solve(
    target: Any,
    *,
    backend: str = "reference",
    spec: Any = None,
    **options: Any,
) -> SolveResult:
    """Solve a problem/scenario on a named backend.

    Parameters
    ----------
    target:
        A :class:`SinglePhaseProblem`, a bound :class:`Scenario`, or the
        name of a registered scenario (solved with its default
        parameters).
    backend:
        Registry name — ``"reference"``, ``"wse"``, ``"gpu"``, or anything
        registered via :func:`repro.backends.register_backend`.
    spec:
        A :class:`~repro.spec.SolveSpec` (or its ``to_dict()`` form).
    options:
        Deprecated flat-kwarg configuration (``tol_rtr``, ``rel_tol``,
        ``max_iters``, ``dtype``, machine knobs …); validated through
        :meth:`SolveSpec.from_kwargs` and folded into the spec.
    """
    solve_spec = resolve_spec(spec, options)
    return get_backend(backend).solve(_resolve_problem(target), solve_spec)


def solve_many(
    targets: Iterable[Any],
    *,
    backend: str = "reference",
    n_workers: int | None = None,
    batch: bool = False,
    spec: Any = None,
    **options: Any,
) -> list[SolveResult]:
    """Solve a batch of problems/scenarios, fanned out over threads.

    Results come back in input order.  ``n_workers`` defaults to
    ``min(len(targets), os.cpu_count())``; ``n_workers=1`` runs serially
    in-process (no pool), which keeps tracebacks simple.

    ``batch=True`` fuses compatible entries — same backend, spec and
    grid shape, a backend that can batch (the dataflow fabric with the
    vectorized engine) — into single ``(batch, nx, ny, nz)`` NumPy
    programs instead of fanning out one Python solve per entry;
    ``machine.batch_size`` caps the lanes per fused program.  Entries
    that cannot batch fall back to serial execution.  Each result's
    ``telemetry["engine"]`` says which path produced it (``"batched"``
    vs ``"vectorized"``/``"event"``).

    Execution routes through an :class:`~repro.session.ExecutionPlan`, so
    errors are captured per entry: every entry runs to completion, then
    the first error (in input order) is raised.
    """
    from repro.session import Session

    solve_spec = resolve_spec(spec, options)
    items: Sequence[Any] = list(targets)
    if not items:
        return []
    if n_workers is not None and n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if batch:
        if n_workers is not None and n_workers != 1:
            # Batched execution is single-process by design (one fused
            # NumPy pipeline per group); silently dropping a requested
            # pool width would be a lie.
            raise ConfigurationError(
                "batch=True and n_workers are mutually exclusive: batched "
                "execution fuses entries into single NumPy programs "
                "instead of fanning out workers"
            )
        executor = "batched"
    elif n_workers == 1:
        executor = "serial"
    else:
        executor = "thread"
    plan = Session().plan(items, solve_spec, backend=backend)
    entry_results = plan.run(executor=executor, n_workers=n_workers)
    for entry_result in entry_results:
        if entry_result.error is not None:
            raise entry_result.error
    return [er.result for er in entry_results]  # type: ignore[misc]
