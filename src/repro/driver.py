"""Top-level solve entry points: ``repro.solve`` and ``repro.solve_many``.

One signature for every machine and every workload::

    result = repro.solve("quarter_five_spot", backend="wse", dtype=np.float64)
    results = repro.solve_many(scenarios.weak_scaling_family(), backend="gpu",
                               n_workers=4)

``solve`` accepts a built :class:`SinglePhaseProblem`, a bound
:class:`Scenario`, or a registered scenario name; ``solve_many`` fans a
batch out over a thread pool (the kernels are NumPy-heavy, so threads
overlap well) and returns results in input order.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Iterable, Sequence

from repro.backends import SolveResult, get_backend
from repro.physics.darcy import SinglePhaseProblem
from repro.scenarios.base import Scenario, scenario as _bind_scenario
from repro.util.errors import ConfigurationError


def _resolve_problem(target: Any) -> SinglePhaseProblem:
    if isinstance(target, SinglePhaseProblem):
        return target
    if isinstance(target, Scenario):
        return target.build()
    if isinstance(target, str):
        return _bind_scenario(target).build()
    raise ConfigurationError(
        f"cannot solve {target!r}: expected a SinglePhaseProblem, a "
        f"Scenario, or a registered scenario name"
    )


def solve(target: Any, *, backend: str = "reference", **options: Any) -> SolveResult:
    """Solve a problem/scenario on a named backend.

    Parameters
    ----------
    target:
        A :class:`SinglePhaseProblem`, a bound :class:`Scenario`, or the
        name of a registered scenario (solved with its default
        parameters).
    backend:
        Registry name — ``"reference"``, ``"wse"``, ``"gpu"``, or anything
        registered via :func:`repro.backends.register_backend`.
    options:
        Backend-interpreted keyword options (``tol_rtr``, ``rel_tol``,
        ``max_iters``, ``dtype``, plus machine knobs like ``spec`` /
        ``simd_width`` / ``block_shape``).
    """
    return get_backend(backend).solve(_resolve_problem(target), **options)


def solve_many(
    targets: Iterable[Any],
    *,
    backend: str = "reference",
    n_workers: int | None = None,
    **options: Any,
) -> list[SolveResult]:
    """Solve a batch of problems/scenarios, fanned out over threads.

    Results come back in input order.  ``n_workers`` defaults to
    ``min(len(targets), os.cpu_count())``; ``n_workers=1`` runs serially
    in-process (no pool), which keeps tracebacks simple.
    """
    items: Sequence[Any] = list(targets)
    if not items:
        return []
    if n_workers is None:
        n_workers = min(len(items), os.cpu_count() or 1)
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return [solve(item, backend=backend, **options) for item in items]
    with concurrent.futures.ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(solve, item, backend=backend, **options) for item in items
        ]
        return [f.result() for f in futures]
