"""Top-level solve entry points: ``repro.solve`` and ``repro.solve_many``.

One signature for every machine and every workload::

    spec = repro.SolveSpec.from_kwargs(dtype="float64", rel_tol=1e-9)
    result = repro.solve("quarter_five_spot", backend="wse", spec=spec)
    results = repro.solve_many(scenarios.weak_scaling_family(),
                               backend="gpu", spec=spec, n_workers=4)

``solve`` accepts a built :class:`SinglePhaseProblem`, a bound
:class:`Scenario`, or a registered scenario name.  Configuration travels
as a typed :class:`~repro.spec.SolveSpec`; the legacy flat-kwarg form
(``repro.solve(..., dtype=..., rel_tol=...)``) still works as a
deprecation shim — kwargs are validated through
:meth:`SolveSpec.from_kwargs` (typos raise ``ConfigurationError``) under
a :class:`DeprecationWarning`.

``solve_many`` routes through a :class:`~repro.session.Session` plan, so
one raising entry no longer loses the rest of the batch: every entry
finishes, then the first error (in input order) is raised.  For plans,
stores and process fan-out, use :class:`repro.Session` directly.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.backends import (
    SimulationResult,
    SolveResult,
    StepResult,
    get_backend,
)
from repro.gpu.specs import GpuSpecs
from repro.physics.darcy import SinglePhaseProblem
from repro.scenarios.base import Scenario, scenario as _bind_scenario
from repro.spec import SolveSpec
from repro.util.errors import ConfigurationError, SolveErrorGroup
from repro.wse.specs import WseSpecs


def _resolve_problem(target: Any) -> SinglePhaseProblem:
    if isinstance(target, SinglePhaseProblem):
        return target
    if isinstance(target, Scenario):
        return target.build()
    if isinstance(target, str):
        return _bind_scenario(target).build()
    raise ConfigurationError(
        f"cannot solve {target!r}: expected a SinglePhaseProblem, a "
        f"Scenario, or a registered scenario name"
    )


def _warn_kwargs_deprecated() -> None:
    warnings.warn(
        "passing flat keyword options to repro.solve/solve_many is "
        "deprecated; build a typed spec with repro.SolveSpec.from_kwargs(...) "
        "and pass it as spec=...",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_spec(spec: Any, options: dict[str, Any]) -> SolveSpec:
    """Coerce the ``spec=`` argument plus legacy kwargs into a SolveSpec.

    ``spec`` may be a :class:`SolveSpec`, a ``SolveSpec.to_dict()``
    mapping, ``None``, or — for back compatibility with the PR-1
    vocabulary where ``spec=`` meant the *machine* spec — a
    :class:`WseSpecs`/:class:`GpuSpecs`, which is folded into the legacy
    kwargs.  Legacy kwargs are validated (unknown keys raise) and warn.
    """
    if isinstance(spec, (WseSpecs, GpuSpecs)):
        options = dict(options, spec=spec)
        spec = None
    if isinstance(spec, SolveSpec) or isinstance(spec, Mapping):
        if options:
            raise ConfigurationError(
                f"pass configuration either as spec=... or as keyword "
                f"options, not both (got spec plus "
                f"{', '.join(sorted(options))})"
            )
        return spec if isinstance(spec, SolveSpec) else SolveSpec.from_dict(spec)
    if spec is not None:
        raise ConfigurationError(
            f"spec must be a SolveSpec, a SolveSpec.to_dict() mapping, a "
            f"machine spec (WseSpecs/GpuSpecs), or None; got "
            f"{type(spec).__name__}"
        )
    if options:
        _warn_kwargs_deprecated()
        return SolveSpec.from_kwargs(**options)
    return SolveSpec()


def solve(
    target: Any,
    *,
    backend: str = "reference",
    spec: Any = None,
    **options: Any,
) -> SolveResult:
    """Solve a problem/scenario on a named backend.

    Parameters
    ----------
    target:
        A :class:`SinglePhaseProblem`, a bound :class:`Scenario`, or the
        name of a registered scenario (solved with its default
        parameters).
    backend:
        Registry name — ``"reference"``, ``"wse"``, ``"gpu"``, or anything
        registered via :func:`repro.backends.register_backend`.
    spec:
        A :class:`~repro.spec.SolveSpec` (or its ``to_dict()`` form).
    options:
        Deprecated flat-kwarg configuration (``tol_rtr``, ``rel_tol``,
        ``max_iters``, ``dtype``, machine knobs …); validated through
        :meth:`SolveSpec.from_kwargs` and folded into the spec.
    """
    solve_spec = resolve_spec(spec, options)
    return get_backend(backend).solve(_resolve_problem(target), solve_spec)


def solve_many(
    targets: Iterable[Any],
    *,
    backend: str = "reference",
    n_workers: int | None = None,
    batch: bool = False,
    spec: Any = None,
    **options: Any,
) -> list[SolveResult]:
    """Solve a batch of problems/scenarios, fanned out over threads.

    Results come back in input order.  ``n_workers`` defaults to
    ``min(len(targets), os.cpu_count())``; ``n_workers=1`` runs serially
    in-process (no pool), which keeps tracebacks simple.

    ``batch=True`` fuses compatible entries — same backend, spec and
    grid shape, a backend that can batch (the dataflow fabric with the
    vectorized engine) — into single ``(batch, nx, ny, nz)`` NumPy
    programs instead of fanning out one Python solve per entry;
    ``machine.batch_size`` caps the lanes per fused program.  Entries
    that cannot batch fall back to serial execution.  Each result's
    ``telemetry["engine"]`` says which path produced it (``"batched"``
    vs ``"vectorized"``/``"event"``).

    Execution routes through an :class:`~repro.session.ExecutionPlan`, so
    errors are captured per entry: every entry runs to completion, then a
    single failure is raised as-is and multiple failures are raised
    together as a :class:`~repro.util.errors.SolveErrorGroup` carrying
    every per-entry error (in input order) — callers that triage failures
    (e.g. the serving tier's retry taxonomy) see all of them, not just
    whichever entry failed first.
    """
    from repro.session import Session

    solve_spec = resolve_spec(spec, options)
    items: Sequence[Any] = list(targets)
    if not items:
        return []
    if n_workers is not None and n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if batch:
        if n_workers is not None and n_workers != 1:
            # Batched execution is single-process by design (one fused
            # NumPy pipeline per group); silently dropping a requested
            # pool width would be a lie.
            raise ConfigurationError(
                "batch=True and n_workers are mutually exclusive: batched "
                "execution fuses entries into single NumPy programs "
                "instead of fanning out workers"
            )
        executor = "batched"
    elif n_workers == 1:
        executor = "serial"
    else:
        executor = "thread"
    plan = Session().plan(items, solve_spec, backend=backend)
    entry_results = plan.run(executor=executor, n_workers=n_workers)
    failures = [
        (er.entry.index, er.error)
        for er in entry_results
        if er.error is not None
    ]
    if len(failures) == 1:
        raise failures[0][1]
    if failures:
        raise SolveErrorGroup(
            f"{len(failures)} of {len(entry_results)} solve_many entries "
            f"failed (entries {', '.join(str(i) for i, _ in failures)})",
            [error for _, error in failures],
        )
    return [er.result for er in entry_results]  # type: ignore[misc]


# -- transient simulation ----------------------------------------------------


def _resolve_simulation_spec(spec: Any, options: dict[str, Any]) -> SolveSpec:
    """Like :func:`resolve_spec`, but flat kwargs are first-class sugar
    (``repro.simulate(target, n_steps=12, dt=2.0)``), not a deprecation
    shim, and the resulting spec must carry a time schedule."""
    if isinstance(spec, (SolveSpec, Mapping)):
        if options:
            raise ConfigurationError(
                f"pass configuration either as spec=... or as keyword "
                f"options, not both (got spec plus "
                f"{', '.join(sorted(options))})"
            )
        solve_spec = (
            spec if isinstance(spec, SolveSpec) else SolveSpec.from_dict(spec)
        )
    elif spec is not None:
        raise ConfigurationError(
            f"spec must be a SolveSpec, a SolveSpec.to_dict() mapping, or "
            f"None; got {type(spec).__name__}"
        )
    else:
        solve_spec = SolveSpec.from_kwargs(**options)
    if solve_spec.time is None:
        raise ConfigurationError(
            "simulate needs a time schedule: set spec.time to a TimeSpec "
            "(or pass n_steps=/dt=/... keywords)"
        )
    return solve_spec


def _transient_backend(backend: str):
    backend_obj = get_backend(backend)
    if not getattr(backend_obj, "supports_transient", False):
        raise ConfigurationError(
            f"backend {backend!r} does not support transient simulation "
            f"(no supports_transient declaration)"
        )
    return backend_obj


def simulate_steps(
    target: Any,
    *,
    backend: str = "reference",
    spec: Any = None,
    **options: Any,
) -> Iterator[StepResult]:
    """Stream a transient solve step by step (no persistence).

    The lazy sibling of :func:`simulate`: yields each
    :class:`~repro.backends.StepResult` as its backward-Euler step
    completes, so monitors can watch the pressure front move without
    holding the whole stack.
    """
    solve_spec = _resolve_simulation_spec(spec, options)
    backend_obj = _transient_backend(backend)
    return backend_obj.simulate(_resolve_problem(target), solve_spec)


def simulate(
    target: Any,
    *,
    backend: str = "reference",
    spec: Any = None,
    store: Any = None,
    resume: bool = True,
    on_step: Callable[[StepResult], None] | None = None,
    **options: Any,
) -> SimulationResult:
    """Run a transient (time-stepping) study on a named backend.

    One signature across every machine, mirroring :func:`solve`: pick a
    target, a backend, and a :class:`~repro.spec.SolveSpec` whose
    ``time`` section (a :class:`~repro.spec.TimeSpec`) carries the Δt
    schedule; get a :class:`~repro.backends.SimulationResult` (ordered
    :class:`~repro.backends.StepResult` stack + aggregates) back.  Flat
    keywords are accepted as sugar: ``repro.simulate("transient_injection",
    n_steps=12, dt=2.0, backend="wse")``.

    ``store`` (a :class:`~repro.session.ResultStore` or path) persists
    every completed step under the entry's content fingerprint; with
    ``resume=True`` (default) an interrupted schedule restarts at the
    first missing step, warm-starting from the stored pressure — re-runs
    of a completed simulation rehydrate entirely from disk.  ``on_step``
    is invoked as each step completes (stored steps included).
    """
    from repro.session import ResultStore, entry_fingerprint

    solve_spec = _resolve_simulation_spec(spec, options)
    backend_obj = _transient_backend(backend)
    problem = _resolve_problem(target)
    tspec = solve_spec.time
    assert tspec is not None

    steps: list[StepResult] = []
    fingerprint = None
    if store is not None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        fingerprint = entry_fingerprint(target, solve_spec, backend)
        if resume:
            completed = min(
                store.simulation_steps_completed(fingerprint), tspec.n_steps
            )
            if completed:
                steps = store.load_simulation_steps(fingerprint)[:completed]
                for step in steps:
                    if on_step is not None:
                        on_step(step)
        else:
            store.clear_simulation(fingerprint)

    start_step = len(steps)
    if start_step < tspec.n_steps:
        state = steps[-1].pressure if steps else None
        for step in backend_obj.simulate(
            problem, solve_spec, start_step=start_step, state=state
        ):
            if store is not None:
                store.save_simulation_step(
                    fingerprint,
                    step,
                    meta={
                        "backend": backend,
                        "spec": solve_spec.to_dict(),
                        "n_steps": tspec.n_steps,
                    },
                )
            steps.append(step)
            if on_step is not None:
                on_step(step)

    telemetry = {
        "preconditioner": solve_spec.preconditioner,
        "warm_start": tspec.warm_start,
    }
    if steps:
        telemetry["time_kind"] = steps[-1].telemetry.get("time_kind")
        engine = steps[-1].telemetry.get("engine")
        if engine is not None:
            telemetry["engine"] = engine
    return SimulationResult(steps=steps, backend=backend_obj.name, telemetry=telemetry)


def simulate_many(
    targets: Iterable[Any],
    *,
    backend: str = "wse",
    spec: Any = None,
    batch: bool = False,
    **options: Any,
) -> list[SimulationResult]:
    """Simulate a family of targets; results in input order.

    ``batch=True`` time-steps every realization *together* — one fused
    ``(batch, nx, ny, nz)`` program per step with per-lane convergence
    masking (``machine.batch_size`` caps lanes per fused program) — and
    requires a backend with ``simulate_batch`` (the dataflow fabric).
    ``batch=False`` simulates each target serially.
    """
    solve_spec = _resolve_simulation_spec(spec, options)
    backend_obj = _transient_backend(backend)
    items = list(targets)
    if not items:
        return []
    problems = [_resolve_problem(t) for t in items]
    if batch:
        if not hasattr(backend_obj, "simulate_batch"):
            raise ConfigurationError(
                f"backend {backend!r} cannot batch simulations (no "
                f"simulate_batch)"
            )
        return backend_obj.simulate_batch(problems, solve_spec)
    return [
        SimulationResult.collect(
            backend_obj.simulate(problem, solve_spec),
            backend=backend_obj.name,
            telemetry={
                "preconditioner": solve_spec.preconditioner,
                "warm_start": solve_spec.time.warm_start,
            },
        )
        for problem in problems
    ]
