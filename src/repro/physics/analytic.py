"""Analytic solutions for numerical-integrity checks (§V-B).

For a homogeneous medium with two constant-pressure planes, the steady
incompressible pressure field is linear between the planes — an exact
solution of both the PDE and its TPFA discretization (TPFA is exact for
linear fields on uniform Cartesian grids), so the discrete solver must
reproduce it to solver tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.boundary import DirichletSet
from repro.mesh.grid import CartesianGrid3D
from repro.util.errors import ConfigurationError
from repro.util.validation import check_index


def linear_pressure_profile(
    grid: CartesianGrid3D,
    axis: int,
    p_low_index: float,
    p_high_index: float,
    *,
    dtype=np.float64,
) -> np.ndarray:
    """Pressure varying linearly along ``axis`` between the first and last
    cell-center, constant over the other axes.

    ``p_low_index`` is the value at index 0, ``p_high_index`` at index n-1.
    """
    check_index("axis", axis, 3)
    n = grid.shape[axis]
    if n == 1:
        profile = np.array([p_low_index], dtype=dtype)
    else:
        profile = np.linspace(p_low_index, p_high_index, n, dtype=dtype)
    shape = [1, 1, 1]
    shape[axis] = n
    return np.broadcast_to(profile.reshape(shape), grid.shape).astype(dtype)


def analytic_two_plane_solution(
    grid: CartesianGrid3D,
    axis: int,
    p_first: float,
    p_last: float,
    *,
    dtype=np.float64,
) -> tuple[DirichletSet, np.ndarray]:
    """Dirichlet planes at both ends of ``axis`` plus the exact solution.

    Returns ``(dirichlet, exact_pressure)``.  Valid for homogeneous
    permeability; the exact discrete solution is the linear profile.
    """
    check_index("axis", axis, 3)
    if grid.shape[axis] < 2:
        raise ConfigurationError(
            f"two-plane problem needs >= 2 cells along axis {axis}"
        )
    dirichlet = DirichletSet(grid)
    dirichlet.set_plane(axis, 0, p_first)
    dirichlet.set_plane(axis, grid.shape[axis] - 1, p_last)
    exact = linear_pressure_profile(grid, axis, p_first, p_last, dtype=dtype)
    return dirichlet, exact
