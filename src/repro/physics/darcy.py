"""Problem container for single-phase incompressible Darcy flow.

Bundles the grid, permeability, viscosity, Dirichlet set and the derived
flux coefficients into one immutable object every backend (reference, WSE,
GPU) consumes.  The governing system is Eq. (1): Darcy's law plus mass
balance, discretized by TPFA into the residual of Eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fv.coefficients import FluxCoefficients, build_flux_coefficients
from repro.fv.operator import MatrixFreeOperator
from repro.fv.residual import compute_residual
from repro.mesh.boundary import DirichletSet
from repro.mesh.grid import CartesianGrid3D
from repro.util.errors import ConfigurationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SinglePhaseProblem:
    """An incompressible single-phase pressure problem.

    Attributes
    ----------
    grid:
        The Cartesian mesh.
    permeability:
        Cell permeability field ``κ``.
    viscosity:
        Constant fluid viscosity ``µ`` (the paper assumes constant µ).
    dirichlet:
        The set ``T_D`` with imposed pressures (wells and/or planes).
    coefficients:
        Derived ``c = Υ λ`` products (built once, reused by all backends).
    """

    grid: CartesianGrid3D
    permeability: np.ndarray
    viscosity: float
    dirichlet: DirichletSet
    coefficients: FluxCoefficients

    def operator(self) -> MatrixFreeOperator:
        """The matrix-free Jacobian operator for this problem."""
        return MatrixFreeOperator(self.coefficients, self.dirichlet)

    def residual(self, pressure: np.ndarray) -> np.ndarray:
        """Evaluate ``r(p)`` (Eq. 3)."""
        return compute_residual(self.coefficients, self.dirichlet, pressure)

    def initial_pressure(self, fill: float = 0.0, *, dtype=np.float32) -> np.ndarray:
        """An initial guess honouring the Dirichlet values exactly.

        Starting from a guess with exact boundary values keeps the residual
        (and every CG iterate) zero on ``T_D`` — the invariant the
        matrix-free dataflow kernel relies on.
        """
        p = np.full(self.grid.shape, fill, dtype=dtype)
        self.dirichlet.apply_to(p)
        return p


def build_problem(
    grid: CartesianGrid3D,
    permeability: np.ndarray | float,
    dirichlet: DirichletSet,
    *,
    viscosity: float = 1.0,
    dtype=np.float32,
) -> SinglePhaseProblem:
    """Construct a :class:`SinglePhaseProblem`, validating inputs.

    ``permeability`` may be a scalar (homogeneous medium) or a full field.
    """
    check_positive("viscosity", viscosity)
    if np.isscalar(permeability):
        perm = np.full(grid.shape, float(permeability), dtype=dtype)  # type: ignore[arg-type]
    else:
        perm = np.asarray(permeability, dtype=dtype)
    if dirichlet.grid.shape != grid.shape:
        raise ConfigurationError("dirichlet set was built for a different grid")
    if dirichlet.is_empty:
        raise ConfigurationError(
            "problem needs at least one Dirichlet cell: the pure-Neumann "
            "pressure system is singular"
        )
    coeffs = build_flux_coefficients(
        grid, perm, viscosity=viscosity, dtype=dtype
    )
    return SinglePhaseProblem(grid, perm, float(viscosity), dirichlet, coeffs)
