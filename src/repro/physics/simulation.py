"""Newton / pressure-solve drivers.

The single-phase incompressible problem is linear, so one Newton step
solves it exactly — but the paper frames the linear solve inside a Newton
update (Eq. 5), "a key preliminary step towards ... nonlinear multiphase
flow".  We keep that structure: :func:`newton_solve` iterates Newton steps
(converging in one for this physics, tested), each step solving
``J δp = -r`` with a pluggable linear solver.

Tolerances
----------
The paper's CG check is *absolute* on ``r^T r`` (ε = 2e-10) in fp32, which
only makes sense for its normalized problem scaling.  The reference driver
here is scale-robust: Newton convergence is declared at
``r^T r <= max(newton_tol, newton_rtol² · r0^T r0)`` with the verification
residual evaluated in float64, and the inner linear solve is requested two
orders (in ``r^T r``) tighter than that threshold.  Paper-fidelity fp32
runs can pass ``dtype=np.float32`` and the paper's absolute ``tol_rtr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fv.residual import compute_residual
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.cg import CGResult, conjugate_gradient, PAPER_TOLERANCE_RTR
from repro.util.errors import ConvergenceError

LinearSolver = Callable[..., CGResult]


@dataclass
class NewtonReport:
    """Outcome of a Newton solve.

    Attributes
    ----------
    pressure:
        Converged pressure field.
    newton_iterations:
        Newton steps taken (1 for the linear single-phase problem).
    linear_results:
        Per-step CG results (iteration counts feed the benchmarks).
    residual_norms:
        Float64-evaluated ``r^T r`` before each Newton step and after the
        last.
    """

    pressure: np.ndarray
    newton_iterations: int
    linear_results: list[CGResult] = field(default_factory=list)
    residual_norms: list[float] = field(default_factory=list)

    @property
    def total_linear_iterations(self) -> int:
        return sum(r.iterations for r in self.linear_results)


def solve_pressure(
    problem: SinglePhaseProblem,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    max_iters: int = 10_000,
    linear_solver: LinearSolver | None = None,
    dtype=np.float64,
) -> NewtonReport:
    """One-Newton-step pressure solve (the paper's experiment shape).

    Equivalent to :func:`newton_solve` with defaults; kept as the simple
    public entry point.
    """
    return newton_solve(
        problem,
        tol_rtr=tol_rtr,
        max_iters=max_iters,
        linear_solver=linear_solver,
        dtype=dtype,
    )


def newton_solve(
    problem: SinglePhaseProblem,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    max_iters: int = 10_000,
    linear_solver: LinearSolver | None = None,
    max_newton: int = 10,
    newton_tol: float = 0.0,
    newton_rtol: float | None = None,
    initial_pressure: np.ndarray | None = None,
    dtype=np.float64,
) -> NewtonReport:
    """Newton iteration on ``r(p) = 0`` (Eq. 2).

    Parameters
    ----------
    problem:
        The Darcy problem.
    tol_rtr, max_iters:
        Baseline absolute tolerance / iteration cap for the inner linear
        solver (the effective inner tolerance also adapts to the Newton
        threshold, see module docstring).
    linear_solver:
        Callable with the :func:`conjugate_gradient` signature; defaults to
        the reference CG.
    max_newton:
        Newton step cap.
    newton_tol:
        Optional *absolute* threshold on the nonlinear ``r^T r``.
    newton_rtol:
        Relative threshold on the residual *norm* versus the canonical
        problem scale (the residual of the zero-fill initial guess):
        converge when ``r^T r <= newton_rtol² · scale``.  Defaults to 1e-6
        in float64 and 1e-4 in float32 (the fp32 attainable floor).
    initial_pressure:
        Starting field; defaults to zeros with Dirichlet values applied.
    dtype:
        Working precision for pressure/rhs vectors (float64 default for the
        reference; pass float32 for paper-fidelity runs).
    """
    solver = linear_solver or conjugate_gradient
    operator = problem.operator()
    if initial_pressure is None:
        p = problem.initial_pressure(dtype=dtype)
    else:
        p = np.array(initial_pressure, dtype=dtype, copy=True)
        problem.dirichlet.apply_to(p)

    if newton_rtol is None:
        newton_rtol = 1e-4 if np.dtype(dtype) == np.float32 else 1e-6

    # Problem-scale reference: the residual of the canonical zero-fill
    # start.  Using a fixed scale (rather than this call's initial residual)
    # keeps the threshold meaningful when the caller passes an already
    # (nearly) converged initial_pressure.
    p_scale = problem.initial_pressure(dtype=np.float64)
    r_scale = compute_residual(problem.coefficients, problem.dirichlet, p_scale)
    scale_rtr = float(np.vdot(r_scale, r_scale).real)

    report = NewtonReport(pressure=p, newton_iterations=0)
    # The Newton threshold can never be tighter than what the inner linear
    # solver is asked to achieve — floor it at a small multiple of the CG
    # tolerance so ill-conditioned fields don't spin on an unreachable
    # target.
    threshold = max(float(newton_tol), 10.0 * float(tol_rtr))
    for _ in range(max_newton):
        rtr = _true_residual_rtr(problem, p, report)
        if report.newton_iterations == 0:
            threshold = max(
                threshold, newton_rtol * newton_rtol * max(scale_rtr, rtr)
            )
        if rtr <= threshold:
            report.pressure = p
            return report
        r = compute_residual(problem.coefficients, problem.dirichlet, p)
        rhs = (-r).astype(dtype)
        inner_tol = max(tol_rtr, 1e-2 * threshold)
        result = solver(operator, rhs, tol_rtr=inner_tol, max_iters=max_iters)
        report.linear_results.append(result)
        p += result.x.astype(dtype)
        # Newton preserves Dirichlet values exactly (δp = 0 there), but
        # roundoff can creep in; re-impose to keep the invariant sharp.
        problem.dirichlet.apply_to(p)
        report.newton_iterations += 1

    rtr = _true_residual_rtr(problem, p, report)
    if rtr > threshold:
        raise ConvergenceError(
            f"Newton did not converge in {max_newton} steps (r^T r = {rtr:.3e})",
            iterations=report.newton_iterations,
            residual_norm=rtr,
        )
    report.pressure = p
    return report


def _true_residual_rtr(
    problem: SinglePhaseProblem, p: np.ndarray, report: NewtonReport
) -> float:
    """Float64-evaluated nonlinear residual norm (appended to the report)."""
    r64 = compute_residual(
        problem.coefficients, problem.dirichlet, p.astype(np.float64)
    )
    rtr = float(np.vdot(r64, r64).real)
    report.residual_norms.append(rtr)
    return rtr
