"""Transient slightly-compressible single-phase flow — the time-stepping
layer the paper's GPU section alludes to ("for each time iteration of the
simulation ...") and the natural first extension beyond the steady
incompressible solve.

Physics: adding slight fluid/rock compressibility ``c_t`` to the mass
balance gives, after backward-Euler discretization,

    (φ c_t V / Δt) (p^{n+1}_K - p^n_K) + Σ_L Υ λ (p^{n+1}_K - p^{n+1}_L) = 0,

i.e. at every time step a linear system with the same TPFA stencil plus an
accumulation term on the diagonal:

    (J + A) p^{n+1} = A p^n + b_D,   A = diag(φ c_t V / Δt).

The accumulation term *improves* conditioning (diagonal dominance), so CG
iteration counts drop as Δt shrinks — a property the tests pin down.  As
Δt → ∞ the scheme recovers the steady incompressible solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fv.operator import apply_jx
from repro.physics.darcy import SinglePhaseProblem
from repro.solvers.cg import CGResult, conjugate_gradient
from repro.util.errors import ConfigurationError
from repro.util.validation import check_positive


@dataclass
class TransientOperator:
    """The per-step SPD operator ``x -> (J + A) x``."""

    problem: SinglePhaseProblem
    accumulation: np.ndarray  # diag(φ c_t V / Δt), zero on Dirichlet rows

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        out = apply_jx(self.problem.coefficients, self.problem.dirichlet, x, out=out)
        # Dirichlet rows stay identity: the accumulation array is zeroed
        # there at construction.
        out += self.accumulation * x
        return out


@dataclass
class TransientReport:
    """Time-stepping outcome.

    Attributes
    ----------
    pressures:
        Snapshots [p^0, p^1, ..., p^N].
    linear_results:
        CG result per step.
    times:
        Physical time after each step.
    """

    pressures: list[np.ndarray] = field(default_factory=list)
    linear_results: list[CGResult] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    @property
    def final_pressure(self) -> np.ndarray:
        return self.pressures[-1]

    @property
    def total_linear_iterations(self) -> int:
        return sum(r.iterations for r in self.linear_results)


def build_accumulation(
    problem: SinglePhaseProblem,
    *,
    porosity: float | np.ndarray = 0.2,
    total_compressibility: float = 1e-4,
    dt: float = 1.0,
    dtype=np.float64,
) -> np.ndarray:
    """The accumulation diagonal ``φ c_t V / Δt`` (zero on T_D rows)."""
    check_positive("total_compressibility", total_compressibility)
    check_positive("dt", dt)
    grid = problem.grid
    if np.isscalar(porosity):
        phi = np.full(grid.shape, float(porosity), dtype=dtype)  # type: ignore[arg-type]
    else:
        phi = np.asarray(porosity, dtype=dtype)
        if phi.shape != grid.shape:
            raise ConfigurationError(
                f"porosity shape {phi.shape} != grid {grid.shape}"
            )
    if np.any(phi <= 0):
        raise ConfigurationError("porosity must be strictly positive")
    acc = phi * total_compressibility * grid.cell_volume() / dt
    acc = acc.astype(dtype)
    acc[problem.dirichlet.mask] = 0.0
    return acc


def initial_state(problem: SinglePhaseProblem, initial_condition, dtype) -> np.ndarray:
    """The initial pressure under a :class:`~repro.spec.TimeSpec` policy:
    ``"problem"`` (Dirichlet-consistent zero fill) or a uniform fill
    value (Dirichlet values applied on top)."""
    if isinstance(initial_condition, str):
        if initial_condition != "problem":
            raise ConfigurationError(
                f"unknown initial_condition {initial_condition!r}"
            )
        return problem.initial_pressure(dtype=dtype)
    return problem.initial_pressure(fill=float(initial_condition), dtype=dtype)


class TransientStepper:
    """Shared backward-Euler stepping state for every backend's loop.

    One instance owns everything the step recurrence needs — the Δt
    schedule, the accumulation rebuild-on-dt-change cache, the Dirichlet
    right-hand side, the warm/cold-start policy, and resume
    (``start_step``/``state``) — so the reference, GPU and fabric
    drivers all step identically and a semantics fix lands once::

        stepper = TransientStepper(problem, dts=..., ...)
        for idx in stepper.pending():
            acc, rhs, x0 = stepper.begin(idx)
            ...solve (J + diag(acc)) p = rhs from x0...
            stepper.advance(p)

    ``state_dtype`` is the dtype the carried pressure (and ``x0``) lives
    in — the backend's working precision; ``acc_dtype``/``rhs_dtype``
    control the accumulation/rhs arithmetic (float64 for the device
    paths, the working dtype for the all-in-one-precision reference).
    """

    def __init__(
        self,
        problem: SinglePhaseProblem,
        *,
        dts,
        porosity: float | np.ndarray = 0.2,
        total_compressibility: float = 1e-4,
        initial_condition="problem",
        warm_start: bool = True,
        start_step: int = 0,
        state: np.ndarray | None = None,
        state_dtype=np.float64,
        acc_dtype=np.float64,
        rhs_dtype=np.float64,
    ):
        self.problem = problem
        self.dts = [float(dt) for dt in dts]
        if not self.dts:
            raise ConfigurationError(
                "transient schedule needs at least one step"
            )
        if not 0 <= start_step <= len(self.dts):
            raise ConfigurationError(
                f"start_step {start_step} outside the "
                f"{len(self.dts)}-step schedule"
            )
        self.start_step = int(start_step)
        self.porosity = porosity
        self.total_compressibility = total_compressibility
        self.warm_start = bool(warm_start)
        self._state_dtype = np.dtype(state_dtype)
        self._acc_dtype = np.dtype(acc_dtype)
        self._rhs_dtype = np.dtype(rhs_dtype)
        self.p0 = initial_state(problem, initial_condition, self._state_dtype)
        if state is not None:
            self.p = np.array(state, dtype=self._state_dtype, copy=True)
            problem.dirichlet.apply_to(self.p)
        else:
            self.p = self.p0
        self._b_dir = np.zeros(problem.grid.shape, dtype=self._rhs_dtype)
        mask = problem.dirichlet.mask
        self._b_dir[mask] = problem.dirichlet.values[mask]
        self._acc: np.ndarray | None = None
        self._last_dt: float | None = None

    def pending(self) -> range:
        """0-based indices of the steps still to run."""
        return range(self.start_step, len(self.dts))

    def begin(self, index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Step ``index``'s system pieces from the current state:
        ``(accumulation, rhs, x0)`` for ``(J + diag(acc)) p = rhs``."""
        dt = self.dts[index]
        if dt != self._last_dt:
            self._acc = build_accumulation(
                self.problem,
                porosity=self.porosity,
                total_compressibility=self.total_compressibility,
                dt=dt,
                dtype=self._acc_dtype,
            )
            self._last_dt = dt
        rhs = self._acc * self.p.astype(self._rhs_dtype) + self._b_dir
        x0 = self.p if self.warm_start else self.p0
        return self._acc, rhs, x0

    def advance(self, pressure: np.ndarray) -> None:
        """Record a completed step's pressure as the new state."""
        self.p = np.asarray(pressure)


def simulate_transient(
    problem: SinglePhaseProblem,
    *,
    num_steps: int = 10,
    dt: float = 1.0,
    porosity: float | np.ndarray = 0.2,
    total_compressibility: float = 1e-4,
    initial_pressure: np.ndarray | None = None,
    rel_tol: float = 1e-10,
    max_iters: int = 10_000,
    store_every: int = 1,
) -> TransientReport:
    """Backward-Euler time stepping of the slightly-compressible system.

    Each step solves ``(J + A) p^{n+1} = A p^n + b_D`` with CG; snapshots
    are stored every ``store_every`` steps (plus the initial and final
    states).
    """
    if num_steps < 1:
        raise ConfigurationError("num_steps must be >= 1")
    grid = problem.grid
    acc = build_accumulation(
        problem,
        porosity=porosity,
        total_compressibility=total_compressibility,
        dt=dt,
    )
    operator = TransientOperator(problem, acc)

    if initial_pressure is None:
        p = problem.initial_pressure(dtype=np.float64)
    else:
        p = np.array(initial_pressure, dtype=np.float64, copy=True)
        problem.dirichlet.apply_to(p)

    b_dirichlet = np.zeros(grid.shape, dtype=np.float64)
    mask = problem.dirichlet.mask
    b_dirichlet[mask] = problem.dirichlet.values[mask]

    report = TransientReport()
    report.pressures.append(p.copy())
    report.times.append(0.0)

    rhs = np.empty_like(p)
    for step in range(1, num_steps + 1):
        np.multiply(acc, p, out=rhs)
        rhs += b_dirichlet
        r0 = rhs - operator(p)
        rtr0 = float(np.vdot(r0, r0).real)
        result = conjugate_gradient(
            operator,
            rhs,
            x0=p,
            tol_rtr=max(rel_tol * rel_tol * rtr0, 1e-300),
            max_iters=max_iters,
        )
        p = result.x
        problem.dirichlet.apply_to(p)
        report.linear_results.append(result)
        if step % store_every == 0 or step == num_steps:
            report.pressures.append(p.copy())
            report.times.append(step * dt)
    return report
