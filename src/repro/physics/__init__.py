"""Single-phase incompressible Darcy flow (Eqs. 1a/1b).

Packages the mesh + FV pieces into a ready-to-solve problem description and
provides analytic solutions used for numerical-integrity tests (§V-B).
"""

from repro.physics.darcy import SinglePhaseProblem, build_problem
from repro.physics.analytic import (
    linear_pressure_profile,
    analytic_two_plane_solution,
)
from repro.physics.simulation import NewtonReport, solve_pressure, newton_solve

__all__ = [
    "SinglePhaseProblem",
    "build_problem",
    "linear_pressure_profile",
    "analytic_two_plane_solution",
    "NewtonReport",
    "solve_pressure",
    "newton_solve",
]
