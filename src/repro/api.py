"""High-level convenience API — the library's front door.

Wraps the most common flows in one-liners so the examples and quickstart
stay short.  Everything here is a thin composition of public pieces from
``repro.mesh`` / ``repro.fv`` / ``repro.physics`` / ``repro.core`` /
``repro.gpu``.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import CartesianGrid3D
from repro.mesh.geomodel import homogeneous_permeability
from repro.mesh.wells import quarter_five_spot
from repro.physics.darcy import SinglePhaseProblem, build_problem
from repro.physics.simulation import NewtonReport, solve_pressure
from repro.solvers.cg import PAPER_TOLERANCE_RTR


def quarter_five_spot_problem(
    nx: int = 16,
    ny: int = 16,
    nz: int = 8,
    *,
    permeability: np.ndarray | float = 100.0,
    viscosity: float = 1.0,
    injection_pressure: float = 1.0,
    production_pressure: float = 0.0,
) -> SinglePhaseProblem:
    """The Fig. 5 scenario: injector at (0,0), producer at (nx-1,ny-1)."""
    grid = CartesianGrid3D(nx, ny, nz)
    if np.isscalar(permeability):
        perm = homogeneous_permeability(grid, float(permeability))  # type: ignore[arg-type]
    else:
        perm = np.asarray(permeability, dtype=np.float32)
    _, dirichlet = quarter_five_spot(
        grid,
        injection_pressure=injection_pressure,
        production_pressure=production_pressure,
    )
    return build_problem(grid, perm, dirichlet, viscosity=viscosity)


def solve_reference(
    problem: SinglePhaseProblem,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    max_iters: int = 10_000,
) -> NewtonReport:
    """Solve with the vectorized NumPy reference backend."""
    return solve_pressure(problem, tol_rtr=tol_rtr, max_iters=max_iters)


def solve_on_wse(problem: SinglePhaseProblem, **kwargs):
    """Solve on the simulated dataflow fabric (see `repro.core.solver`).

    Imported lazily so the light-weight reference path doesn't pay for the
    simulator machinery.
    """
    from repro.core.solver import WseMatrixFreeSolver

    solver = WseMatrixFreeSolver.for_problem(problem, **kwargs)
    return solver.solve()


def solve_on_gpu_model(problem: SinglePhaseProblem, **kwargs):
    """Solve with the CUDA-like GPU reference model (see `repro.gpu`)."""
    from repro.gpu.cg import GpuCGSolver

    solver = GpuCGSolver.for_problem(problem, **kwargs)
    return solver.solve()
