"""Legacy convenience API — superseded by :func:`repro.solve`.

The original front door exposed one entry point per machine
(``solve_reference`` / ``solve_on_wse`` / ``solve_on_gpu_model``), each
returning its own report type.  Those functions remain as thin
deprecation shims over the unified backend registry
(:mod:`repro.backends`) and still return the legacy report objects, so
existing callers keep working; new code should call::

    result = repro.solve(problem_or_scenario, backend="wse", **options)

``quarter_five_spot_problem`` stays as the canonical Fig. 5 problem
builder (the ``quarter_five_spot`` scenario delegates to the same
construction).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.mesh.grid import CartesianGrid3D
from repro.mesh.geomodel import homogeneous_permeability
from repro.mesh.wells import quarter_five_spot
from repro.physics.darcy import SinglePhaseProblem, build_problem
from repro.physics.simulation import NewtonReport
from repro.solvers.cg import PAPER_TOLERANCE_RTR


def quarter_five_spot_problem(
    nx: int = 16,
    ny: int = 16,
    nz: int = 8,
    *,
    permeability: np.ndarray | float = 100.0,
    viscosity: float = 1.0,
    injection_pressure: float = 1.0,
    production_pressure: float = 0.0,
) -> SinglePhaseProblem:
    """The Fig. 5 scenario: injector at (0,0), producer at (nx-1,ny-1)."""
    grid = CartesianGrid3D(nx, ny, nz)
    if np.isscalar(permeability):
        perm = homogeneous_permeability(grid, float(permeability))  # type: ignore[arg-type]
    else:
        perm = np.asarray(permeability, dtype=np.float32)
    _, dirichlet = quarter_five_spot(
        grid,
        injection_pressure=injection_pressure,
        production_pressure=production_pressure,
    )
    return build_problem(grid, perm, dirichlet, viscosity=viscosity)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.api.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def solve_reference(
    problem: SinglePhaseProblem,
    *,
    tol_rtr: float = PAPER_TOLERANCE_RTR,
    max_iters: int = 10_000,
) -> NewtonReport:
    """Deprecated shim: solve with the NumPy reference backend.

    Use ``repro.solve(problem, backend="reference")`` for the canonical
    :class:`~repro.backends.SolveResult`.
    """
    _deprecated("solve_reference", 'repro.solve(problem, backend="reference")')
    from repro.backends import get_backend

    return get_backend("reference").solve_native(
        problem, tol_rtr=tol_rtr, max_iters=max_iters
    )


def solve_on_wse(problem: SinglePhaseProblem, **kwargs):
    """Deprecated shim: solve on the simulated dataflow fabric.

    Use ``repro.solve(problem, backend="wse")`` for the canonical
    :class:`~repro.backends.SolveResult`.
    """
    _deprecated("solve_on_wse", 'repro.solve(problem, backend="wse")')
    from repro.backends import get_backend

    return get_backend("wse").solve_native(problem, **kwargs)


def solve_on_gpu_model(problem: SinglePhaseProblem, **kwargs):
    """Deprecated shim: solve with the CUDA-like GPU reference model.

    Use ``repro.solve(problem, backend="gpu")`` for the canonical
    :class:`~repro.backends.SolveResult`.
    """
    _deprecated("solve_on_gpu_model", 'repro.solve(problem, backend="gpu")')
    from repro.backends import get_backend

    return get_backend("gpu").solve_native(problem, **kwargs)
